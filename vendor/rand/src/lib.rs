//! Offline stand-in for the `rand` crate.
//!
//! Supplies the rand 0.10 API subset the workspace uses —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] convenience methods `random_range`/`random_bool` — on
//! top of a xoshiro256\*\* generator seeded through splitmix64. The
//! stream differs from upstream `StdRng` (which is a ChaCha12 CSPRNG),
//! but every consumer in this repository only requires *determinism
//! per seed*, which this implementation provides.

#![allow(clippy::all)]

/// Core random-source trait (mirror of `rand::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (mirror of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive integer range that can be sampled
/// uniformly (mirror of `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
    /// Whether the range contains no values.
    fn is_empty_range(&self) -> bool;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_below(rng, span);
                (start as i128 + v as i128) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform sample in `[0, span)` by rejection on the top of the
/// 128-bit product (Lemire's method widened to u128 spans ≤ 2^64).
fn uniform_below(rng: &mut impl RngCore, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= (1u128 << 64));
    if span == 1u128 << 64 {
        return rng.next_u64();
    }
    let span = span as u64;
    // Rejection sampling on the biased zone keeps exact uniformity.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
    fn is_empty_range(&self) -> bool {
        self.start >= self.end
    }
}

/// Convenience sampling methods (mirror of rand 0.10's `Rng`,
/// imported throughout the workspace under its `RngExt` name).
pub trait RngExt: RngCore {
    /// A uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> RngExt for T {}

/// Alias matching rand's re-export of the extension trait as `Rng`.
pub use RngExt as Rng;

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator — the stand-in for
    /// `rand::rngs::StdRng`. Not cryptographically secure; every use
    /// in this workspace is reproducible workload generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro
            // authors for seeding from narrow state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_range(5..17usize);
            assert!((5..17).contains(&v));
            let w = rng.random_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
        }
    }

    #[test]
    fn all_inclusive_values_reachable() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..=3usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let hits = (0..2000).filter(|_| rng.random_bool(0.5)).count();
        assert!((700..1300).contains(&hits), "suspicious p=0.5 rate: {hits}");
    }

    #[test]
    fn float_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&v));
        }
    }
}
