//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates-registry access, so this crate
//! provides the slice of criterion's surface the bench targets use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — backed by a simple best-of-N wall-clock timer instead of
//! statistical sampling. Good enough to run the bench binaries and
//! print comparable numbers; not a statistics engine.

#![allow(clippy::all)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many timed runs each benchmark performs (after one warm-up).
const RUNS: u32 = 5;

/// The top-level benchmark driver.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Returns `self` unchanged; accepted for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, f);
        self
    }

    /// No-op in the stand-in; upstream prints the final report here.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in always runs a
    /// fixed number of iterations.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, |b| f(b, input));
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus a parameter label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a name and a displayed parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds an id from just a displayed parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput hint; accepted and ignored by the stand-in.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure to time the routine.
pub struct Bencher {
    best: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, keeping the best of a few runs.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up
        let mut best = Duration::MAX;
        for _ in 0..RUNS {
            let start = Instant::now();
            black_box(routine());
            best = best.min(start.elapsed());
        }
        self.best = Some(best);
    }
}

fn run_benchmark(label: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher { best: None };
    f(&mut bencher);
    match bencher.best {
        Some(d) => println!("bench {label}: {d:?} (best of {RUNS})"),
        None => println!("bench {label}: no measurement (iter not called)"),
    }
}

/// Declares a benchmark group function, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_timing() {
        let mut b = Bencher { best: None };
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.best.is_some());
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &n| {
                b.iter(|| n * 2);
            });
        g.finish();
    }
}
