//! Offline stand-in for the `serde` facade.
//!
//! The build environment cannot reach a crates registry, so this
//! crate supplies just enough of serde's public surface for the
//! workspace to compile: the `Serialize`/`Deserialize`/`Serializer`/
//! `Deserializer` traits (with only the methods the workspace calls)
//! and re-exported no-op derive macros. No data format ships with the
//! repository, so the no-op derives lose nothing; hand-written impls
//! (e.g. `AttrName`'s string-interning round-trip) stay source
//! compatible with real serde and will work unchanged if the real
//! dependency is restored.

#![allow(clippy::all)]

pub use serde_derive::{Deserialize, Serialize};

use std::fmt::Display;

/// Error trait mirrored from `serde::ser::Error`/`serde::de::Error`.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A type that can be serialized (mirror of `serde::Serialize`).
pub trait SerializeTrait {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

// The derive macro and trait share the name `Serialize` in real
// serde; Rust allows a trait and a macro to coexist under one name,
// so re-exporting the trait under its public name keeps call sites
// (`impl Serialize for AttrName`) compiling.
pub use SerializeTrait as Serialize;

/// A type that can be deserialized (mirror of `serde::Deserialize`).
pub trait DeserializeTrait<'de>: Sized {
    /// Deserializes a value from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

pub use DeserializeTrait as Deserialize;

/// Minimal mirror of `serde::Serializer` — string output only, which
/// is all the workspace's hand-written impls use.
pub trait Serializer: Sized {
    /// Successful output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
}

/// Minimal mirror of `serde::Deserializer` — string input only.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Deserializes a `String`.
    fn deserialize_string(self) -> Result<String, Self::Error>;
}

impl<'de> DeserializeTrait<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_string()
    }
}

impl SerializeTrait for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl SerializeTrait for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}
