//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the subset of the parking_lot API the workspace uses —
//! `Mutex`/`RwLock` with `const fn new` and non-poisoning lock
//! methods. Poisoned std locks are recovered transparently
//! (`PoisonError::into_inner`), matching parking_lot's behavior of
//! not propagating panics through lock acquisition.

#![allow(clippy::all)]

use std::sync::PoisonError;

/// A mutual-exclusion lock with the parking_lot API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex (usable in `static` items).
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader–writer lock with the parking_lot API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock (usable in `static` items).
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_data() {
        static M: Mutex<i32> = Mutex::new(0);
        *M.lock() += 41;
        *M.lock() += 1;
        assert_eq!(*M.lock(), 42);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
