//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors a minimal serde facade. Nothing in this
//! repository serializes through a real format crate — the derives
//! only need to *exist* so `#[derive(..., Serialize, Deserialize)]`
//! attributes keep compiling. They expand to nothing; types therefore
//! do not implement the traits, which is fine because no bound in the
//! workspace requires them (the one hand-written impl pair, on
//! `AttrName`, compiles against the trait definitions in the `serde`
//! stand-in crate).

#![allow(clippy::all)]

use proc_macro::TokenStream;

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
