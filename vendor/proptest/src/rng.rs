//! The deterministic generator driving case generation.

/// A splitmix64 generator. Small state, excellent distribution for
//  test-case generation, and trivially reproducible from a seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Rejection sampling for exact uniformity.
        let zone = u64::MAX - (u64::MAX % n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// Uniform usize in `[min, max]` (inclusive).
    pub fn usize_inclusive(&mut self, min: usize, max: usize) -> usize {
        debug_assert!(min <= max);
        min + self.below((max - min) as u64 + 1) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn inclusive_hits_both_ends() {
        let mut rng = TestRng::new(2);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..500 {
            match rng.usize_inclusive(3, 5) {
                3 => lo = true,
                5 => hi = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo && hi);
    }
}
