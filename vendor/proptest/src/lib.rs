//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates-registry access, so this crate
//! reimplements the slice of proptest's API this workspace uses:
//!
//! * [`strategy::Strategy`] with `prop_map` and `boxed`;
//! * strategies for integer/float ranges, tuples, string patterns
//!   (a small regex subset), [`collection::vec`], [`option::of`],
//!   [`sample::select`] and [`sample::Index`];
//! * [`arbitrary::any`] for the primitive types the tests request;
//! * the [`proptest!`] macro family (`prop_assert!`, `prop_assert_eq!`,
//!   `prop_assume!`, `prop_oneof!`) running a configurable number of
//!   deterministic cases per property.
//!
//! Differences from upstream: cases are generated from a fixed
//! per-test seed (reproducible, CI-friendly) and failing cases are
//! reported **without shrinking** — the failure message contains the
//! seed and case index instead. That trades minimal counterexamples
//! for zero dependencies.

#![allow(clippy::all)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod rng;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The `prop::` facade module, mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests: an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn
/// name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($config) $($rest)* }
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($binding:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_cases(&config, stringify!($name), |__pt_rng| {
                    $(let $binding = $crate::strategy::Strategy::generate(&($strat), __pt_rng);)+
                    let mut __pt_case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    };
                    __pt_case()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// `assert!` that reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `assert_ne!` that reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when the assumption does not hold; skipped
/// cases are regenerated and do not count toward the case budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// A uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
