//! Option strategies (`prop::option::of`).

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Generates `Option<T>` from a strategy for `T`; `None` roughly a
/// quarter of the time, matching upstream's default weighting.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The result of [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::new(1);
        let s = of(0..4i64);
        let values: Vec<_> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(values.iter().any(Option::is_none));
        assert!(values.iter().any(Option::is_some));
        assert!(values.iter().flatten().all(|&v| (0..4).contains(&v)));
    }
}
