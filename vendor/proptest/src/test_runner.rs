//! The case-running engine behind the [`proptest!`](crate::proptest)
//! macro.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::rng::TestRng;

/// Per-test configuration (mirror of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property is violated: fail the test.
    Fail(String),
    /// The inputs don't satisfy an assumption: regenerate.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected case (does not count against the case budget).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runs `config.cases` successful cases of `f`, panicking on the
/// first failure. The seed is derived from the test name, so each
/// property sees a distinct but fully reproducible input stream.
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut f: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut hasher = DefaultHasher::new();
    name.hash(&mut hasher);
    let seed = hasher.finish();
    let mut rng = TestRng::new(seed);

    let mut passed = 0u32;
    let mut rejected = 0u32;
    let reject_budget = config.cases.saturating_mul(100).max(1000);
    while passed < config.cases {
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                assert!(
                    rejected < reject_budget,
                    "property {name:?}: too many rejected cases \
                     ({rejected}; last assumption: {why})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name:?} failed at case {passed} (seed {seed:#x}):\n{msg}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_completes() {
        run_cases(&ProptestConfig::with_cases(10), "always_ok", |_| Ok(()));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failing_property_panics_with_message() {
        run_cases(&ProptestConfig::default(), "always_fails", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn rejections_do_not_consume_cases() {
        let mut calls = 0;
        run_cases(&ProptestConfig::with_cases(5), "some_rejects", |rng| {
            calls += 1;
            if rng.below(2) == 0 {
                Err(TestCaseError::reject("coin"))
            } else {
                Ok(())
            }
        });
        assert!(calls > 5);
    }

    #[test]
    #[should_panic(expected = "too many rejected cases")]
    fn reject_storm_panics() {
        run_cases(&ProptestConfig::with_cases(1), "all_rejects", |_| {
            Err(TestCaseError::reject("never"))
        });
    }
}
