//! Sampling strategies (`prop::sample::select`, `prop::sample::Index`).

use crate::arbitrary::Arbitrary;
use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Picks uniformly from a fixed list of values.
pub fn select<T: Clone + 'static>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "cannot select from an empty list");
    Select { items }
}

/// The result of [`select`].
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
}

/// A collection-size-independent index, resolved against a concrete
/// length with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Index(pub(crate) u64);

impl Index {
    /// Maps this abstract index into `[0, len)`; `len` must be positive.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.0 % len as u64) as usize
    }
}

/// Strategy producing [`Index`] values (via `any::<Index>()`).
pub struct IndexStrategy;

impl Strategy for IndexStrategy {
    type Value = Index;
    fn generate(&self, rng: &mut TestRng) -> Index {
        Index(rng.next_u64())
    }
}

impl Arbitrary for Index {
    type Strategy = IndexStrategy;
    fn arbitrary() -> IndexStrategy {
        IndexStrategy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn select_covers_all_items() {
        let mut rng = TestRng::new(1);
        let s = select(vec!["a", "b", "c"]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn index_in_bounds_for_any_len() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let idx = any::<Index>().generate(&mut rng);
            for len in [1usize, 2, 7, 1000] {
                assert!(idx.index(len) < len);
            }
        }
    }
}
