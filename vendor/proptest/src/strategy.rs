//! The [`Strategy`] trait and combinators.

use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;
use crate::string::generate_matching;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking:
/// `generate` produces one concrete value per call.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

// --- integer and float ranges ----------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = if span >= (1u128 << 64) {
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = if span > (1u128 << 64) || span == 0 {
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// --- string patterns -------------------------------------------------------

/// A `&str` is interpreted as a regex-subset pattern, as in upstream
/// proptest: generated strings match the pattern.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_matching(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_matching(self, rng)
    }
}

// --- tuples ----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3..9i64).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (0..=4u8).generate(&mut rng);
            assert!(w <= 4);
            let f = (0.0..1.0f64).generate(&mut rng);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::new(2);
        let s = (0..10i64).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::new(3);
        let (a, b, c) = (0..5usize, 10..20i64, 0.0..1.0f64).generate(&mut rng);
        assert!(a < 5 && (10..20).contains(&b) && b >= 10 && c < 1.0);
    }

    #[test]
    fn union_picks_all_branches() {
        let mut rng = TestRng::new(4);
        let u = Union::new(vec![(0..1i64).boxed(), (10..11i64).boxed()]);
        let mut seen = [false, false];
        for _ in 0..100 {
            match u.generate(&mut rng) {
                0 => seen[0] = true,
                10 => seen[1] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn just_clones() {
        let mut rng = TestRng::new(5);
        assert_eq!(Just(7i32).generate(&mut rng), 7);
    }
}
