//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// A size specification for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

/// Generates a `Vec` of values from an element strategy.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_inclusive(self.size.min, self.size.max_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_respects_bounds() {
        let mut rng = TestRng::new(1);
        let s = vec(0..10i64, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }
    }

    #[test]
    fn inclusive_and_exact_sizes() {
        let mut rng = TestRng::new(2);
        let inc = vec(0..3u8, 1..=3);
        let exact = vec(0..3u8, 4usize);
        for _ in 0..100 {
            assert!((1..=3).contains(&inc.generate(&mut rng).len()));
            assert_eq!(exact.generate(&mut rng).len(), 4);
        }
    }
}
