//! String generation from a small regex subset.
//!
//! Supported syntax — enough for the patterns used in this workspace
//! (e.g. `"[a-z][a-z0-9_]{0,8}"`, `".{0,200}"`):
//!
//! * literal characters and `\x` escapes;
//! * `.` — any printable ASCII character;
//! * `[...]` character classes with ranges (`a-z`) and singles;
//! * quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (unbounded ones are
//!   capped at 8 repetitions).

use crate::rng::TestRng;

/// One generatable atom of the pattern.
enum Atom {
    /// A fixed character.
    Literal(char),
    /// Any printable ASCII character (`.`).
    AnyPrintable,
    /// A character class: the flattened set of candidate characters.
    Class(Vec<char>),
}

impl Atom {
    fn generate(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Literal(c) => *c,
            Atom::AnyPrintable => {
                // 0x20..=0x7E: space through tilde.
                char::from_u32(0x20 + rng.below(0x7F - 0x20) as u32).unwrap()
            }
            Atom::Class(chars) => chars[rng.below(chars.len() as u64) as usize],
        }
    }
}

/// Generates a string matching `pattern` (see module docs for the
/// supported subset). Panics on syntax outside the subset so that a
/// drifting test pattern fails loudly instead of mis-generating.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::AnyPrintable
            }
            '[' => {
                let (class, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                Atom::Class(class)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                Atom::Literal(unescape(c))
            }
            c => {
                assert!(
                    !matches!(c, '(' | ')' | '|' | '^' | '$'),
                    "unsupported regex syntax {c:?} in pattern {pattern:?}"
                );
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max, next) = parse_quantifier(&chars, i, pattern);
        i = next;
        let count = rng.usize_inclusive(min, max);
        for _ in 0..count {
            out.push(atom.generate(rng));
        }
    }
    out
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

/// Parses a `[...]` class starting just after the `[`. Returns the
/// flattened candidate set and the index just past the `]`.
fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut class = Vec::new();
    loop {
        let c = *chars
            .get(i)
            .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
        match c {
            ']' => {
                assert!(!class.is_empty(), "empty class in pattern {pattern:?}");
                return (class, i + 1);
            }
            '\\' => {
                i += 1;
                class.push(unescape(chars[i]));
                i += 1;
            }
            lo => {
                if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
                    let hi = chars[i + 2];
                    assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                    for v in lo as u32..=hi as u32 {
                        class.push(char::from_u32(v).unwrap());
                    }
                    i += 3;
                } else {
                    class.push(lo);
                    i += 1;
                }
            }
        }
    }
}

/// Parses an optional quantifier at `i`. Returns `(min, max, next)`.
fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
    const UNBOUNDED_CAP: usize = 8;
    match chars.get(i) {
        Some('?') => (0, 1, i + 1),
        Some('*') => (0, UNBOUNDED_CAP, i + 1),
        Some('+') => (1, UNBOUNDED_CAP, i + 1),
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                None => {
                    let n = body.parse().expect("bad quantifier count");
                    (n, n)
                }
                Some((lo, "")) => (
                    lo.parse().expect("bad quantifier min"),
                    UNBOUNDED_CAP.max(lo.parse().unwrap_or(0)),
                ),
                Some((lo, hi)) => (
                    lo.parse().expect("bad quantifier min"),
                    hi.parse().expect("bad quantifier max"),
                ),
            };
            assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
            (min, max, close + 1)
        }
        _ => (1, 1, i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_passes_through() {
        let mut rng = TestRng::new(1);
        assert_eq!(generate_matching("abc", &mut rng), "abc");
    }

    #[test]
    fn identifier_pattern_shape() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let s = generate_matching("[a-z][a-z0-9_]{0,8}", &mut rng);
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_lowercase(), "bad first char in {s:?}");
            assert!(s.len() <= 9);
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn dot_quantified() {
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let s = generate_matching(".{0,200}", &mut rng);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn exact_count() {
        let mut rng = TestRng::new(4);
        for _ in 0..50 {
            assert_eq!(generate_matching("[0-9]{4}", &mut rng).len(), 4);
        }
    }

    #[test]
    fn optional_and_plus() {
        let mut rng = TestRng::new(5);
        for _ in 0..100 {
            let s = generate_matching("a?b+", &mut rng);
            assert!(s == s.trim());
            assert!(s.ends_with('b'));
            let bs = s.chars().filter(|&c| c == 'b').count();
            assert!((1..=8).contains(&bs));
        }
    }
}
