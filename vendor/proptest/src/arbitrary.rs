//! The [`Arbitrary`] trait and [`any`] entry point.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Types with a canonical default strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (mirror of `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for a primitive type.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Any<T> {
    fn new() -> Self {
        Any(std::marker::PhantomData)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any::new()
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;
    fn arbitrary() -> Any<bool> {
        Any::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::new(1);
        let s = any::<u64>();
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn any_bool_hits_both() {
        let mut rng = TestRng::new(2);
        let s = any::<bool>();
        let vals: Vec<_> = (0..64).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.contains(&true) && vals.contains(&false));
    }
}
