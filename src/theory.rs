//! # Paper-to-API map
//!
//! Where each definition, proposition and construction of *Entity
//! Identification in Database Integration* (Lim, Srivastava,
//! Prabhakar & Richardson, ICDE 1993) lives in this workspace.
//!
//! ## §3 — the entity-identification problem
//!
//! | Paper concept | API |
//! |---|---|
//! | Candidate keys uniquely identify tuples (§3.1) | [`eid_relational::Schema`] + key enforcement in [`eid_relational::Relation::insert`] |
//! | Value equivalence `a = b` vs entity equivalence `a ≡ b` | [`eid_relational::Value::non_null_eq`] vs [`eid_rules::MatchDecision`] |
//! | Three-valued identification function (§3.2) | [`eid_rules::RuleBase::decide`] |
//! | Matching table `MT_RS` / negative table `NMT_RS` | [`eid_core::match_table::PairTable`] |
//! | Uniqueness constraint | [`eid_core::match_table::PairTable::verify_uniqueness`] |
//! | Consistency constraint | [`eid_core::match_table::PairTable::verify_consistency`] |
//! | Soundness / completeness | [`eid_core::metrics::Evaluation::is_sound`] / [`eid_core::metrics::Evaluation::completeness`] |
//! | Identity rules + well-formedness side condition | [`eid_rules::IdentityRule`] (validated by an equality graph) |
//! | Distinctness rules | [`eid_rules::DistinctnessRule`] |
//! | Necessary in-relation constraints (§3.2) | [`eid_core::validate::validate_knowledge`] |
//! | Monotonicity (§3.3, Figure 3) | [`eid_core::monotonic::KnowledgeSweep`], [`eid_core::partition::Partition`] |
//!
//! ## §4 — the proposed solution
//!
//! | Paper concept | API |
//! |---|---|
//! | Extended key `K_Ext` (minimal, `K₁ ∪ K₂ ∪ Ā`) | [`eid_rules::ExtendedKey`]; minimality via [`eid_rules::ExtendedKey::minimal_in`] and FD-based discovery via [`eid_rules::ExtendedKey::suggest_from_fds`] |
//! | Extended-key equivalence | [`eid_rules::ExtendedKey::identity_rule`] |
//! | ILFD definition | [`eid_ilfd::Ilfd`] |
//! | Deriving missing key values from ILFDs | [`eid_ilfd::derive::derive_tuple`] (first-match-with-cut and fixpoint) |
//! | Proposition 1 (ILFD ⇄ distinctness rule) | [`eid_rules::DistinctnessRule::from_ilfd`] / [`eid_rules::DistinctnessRule::to_ilfd`] |
//! | Matching-table construction (§4.2, steps 1–3) | [`eid_core::matcher::EntityMatcher::run`] |
//! | The same construction as relational expressions over ILFD tables | [`eid_core::algebra_pipeline::run`] with [`eid_ilfd::tables::IlfdTable`] |
//! | Integrated table `T_RS = MT ⋈ R ⟗ S` | [`eid_core::integrate::IntegratedTable`] |
//! | "A `T_RS` tuple can possibly match another…" | [`eid_core::integrate::IntegratedTable::possibly_same`] |
//!
//! ## §5 — formal properties of ILFDs
//!
//! | Paper result | API |
//! |---|---|
//! | Propositional reading of ILFDs | [`eid_ilfd::PropSymbol`], [`eid_ilfd::SymbolSet`] |
//! | Armstrong's axioms for ILFDs | [`eid_ilfd::axioms::Derivation`] (reflexivity / augmentation / transitivity constructors) |
//! | Lemma 2 (union, pseudo-transitivity, decomposition) | [`eid_ilfd::axioms::Derivation::union_rule`] etc., built from the primitives |
//! | Theorem 1 (soundness + completeness) | [`eid_ilfd::closure::implies`] (decision) + [`eid_ilfd::axioms::prove`] (constructive completeness) |
//! | Closure `X⁺_F` ("relatively easier") | [`eid_ilfd::closure::symbol_closure`] (linear counter algorithm; naive oracle: [`eid_ilfd::closure::symbol_closure_naive`]) |
//! | `F⁺` ("expensive to compute") | [`eid_ilfd::closure::enumerate_closure`] (bounded) |
//! | ILFDs as program clauses (Lloyd) | [`eid_ilfd::horn::HornProgram`] (forward chaining and SLD) |
//! | Proposition 2 (ILFD family ⇒ FD) | [`eid_ilfd::fd::fd_from_ilfd_family`] |
//! | FD theory used for comparison | [`eid_ilfd::fd`] (closure, implication, satisfaction, candidate keys) |
//!
//! ## §6 — the prototype
//!
//! | Prototype behaviour | API |
//! |---|---|
//! | `setup_extkey` + verification messages | [`eid_core::session::Session::setup_extended_key`], [`eid_core::session::MSG_VERIFIED`], [`eid_core::session::MSG_UNSOUND`] |
//! | NULL default after all ILFDs fail; `non_null_eq` | [`eid_ilfd::Strategy::FirstMatch`]; [`eid_relational::Value::non_null_eq`] |
//! | `print_matchtable` / `print_integ_table` / `print_RRtable` | [`eid_core::session::Session`] display methods + [`eid_relational::display`] |
//! | The interactive loop, over files | the `eid session` CLI command |
//!
//! ## §2 context and §7 outlook
//!
//! | Paper remark | API |
//! |---|---|
//! | The five existing approaches (§2.2) | [`eid_baselines`] |
//! | Attribute-value conflicts "resolved only after entity identification" | [`eid_core::conflict`] |
//! | Federated updates ⇒ re-identification (§2) | [`eid_core::incremental::IncrementalMatcher`] |
//! | Virtual integration processes at query time (§2, §7) | [`eid_core::virtual_view::VirtualView`] |
//! | Knowledge "supplied as more … is gained" (§3.2) | [`eid_core::incremental::IncrementalMatcher::add_ilfd`] |

// This module is documentation-only.
