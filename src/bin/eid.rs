//! `eid` — command-line entity identification.
//!
//! ```text
//! eid match --r R.csv --r-key name,street --s S.csv --s-key name,city \
//!           --rules knowledge.rules --key name,cuisine \
//!           [--integrated] [--unify prefer-r|prefer-s|null] [--negative] \
//!           [--lenient] [--timeout-ms N] [--max-pairs N] [--max-mem-mb N] \
//!           [--no-spill] [--spill-dir DIR] [--keep-spill] \
//!           [--stats] [--report-json PATH] [--trace-out PATH] \
//!           [--emit auto|buffered|streamed|spilled]
//! eid plan --r R.csv --r-key name,street --s S.csv --s-key name,city \
//!          --rules knowledge.rules --key name,cuisine \
//!          [--json] [--explain] [--analyze] [--threads N] \
//!          [--emit auto|buffered|streamed|spilled]
//! eid validate --rules knowledge.rules
//! eid demo
//! ```
//!
//! `eid plan` prints the cost-based match plan — chosen blocking
//! keys, probe strategies, serial vs. parallel — without executing
//! anything: an indented text tree by default (`--explain` is an
//! accepted synonym), or the serialized plan with `--json`.
//! `--analyze` *does* execute the plan and joins the planner's
//! estimates with per-node actuals (EXPLAIN ANALYZE).
//!
//! `eid match --trace-out trace.json` writes the run's execution
//! timeline as Chrome `trace_event` JSON — load it in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! CSV files carry a header row; `null` cells are NULL. Rule files use
//! the `eid-rules` textual syntax (`speciality = hunan -> cuisine =
//! chinese`, `e1.a = e2.a -> e1 == e2`, `… -> e1 != e2`).
//!
//! ## Exit codes
//!
//! A tripped run budget maps to a distinct exit code (in the spirit
//! of `timeout(1)`'s 124):
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success |
//! | 2    | usage / input error |
//! | 65   | corrupt / truncated / incompatible dataset store |
//! | 70   | internal worker panic (degraded reruns exhausted) |
//! | 124  | `--timeout-ms` deadline exceeded |
//! | 125  | `--max-pairs` candidate-pair budget exceeded |
//! | 126  | `--max-mem-mb` pair-list memory budget exceeded |
//! | 130  | run cancelled |

use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use entity_id::core::conflict::{unify, ConflictPolicy};
use entity_id::core::error::CoreError;
use entity_id::core::explain::{plan_analyzed_json, render_plan, render_plan_analyzed};
use entity_id::core::integrate::IntegratedTable;
use entity_id::core::matcher::{EntityMatcher, MatchConfig};
use entity_id::core::partition::Partition;
use entity_id::core::plan::EmitHint;
use entity_id::core::runtime::{AbortReason, PartialStats, RunBudget};
use entity_id::core::stats::{counter, label};
use entity_id::core::store::{store_files, Dataset};
use entity_id::datagen::restaurant;
use entity_id::ilfd::closure::minimal_cover;
use entity_id::obs::{MatchReport, Recorder};
use entity_id::relational::csv::{from_csv_inferred, from_csv_inferred_lenient, CsvReject};
use entity_id::relational::display::render_default;
use entity_id::relational::Relation;
use entity_id::rules::{parse_rules, ExtendedKey};

/// With `--features count-alloc`, every allocation the binary makes
/// goes through eid-obs's counting allocator, so match reports carry
/// measured `alloc/*` bytes and the memory budget charges real
/// deltas instead of the 8-bytes-per-pair estimate.
#[cfg(feature = "count-alloc")]
#[global_allocator]
static COUNTING_ALLOC: entity_id::obs::alloc::CountingAlloc = entity_id::obs::alloc::CountingAlloc;

/// A CLI failure: a message plus the process exit code it maps to.
struct CliError {
    msg: String,
    code: u8,
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError { msg, code: 2 }
    }
}

/// Maps a tripped budget (or exhausted degradation ladder) to its
/// documented exit code; everything else is a generic input error.
fn cli_error_of(e: CoreError) -> CliError {
    let code = match &e {
        CoreError::Aborted { reason, .. } => match reason {
            AbortReason::DeadlineExceeded { .. } => 124,
            AbortReason::PairBudgetExceeded { .. } => 125,
            AbortReason::MemBudgetExceeded { .. } => 126,
            AbortReason::Cancelled => 130,
        },
        CoreError::WorkerPanic { .. } => 70,
        // EX_DATAERR: the dataset store is corrupt, truncated, or
        // from an incompatible version.
        CoreError::Store { .. } => 65,
        _ => 2,
    };
    CliError {
        msg: e.to_string(),
        code,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result: Result<(), CliError> = match args.first().map(String::as_str) {
        Some("match") => cmd_match(&args[1..]),
        Some("plan") => cmd_plan(&args[1..]),
        Some("encode") => cmd_encode(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]).map_err(CliError::from),
        Some("session") => cmd_session(&args[1..]).map_err(CliError::from),
        Some("demo") => cmd_demo().map_err(CliError::from),
        Some("--help") | Some("-h") | None => {
            usage();
            Ok(())
        }
        Some(other) => Err(CliError::from(format!(
            "unknown command `{other}`; try --help"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.msg);
            ExitCode::from(e.code)
        }
    }
}

fn usage() {
    println!(
        "eid — entity identification in database integration (Lim et al., ICDE 1993)

USAGE:
  eid match --r R.csv --r-key a,b --s S.csv --s-key c,d \\
            --rules FILE --key x,y [--integrated] [--negative] \\
            [--unify prefer-r|prefer-s|null] [--lenient] \\
            [--timeout-ms N] [--max-pairs N] [--max-mem-mb N] \\
            [--no-spill] [--spill-dir DIR] [--keep-spill] \\
            [--stats] [--report-json PATH] [--trace-out PATH]
  eid match --store DIR.eids [same run flags]
  eid plan  --r R.csv --r-key a,b --s S.csv --s-key c,d \\
            --rules FILE --key x,y [--json] [--explain] [--analyze] \\
            [--threads N]
  eid plan  --store DIR.eids [--json] [--explain] [--analyze]
  eid encode --r R.csv --r-key a,b --s S.csv --s-key c,d \\
            --rules FILE --key x,y --out DIR.eids [--lenient]
  eid inspect --store DIR.eids
  eid validate --rules FILE
  eid session --r R.csv --r-key a,b --s S.csv --s-key c,d --rules FILE
  eid demo

DATASET STORES (eid encode / --store):
  `eid encode` derives, interns, and columnar-encodes the inputs
  once, then persists everything — interner, symbol columns, column
  statistics, blocking indexes — into a checksummed DIR.eids dataset
  directory. `eid match --store` / `eid plan --store` reopen it with
  a single bounded pass: no re-derivation, no re-interning, and the
  planner reads the *persisted* statistics (`stats: persisted` in
  the plan tree). A corrupt or truncated store exits 65, never a
  partial answer.

PLANNING (eid plan):
  Prints the cost-based match plan — blocking keys chosen from
  column statistics, probe strategies, serial vs. parallel — without
  executing it. Default output is an indented text tree (--explain
  is an accepted synonym); --json prints the serialized plan.
  --analyze executes the plan once and prints estimated-vs-actual
  columns per node (candidate pairs, rows out, kernel batches, busy
  time) plus a drift summary; combine with --json for the joined
  plan + actuals document.

TRACING (eid match):
  --trace-out PATH writes the run's execution timeline as Chrome
  trace_event JSON: one slice per engine task, labeled with its plan
  node's span, nested kernel-tile slices, one track per worker. Load
  it in Perfetto (https://ui.perfetto.dev) or chrome://tracing.

RUN BUDGETS (eid match):
  --lenient        skip malformed CSV rows (counted in the report)
                   instead of failing the whole ingest
  --timeout-ms N   abort with exit 124 after N wall-clock milliseconds
  --max-pairs N    abort with exit 125 past N candidate pairs
  --max-mem-mb N   past N MiB of pair lists, degrade to spilled
                   (out-of-core) emission; abort with exit 126 only
                   when spilling is off or also fails
  --no-spill       never spill to disk — a tripped byte budget aborts
  --spill-dir DIR  parent directory for spill files (default: the
                   system temp dir); each run removes its own subdir
  --keep-spill     keep the run's spill directory for debugging
  A tripped budget still writes --report-json with partial progress."
    );
}

/// Parses `--flag value` pairs plus boolean flags.
fn parse_flags(
    args: &[String],
    valued: &[&str],
    boolean: &[&str],
) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, found `{}`", args[i]))?;
        if boolean.contains(&flag) {
            out.insert(flag.to_string(), "true".to_string());
            i += 1;
        } else if valued.contains(&flag) {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{flag} needs a value"))?;
            out.insert(flag.to_string(), value.clone());
            i += 2;
        } else {
            return Err(format!("unknown flag --{flag}"));
        }
    }
    Ok(out)
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("--{name} is required"))
}

/// Parses the optional `--emit` flag (refutation emission path).
fn parse_emit_flag(flags: &HashMap<String, String>) -> Result<EmitHint, String> {
    match flags.get("emit").map(String::as_str) {
        None | Some("auto") => Ok(EmitHint::Auto),
        Some("buffered") => Ok(EmitHint::Buffered),
        Some("streamed") => Ok(EmitHint::Streamed),
        Some("spilled") => Ok(EmitHint::Spilled),
        Some(other) => Err(format!(
            "--emit: `{other}` is not one of auto, buffered, streamed, spilled"
        )),
    }
}

/// Parses one optional numeric budget flag.
fn parse_budget_flag(flags: &HashMap<String, String>, name: &str) -> Result<Option<u64>, String> {
    match flags.get(name) {
        None => Ok(None),
        Some(v) => v
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("--{name}: `{v}` is not a non-negative integer")),
    }
}

/// Loads one relation, honouring `--lenient`: malformed data rows are
/// skipped (warned to stderr) instead of failing the ingest. Returns
/// the relation and how many rows were rejected.
fn load_relation(
    name: &str,
    path: &str,
    text: &str,
    key: &[&str],
    lenient: bool,
) -> Result<(Relation, u64), String> {
    if lenient {
        let (rel, rejects): (Relation, Vec<CsvReject>) =
            from_csv_inferred_lenient(name, text, key).map_err(|e| format!("{path}: {e}"))?;
        for rej in &rejects {
            eprintln!("warning: {path}: skipped line {}: {}", rej.line, rej.error);
        }
        Ok((rel, rejects.len() as u64))
    } else {
        let rel = from_csv_inferred(name, text, key).map_err(|e| format!("{path}: {e}"))?;
        Ok((rel, 0))
    }
}

/// A minimal report for an aborted run: the abort label plus the
/// partial-progress counters, so `--report-json` is still written.
fn abort_report(reason: &AbortReason, partial: &PartialStats) -> MatchReport {
    let mut rep = Recorder::new().report();
    rep.set_label(label::ABORT, reason.code());
    rep.set_counter("abort/elapsed_ms", partial.elapsed_ms);
    rep.set_counter("abort/pairs_charged", partial.pairs_charged);
    rep.set_counter("abort/bytes_charged", partial.bytes_charged);
    rep.set_counter("abort/tasks_completed", partial.tasks_completed);
    rep.set_counter("abort/tasks_total", partial.tasks_total);
    rep.set_counter("abort/matching", partial.matching);
    rep.set_counter("abort/negative", partial.negative);
    rep
}

/// Loads the matching inputs for `eid match` / `eid plan` from either
/// a persistent dataset store (`--store DIR`) or the CSV + rules
/// flags. Returns the original relations, the count of lenient-mode
/// rejected rows, the base [`MatchConfig`], and the opened dataset
/// (when store-backed).
type MatchInputs = (Relation, Relation, u64, MatchConfig, Option<Arc<Dataset>>);

fn load_match_inputs(flags: &HashMap<String, String>) -> Result<MatchInputs, CliError> {
    if let Some(dir) = flags.get("store") {
        for f in ["r", "s", "r-key", "s-key", "rules"] {
            if flags.contains_key(f) {
                return Err(CliError::from(format!(
                    "--{f} cannot be combined with --store (the dataset carries it)"
                )));
            }
        }
        let ds = Arc::new(Dataset::open(Path::new(dir)).map_err(cli_error_of)?);
        let mut config = ds.match_config();
        // An explicit --key must agree with the persisted extension;
        // EntityMatcher::from_dataset rejects a mismatch (exit 65).
        if let Some(k) = flags.get("key") {
            config.extended_key = ExtendedKey::of_strs(&k.split(',').collect::<Vec<_>>());
        }
        let (r, s) = (
            ds.r().map_err(cli_error_of)?.clone(),
            ds.s().map_err(cli_error_of)?.clone(),
        );
        return Ok((r, s, 0, config, Some(ds)));
    }
    let r_path = required(flags, "r")?;
    let s_path = required(flags, "s")?;
    let r_key: Vec<&str> = required(flags, "r-key")?.split(',').collect();
    let s_key: Vec<&str> = required(flags, "s-key")?.split(',').collect();
    let key: Vec<&str> = required(flags, "key")?.split(',').collect();
    let rules_path = required(flags, "rules")?;
    let lenient = flags.contains_key("lenient");

    let r_text = std::fs::read_to_string(r_path).map_err(|e| format!("{r_path}: {e}"))?;
    let s_text = std::fs::read_to_string(s_path).map_err(|e| format!("{s_path}: {e}"))?;
    let rules_text =
        std::fs::read_to_string(rules_path).map_err(|e| format!("{rules_path}: {e}"))?;

    let (r, r_rejected) = load_relation("R", r_path, &r_text, &r_key, lenient)?;
    let (s, s_rejected) = load_relation("S", s_path, &s_text, &s_key, lenient)?;
    let rules = parse_rules(&rules_text).map_err(|e| format!("{rules_path}:{e}"))?;

    let mut config = MatchConfig::new(ExtendedKey::of_strs(&key), rules.ilfds());
    config.extra_rules = rules.rule_base();
    Ok((r, s, r_rejected + s_rejected, config, None))
}

fn cmd_match(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(
        args,
        &[
            "r",
            "r-key",
            "s",
            "s-key",
            "rules",
            "key",
            "store",
            "unify",
            "report-json",
            "trace-out",
            "timeout-ms",
            "max-pairs",
            "max-mem-mb",
            "emit",
            "spill-dir",
        ],
        &[
            "integrated",
            "negative",
            "stats",
            "lenient",
            "no-spill",
            "keep-spill",
        ],
    )?;
    let (r, s, rows_rejected, mut config, dataset) = load_match_inputs(&flags)?;
    let key = config.extended_key.clone();
    config.budget = RunBudget {
        timeout_ms: parse_budget_flag(&flags, "timeout-ms")?,
        max_candidate_pairs: parse_budget_flag(&flags, "max-pairs")?,
        max_pair_bytes: parse_budget_flag(&flags, "max-mem-mb")?.map(|mb| mb * 1024 * 1024),
    };
    config.trace = flags.contains_key("trace-out");
    config.emit = parse_emit_flag(&flags)?;
    config.spill = !flags.contains_key("no-spill");
    config.spill_dir = flags.get("spill-dir").map(std::path::PathBuf::from);
    config.keep_spill = flags.contains_key("keep-spill");

    // §3.2 necessary checks before matching.
    let report = entity_id::core::validate::validate_knowledge(&r, &s, &config)
        .map_err(|e| e.to_string())?;
    for v in &report.ilfd_violations {
        println!(
            "warning: tuple {} of {} contradicts ILFD {}",
            v.key, v.side, v.ilfd
        );
    }
    for d in &report.key_duplicates {
        println!(
            "warning: tuples {} and {} of {} share extended-key value {}",
            d.keys.0, d.keys.1, d.side, d.shared
        );
    }

    let matcher = match &dataset {
        Some(ds) => EntityMatcher::from_dataset(Arc::clone(ds), config),
        None => EntityMatcher::new(r.clone(), s.clone(), config),
    }
    .map_err(cli_error_of)?;
    let run = matcher.run();
    let mut outcome = match run {
        Ok(o) => o,
        Err(e) => {
            // A tripped budget still honours --report-json: the abort
            // label plus partial progress, so tooling can tell "ran
            // out of budget at task 37/128" from "never started".
            if let (Some(path), CoreError::Aborted { reason, partial }) =
                (flags.get("report-json"), &e)
            {
                let mut rep = abort_report(reason, partial);
                if rows_rejected > 0 {
                    rep.set_counter(counter::INGEST_ROWS_REJECTED, rows_rejected);
                }
                std::fs::write(path, rep.to_json()).map_err(|e| format!("{path}: {e}"))?;
                eprintln!("partial report written to {path}");
            }
            return Err(cli_error_of(e));
        }
    };
    if rows_rejected > 0 {
        outcome
            .stats
            .set_counter(counter::INGEST_ROWS_REJECTED, rows_rejected);
    }

    match outcome.verify() {
        Ok(()) => println!("Message: The extended key is verified."),
        Err(e) => println!("Message: The extended key causes unsound matching result. ({e})"),
    }
    println!();
    println!(
        "{}",
        render_default(
            "matching table",
            &outcome
                .matching
                .to_relation("MT")
                .map_err(|e| e.to_string())?
        )
    );
    if flags.contains_key("negative") {
        println!(
            "{}",
            render_default(
                "negative matching table",
                &outcome
                    .negative
                    .to_relation("NMT")
                    .map_err(|e| e.to_string())?
            )
        );
    }
    println!("{}", Partition::of(&outcome));

    if flags.contains_key("integrated") {
        let table = IntegratedTable::build(&r, &s, &outcome, &key).map_err(|e| e.to_string())?;
        println!();
        println!("{}", render_default("integrated table", table.relation()));
    }
    if flags.contains_key("stats") {
        println!();
        println!("match report:");
        print!("{}", outcome.stats);
    }
    if let Some(path) = flags.get("report-json") {
        std::fs::write(path, outcome.stats.to_json()).map_err(|e| format!("{path}: {e}"))?;
        println!();
        println!("report written to {path}");
    }
    if let Some(path) = flags.get("trace-out") {
        match &outcome.trace {
            Some(trace) => {
                std::fs::write(path, trace.to_chrome_json()).map_err(|e| format!("{path}: {e}"))?;
                println!();
                println!(
                    "trace written to {path} ({} slices) — load in Perfetto or chrome://tracing",
                    trace.slice_count()
                );
            }
            // The nested-loop last resort bypasses the plan executor,
            // so no timeline exists; say so instead of writing `{}`.
            None => eprintln!("warning: no trace captured for this run; {path} not written"),
        }
    }
    if let Some(policy) = flags.get("unify") {
        let policy = match policy.as_str() {
            "prefer-r" => ConflictPolicy::PreferR,
            "prefer-s" => ConflictPolicy::PreferS,
            "null" => ConflictPolicy::Null,
            other => return Err(format!("unknown --unify policy `{other}`").into()),
        };
        let unified = unify(&r, &s, &outcome, policy).map_err(|e| e.to_string())?;
        println!();
        println!("{}", render_default("unified relation", &unified.relation));
        if !unified.conflicts.is_empty() {
            println!("attribute-value conflicts resolved ({policy:?}):");
            for c in &unified.conflicts {
                println!("  {c}");
            }
        }
    }
    Ok(())
}

/// `eid plan`: print the match plan the cost-based planner would
/// execute for the given inputs, without running it. The relations
/// are loaded, extended, and encoded (the planner reads column
/// statistics from the interned columns), but no probing happens.
fn cmd_plan(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(
        args,
        &[
            "r", "r-key", "s", "s-key", "rules", "key", "store", "threads", "emit",
        ],
        &["json", "explain", "analyze", "lenient"],
    )?;
    let (r, s, _, mut config, dataset) = load_match_inputs(&flags)?;
    if let Some(t) = flags.get("threads") {
        config.threads = t
            .parse()
            .map_err(|_| format!("--threads: `{t}` is not a non-negative integer"))?;
    }
    config.emit = parse_emit_flag(&flags)?;

    let matcher = match &dataset {
        Some(ds) => EntityMatcher::from_dataset(Arc::clone(ds), config),
        None => EntityMatcher::new(r, s, config),
    }
    .map_err(cli_error_of)?;
    if flags.contains_key("analyze") {
        // EXPLAIN ANALYZE: execute the plan once and join the
        // planner's estimates with the measured per-node actuals.
        let outcome = matcher.run().map_err(cli_error_of)?;
        let plan = matcher.plan().map_err(cli_error_of)?;
        if flags.contains_key("json") {
            println!("{}", plan_analyzed_json(&plan, &outcome.stats));
        } else {
            print!("{}", render_plan_analyzed(&plan, &outcome.stats));
        }
        return Ok(());
    }
    let plan = matcher.plan().map_err(cli_error_of)?;
    if flags.contains_key("json") {
        println!("{}", plan.to_json());
    } else {
        print!("{}", render_plan(&plan));
    }
    Ok(())
}

/// `eid encode`: derive + intern + encode the inputs once and persist
/// the result as a checksummed dataset directory.
fn cmd_encode(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(
        args,
        &["r", "r-key", "s", "s-key", "rules", "key", "out"],
        &["lenient"],
    )?;
    let out = required(&flags, "out")?.to_string();
    let (r, s, _, config, _) = load_match_inputs(&flags)?;
    if !config.extra_rules.identity_rules().is_empty()
        || !config.extra_rules.distinctness_rules().is_empty()
    {
        eprintln!(
            "warning: the rules file carries identity/distinctness rules beyond the ILFDs; \
             only ILFDs persist in the store — pass the extra rules again at match time"
        );
    }
    let dir = Path::new(&out);
    let name = dir
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "dataset".to_string());
    let rows_r = r.len();
    let rows_s = s.len();

    let t0 = std::time::Instant::now();
    let ds = Dataset::encode(
        &name,
        r,
        s,
        config.extended_key.clone(),
        config.ilfds.clone(),
        config.strategy,
    )
    .map_err(cli_error_of)?;
    let encode_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = std::time::Instant::now();
    let bytes = ds.write(dir).map_err(cli_error_of)?;
    let write_ms = t1.elapsed().as_secs_f64() * 1e3;

    println!(
        "encoded {name}: {rows_r}+{rows_s} rows, {} interned values",
        ds.interner().map_err(cli_error_of)?.len()
    );
    println!("wrote {out}: {bytes} bytes ({encode_ms:.1} ms encode, {write_ms:.1} ms write)");
    Ok(())
}

/// `eid inspect`: open a dataset store (validating every checksum on
/// the way) and print its manifest, per-column statistics, and file
/// sizes.
fn cmd_inspect(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args, &["store"], &[])?;
    let dir = required(&flags, "store")?;
    let path = Path::new(dir);
    let ds = Dataset::open(path).map_err(cli_error_of)?;
    // Inspection doubles as verification: force every deferred
    // section so semantic corruption fails here, not at first match.
    ds.validate().map_err(cli_error_of)?;
    println!("dataset {} ({dir})", ds.name());
    println!(
        "  rows: R={} S={}  interned values: {}",
        ds.r().map_err(cli_error_of)?.len(),
        ds.s().map_err(cli_error_of)?.len(),
        ds.interner().map_err(cli_error_of)?.len()
    );
    println!(
        "  extended key: {}",
        ds.extended_key()
            .attrs()
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "  strategy: {:?}  ILFDs: {}  blocking index: {}",
        ds.strategy(),
        ds.ilfds().len(),
        if ds.index().map_err(cli_error_of)?.is_some() {
            "persisted"
        } else {
            "absent"
        }
    );
    for (side, rel, stats) in [
        (
            "R'",
            &ds.ext_r().map_err(cli_error_of)?.relation,
            ds.stats_r(),
        ),
        (
            "S'",
            &ds.ext_s().map_err(cli_error_of)?.relation,
            ds.stats_s(),
        ),
    ] {
        println!("  {side} column stats:");
        for (attr, stat) in rel.schema().attribute_names().zip(stats.iter()) {
            println!(
                "    {attr}: {} distinct, {} null ({:.0}%)",
                stat.distinct,
                stat.nulls,
                stat.null_fraction() * 100.0
            );
        }
    }
    let (files, total) = store_files(path).map_err(cli_error_of)?;
    println!("  files ({total} bytes total):");
    for f in &files {
        println!("    {}: {} bytes", f.name, f.bytes);
    }
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["rules"], &[])?;
    let path = required(&flags, "rules")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let rules = parse_rules(&text).map_err(|e| format!("{path}:{e}"))?;
    let ilfds = rules.ilfds();
    let rb = rules.rule_base();
    println!(
        "{path}: OK — {} ILFDs, {} identity rules, {} distinctness rules",
        ilfds.len(),
        rb.identity_rules().len(),
        rb.distinctness_rules().len()
    );
    let cover = minimal_cover(&ilfds);
    if cover.len() < ilfds.len() {
        println!(
            "note: the ILFD set is redundant — a minimal cover has {} rules:",
            cover.len()
        );
        for i in cover.iter() {
            println!("  {i}");
        }
    } else {
        println!("the ILFD set is already minimal");
    }
    Ok(())
}

/// An interactive session over CSV + rules files, mirroring the
/// Prolog prototype's command loop (§6.3). Commands on stdin:
///
/// ```text
/// setup_extkey a,b,c     -- install an extended key and verify
/// candidates             -- list candidate extended-key attributes
/// print_matchtable
/// print_integ_table
/// print_rr / print_ss    -- the extended relations
/// quit
/// ```
fn cmd_session(args: &[String]) -> Result<(), String> {
    use std::io::BufRead;

    let flags = parse_flags(args, &["r", "r-key", "s", "s-key", "rules"], &[])?;
    let r_path = required(&flags, "r")?;
    let s_path = required(&flags, "s")?;
    let r_key: Vec<&str> = required(&flags, "r-key")?.split(',').collect();
    let s_key: Vec<&str> = required(&flags, "s-key")?.split(',').collect();
    let rules_path = required(&flags, "rules")?;

    let r_text = std::fs::read_to_string(r_path).map_err(|e| format!("{r_path}: {e}"))?;
    let s_text = std::fs::read_to_string(s_path).map_err(|e| format!("{s_path}: {e}"))?;
    let rules_text =
        std::fs::read_to_string(rules_path).map_err(|e| format!("{rules_path}: {e}"))?;
    let r = from_csv_inferred("R", &r_text, &r_key).map_err(|e| format!("{r_path}: {e}"))?;
    let s = from_csv_inferred("S", &s_text, &s_key).map_err(|e| format!("{s_path}: {e}"))?;
    let rules = parse_rules(&rules_text).map_err(|e| format!("{rules_path}:{e}"))?;

    let mut session = entity_id::core::session::Session::new(r, s, rules.ilfds());
    println!("eid session — type `candidates`, `setup_extkey a,b`, `print_matchtable`,");
    println!("`print_integ_table`, `print_rr`, `print_ss`, `plan`, or `quit`.");

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        let (cmd, arg) = match line.split_once(' ') {
            Some((c, a)) => (c, a.trim()),
            None => (line, ""),
        };
        let outcome = match cmd {
            "" => Ok(String::new()),
            "quit" | "exit" => break,
            "candidates" => Ok(format!(
                "candidate attributes: {}",
                session
                    .candidate_attributes()
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )),
            "setup_extkey" => {
                let attrs: Vec<&str> = arg.split(',').map(str::trim).collect();
                session
                    .setup_extended_key(&attrs)
                    .map(|rep| rep.message.to_string())
                    .map_err(|e| e.to_string())
            }
            "print_matchtable" => session.matching_table_display().map_err(|e| e.to_string()),
            "print_integ_table" => session
                .integrated_table_display()
                .map_err(|e| e.to_string()),
            "print_rr" => session.extended_r_display().map_err(|e| e.to_string()),
            "print_ss" => session.extended_s_display().map_err(|e| e.to_string()),
            "plan" => session.plan_display().map_err(|e| e.to_string()),
            other => Err(format!("unknown command `{other}`")),
        };
        match outcome {
            Ok(text) if text.is_empty() => {}
            Ok(text) => println!("{text}"),
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    let (r, s, key, ilfds) = restaurant::example3();
    println!("{}", render_default("R (Table 5)", &r));
    println!("{}", render_default("S (Table 5)", &s));
    let outcome = EntityMatcher::new(r.clone(), s.clone(), MatchConfig::new(key.clone(), ilfds))
        .map_err(|e| e.to_string())?
        .run()
        .map_err(|e| e.to_string())?;
    outcome.verify().map_err(|e| e.to_string())?;
    println!(
        "{}",
        render_default(
            "matching table (Table 7)",
            &outcome
                .matching
                .to_relation("MT")
                .map_err(|e| e.to_string())?
        )
    );
    let table = IntegratedTable::build(&r, &s, &outcome, &key).map_err(|e| e.to_string())?;
    println!(
        "{}",
        render_default("integrated table (§6.3)", table.relation())
    );
    Ok(())
}
