//! # `entity-id` — Entity Identification in Database Integration
//!
//! A Rust implementation of Lim, Srivastava, Prabhakar & Richardson,
//! *"Entity Identification in Database Integration"* (ICDE 1993;
//! extended version in Information Sciences 89, 1996): sound entity
//! identification across autonomous databases whose relations share
//! **no common candidate key**, via *extended keys* and
//! *instance-level functional dependencies* (ILFDs).
//!
//! This crate is a facade re-exporting the workspace:
//!
//! * [`relational`] — the relational substrate (values with NULL,
//!   schemas, candidate-key-enforcing relations, algebra);
//! * [`ilfd`] — ILFD theory (Armstrong axioms, closures, derivation,
//!   ILFD tables, the FD bridge);
//! * [`rules`] — identity/distinctness rules and extended keys;
//! * [`core`] — the entity-identification engine (matcher, matching
//!   tables, integrated table, prototype session);
//! * [`baselines`] — the five §2.2 baseline techniques;
//! * [`datagen`] — paper fixtures and the synthetic integrated-world
//!   generator;
//! * [`obs`] — first-party observability (counters, histograms,
//!   spans, [`MatchReport`](eid_obs::MatchReport)): every matching
//!   run returns a per-stage report in `MatchOutcome::stats`.
//!
//! ## Quickstart
//!
//! ```
//! use entity_id::prelude::*;
//!
//! // The paper's Example 3: restaurants in two databases.
//! let (r, s, key, ilfds) = entity_id::datagen::restaurant::example3();
//! let outcome = EntityMatcher::new(r, s, MatchConfig::new(key, ilfds))
//!     .unwrap().run().unwrap();
//! assert_eq!(outcome.matching.len(), 3);   // Table 7
//! outcome.verify().unwrap();               // sound
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use eid_baselines as baselines;
pub use eid_core as core;
pub use eid_datagen as datagen;
pub use eid_ilfd as ilfd;
pub use eid_obs as obs;
pub use eid_relational as relational;
pub use eid_rules as rules;

pub mod theory;

/// The most commonly used types, one `use` away.
pub mod prelude {
    pub use eid_core::prelude::*;
    pub use eid_ilfd::{Ilfd, IlfdSet};
    pub use eid_relational::{AttrName, Relation, Schema, Tuple, Value};
}
