//! Incremental knowledge acquisition in a federated database (§3.3):
//! as the DBA supplies ILFDs one at a time, the matching and
//! non-matching sets grow monotonically and the undetermined set
//! shrinks — the paper's Figure 3, as a live sweep over a synthetic
//! 60-entity world.
//!
//! Run with `cargo run --example federated_monotonic`.

use entity_id::core::monotonic::KnowledgeSweep;
use entity_id::datagen::{generate, GeneratorConfig};
use entity_id::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = generate(&GeneratorConfig {
        n_entities: 60,
        overlap: 0.6,
        homonym_rate: 0.15,
        ilfd_coverage: 1.0,
        n_specialities: 12,
        ..GeneratorConfig::default()
    });
    println!(
        "Synthetic world: {} entities → R has {} tuples, S has {} tuples, {} true matches.\n",
        workload.universe.len(),
        workload.r.len(),
        workload.s.len(),
        workload.truth.len()
    );

    let ilfds: Vec<Ilfd> = workload.full_ilfds.iter().cloned().collect();
    let config = MatchConfig::new(workload.extended_key.clone(), IlfdSet::new());
    let sweep = KnowledgeSweep::run(&workload.r, &workload.s, &config, &ilfds)?;

    println!("ILFDs | matching | not-matching | undetermined | completeness");
    println!("------+----------+--------------+--------------+-------------");
    for (k, p) in sweep.series() {
        println!(
            "{k:>5} | {:>8} | {:>12} | {:>12} | {:>10.1}%",
            p.matching,
            p.not_matching,
            p.undetermined,
            p.completeness() * 100.0
        );
    }

    match sweep.verify_monotonic() {
        None => println!("\nMonotonicity verified: no decided pair was ever retracted."),
        Some(step) => panic!("monotonicity violated at step {step}"),
    }

    // Soundness holds at *every* step, not just the last.
    for step in &sweep.steps {
        let eval = Evaluation::compute(
            &workload.truth,
            &step.matching,
            &step.negative,
            workload.r.len() * workload.s.len(),
        );
        assert!(eval.is_sound(), "unsound at {} ILFDs", step.ilfds);
    }
    println!("Soundness verified at every knowledge level.");
    Ok(())
}
