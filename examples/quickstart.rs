//! Quickstart: match two relations that share no common candidate
//! key, using an extended key plus one ILFD.
//!
//! Run with `cargo run --example quickstart`.

use entity_id::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Database 1 knows restaurants by (name, cuisine); database 2 by
    // (name, speciality). There is no common candidate key.
    let r_schema = Schema::of_strs("R", &["name", "cuisine", "street"], &["name", "cuisine"])?;
    let mut r = Relation::new(r_schema);
    r.insert_strs(&["twincities", "chinese", "wash_ave"])?;
    r.insert_strs(&["twincities", "indian", "univ_ave"])?;

    let s_schema = Schema::of_strs("S", &["name", "speciality", "city"], &["name", "city"])?;
    let mut s = Relation::new(s_schema);
    s.insert_strs(&["twincities", "mughalai", "st_paul"])?;

    println!("R = two TwinCities restaurants (Chinese and Indian).");
    println!("S = one TwinCities restaurant specializing in Mughalai.\n");
    println!("Naive name matching cannot tell which R tuple the S tuple is.");

    // The DBA asserts: (name, cuisine) identifies restaurants in the
    // integrated world, and Mughalai food implies Indian cuisine.
    let key = ExtendedKey::of_strs(&["name", "cuisine"]);
    let ilfds: IlfdSet = vec![Ilfd::of_strs(
        &[("speciality", "mughalai")],
        &[("cuisine", "indian")],
    )]
    .into_iter()
    .collect();

    let outcome = EntityMatcher::new(r, s, MatchConfig::new(key, ilfds))?.run()?;
    outcome.verify()?; // uniqueness + consistency: the result is sound

    println!("\nMatching table ({} pair):", outcome.matching.len());
    for e in outcome.matching.entries() {
        println!("  R{} ≡ S{}", e.r_key, e.s_key);
    }
    println!(
        "\nNegative matching table ({} pair):",
        outcome.negative.len()
    );
    for e in outcome.negative.entries() {
        println!("  R{} ≢ S{}", e.r_key, e.s_key);
    }
    println!("\n{}", Partition::of(&outcome));
    assert!(outcome.is_complete());
    println!("\nEvery pair was decided — the identification is complete.");
    Ok(())
}
