//! Integrated billing across two carriers — the paper's introduction
//! motivates database integration with "integrated billing, as in the
//! case of U.S. West and AT&T". The local carrier knows lines by
//! phone number; the long-distance carrier by account number. No
//! common key exists, and customer names repeat across regions —
//! but exchange codes determine regions (an ILFD family), so the
//! extended key {customer, region} becomes usable.
//!
//! Run with `cargo run --example billing_integration`.

use entity_id::core::conflict::{unify, ConflictPolicy};
use entity_id::datagen::{generate_billing, BillingConfig};
use entity_id::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = generate_billing(&BillingConfig {
        n_lines: 80,
        n_customers: 35,
        ..BillingConfig::default()
    });
    println!(
        "Integrated world: {} subscriber lines, {} customers.",
        w.universe.len(),
        35
    );
    println!(
        "Local carrier bills {} lines (keyed by phone); long-distance bills {} (keyed by account).",
        w.local.len(),
        w.long_dist.len()
    );
    println!(
        "{} lines are billed by both — those are the pairs to find.\n",
        w.truth.len()
    );

    // The DBA asserts {customer, region} as the extended key and the
    // exchange → region family as ILFDs.
    println!("Extended key: {}", w.extended_key);
    println!("ILFDs supplied: {} (exchange → region)\n", w.ilfds.len());

    let outcome = EntityMatcher::new(
        w.local.clone(),
        w.long_dist.clone(),
        MatchConfig::new(w.extended_key.clone(), w.ilfds.clone()),
    )?
    .run()?;
    outcome.verify()?;

    let eval = Evaluation::compute(
        &w.truth,
        &outcome.matching,
        &outcome.negative,
        w.local.len() * w.long_dist.len(),
    );
    println!("matches declared: {}", outcome.matching.len());
    println!(
        "precision {:.3}, recall {:.3}, sound: {}",
        eval.match_precision(),
        eval.match_recall(),
        eval.is_sound()
    );
    assert!(eval.is_sound());
    assert_eq!(eval.match_recall(), 1.0);

    // Build the single consolidated billing relation.
    let unified = unify(&w.local, &w.long_dist, &outcome, ConflictPolicy::PreferR)?;
    println!(
        "\nconsolidated billing relation: {} rows ({} lines billed once, {} merged)",
        unified.relation.len(),
        unified.relation.len() - outcome.matching.len(),
        outcome.matching.len()
    );
    assert_eq!(
        unified.relation.len(),
        w.local.len() + w.long_dist.len() - outcome.matching.len()
    );
    println!("attribute-value conflicts: {}", unified.conflicts.len());

    // Show a merged line.
    let sample = unified
        .relation
        .iter()
        .find(|t| !t.get(0).is_null() && t.values().iter().all(|v| !v.is_null()))
        .or_else(|| unified.relation.iter().next())
        .expect("non-empty");
    println!("\nsample consolidated row:");
    for (attr, value) in unified
        .relation
        .schema()
        .attribute_names()
        .zip(sample.values())
    {
        println!("  {attr:<10} {value}");
    }
    Ok(())
}
