//! The paper's full Example 3 plus the §6.3 prototype session:
//! extended relations, matching table, integrated table, and the
//! extended-key soundness verification — reproducing the Prolog
//! transcript with the native engine.
//!
//! Run with `cargo run --example restaurant_integration`.

use entity_id::core::explain::explain_match;
use entity_id::core::matcher::MatchConfig;
use entity_id::core::session::Session;
use entity_id::datagen::restaurant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (r, s, _key, ilfds) = restaurant::example3();

    println!("=== Source relations (paper Table 5) ===\n");
    println!("{r}");
    println!("{s}");
    println!("=== Available ILFDs (I1–I8) ===\n{ilfds}");
    println!(
        "Derived ILFD I9 is implied by I7+I8: {}\n",
        restaurant::ilfd_i9()
    );

    let mut session = Session::new(r, s, ilfds);
    println!(
        "Candidate extended-key attributes: {:?}\n",
        session
            .candidate_attributes()
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
    );

    // First try the unsound key, as the transcript does.
    println!("| ?- setup_extkey.   % picking {{name}} only");
    let report = session.setup_extended_key(&["name"])?;
    println!("{}\n", report.message);
    assert!(!report.verified);

    // Now the good key.
    println!("| ?- setup_extkey.   % picking {{name, cuisine, speciality}}");
    let report = session.setup_extended_key(&["name", "cuisine", "speciality"])?;
    println!("{}\n", report.message);
    assert!(report.verified);

    println!("| ?- print_RRtable.\n{}", session.extended_r_display()?);
    println!("| ?- print_SStable.\n{}", session.extended_s_display()?);
    println!(
        "| ?- print_matchtable.\n{}",
        session.matching_table_display()?
    );
    println!(
        "| ?- print_integ_table.\n{}",
        session.integrated_table_display()?
    );

    let outcome = session.outcome().expect("setup ran");
    assert_eq!(outcome.matching.len(), 3, "Table 7 has three matches");
    println!(
        "Matching table has {} rows; negative matching table {} rows; {} undetermined pairs.",
        outcome.matching.len(),
        outcome.negative.len(),
        outcome.undetermined
    );

    // Why did It'sGreek match? Show the I7→I8 derivation chain.
    let (r2, s2, key2, ilfds2) = restaurant::example3();
    let config = MatchConfig::new(key2, ilfds2);
    let itsgreek_r = r2
        .iter()
        .position(|t| t.to_string().contains("itsgreek"))
        .unwrap();
    let itsgreek_s = s2
        .iter()
        .position(|t| t.to_string().contains("itsgreek"))
        .unwrap();
    let explanation = explain_match(
        &r2,
        &r2.tuples()[itsgreek_r],
        &s2,
        &s2.tuples()[itsgreek_s],
        &config,
    )?;
    println!("Why (itsgreek, greek) ≡ (itsgreek, gyros)?\n{explanation}");
    Ok(())
}
