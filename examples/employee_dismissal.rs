//! §4's motivating scenario: "a company wanting to dismiss employees
//! with sales performance below expectation requires matching between
//! the employee records in one database and their performance records
//! in another database. It is crucial that the set of matched records
//! be correct; otherwise, some people may be wrongly fired."
//!
//! This example pits the paper's sound ILFD technique against the
//! probabilistic-key baseline and counts who would be wrongly fired
//! under each.
//!
//! Run with `cargo run --example employee_dismissal`.

use entity_id::baselines::{run_technique, ProbabilisticKey};
use entity_id::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // HR database: employees keyed by (name, office).
    let hr_schema = Schema::of_strs("HR", &["name", "office", "division"], &["name", "office"])?;
    let mut hr = Relation::new(hr_schema);
    hr.insert_strs(&["john_smith", "mpls", "sensors"])?; // strong performer
    hr.insert_strs(&["john_smith", "st_paul", "controls"])?; // weak performer
    hr.insert_strs(&["mary_jones", "mpls", "sensors"])?;

    // Sales database: performance keyed by (name, region_code).
    let perf_schema = Schema::of_strs(
        "Perf",
        &["name", "region_code", "rating"],
        &["name", "region_code"],
    )?;
    let mut perf = Relation::new(perf_schema);
    perf.insert_strs(&["john_smith", "rc_7", "below"])?; // the St. Paul John
    perf.insert_strs(&["mary_jones", "rc_2", "above"])?;

    println!("Two John Smiths; only the St. Paul one underperformed.\n");

    // --- Baseline: probabilistic key equivalence on `name` ---------
    let prob = ProbabilisticKey::new(&["name"], 0.7, 0.2);
    let outcome = run_technique(&prob, &hr, &perf);
    println!(
        "probabilistic-key declares {} matches:",
        outcome.matching.len()
    );
    let mut wrongly_fired = 0;
    for e in outcome.matching.entries() {
        let below = perf
            .find_by_primary_key(&e.s_key)
            .map(|t| t.get(2) == &Value::str("below"))
            .unwrap_or(false);
        let is_st_paul = e.r_key.get(1) == &Value::str("st_paul");
        println!(
            "  HR{} ↔ Perf{}{}",
            e.r_key,
            e.s_key,
            if below && !is_st_paul {
                "   ← WRONGLY FIRED"
            } else {
                ""
            }
        );
        if below && !is_st_paul {
            wrongly_fired += 1;
        }
    }
    assert!(wrongly_fired > 0, "the baseline fires the wrong John");
    println!("→ {wrongly_fired} employee(s) would be wrongly fired.\n");

    // --- The paper's technique ------------------------------------
    // The DBAs assert: (name, office) identifies employees in the
    // integrated world, and region code rc_7 is the St. Paul office,
    // rc_2 Minneapolis (ILFDs on the performance records).
    let key = ExtendedKey::of_strs(&["name", "office"]);
    let ilfds: IlfdSet = vec![
        Ilfd::of_strs(&[("region_code", "rc_7")], &[("office", "st_paul")]),
        Ilfd::of_strs(&[("region_code", "rc_2")], &[("office", "mpls")]),
    ]
    .into_iter()
    .collect();
    let outcome =
        EntityMatcher::new(hr.clone(), perf.clone(), MatchConfig::new(key, ilfds))?.run()?;
    outcome.verify()?;

    println!(
        "ILFD technique declares {} matches:",
        outcome.matching.len()
    );
    for e in outcome.matching.entries() {
        println!("  HR{} ↔ Perf{}", e.r_key, e.s_key);
    }
    // Only the St. Paul John matches the "below" record.
    let below_matches: Vec<_> = outcome
        .matching
        .entries()
        .iter()
        .filter(|e| {
            perf.find_by_primary_key(&e.s_key)
                .map(|t| t.get(2) == &Value::str("below"))
                .unwrap_or(false)
        })
        .collect();
    assert_eq!(below_matches.len(), 1);
    assert_eq!(below_matches[0].r_key.get(1), &Value::str("st_paul"));
    println!("→ exactly the right employee is identified; nobody is wrongly fired.");
    Ok(())
}
