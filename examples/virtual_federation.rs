//! Virtual database integration (§1): the component databases stay
//! autonomous and queries against the integrated view perform entity
//! identification at query time, pushing selections down to the
//! components first — the federated-query processing the paper's
//! conclusion points to as ongoing work.
//!
//! Run with `cargo run --example virtual_federation`.

use entity_id::core::virtual_view::{Selection, VirtualView};
use entity_id::datagen::{generate, GeneratorConfig};
use entity_id::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = generate(&GeneratorConfig {
        n_entities: 500,
        overlap: 0.5,
        homonym_rate: 0.1,
        n_specialities: 20,
        n_cuisines: 6,
        ..GeneratorConfig::default()
    });
    println!(
        "Federation: R has {} tuples, S has {} tuples; components stay autonomous.",
        w.r.len(),
        w.s.len()
    );

    let view = VirtualView::new(
        w.r.clone(),
        w.s.clone(),
        MatchConfig::new(w.extended_key.clone(), w.ilfds.clone()),
    );

    // Query 1: selection on a base attribute of both sides — fully
    // pushed down, only the qualifying tuples are matched.
    let name = w.universe.tuples()[0].get(0).as_str().unwrap().to_string();
    let ans = view.select(&[Selection::eq("name", name.as_str())])?;
    println!(
        "\nσ(name = {name}): scanned {} R + {} S tuples (of {} + {}), {} result rows",
        ans.scanned_r,
        ans.scanned_s,
        w.r.len(),
        w.s.len(),
        ans.table.len()
    );
    assert!(ans.scanned_r < w.r.len() / 10);
    assert!(ans.scanned_s < w.s.len() / 10);

    // Query 2: selection on a *derived* attribute — S cannot be
    // pre-filtered (cuisine is ILFD-derived there), R can.
    let cuisine = w.universe.tuples()[0].get(1).as_str().unwrap().to_string();
    let ans = view.select(&[Selection::eq("cuisine", cuisine.as_str())])?;
    println!(
        "σ(cuisine = {cuisine}): scanned {} R + {} S tuples — S is unfiltered \
         because cuisine is derived there, R is pruned",
        ans.scanned_r, ans.scanned_s
    );
    assert!(ans.scanned_r < w.r.len());
    assert_eq!(ans.scanned_s, w.s.len());

    // Every answer equals materialize-then-filter (checked here for
    // query 1; the property suite randomizes this).
    let oracle = entity_id::core::virtual_view::filter_integrated(
        &view.materialize()?,
        &[Selection::eq("name", name.as_str())],
    )?;
    let fast = view.select(&[Selection::eq("name", name.as_str())])?;
    assert!(fast.table.relation().same_tuples(oracle.relation()));
    println!("\npushdown answers are identical to materialize-then-filter ✓");
    Ok(())
}
