//! Property tests for the rule-text parser: source round-trips and
//! robustness against arbitrary junk input.

use proptest::prelude::*;

use entity_id::ilfd::{Ilfd, IlfdSet, PropSymbol, SymbolSet};
use entity_id::relational::Value;
use entity_id::rules::parser::{ilfds_to_source, parse_rules};

fn arb_symbol() -> impl Strategy<Value = PropSymbol> {
    let attr = prop::sample::select(vec!["name", "cuisine", "speciality", "street", "county"]);
    let value = prop_oneof![
        "[a-z][a-z0-9_]{0,8}".prop_map(Value::str),
        (-1000i64..1000).prop_map(Value::Int),
    ];
    (attr, value).prop_map(|(a, v)| PropSymbol::new(a, v))
}

fn arb_ilfd() -> impl Strategy<Value = Ilfd> {
    (
        prop::collection::vec(arb_symbol(), 1..4),
        prop::collection::vec(arb_symbol(), 1..3),
    )
        .prop_map(|(a, c)| Ilfd::new(SymbolSet::from_symbols(a), SymbolSet::from_symbols(c)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `parse ∘ render` is the identity on ILFD sets.
    #[test]
    fn ilfd_source_round_trip(ilfds in prop::collection::vec(arb_ilfd(), 0..10)) {
        let set: IlfdSet = ilfds.into_iter().collect();
        let source = ilfds_to_source(&set);
        let parsed = parse_rules(&source).expect("rendered source parses");
        prop_assert_eq!(parsed.ilfds(), set);
    }

    /// The parser never panics on arbitrary input — it returns a
    /// positioned error or a parse.
    #[test]
    fn parser_total_on_junk(input in ".{0,200}") {
        let _ = parse_rules(&input);
    }

    /// Junk confined to one line reports that line number.
    #[test]
    fn error_line_numbers_are_accurate(good in 0..5usize) {
        let mut text = String::new();
        for _ in 0..good {
            text.push_str("a = 1 -> b = 2\n");
        }
        text.push_str("this is ! not a rule\n");
        let err = parse_rules(&text).expect_err("junk line must fail");
        prop_assert_eq!(err.line, good + 1);
    }
}
