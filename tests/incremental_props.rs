//! Property-based validation of incremental maintenance: any
//! interleaving of tuple insertions and ILFD additions leaves the
//! incremental matcher in exactly the state a from-scratch batch run
//! would produce, and never retracts a decision (§3.3 monotonicity).

use proptest::prelude::*;

use entity_id::core::incremental::{IncrementalMatcher, SideSel};
use entity_id::core::matcher::{EntityMatcher, MatchConfig};
use entity_id::core::stats::counter;
use entity_id::ilfd::{Ilfd, IlfdSet};
use entity_id::prelude::*;
use entity_id::relational::Schema;

/// The event alphabet for generated scripts.
#[derive(Debug, Clone)]
enum Event {
    InsertR {
        name: u8,
        cuisine: u8,
        street: u8,
    },
    InsertS {
        name: u8,
        speciality: u8,
        county: u8,
    },
    AddIlfd {
        speciality: u8,
    },
}

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0..6u8, 0..3u8, 0..16u8).prop_map(|(name, cuisine, street)| Event::InsertR {
            name,
            cuisine,
            street
        }),
        (0..6u8, 0..9u8, 0..16u8).prop_map(|(name, speciality, county)| Event::InsertS {
            name,
            speciality,
            county
        }),
        (0..9u8).prop_map(|speciality| Event::AddIlfd { speciality }),
    ]
}

/// speciality i maps to cuisine i % 3 — the ILFD family.
fn ilfd_for(speciality: u8) -> Ilfd {
    Ilfd::of_strs(
        &[("speciality", &format!("sp{speciality}"))],
        &[("cuisine", &format!("cu{}", speciality % 3))],
    )
}

fn schemas() -> (std::sync::Arc<Schema>, std::sync::Arc<Schema>) {
    (
        Schema::of_strs("R", &["name", "cuisine", "street"], &["name", "street"]).unwrap(),
        Schema::of_strs(
            "S",
            &["name", "speciality", "county"],
            &["name", "speciality", "county"],
        )
        .unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// After every event, incremental state == batch state.
    #[test]
    fn incremental_equals_batch_under_any_script(events in prop::collection::vec(arb_event(), 1..25)) {
        let (r_schema, s_schema) = schemas();
        let config = MatchConfig::new(
            ExtendedKey::of_strs(&["name", "cuisine"]),
            IlfdSet::new(),
        );
        let mut inc = IncrementalMatcher::new(
            Relation::new(r_schema),
            Relation::new(s_schema),
            config.clone(),
        ).unwrap();
        let mut known_ilfds = IlfdSet::new();
        let mut prev_matching = inc.matching().clone();
        let mut prev_negative = inc.negative().clone();

        for e in events {
            match e {
                Event::InsertR { name, cuisine, street } => {
                    // Ignore key violations — scripts may repeat keys.
                    let _ = inc.insert(SideSel::R, Tuple::of_strs(&[
                        &format!("n{name}"), &format!("cu{cuisine}"), &format!("st{street}"),
                    ]));
                }
                Event::InsertS { name, speciality, county } => {
                    let _ = inc.insert(SideSel::S, Tuple::of_strs(&[
                        &format!("n{name}"), &format!("sp{speciality}"), &format!("co{county}"),
                    ]));
                }
                Event::AddIlfd { speciality } => {
                    let ilfd = ilfd_for(speciality);
                    known_ilfds.insert(ilfd.clone());
                    inc.add_ilfd(ilfd).unwrap();
                }
            }
            // Monotonicity: nothing retracted — checked both
            // structurally and through the matcher's own §3.3
            // violation counter, which must never tick.
            prop_assert!(inc.matching().includes(&prev_matching));
            prop_assert!(inc.negative().includes(&prev_negative));
            prop_assert_eq!(
                inc.report().counter(counter::INCR_MONOTONICITY_VIOLATIONS),
                0,
                "monotonicity violation counter ticked"
            );
            prev_matching = inc.matching().clone();
            prev_negative = inc.negative().clone();

            // Batch equivalence.
            let (r, s) = inc.relations();
            let mut c = config.clone();
            c.ilfds = known_ilfds.clone();
            let batch = EntityMatcher::new(r.clone(), s.clone(), c).unwrap().run().unwrap();
            prop_assert!(
                inc.matching().includes(&batch.matching)
                    && batch.matching.includes(inc.matching()),
                "matching diverged: inc={} batch={}",
                inc.matching().len(), batch.matching.len()
            );
            prop_assert!(
                inc.negative().includes(&batch.negative)
                    && batch.negative.includes(inc.negative()),
                "negative diverged: inc={} batch={}",
                inc.negative().len(), batch.negative.len()
            );
            prop_assert_eq!(inc.undetermined(), batch.undetermined);
        }
    }
}

/// A deterministic long-script smoke test (faster to debug than the
/// proptest when something breaks).
#[test]
fn long_interleaved_script() {
    let (r_schema, s_schema) = schemas();
    let config = MatchConfig::new(ExtendedKey::of_strs(&["name", "cuisine"]), IlfdSet::new());
    let mut inc =
        IncrementalMatcher::new(Relation::new(r_schema), Relation::new(s_schema), config).unwrap();
    for i in 0..30u8 {
        let _ = inc.insert(
            SideSel::R,
            Tuple::of_strs(&[
                &format!("n{}", i % 6),
                &format!("cu{}", i % 3),
                &format!("st{i}"),
            ]),
        );
        let _ = inc.insert(
            SideSel::S,
            Tuple::of_strs(&[
                &format!("n{}", (i + 1) % 6),
                &format!("sp{}", i % 9),
                &format!("co{i}"),
            ]),
        );
        if i % 3 == 0 {
            inc.add_ilfd(ilfd_for(i % 9)).unwrap();
        }
    }
    // The state is internally consistent even if not verifiable
    // (generated homonyms may make the key unsound — that is what
    // verify() is for).
    let _ = inc.verify();
    assert!(inc.matching().len() + inc.negative().len() + inc.undetermined() > 0);

    // The lifetime report accounts for the script exactly: every
    // insert succeeded (both keys include a per-i unique attribute),
    // the ten add_ilfd calls collapse to the three distinct ILFDs
    // (sp ∈ {0,3,6} all map through i % 9), and §3.3 held throughout.
    let report = inc.report();
    assert_eq!(report.counter(counter::INCR_INSERTS), 60);
    assert_eq!(report.counter(counter::INCR_ILFDS_ADDED), 3);
    assert_eq!(report.counter(counter::INCR_MONOTONICITY_VIOLATIONS), 0);
    assert_eq!(
        report.counter(counter::INCR_PROMOTED),
        inc.matching().len() as u64,
        "every matching pair was promoted by exactly one event"
    );
}
