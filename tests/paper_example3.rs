//! Experiment E7 — the paper's Example 3 (Tables 5–7) end to end.

use entity_id::core::integrate::IntegratedTable;
use entity_id::datagen::restaurant;
use entity_id::prelude::*;
use entity_id::relational::AttrName;

fn run_example3() -> (Relation, Relation, ExtendedKey, MatchOutcome) {
    let (r, s, key, ilfds) = restaurant::example3();
    let outcome = EntityMatcher::new(r.clone(), s.clone(), MatchConfig::new(key.clone(), ilfds))
        .unwrap()
        .run()
        .unwrap();
    (r, s, key, outcome)
}

/// Table 6: the extended relations `R′` and `S′`, value for value.
#[test]
fn table_6_extended_relations() {
    let (_, _, _, outcome) = run_example3();
    let ext_r = &outcome.extended_r.relation;
    let spec = ext_r
        .schema()
        .position(&AttrName::new("speciality"))
        .unwrap();

    let expect_r = [
        ("twincities", "chinese", Some("hunan")),
        ("twincities", "indian", None),
        ("itsgreek", "greek", Some("gyros")),
        ("anjuman", "indian", Some("mughalai")),
        ("villagewok", "chinese", None),
    ];
    assert_eq!(ext_r.len(), expect_r.len());
    for (t, (name, cui, spec_v)) in ext_r.iter().zip(expect_r) {
        assert_eq!(t.get(0), &Value::str(name));
        assert_eq!(t.get(1), &Value::str(cui));
        match spec_v {
            Some(v) => assert_eq!(t.get(spec), &Value::str(v), "{name}"),
            None => assert!(t.get(spec).is_null(), "{name}"),
        }
    }

    let ext_s = &outcome.extended_s.relation;
    let cui = ext_s.schema().position(&AttrName::new("cuisine")).unwrap();
    let expect_s = [
        ("twincities", "hunan", "chinese"),
        ("twincities", "sichuan", "chinese"),
        ("itsgreek", "gyros", "greek"),
        ("anjuman", "mughalai", "indian"),
    ];
    assert_eq!(ext_s.len(), expect_s.len());
    for (t, (name, spec_v, cui_v)) in ext_s.iter().zip(expect_s) {
        assert_eq!(t.get(0), &Value::str(name));
        assert_eq!(t.get(1), &Value::str(spec_v));
        assert_eq!(t.get(cui), &Value::str(cui_v), "{name}");
    }
}

/// Table 7: the matching table, row for row.
#[test]
fn table_7_matching_table() {
    let (_, _, _, outcome) = run_example3();
    assert_eq!(outcome.matching.len(), 3);
    let expected = [
        (["twincities", "chinese"], ["twincities", "hunan"]),
        (["itsgreek", "greek"], ["itsgreek", "gyros"]),
        (["anjuman", "indian"], ["anjuman", "mughalai"]),
    ];
    for (rk, sk) in expected {
        assert!(
            outcome
                .matching
                .contains(&Tuple::of_strs(&rk), &Tuple::of_strs(&sk)),
            "missing {rk:?} ↔ {sk:?}"
        );
    }
    outcome.verify().expect("Table 7 is sound");
}

/// The derivation behind the match of It'sGreek needs the I7→I8
/// chain (the paper's derived ILFD I9); dropping I7 loses the match.
#[test]
fn dropping_i7_loses_the_itsgreek_match() {
    let (r, s, key, ilfds) = restaurant::example3();
    let without_i7: IlfdSet = ilfds
        .iter()
        .filter(|i| i.to_string() != "(street = front_ave) → (county = ramsey)")
        .cloned()
        .collect();
    assert_eq!(without_i7.len(), 7);
    let outcome = EntityMatcher::new(r, s, MatchConfig::new(key, without_i7))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(outcome.matching.len(), 2);
    assert!(!outcome.matching.contains(
        &Tuple::of_strs(&["itsgreek", "greek"]),
        &Tuple::of_strs(&["itsgreek", "gyros"])
    ));
}

/// The §6.3 integrated table: six rows with the exact NULL pattern.
#[test]
fn integrated_table_rows_match_prototype_output() {
    let (r, s, key, outcome) = run_example3();
    let t = IntegratedTable::build(&r, &s, &outcome, &key).unwrap();
    let rel = t.relation();
    assert_eq!(rel.len(), 6);

    // Expected rows keyed by (r_name, s_name); columns:
    // r_name r_cuisine r_speciality s_name s_cuisine s_speciality r_street s_county
    let header: Vec<String> = rel
        .schema()
        .attribute_names()
        .map(|a| a.to_string())
        .collect();
    assert_eq!(
        header,
        vec![
            "r_name",
            "r_cuisine",
            "r_speciality",
            "s_name",
            "s_cuisine",
            "s_speciality",
            "r_street",
            "s_county"
        ]
    );

    let render =
        |t: &Tuple| -> Vec<String> { t.values().iter().map(|v| v.render().into_owned()).collect() };
    let mut rows: Vec<Vec<String>> = rel.iter().map(render).collect();
    rows.sort();

    let mut expected: Vec<Vec<String>> = vec![
        // merged pairs
        vec![
            "anjuman",
            "indian",
            "mughalai",
            "anjuman",
            "indian",
            "mughalai",
            "le_salle_ave",
            "minneapolis",
        ],
        vec![
            "itsgreek",
            "greek",
            "gyros",
            "itsgreek",
            "greek",
            "gyros",
            "front_ave",
            "ramsey",
        ],
        vec![
            "twincities",
            "chinese",
            "hunan",
            "twincities",
            "chinese",
            "hunan",
            "co_b2",
            "roseville",
        ],
        // R-only
        vec![
            "twincities",
            "indian",
            "null",
            "null",
            "null",
            "null",
            "co_b3",
            "null",
        ],
        vec![
            "villagewok",
            "chinese",
            "null",
            "null",
            "null",
            "null",
            "wash_ave",
            "null",
        ],
        // S-only
        vec![
            "null",
            "null",
            "null",
            "twincities",
            "chinese",
            "sichuan",
            "null",
            "hennepin",
        ],
    ]
    .into_iter()
    .map(|r| r.into_iter().map(str::to_string).collect())
    .collect();
    expected.sort();

    assert_eq!(rows, expected);
}

/// Fixpoint derivation gives the same Example-3 result as the
/// Prolog-faithful first-match strategy.
#[test]
fn strategies_agree_on_example3() {
    let (r, s, key, ilfds) = restaurant::example3();
    let mut config = MatchConfig::new(key, ilfds);
    config.strategy = DerivationStrategy::Fixpoint;
    let fix = EntityMatcher::new(r.clone(), s.clone(), config)
        .unwrap()
        .run()
        .unwrap();
    let (_, _, _, first) = run_example3();
    assert!(fix.matching.includes(&first.matching));
    assert!(first.matching.includes(&fix.matching));
}
