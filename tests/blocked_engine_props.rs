//! Equivalence properties for the blocked matching engine: on
//! randomized generated worlds, [`JoinAlgorithm::Blocked`] (the
//! default), [`JoinAlgorithm::Hash`], and the exhaustive
//! [`JoinAlgorithm::NestedLoop`] oracle must produce identical
//! matching tables, negative matching tables, and undetermined
//! counts — for any thread count — and the incremental matcher must
//! still converge to the same state as a batch run under the new
//! default engine.

use std::cmp::Ordering;

use proptest::prelude::*;

use entity_id::datagen::{generate, GeneratorConfig};
use entity_id::prelude::*;
use entity_id::relational::{Columns, Interner, NULL_SYM};
use entity_id::rules::{IdentityRule, Predicate};

/// Values engineered for collisions: a tiny alphabet, numerically
/// equal `Int`/`Float` pairs, both zero signs, and NULLs.
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-3i64..3).prop_map(Value::int),
        (-6i32..6).prop_map(|n| Value::float(f64::from(n) / 2.0)),
        Just(Value::float(0.0)),
        Just(Value::float(-0.0)),
        prop::sample::select(vec!["a", "b", "chinese", "wash_ave"]).prop_map(Value::str),
    ]
}

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        10..60usize,  // n_entities
        0.0..1.0f64,  // overlap
        0.0..0.4f64,  // homonym_rate
        0.0..1.0f64,  // ilfd_coverage
        0.0..0.3f64,  // noise
        any::<u64>(), // seed
    )
        .prop_map(
            |(n, overlap, homonym, coverage, noise, seed)| GeneratorConfig {
                n_entities: n,
                overlap,
                homonym_rate: homonym,
                ilfd_coverage: coverage,
                noise,
                n_specialities: 16,
                n_cuisines: 6,
                seed,
            },
        )
}

fn run(w_r: &Relation, w_s: &Relation, config: &MatchConfig) -> MatchOutcome {
    EntityMatcher::new(w_r.clone(), w_s.clone(), config.clone())
        .unwrap()
        .run()
        .unwrap()
}

fn assert_same_tables(
    a: &MatchOutcome,
    b: &MatchOutcome,
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert!(a.matching.includes(&b.matching), "{label}: matching ⊉");
    prop_assert!(b.matching.includes(&a.matching), "{label}: matching ⊈");
    prop_assert!(a.negative.includes(&b.negative), "{label}: negative ⊉");
    prop_assert!(b.negative.includes(&a.negative), "{label}: negative ⊈");
    prop_assert_eq!(a.matching.len(), b.matching.len(), "{}: |MT|", label);
    prop_assert_eq!(a.negative.len(), b.negative.len(), "{}: |NMT|", label);
    prop_assert_eq!(a.undetermined, b.undetermined, "{}: undetermined", label);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The interner round-trips every value, and symbol equality is
    /// exactly `Value::compare == Equal` for non-NULL values — the
    /// contract that lets compiled `=`/`≠` predicates run as integer
    /// compares.
    #[test]
    fn interner_roundtrip_and_equality_contract(values in prop::collection::vec(arb_value(), 0..120)) {
        let mut interner = Interner::new();
        let syms: Vec<_> = values.iter().map(|v| interner.intern(v)).collect();
        for (v, &sym) in values.iter().zip(&syms) {
            if v.is_null() {
                prop_assert_eq!(sym, NULL_SYM);
                prop_assert!(interner.resolve(sym).is_null());
            } else {
                // Round-trip up to compare-equality (the canonical
                // representative may differ in float sign/type).
                prop_assert_eq!(
                    interner.resolve(sym).compare(v), Some(Ordering::Equal),
                    "{:?} resolved to {:?}", v, interner.resolve(sym));
                // Interning is idempotent on the representative.
                prop_assert_eq!(interner.clone().intern(interner.resolve(sym)), sym);
            }
        }
        for (v1, &s1) in values.iter().zip(&syms) {
            for (v2, &s2) in values.iter().zip(&syms) {
                if !v1.is_null() && !v2.is_null() {
                    prop_assert_eq!(
                        s1 == s2,
                        v1.compare(v2) == Some(Ordering::Equal),
                        "{:?} vs {:?}", v1, v2);
                }
            }
        }
    }

    /// The columnar encoding is cell-for-cell equivalent to the row
    /// relations it came from: NULL cells get `NULL_SYM`, every other
    /// cell resolves back compare-equal. (The three join arms consume
    /// the same generated worlds in the equivalence tests below, so
    /// this ties the columnar view to what they all match over.)
    #[test]
    fn columnar_view_agrees_with_rows(config in arb_config()) {
        let w = generate(&config);
        let mut interner = Interner::new();
        for rel in [&w.r, &w.s] {
            let cols = Columns::encode(rel, &mut interner);
            prop_assert_eq!(cols.rows(), rel.len());
            prop_assert_eq!(cols.arity(), rel.schema().arity());
            for (row, t) in rel.iter().enumerate() {
                for col in 0..cols.arity() {
                    let v = t.get(col);
                    let sym = cols.get(row, col);
                    prop_assert_eq!(sym, cols.col(col)[row]);
                    if v.is_null() {
                        prop_assert_eq!(sym, NULL_SYM);
                    } else {
                        prop_assert_eq!(
                            interner.resolve(sym).compare(v),
                            Some(Ordering::Equal));
                    }
                }
            }
        }
    }

    /// Blocked (default) and Hash agree with the nested-loop oracle
    /// on MT_RS, NMT_RS, and the undetermined count.
    #[test]
    fn blocked_equals_nested_loop_oracle(config in arb_config()) {
        let w = generate(&config);
        let base = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
        let mut oracle_cfg = base.clone();
        oracle_cfg.join = JoinAlgorithm::NestedLoop;
        let oracle = run(&w.r, &w.s, &oracle_cfg);
        for join in [JoinAlgorithm::Blocked, JoinAlgorithm::Hash] {
            let mut c = base.clone();
            c.join = join;
            let got = run(&w.r, &w.s, &c);
            assert_same_tables(&got, &oracle, &format!("{join:?} vs oracle"))?;
        }
    }

    /// The blocked engine's output is byte-identical for every
    /// thread count (serial, fixed pools of 2 and 7, auto): the
    /// planner's task list never depends on the worker count, only
    /// the concurrency of draining it does.
    #[test]
    fn blocked_is_thread_count_invariant(config in arb_config()) {
        let w = generate(&config);
        let base = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
        let mut serial_cfg = base.clone();
        serial_cfg.threads = 1;
        let serial = run(&w.r, &w.s, &serial_cfg);
        for threads in [0usize, 2, 7] {
            let mut c = base.clone();
            c.threads = threads;
            let got = run(&w.r, &w.s, &c);
            prop_assert_eq!(
                serial.matching.entries(), got.matching.entries(),
                "threads={}", threads);
            prop_assert_eq!(
                serial.negative.entries(), got.negative.entries(),
                "threads={}", threads);
        }
    }

    /// Extra identity rules route through the engine's identity
    /// plans (and the Hash path's extra-rules scan); both must agree
    /// with the oracle.
    #[test]
    fn extra_identity_rules_agree_with_oracle(config in arb_config()) {
        let w = generate(&config);
        let mut base = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
        base.extra_rules.add_identity(
            IdentityRule::new(
                "same-name-same-cuisine",
                vec![Predicate::cross_eq("name"), Predicate::cross_eq("cuisine")],
            )
            .unwrap(),
        );
        let mut oracle_cfg = base.clone();
        oracle_cfg.join = JoinAlgorithm::NestedLoop;
        let oracle = run(&w.r, &w.s, &oracle_cfg);
        for join in [JoinAlgorithm::Blocked, JoinAlgorithm::Hash] {
            let mut c = base.clone();
            c.join = join;
            let got = run(&w.r, &w.s, &c);
            assert_same_tables(&got, &oracle, &format!("{join:?} with extra rules"))?;
        }
    }

    /// Planner equivalence: plan shapes follow the hint, the
    /// planner-chosen Auto plan agrees byte-identically (after
    /// canonical ordering) with the Hash-hint plan and the
    /// NestedLoop oracle, and the degradation-ladder rewrites
    /// (serial twin, index-free twin) do not change the executed
    /// pair sets.
    #[test]
    fn planner_equivalence_and_rewrite_noops(config in arb_config()) {
        use entity_id::core::plan::{PlanNodeKind, ProbeStrategy};

        let w = generate(&config);
        let base = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());

        let canon_tables = |o: &MatchOutcome| {
            let canon = |t: &PairTable| {
                let mut v: Vec<String> = t
                    .entries()
                    .iter()
                    .map(|e| format!("{} <-> {}", e.r_key, e.s_key))
                    .collect();
                v.sort();
                v
            };
            (canon(&o.matching), canon(&o.negative))
        };

        // Plan shapes follow the hint: Auto probes the extended key,
        // the NestedLoop oracle scans everything.
        let auto_plan = EntityMatcher::new(w.r.clone(), w.s.clone(), base.clone())
            .unwrap()
            .plan()
            .unwrap();
        prop_assert!(auto_plan.probe_nodes().any(|n| matches!(
            &n.kind,
            PlanNodeKind::IdentityProbe { strategy: ProbeStrategy::Probe { .. }, .. }
        )));
        let mut nl_cfg = base.clone();
        nl_cfg.join = JoinAlgorithm::NestedLoop;
        let nl_plan = EntityMatcher::new(w.r.clone(), w.s.clone(), nl_cfg.clone())
            .unwrap()
            .plan()
            .unwrap();
        prop_assert!(nl_plan.probe_nodes().all(|n| matches!(
            &n.kind,
            PlanNodeKind::IdentityProbe { strategy: ProbeStrategy::Scan, .. }
                | PlanNodeKind::Refute { strategy: ProbeStrategy::Scan, .. }
        )));

        // The three arms produce byte-identical tables once
        // canonically ordered.
        let auto = run(&w.r, &w.s, &base);
        let golden = canon_tables(&auto);
        let mut hash_cfg = base.clone();
        hash_cfg.join = JoinAlgorithm::Hash;
        for (cfg, tag) in [(hash_cfg, "hash"), (nl_cfg, "nested_loop")] {
            let got = run(&w.r, &w.s, &cfg);
            prop_assert_eq!(&canon_tables(&got), &golden, "{} vs auto", tag);
            prop_assert_eq!(got.undetermined, auto.undetermined, "{}: undetermined", tag);
        }

        // Ladder rewrites are semantic no-ops on the executed pair
        // sets (rung 2 = serial twin, memory degradation = index-free
        // twin, rung 3 = both).
        let matcher = EntityMatcher::new(w.r.clone(), w.s.clone(), base).unwrap();
        let rb = matcher.rule_base().unwrap();
        let exec = Executor::new(
            &auto.extended_r.relation,
            &auto.extended_s.relation,
            &rb,
            2,
        );
        let plan = exec.plan(true, true, ArmHint::Auto);
        let guard = RunGuard::unlimited();
        let canon_pairs = |p: &EnginePairs| {
            let dedup_sort = |v: &[(u32, u32)]| {
                let mut v = v.to_vec();
                v.sort_unstable();
                v.dedup();
                v
            };
            (dedup_sort(&p.matching), dedup_sort(&p.negative))
        };
        let baseline = canon_pairs(&exec.execute(&plan, &guard).unwrap());
        for (tag, rewritten) in [
            ("serial", plan.rewrite_serial()),
            ("index-free", plan.rewrite_index_free()),
            ("nested", plan.rewrite_index_free().rewrite_serial()),
        ] {
            let got = canon_pairs(&exec.execute(&rewritten, &guard).unwrap());
            prop_assert_eq!(&got, &baseline, "rewrite {} changed the pair sets", tag);
        }
    }

    /// The incremental matcher (bulk refutation now runs through the
    /// blocked engine) still converges to the batch state under the
    /// default engine: seed it with the full relations, then check
    /// add_ilfd convergence from an empty knowledge base.
    #[test]
    fn incremental_matches_batch_under_default_engine(mut config in arb_config()) {
        config.n_entities = config.n_entities.min(25);
        let w = generate(&config);
        let base = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());

        let batch = run(&w.r, &w.s, &base);
        let inc = IncrementalMatcher::new(w.r.clone(), w.s.clone(), base.clone()).unwrap();
        prop_assert!(inc.matching().includes(&batch.matching));
        prop_assert!(batch.matching.includes(inc.matching()));
        prop_assert!(inc.negative().includes(&batch.negative));
        prop_assert!(batch.negative.includes(inc.negative()));

        // Growing knowledge: start with no ILFDs, add them one by
        // one; the final state must equal the batch run above.
        let mut empty_cfg = base.clone();
        empty_cfg.ilfds = IlfdSet::new();
        let mut grown =
            IncrementalMatcher::new(w.r.clone(), w.s.clone(), empty_cfg).unwrap();
        for ilfd in w.ilfds.iter() {
            grown.add_ilfd(ilfd.clone()).unwrap();
        }
        prop_assert!(grown.matching().includes(&batch.matching));
        prop_assert!(batch.matching.includes(grown.matching()));
        prop_assert!(grown.negative().includes(&batch.negative));
        prop_assert!(batch.negative.includes(grown.negative()));
    }
}
