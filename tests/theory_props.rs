//! Experiment E11 — property-based validation of the §5 formal
//! results: Armstrong's axioms for ILFDs (Lemma 1, Lemma 2,
//! Theorem 1), closure laws, Proposition 1, and Proposition 2.

use proptest::prelude::*;

use entity_id::ilfd::axioms::prove;
use entity_id::ilfd::closure::{
    equivalent, implies, minimal_cover, symbol_closure, symbol_closure_naive,
};
use entity_id::ilfd::horn::HornProgram;
use entity_id::ilfd::satisfaction::tuple_satisfies;
use entity_id::ilfd::{Ilfd, IlfdSet, PropSymbol, SymbolSet};
use entity_id::relational::{Relation, Schema, Tuple, Value};
use entity_id::rules::DistinctnessRule;

const ATTRS: [&str; 5] = ["a", "b", "c", "d", "e"];
const VALS: i64 = 3;

fn arb_symbol() -> impl Strategy<Value = PropSymbol> {
    (0..ATTRS.len(), 0..VALS).prop_map(|(a, v)| PropSymbol::new(ATTRS[a], Value::int(v)))
}

fn arb_symbol_set(max: usize) -> impl Strategy<Value = SymbolSet> {
    prop::collection::vec(arb_symbol(), 1..=max).prop_map(SymbolSet::from_symbols)
}

fn arb_ilfd() -> impl Strategy<Value = Ilfd> {
    (arb_symbol_set(2), arb_symbol())
        .prop_map(|(ante, cons)| Ilfd::new(ante, SymbolSet::from_symbols([cons])))
}

fn arb_ilfd_set() -> impl Strategy<Value = IlfdSet> {
    prop::collection::vec(arb_ilfd(), 0..8).prop_map(IlfdSet::from_iter_dedup)
}

/// All total assignments over the 5-attribute/3-value universe, as
/// tuples (3^5 = 243 of them) — enough to decide semantic entailment
/// by brute force.
fn all_tuples() -> (std::sync::Arc<Schema>, Vec<Tuple>) {
    let schema = Schema::of_strs("U", &ATTRS, &ATTRS).unwrap();
    let mut tuples = Vec::new();
    let n = ATTRS.len() as u32;
    for mut code in 0..(VALS as usize).pow(n) {
        let mut vals = Vec::with_capacity(ATTRS.len());
        for _ in 0..ATTRS.len() {
            vals.push(Value::int((code % VALS as usize) as i64));
            code /= VALS as usize;
        }
        tuples.push(Tuple::new(vals));
    }
    (schema, tuples)
}

/// Semantic entailment by brute force: every tuple satisfying all of
/// `f` satisfies `target`.
fn semantically_implies(f: &IlfdSet, target: &Ilfd) -> bool {
    let (schema, tuples) = all_tuples();
    tuples
        .iter()
        .filter(|t| f.iter().all(|i| tuple_satisfies(&schema, t, i)))
        .all(|t| tuple_satisfies(&schema, t, target))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The linear counter algorithm agrees with the textbook
    /// quadratic fixpoint on arbitrary inputs.
    #[test]
    fn counter_closure_equals_naive(x in arb_symbol_set(3), f in arb_ilfd_set()) {
        prop_assert_eq!(symbol_closure(&x, &f), symbol_closure_naive(&x, &f));
    }

    /// The Horn-program readings (forward chaining and SLD) agree
    /// with the symbol closure: three independent implementations of
    /// ILFD consequence.
    #[test]
    fn horn_engines_agree_with_closure(x in arb_symbol_set(3), f in arb_ilfd_set()) {
        let program = HornProgram::from_ilfds(&f);
        let closure = symbol_closure(&x, &f);
        prop_assert_eq!(program.forward_chain(&x), closure.clone());
        // SLD membership for every symbol mentioned anywhere.
        let universe: Vec<_> = f.iter()
            .flat_map(|i| i.antecedent().iter().chain(i.consequent().iter()).cloned())
            .chain(x.iter().cloned())
            .collect();
        for atom in universe {
            prop_assert_eq!(
                program.prove_goal(&atom, &x),
                closure.contains(&atom),
                "SLD diverged on {}", atom
            );
        }
    }

    /// Closure is extensive, monotone, and idempotent.
    #[test]
    fn closure_laws(x in arb_symbol_set(3), y in arb_symbol_set(3), f in arb_ilfd_set()) {
        let xp = symbol_closure(&x, &f);
        prop_assert!(x.is_subset(&xp), "extensive");
        let xyp = symbol_closure(&x.union_with(&y), &f);
        prop_assert!(xp.is_subset(&xyp), "monotone");
        let xpp = symbol_closure(&xp, &f);
        prop_assert_eq!(xp, xpp, "idempotent");
    }

    /// Theorem 1, soundness half: whatever `prove` derives is
    /// semantically entailed (checked by brute force over the value
    /// universe).
    #[test]
    fn axioms_are_sound(f in arb_ilfd_set(), target in arb_ilfd()) {
        if let Some(proof) = prove(&f, &target) {
            prop_assert_eq!(proof.conclusion(), target.clone());
            prop_assert!(semantically_implies(&f, &target),
                "proved but not semantically entailed: {} from {}", target, f);
        }
    }

    /// Theorem 1, completeness half for single-consequent targets:
    /// closure membership coincides with provability.
    #[test]
    fn prove_iff_implies(f in arb_ilfd_set(), target in arb_ilfd()) {
        prop_assert_eq!(implies(&f, &target), prove(&f, &target).is_some());
    }

    /// Minimal covers are logically equivalent to the original set
    /// and no larger.
    #[test]
    fn minimal_cover_equivalence(f in arb_ilfd_set()) {
        let m = minimal_cover(&f);
        prop_assert!(equivalent(&m, &f));
        // Each cover ILFD has a single consequent symbol.
        for i in m.iter() {
            prop_assert_eq!(i.consequent().len(), 1);
        }
    }

    /// Proposition 1: the distinctness rule generated from an ILFD
    /// never fires on a pair `(t, t)` of a tuple satisfying the ILFD
    /// — an entity cannot be distinct from itself.
    #[test]
    fn prop1_no_self_refutation(ilfd in arb_ilfd()) {
        let (schema, tuples) = all_tuples();
        let rules = DistinctnessRule::from_ilfd(&ilfd);
        for t in tuples.iter().filter(|t| tuple_satisfies(&schema, t, &ilfd)) {
            for rule in &rules {
                prop_assert!(
                    !rule.fires(&schema, t, &schema, t),
                    "rule {} fired on identical satisfying tuple {}", rule, t
                );
            }
        }
    }

    /// Proposition 1 round trip: from_ilfd ∘ to_ilfd is the identity
    /// for single-consequent ILFDs.
    #[test]
    fn prop1_round_trip(ilfd in arb_ilfd()) {
        let rules = DistinctnessRule::from_ilfd(&ilfd);
        prop_assert_eq!(rules.len(), 1);
        prop_assert_eq!(rules[0].to_ilfd(), Some(ilfd));
    }

    /// Proposition 2: when every lhs-combination in a relation is
    /// covered by a satisfied ILFD family, the corresponding FD holds.
    #[test]
    fn prop2_ilfd_family_implies_fd(rows in prop::collection::vec((0..3i64, 0..3i64), 1..12)) {
        use entity_id::ilfd::fd::{fd_from_ilfd_family, fd_holds_in, Fd};
        // Build R(a, b) where b = a + 1 (a function of a), so the
        // family {(a=v) → (b=v+1)} covers every combination.
        let schema = Schema::new(
            "R",
            vec![
                entity_id::relational::Attribute::int("a"),
                entity_id::relational::Attribute::int("b"),
            ],
            vec![],
        ).unwrap();
        let mut rel = Relation::new_unchecked(schema);
        for (a, _) in &rows {
            rel.insert(Tuple::new(vec![Value::int(*a), Value::int(a + 1)])).unwrap();
        }
        let family: IlfdSet = (0..3)
            .map(|v| Ilfd::new(
                SymbolSet::from_symbols([PropSymbol::new("a", Value::int(v))]),
                SymbolSet::from_symbols([PropSymbol::new("b", Value::int(v + 1))]),
            ))
            .collect();
        let fd = Fd::of_strs(&["a"], &["b"]);
        prop_assert!(fd_from_ilfd_family(&rel, &family, &fd));
        prop_assert!(fd_holds_in(&rel, &fd));
    }

    /// Theorem 1 against an independent model-theoretic oracle, in
    /// the logic the paper actually uses: symbols are *independent
    /// propositions* (§5: each boolean condition "can be treated as a
    /// propositional symbol"). `implies` must coincide exactly with
    /// brute-force entailment over all propositional truth
    /// assignments.
    ///
    /// Note the subtlety this suite originally tripped over: *tuple*
    /// models (one value per attribute) entail strictly more than
    /// propositional models, because `(A=a₁)` and `(A=a₂)` are
    /// mutually exclusive and the domain is closed — e.g. from
    /// `{(a=0)→(a=1), (a=1)→(a=2)}` every 3-valued tuple model
    /// satisfies `a=2`, so `(b=0)→(a=2)` holds in all tuple models
    /// but is not Armstrong-derivable. The paper's completeness proof
    /// constructs a propositional model, so that is the right oracle;
    /// `axioms_are_sound` separately checks soundness against the
    /// stronger tuple semantics.
    #[test]
    fn implies_matches_propositional_semantics(f in arb_ilfd_set(), target in arb_ilfd()) {
        let universe: Vec<PropSymbol> = f.iter()
            .flat_map(|i| i.antecedent().iter().chain(i.consequent().iter()).cloned())
            .chain(target.antecedent().iter().cloned())
            .chain(target.consequent().iter().cloned())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        prop_assume!(universe.len() <= 16);
        let holds = |assignment: u32, set: &SymbolSet| -> bool {
            set.iter().all(|s| {
                let i = universe.iter().position(|u| u == s).unwrap();
                assignment & (1 << i) != 0
            })
        };
        let mut semantic = true;
        for assignment in 0u32..(1 << universe.len()) {
            let model_of_f = f.iter().all(|i| {
                !holds(assignment, i.antecedent()) || holds(assignment, i.consequent())
            });
            if model_of_f
                && holds(assignment, target.antecedent())
                && !holds(assignment, target.consequent())
            {
                semantic = false;
                break;
            }
        }
        prop_assert_eq!(
            implies(&f, &target), semantic,
            "Theorem 1 violated for {} from {}", target, f
        );
    }
}

/// The exact case the property suite discovered (see
/// `implies_matches_propositional_semantics`): tuple models entail
/// `(b=0) → (a=2)` from a chain that forces `a=2` in every 3-valued
/// tuple, but the ILFD proof theory (propositional) rightly does not.
#[test]
fn tuple_models_entail_more_than_propositional_models() {
    let f: IlfdSet = vec![
        Ilfd::new(
            SymbolSet::from_symbols([PropSymbol::new("a", Value::int(1))]),
            SymbolSet::from_symbols([PropSymbol::new("a", Value::int(2))]),
        ),
        Ilfd::new(
            SymbolSet::from_symbols([PropSymbol::new("a", Value::int(0))]),
            SymbolSet::from_symbols([PropSymbol::new("a", Value::int(1))]),
        ),
    ]
    .into_iter()
    .collect();
    let target = Ilfd::new(
        SymbolSet::from_symbols([PropSymbol::new("b", Value::int(0))]),
        SymbolSet::from_symbols([PropSymbol::new("a", Value::int(2))]),
    );
    // Holds in every total 3-valued tuple model…
    assert!(semantically_implies(&f, &target));
    // …but is not Armstrong-derivable (correctly, per Theorem 1's
    // propositional semantics).
    assert!(!implies(&f, &target));
    assert!(prove(&f, &target).is_none());
}
