//! End-to-end orchestration (`IntegrationJob`) and match provenance
//! (`explain_match`) across paper and synthetic workloads.

use entity_id::core::explain::{explain_match, Support};
use entity_id::core::job::IntegrationJob;
use entity_id::datagen::{generate, restaurant, GeneratorConfig};
use entity_id::prelude::*;

#[test]
fn job_on_example3_is_verified_and_complete_artifacts() {
    let (r, s, key, ilfds) = restaurant::example3();
    let report = IntegrationJob::new(MatchConfig::new(key, ilfds))
        .run(&r, &s)
        .unwrap();
    assert!(report.knowledge.is_clean());
    assert!(report.verification.is_none());
    assert_eq!(report.partition.matching, 3);
    assert_eq!(report.integrated.len(), 6);
    assert_eq!(report.unified.relation.len(), 6);
    assert!(report.unified.conflicts.is_empty());
    assert!(report.is_healthy());
    assert!(report.to_string().contains("healthy: true"));
}

#[test]
fn job_on_generated_workloads_is_healthy_without_noise() {
    for seed in [5, 6, 7] {
        let w = generate(&GeneratorConfig {
            n_entities: 60,
            noise: 0.0,
            homonym_rate: 0.2,
            seed,
            ..GeneratorConfig::default()
        });
        let report = IntegrationJob::new(MatchConfig::new(w.extended_key.clone(), w.ilfds.clone()))
            .run(&w.r, &w.s)
            .unwrap();
        assert!(report.is_healthy(), "seed {seed}: {report}");
        // Row accounting holds.
        assert_eq!(
            report.unified.relation.len(),
            w.r.len() + w.s.len() - report.partition.matching
        );
    }
}

#[test]
fn job_reports_noise_as_conflicts_not_failures() {
    let w = generate(&GeneratorConfig {
        n_entities: 80,
        noise: 0.4,
        seed: 9,
        ..GeneratorConfig::default()
    });
    let report = IntegrationJob::new(MatchConfig::new(w.extended_key.clone(), w.ilfds.clone()))
        .run(&w.r, &w.s)
        .unwrap();
    // Matching is still verified sound; the noise shows up as
    // attribute-value conflicts on the shared city column.
    assert!(report.verification.is_none());
    assert!(!report.unified.conflicts.is_empty());
    assert!(!report.is_healthy());
}

#[test]
fn every_example3_match_is_explainable() {
    let (r, s, key, ilfds) = restaurant::example3();
    let config = MatchConfig::new(key, ilfds);
    let outcome = EntityMatcher::new(r.clone(), s.clone(), config.clone())
        .unwrap()
        .run()
        .unwrap();
    for entry in outcome.matching.entries() {
        let rt = r
            .iter()
            .find(|t| r.primary_key_of(t) == entry.r_key)
            .unwrap();
        let st = s
            .iter()
            .find(|t| s.primary_key_of(t) == entry.s_key)
            .unwrap();
        let explanation = explain_match(&r, rt, &s, st, &config)
            .unwrap_or_else(|e| panic!("unexplainable match {entry:?}: {e}"));
        assert_eq!(explanation.attributes.len(), 3);
        // Every attribute agrees and has support on both sides.
        for a in &explanation.attributes {
            assert!(!a.value.is_null());
        }
    }
}

#[test]
fn explanations_on_generated_matches_always_succeed() {
    let w = generate(&GeneratorConfig {
        n_entities: 40,
        seed: 31,
        ..GeneratorConfig::default()
    });
    let config = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
    let outcome = EntityMatcher::new(w.r.clone(), w.s.clone(), config.clone())
        .unwrap()
        .run()
        .unwrap();
    assert!(!outcome.matching.is_empty());
    let mut derived_seen = false;
    for entry in outcome.matching.entries() {
        let rt =
            w.r.iter()
                .find(|t| w.r.primary_key_of(t) == entry.r_key)
                .unwrap();
        let st =
            w.s.iter()
                .find(|t| w.s.primary_key_of(t) == entry.s_key)
                .unwrap();
        let explanation = explain_match(&w.r, rt, &w.s, st, &config).unwrap();
        for a in &explanation.attributes {
            if matches!(a.s_support, Support::Derived(_)) {
                derived_seen = true;
            }
        }
    }
    // S derives cuisine via the ILFD family, so some derivation must
    // appear among the explanations.
    assert!(derived_seen);
}
