//! Invariant properties of the execution timeline attached to
//! [`MatchOutcome::trace`]: every worker's slice stream must be
//! balanced (begin/end nest like a stack) and chronological, the
//! slice population must reconcile with the engine's task and kernel
//! counters, and — above all — tracing must be a pure observer:
//! the traced run classifies every pair exactly as the untraced one.

use proptest::prelude::*;

use entity_id::core::stats::counter;
use entity_id::datagen::{generate, GeneratorConfig};
use entity_id::obs::{Trace, TracePhase};
use entity_id::prelude::*;

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        10..60usize,  // n_entities
        0.0..1.0f64,  // overlap
        0.0..0.4f64,  // homonym_rate
        0.0..1.0f64,  // ilfd_coverage
        0.0..0.3f64,  // noise
        any::<u64>(), // seed
    )
        .prop_map(
            |(n, overlap, homonym, coverage, noise, seed)| GeneratorConfig {
                n_entities: n,
                overlap,
                homonym_rate: homonym,
                ilfd_coverage: coverage,
                noise,
                n_specialities: 16,
                n_cuisines: 6,
                seed,
            },
        )
}

fn run_with_trace(w_r: &Relation, w_s: &Relation, config: &MatchConfig) -> MatchOutcome {
    let mut config = config.clone();
    config.trace = true;
    EntityMatcher::new(w_r.clone(), w_s.clone(), config)
        .unwrap()
        .run()
        .unwrap()
}

/// The task-level begin events — the outermost slice of each engine
/// task, excluding the nested kernel-tile slices.
fn task_begins(trace: &Trace) -> Vec<&entity_id::obs::TraceEvent> {
    trace
        .events
        .iter()
        .filter(|e| e.phase == TracePhase::Begin && &*e.name != "kernel/tile")
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On arbitrary worlds the captured timeline is well-formed and
    /// reconciles with the run's counters.
    #[test]
    fn traces_are_balanced_chronological_and_reconcile(config in arb_config()) {
        let w = generate(&config);
        let c = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
        let outcome = run_with_trace(&w.r, &w.s, &c);
        let trace = outcome.trace.as_ref().expect("traced blocked run yields a timeline");
        let s = &outcome.stats;

        // Begin/end events nest like a stack on every worker track,
        // and each worker's stream is chronological.
        prop_assert!(trace.balanced(), "unbalanced begin/end");
        prop_assert!(trace.timestamps_monotonic(), "worker stream not chronological");

        // One outermost slice per engine task, with distinct task ids.
        let begins = task_begins(trace);
        let tasks = s.counter(counter::ENGINE_TASKS);
        prop_assert_eq!(begins.len() as u64, tasks, "one slice per task");
        let mut ids: Vec<u32> = begins.iter().map(|e| e.task).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len() as u64, tasks, "task ids collide");

        // Every slice's worker track exists: ids below the recorded
        // worker count (serial runs put everything on track 0).
        let workers = s.counter(counter::ENGINE_WORKERS);
        prop_assert!(
            trace.events.iter().all(|e| u64::from(e.worker) < workers),
            "slice on an unknown worker track"
        );

        // Task-level batch annotations reconcile with the kernel
        // tally: tasks carry only the probe/scan batches, while the
        // kernel/batches counter also counts the build-phase kernels,
        // so the slice sum is a lower bound.
        let slice_batches: u64 = begins.iter().map(|e| e.batches).sum();
        prop_assert!(
            slice_batches <= s.counter(counter::KERNEL_BATCHES),
            "slices claim more batches ({slice_batches}) than the kernels ran"
        );

        // Boundedness is observable, not silent: the dropped count in
        // the trace is the dropped count in the report.
        prop_assert_eq!(trace.dropped, s.counter(counter::TRACE_DROPPED));

        // The serializer emits loadable Chrome trace_event JSON: the
        // envelope, one thread_name metadata record per worker track,
        // and every event as a B/E record.
        let json = trace.to_chrome_json();
        prop_assert!(json.starts_with("{\"traceEvents\":["));
        prop_assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        let tracks: std::collections::BTreeSet<u32> =
            trace.events.iter().map(|e| e.worker).collect();
        prop_assert_eq!(
            json.matches("\"thread_name\"").count(),
            tracks.len(),
            "one thread_name record per worker track"
        );
        prop_assert_eq!(
            json.matches("\"ph\":\"B\"").count() + json.matches("\"ph\":\"E\"").count(),
            trace.events.len(),
            "every event serialized"
        );
    }

    /// Tracing is an observer, never a participant: the traced run
    /// and the untraced run classify identically, and only the traced
    /// one carries a timeline.
    #[test]
    fn tracing_does_not_change_classification(mut config in arb_config()) {
        config.n_entities = config.n_entities.min(30);
        let w = generate(&config);
        let c = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
        let plain = EntityMatcher::new(w.r.clone(), w.s.clone(), c.clone())
            .unwrap()
            .run()
            .unwrap();
        prop_assert!(plain.trace.is_none(), "untraced run grew a timeline");
        let traced = run_with_trace(&w.r, &w.s, &c);
        for name in [
            counter::CLASSIFY_MT,
            counter::CLASSIFY_NMT,
            counter::CLASSIFY_OVERLAP,
            counter::CLASSIFY_UNDETERMINED,
            counter::BLOCK_CANDIDATES,
            counter::BLOCK_ACCEPTED,
        ] {
            prop_assert_eq!(
                traced.stats.counter(name),
                plain.stats.counter(name),
                "tracing changed {}",
                name
            );
        }
    }
}

/// Deterministic spot check: a parallel run spreads slices across
/// more than one worker track, and every executed plan node appears
/// as a slice name at least once.
#[test]
fn parallel_trace_covers_workers_and_plan_nodes() {
    let config = GeneratorConfig {
        n_entities: 400,
        overlap: 0.5,
        homonym_rate: 0.1,
        ilfd_coverage: 0.8,
        noise: 0.1,
        n_specialities: 16,
        n_cuisines: 6,
        seed: 7,
    };
    let w = generate(&config);
    let mut c = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
    c.threads = 2;
    c.trace = true;
    let matcher = EntityMatcher::new(w.r.clone(), w.s.clone(), c).unwrap();
    let outcome = matcher.run().unwrap();
    let trace = outcome.trace.as_ref().expect("trace captured");
    let plan = matcher.plan().unwrap();

    let tracks: std::collections::BTreeSet<u32> = trace.events.iter().map(|e| e.worker).collect();
    assert!(
        tracks.len() >= 2,
        "expected ≥ 2 worker tracks, got {tracks:?}"
    );

    // Node ids riding the events join back to the plan: every
    // executed node (tasks counter > 0) has at least one slice, and
    // the slice carries that node's span as its name.
    let node_events: std::collections::BTreeMap<u32, &str> = trace
        .events
        .iter()
        .filter(|e| e.phase == TracePhase::Begin && &*e.name != "kernel/tile")
        .map(|e| (e.node, &*e.name))
        .collect();
    for node in plan.nodes.iter() {
        let tasks = outcome
            .stats
            .counter(&entity_id::core::stats::node_counter(node.id, "tasks"));
        if tasks == 0 {
            continue;
        }
        let name = node_events
            .get(&(node.id as u32))
            .unwrap_or_else(|| panic!("executed node {} has no slice", node.id));
        assert_eq!(*name, node.span, "slice name is the node's span");
    }
}
