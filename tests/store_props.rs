//! Dataset-store round-trip properties: encoding a world, writing it
//! to a `.eids` directory, and reopening it must classify *exactly*
//! like the in-memory path — at every thread count and emission mode
//! — and any injected store-I/O fault must surface as a typed
//! [`CoreError::Store`], never a panic and never a half-written
//! dataset left on disk.
//!
//! The fault plan is process-global; tests that arm one serialize on
//! a mutex and clear it before returning.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use entity_id::core::error::CoreError;
use entity_id::core::matcher::{EntityMatcher, MatchConfig, MatchOutcome};
use entity_id::core::plan::{EmitHint, StatsSource};
use entity_id::core::store::Dataset;
use entity_id::datagen::{generate, GeneratorConfig, Workload};
use entity_id::ilfd::Strategy as DerivationStrategy;

static FAULT_LOCK: Mutex<()> = Mutex::new(());
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fresh scratch directory; proptest reruns share a process, so a
/// sequence number keeps concurrently-live cases apart.
fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "eid-store-props-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        10..80usize,  // n_entities
        0.0..1.0f64,  // overlap
        0.0..0.4f64,  // homonym_rate
        0.0..1.0f64,  // ilfd_coverage
        0.0..0.3f64,  // noise
        any::<u64>(), // seed
    )
        .prop_map(
            |(n, overlap, homonym, coverage, noise, seed)| GeneratorConfig {
                n_entities: n,
                overlap,
                homonym_rate: homonym,
                ilfd_coverage: coverage,
                noise,
                n_specialities: 16,
                n_cuisines: 6,
                seed,
            },
        )
}

fn oracle(w: &Workload) -> MatchOutcome {
    let mut config = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
    config.threads = 1;
    config.emit = EmitHint::Buffered;
    EntityMatcher::new(w.r.clone(), w.s.clone(), config)
        .expect("construct matcher")
        .run()
        .expect("successful run")
}

fn encode(w: &Workload) -> Dataset {
    Dataset::encode(
        "w",
        w.r.clone(),
        w.s.clone(),
        w.extended_key.clone(),
        w.ilfds.clone(),
        DerivationStrategy::FirstMatch,
    )
    .expect("encode dataset")
}

/// Same decision *sets* and counts (streamed/spilled emission decode
/// in row order, so entry order is not compared).
fn assert_same_table_sets(
    a: &MatchOutcome,
    b: &MatchOutcome,
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert!(a.matching.includes(&b.matching), "{label}: matching ⊉");
    prop_assert!(b.matching.includes(&a.matching), "{label}: matching ⊈");
    prop_assert!(a.negative.includes(&b.negative), "{label}: negative ⊉");
    prop_assert!(b.negative.includes(&a.negative), "{label}: negative ⊈");
    prop_assert_eq!(a.matching.len(), b.matching.len(), "{}: |MT|", label);
    prop_assert_eq!(a.negative.len(), b.negative.len(), "{}: |NMT|", label);
    prop_assert_eq!(a.undetermined, b.undetermined, "{}: undetermined", label);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On ANY generated world, the encoded backend AND the reopened
    /// on-disk backend classify identically to the in-memory path at
    /// thread counts 1, 2, and 7 under every emission mode — the
    /// store is a representation change, never a semantic one. The
    /// reopened dataset plans from *persisted* statistics, the fresh
    /// encode from computed ones.
    #[test]
    fn reopened_store_matches_in_memory_everywhere(config in arb_config()) {
        let w = generate(&config);
        let want = oracle(&w);

        let encoded = Arc::new(encode(&w));
        let parent = tmp("roundtrip");
        let dir = parent.join("w.eids");
        encoded.write(&dir).unwrap();
        let opened = Arc::new(Dataset::open(&dir).unwrap());
        prop_assert!(opened.persisted());
        prop_assert!(!encoded.persisted());

        for threads in [1usize, 2, 7] {
            for emit in [EmitHint::Buffered, EmitHint::Streamed, EmitHint::Spilled] {
                for (label, ds) in [("encoded", &encoded), ("opened", &opened)] {
                    let mut cfg = ds.match_config();
                    cfg.threads = threads;
                    cfg.emit = emit;
                    let got = EntityMatcher::from_dataset(Arc::clone(ds), cfg)
                        .unwrap()
                        .run()
                        .unwrap();
                    assert_same_table_sets(
                        &want,
                        &got,
                        &format!("{label} t={threads} emit={emit:?}"),
                    )?;
                }
            }
        }

        let plan = EntityMatcher::from_dataset(Arc::clone(&opened), opened.match_config())
            .unwrap()
            .plan()
            .unwrap();
        prop_assert_eq!(plan.stats_source, StatsSource::Persisted);
        let plan = EntityMatcher::from_dataset(Arc::clone(&encoded), encoded.match_config())
            .unwrap()
            .plan()
            .unwrap();
        prop_assert_eq!(plan.stats_source, StatsSource::Computed);

        let _ = std::fs::remove_dir_all(&parent);
    }

    /// ANY `store/read` fault schedule during open: the open either
    /// succeeds — and then matches the in-memory oracle exactly — or
    /// fails with a typed [`CoreError::Store`]. No trigger count may
    /// leak a panic or an undetected partial load.
    #[test]
    fn any_store_read_fault_is_typed_or_exact(
        n in 10..40usize,
        world_seed in any::<u64>(),
        k in 1..60u64,
        fault_seed in any::<u64>(),
    ) {
        let _l = lock();
        let w = generate(&GeneratorConfig {
            n_entities: n,
            overlap: 0.5,
            homonym_rate: 0.1,
            ilfd_coverage: 1.0,
            noise: 0.0,
            n_specialities: 16,
            n_cuisines: 6,
            seed: world_seed,
        });
        let parent = tmp("readfault");
        let dir = parent.join("w.eids");
        encode(&w).write(&dir).unwrap();

        eid_fault::install(&format!("store/read@{k}"), fault_seed).unwrap();
        let opened = Dataset::open(&dir);
        eid_fault::clear();

        match opened {
            Ok(ds) => {
                // The schedule never fired within the open's read
                // count — the dataset must be complete and exact.
                let got = EntityMatcher::from_dataset(Arc::new(ds), {
                    let mut cfg = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
                    cfg.threads = 1;
                    cfg
                })
                .unwrap()
                .run()
                .unwrap();
                assert_same_table_sets(&oracle(&w), &got, &format!("read@{k} survived"))?;
            }
            Err(CoreError::Store { .. }) => {}
            Err(other) => prop_assert!(false, "untyped failure: {other}"),
        }
        let _ = std::fs::remove_dir_all(&parent);
    }
}

/// `store/open` and `store/write` faults are typed, and a failed
/// write adopts its temp directory — nothing leaks next to the
/// destination, and the destination itself never appears.
#[test]
fn open_and_write_faults_are_typed_and_leak_nothing() {
    let _l = lock();
    let w = generate(&GeneratorConfig {
        n_entities: 20,
        overlap: 0.5,
        homonym_rate: 0.1,
        ilfd_coverage: 1.0,
        noise: 0.0,
        n_specialities: 16,
        n_cuisines: 6,
        seed: 3,
    });
    let ds = encode(&w);
    let parent = tmp("openwrite");
    let dir = parent.join("w.eids");

    eid_fault::install("store/write@1", 0).unwrap();
    let err = ds.write(&dir).unwrap_err();
    eid_fault::clear();
    assert!(matches!(err, CoreError::Store { .. }), "{err}");
    assert!(!dir.exists(), "failed write left the destination behind");
    assert!(
        !parent.join("w.eids.tmp").exists(),
        "failed write leaked its temp directory"
    );

    // A clean write after the fault proves the path is reusable…
    ds.write(&dir).unwrap();
    // …and an open fault on the intact store is typed too.
    eid_fault::install("store/open@1", 0).unwrap();
    let err = Dataset::open(&dir).unwrap_err();
    eid_fault::clear();
    assert!(matches!(err, CoreError::Store { .. }), "{err}");

    let _ = std::fs::remove_dir_all(&parent);
}
