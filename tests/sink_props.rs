//! Streaming pair-sink properties: the streamed emission path (workers
//! push refuted pairs straight into row-range bitset shards, merged
//! after the scope) must classify *identically* to the buffered `Vec`
//! path at every thread count, its plan must carry a [`Sink`] node
//! that every degradation rewrite lowers back to buffered, and an
//! abort or injected fault mid-stream must surface as a typed error
//! with coherent partial stats — never a panic, never a wrong table.
//!
//! The fault plan is process-global; tests that arm one serialize on
//! a mutex and clear it before returning.
//!
//! [`Sink`]: entity_id::core::plan::PlanNodeKind::Sink

use std::sync::Mutex;

use proptest::prelude::*;

use entity_id::core::error::CoreError;
use entity_id::core::matcher::{EntityMatcher, MatchConfig, MatchOutcome};
use entity_id::core::plan::{EmitHint, EmitMode, PlanNodeKind};
use entity_id::core::runtime::{AbortReason, RunBudget};
use entity_id::core::stats::counter;
use entity_id::datagen::{generate, GeneratorConfig, Workload};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        10..80usize,  // n_entities
        0.0..1.0f64,  // overlap
        0.0..0.4f64,  // homonym_rate
        0.0..1.0f64,  // ilfd_coverage
        0.0..0.3f64,  // noise
        any::<u64>(), // seed
    )
        .prop_map(
            |(n, overlap, homonym, coverage, noise, seed)| GeneratorConfig {
                n_entities: n,
                overlap,
                homonym_rate: homonym,
                ilfd_coverage: coverage,
                noise,
                n_specialities: 16,
                n_cuisines: 6,
                seed,
            },
        )
}

fn world(n: usize, seed: u64) -> (Workload, MatchConfig) {
    let w = generate(&GeneratorConfig {
        n_entities: n,
        overlap: 0.5,
        homonym_rate: 0.1,
        ilfd_coverage: 1.0,
        noise: 0.0,
        n_specialities: 32,
        n_cuisines: 10,
        seed,
    });
    let config = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
    (w, config)
}

fn run(w: &Workload, config: MatchConfig) -> MatchOutcome {
    EntityMatcher::new(w.r.clone(), w.s.clone(), config)
        .expect("construct matcher")
        .run()
        .expect("successful run")
}

/// Same decision *sets* and counts. The streamed path decodes its
/// merged bitset in ascending row order while the buffered path
/// keeps first-occurrence order, so entry order is not compared.
fn assert_same_table_sets(
    a: &MatchOutcome,
    b: &MatchOutcome,
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert!(a.matching.includes(&b.matching), "{label}: matching ⊉");
    prop_assert!(b.matching.includes(&a.matching), "{label}: matching ⊈");
    prop_assert!(a.negative.includes(&b.negative), "{label}: negative ⊉");
    prop_assert!(b.negative.includes(&a.negative), "{label}: negative ⊈");
    prop_assert_eq!(a.matching.len(), b.matching.len(), "{}: |MT|", label);
    prop_assert_eq!(a.negative.len(), b.negative.len(), "{}: |NMT|", label);
    prop_assert_eq!(a.undetermined, b.undetermined, "{}: undetermined", label);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On ANY generated world, forcing streamed emission classifies
    /// identically to the buffered path at thread counts 1, 2, and 7
    /// — streaming is an execution detail, never a semantic one.
    #[test]
    fn streamed_equals_buffered_at_any_thread_count(config in arb_config()) {
        let w = generate(&config);
        let base = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());

        let mut buffered = base.clone();
        buffered.threads = 1;
        buffered.emit = EmitHint::Buffered;
        let oracle = run(&w, buffered);

        for threads in [1usize, 2, 7] {
            let mut streamed = base.clone();
            streamed.threads = threads;
            streamed.emit = EmitHint::Streamed;
            let got = run(&w, streamed);
            assert_same_table_sets(&oracle, &got, &format!("streamed t={threads}"))?;
            // When anything was refuted, the sink counters prove the
            // streamed path actually engaged (shards allocate lazily,
            // so an all-positive world may legitimately record none).
            if !oracle.negative.is_empty() {
                prop_assert!(
                    got.stats.counter(counter::SINK_SHARDS) >= 1,
                    "t={}: no sink shards recorded", threads
                );
            }
        }
    }

    /// A pair budget under streamed emission is exact-or-typed: the
    /// run either completes with the fault-free decisions or returns
    /// a typed abort whose partial stats are coherent — including
    /// mid-stream trips, where refuted pairs already pushed into
    /// sink shards must be accounted in `partial.negative`.
    #[test]
    fn streamed_pair_budget_is_exact_or_typed_abort(
        n in 30..90usize,
        world_seed in any::<u64>(),
        max_pairs in 1..30_000u64,
    ) {
        let (w, config) = world(n, world_seed);

        let mut oracle_cfg = config.clone();
        oracle_cfg.threads = 1;
        oracle_cfg.emit = EmitHint::Buffered;
        let oracle = run(&w, oracle_cfg);

        let mut budgeted = config;
        budgeted.threads = 2;
        budgeted.emit = EmitHint::Streamed;
        budgeted.budget = RunBudget {
            max_candidate_pairs: Some(max_pairs),
            ..RunBudget::default()
        };
        match EntityMatcher::new(w.r.clone(), w.s.clone(), budgeted).unwrap().run() {
            Ok(outcome) => assert_same_table_sets(&oracle, &outcome, "within budget")?,
            Err(CoreError::Aborted { reason, partial }) => {
                match reason {
                    AbortReason::PairBudgetExceeded { limit, observed } => {
                        prop_assert_eq!(limit, max_pairs);
                        prop_assert!(observed > limit);
                        prop_assert_eq!(partial.pairs_charged, observed);
                    }
                    other => prop_assert!(false, "wrong reason: {other}"),
                }
                // The trip happened before the tasks it charged ran
                // to completion — the partial task tally reflects it.
                prop_assert!(partial.tasks_completed <= partial.tasks_total);
            }
            Err(other) => prop_assert!(false, "untyped failure: {other}"),
        }
    }
}

/// A forced-streamed plan carries exactly one [`PlanNodeKind::Sink`]
/// node and streamed emission metadata; the serial and index-free
/// degradation twins both lower it back to a buffered `Dedup` — the
/// ladder's rungs always rerun the historical `Vec` path.
#[test]
fn streamed_plan_has_sink_node_and_rewrites_lower_to_buffered() {
    let (w, mut config) = world(200, 7);
    config.emit = EmitHint::Streamed;
    let matcher = EntityMatcher::new(w.r.clone(), w.s.clone(), config).unwrap();
    let plan = matcher.plan().unwrap();

    assert_eq!(plan.emit.mode, EmitMode::Streamed, "{}", plan.emit_why);
    let sinks = plan
        .nodes
        .iter()
        .filter(|n| matches!(n.kind, PlanNodeKind::Sink { .. }))
        .count();
    assert_eq!(sinks, 1, "streamed plan should carry one sink node");

    for (name, twin) in [
        ("serial", plan.rewrite_serial()),
        ("index-free", plan.rewrite_index_free()),
        ("buffered", plan.rewrite_buffered()),
    ] {
        assert_eq!(twin.emit.mode, EmitMode::Buffered, "{name} twin emit");
        assert!(
            !twin
                .nodes
                .iter()
                .any(|n| matches!(n.kind, PlanNodeKind::Sink { .. })),
            "{name} twin still has a sink node"
        );
    }

    // Lowering is idempotent: a buffered plan is returned unchanged.
    let buffered = plan.rewrite_buffered();
    assert_eq!(buffered.rewrite_buffered().emit_why, buffered.emit_why);
}

/// An injected panic at the shard-merge fault site degrades the
/// streamed parallel arm to the serial rung instead of escaping. The
/// rerun streams into *fresh* sinks and re-merges, so it is
/// byte-identical to a fault-free streamed serial run (and set-equal
/// to the buffered oracle), and the degradation is counted.
#[test]
fn sink_merge_fault_degrades_and_matches_oracle() {
    let _l = lock();
    eid_fault::quiet_panics();
    let (w, config) = world(400, 42);

    let mut serial_streamed = config.clone();
    serial_streamed.threads = 1;
    serial_streamed.emit = EmitHint::Streamed;
    let oracle = run(&w, serial_streamed);

    let mut buffered = config.clone();
    buffered.threads = 1;
    buffered.emit = EmitHint::Buffered;
    let buffered_oracle = run(&w, buffered);

    eid_fault::install("engine/sink_merge@1", 0).unwrap();
    let mut faulty = config;
    faulty.threads = 2;
    faulty.emit = EmitHint::Streamed;
    let degraded = EntityMatcher::new(w.r.clone(), w.s.clone(), faulty)
        .unwrap()
        .run();
    eid_fault::clear();
    let degraded = degraded.expect("merge fault should degrade, not fail");

    assert_eq!(
        oracle.matching.entries(),
        degraded.matching.entries(),
        "MT differs after sink-merge degradation"
    );
    assert_eq!(
        oracle.negative.entries(),
        degraded.negative.entries(),
        "NMT differs after sink-merge degradation"
    );
    assert_eq!(oracle.undetermined, degraded.undetermined);
    assert_eq!(
        degraded.stats.counter(counter::RUNTIME_DEGRADED_TO_BLOCKED),
        1,
        "sink-merge panic should degrade parallel → blocked serial"
    );

    // Same decision sets as the buffered path — classification never
    // depends on the emission mode, degraded or not.
    assert!(degraded.matching.includes(&buffered_oracle.matching));
    assert!(buffered_oracle.matching.includes(&degraded.matching));
    assert!(degraded.negative.includes(&buffered_oracle.negative));
    assert!(buffered_oracle.negative.includes(&degraded.negative));
}

/// Cancelling mid-stream from another thread surfaces as the typed
/// `Cancelled` abort with partial stats — the sink shards already
/// holding pairs are discarded, not published.
#[test]
fn cancel_mid_stream_is_typed() {
    use entity_id::core::runtime::RunGuard;

    let (w, mut config) = world(400, 11);
    config.threads = 2;
    config.emit = EmitHint::Streamed;
    let matcher = EntityMatcher::new(w.r.clone(), w.s.clone(), config).unwrap();

    // Pre-cancelled guard: the first checkpoint trips, wherever the
    // run is — construction-order independence is the point.
    let guard = RunGuard::new(&RunBudget::default());
    guard.cancel();
    match matcher.run_guarded(&guard) {
        Err(CoreError::Aborted { reason, partial }) => {
            assert_eq!(reason, AbortReason::Cancelled);
            assert_eq!(partial.matching, 0);
            assert_eq!(partial.negative, 0);
        }
        other => panic!("expected typed cancel, got {other:?}"),
    }
}
