//! Experiment E8 — cross-validation of the two independent
//! matching-table constructions: the rule-based [`EntityMatcher`] and
//! the §4.2 relational-algebra pipeline over ILFD tables.

use entity_id::core::algebra_pipeline;
use entity_id::datagen::{generate, restaurant, GeneratorConfig};
use entity_id::ilfd::tables::{ilfds_from_tables, paper_table8, tables_from_ilfds};
use entity_id::prelude::*;

/// Both constructions produce Table 7 on the paper workload.
#[test]
fn equivalent_on_example3() {
    let (r, s, key, ilfds) = restaurant::example3();
    let pipeline = algebra_pipeline::run(&r, &s, &key, &ilfds).unwrap();

    let mut config = MatchConfig::new(key, ilfds);
    config.strategy = DerivationStrategy::Fixpoint;
    let matcher = EntityMatcher::new(r, s, config).unwrap().run().unwrap();

    assert_eq!(pipeline.matching.len(), 3);
    assert!(pipeline.matching.includes(&matcher.matching));
    assert!(matcher.matching.includes(&pipeline.matching));
}

/// …and on synthetic workloads across seeds, sizes, coverages and
/// homonym rates.
#[test]
fn equivalent_on_generated_workloads() {
    for seed in [1, 2, 3] {
        for coverage in [0.3, 0.7, 1.0] {
            for homonym in [0.0, 0.25] {
                let w = generate(&GeneratorConfig {
                    n_entities: 80,
                    ilfd_coverage: coverage,
                    homonym_rate: homonym,
                    seed,
                    ..GeneratorConfig::default()
                });
                let pipeline =
                    algebra_pipeline::run(&w.r, &w.s, &w.extended_key, &w.ilfds).unwrap();
                let mut config = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
                config.strategy = DerivationStrategy::Fixpoint;
                config.collect_negative = false;
                let matcher = EntityMatcher::new(w.r.clone(), w.s.clone(), config)
                    .unwrap()
                    .run()
                    .unwrap();
                assert!(
                    pipeline.matching.includes(&matcher.matching)
                        && matcher.matching.includes(&pipeline.matching),
                    "divergence at seed={seed} coverage={coverage} homonym={homonym}: \
                     pipeline={} matcher={}",
                    pipeline.matching.len(),
                    matcher.matching.len()
                );
            }
        }
    }
}

/// Table 8: the ILFD-table representation round-trips to the same
/// logical ILFD set.
#[test]
fn table_8_round_trip() {
    let t8 = paper_table8();
    assert_eq!(t8.len(), 4);
    // As printed in the paper: speciality → cuisine rows.
    let rows = t8.relation().sorted_tuples();
    assert_eq!(rows[0], Tuple::of_strs(&["gyros", "greek"]));
    assert_eq!(rows[1], Tuple::of_strs(&["hunan", "chinese"]));
    assert_eq!(rows[2], Tuple::of_strs(&["mughalai", "indian"]));
    assert_eq!(rows[3], Tuple::of_strs(&["sichuan", "chinese"]));
}

/// The whole I1–I8 set survives the relation representation (grouped
/// into uniform tables and back).
#[test]
fn example3_ilfds_round_trip_through_tables() {
    let ilfds = restaurant::example3_ilfds();
    let tables = tables_from_ilfds(&ilfds).unwrap();
    // Shapes: (speciality→cuisine), (name,street→speciality),
    // (street→county), (name,county→speciality) = 4 tables.
    assert_eq!(tables.len(), 4);
    let back = ilfds_from_tables(&tables);
    assert!(entity_id::ilfd::closure::equivalent(&ilfds, &back));
}

/// The pipeline derives through chains without being handed the
/// derived ILFD explicitly (it re-derives the paper's I9 on the fly).
#[test]
fn pipeline_subsumes_derived_ilfds() {
    let (r, s, key, ilfds) = restaurant::example3();
    // Add I9 explicitly: the result must not change.
    let mut with_i9 = ilfds.clone();
    with_i9.insert(restaurant::ilfd_i9());
    let without = algebra_pipeline::run(&r, &s, &key, &ilfds).unwrap();
    let with = algebra_pipeline::run(&r, &s, &key, &with_i9).unwrap();
    assert!(without.matching.includes(&with.matching));
    assert!(with.matching.includes(&without.matching));
}
