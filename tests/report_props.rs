//! Invariant properties of the observability reports attached to
//! [`MatchOutcome::stats`]: counters must sum correctly (blocking
//! precision, memoization, classification), the classification
//! counters must mirror the outcome's tables exactly, and reports
//! from all three join arms must agree on the classification of the
//! same world. A report that lies is worse than no report.

use proptest::prelude::*;

use entity_id::core::stats::{counter, histogram};
use entity_id::datagen::{generate, GeneratorConfig};
use entity_id::obs::MatchReport;
use entity_id::prelude::*;

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        10..60usize,  // n_entities
        0.0..1.0f64,  // overlap
        0.0..0.4f64,  // homonym_rate
        0.0..1.0f64,  // ilfd_coverage
        0.0..0.3f64,  // noise
        any::<u64>(), // seed
    )
        .prop_map(
            |(n, overlap, homonym, coverage, noise, seed)| GeneratorConfig {
                n_entities: n,
                overlap,
                homonym_rate: homonym,
                ilfd_coverage: coverage,
                noise,
                n_specialities: 16,
                n_cuisines: 6,
                seed,
            },
        )
}

fn run(w_r: &Relation, w_s: &Relation, config: &MatchConfig) -> MatchOutcome {
    EntityMatcher::new(w_r.clone(), w_s.clone(), config.clone())
        .unwrap()
        .run()
        .unwrap()
}

/// The classification counters every arm records, read back as a
/// comparable tuple: (mt, nmt, overlap, undetermined, pairs_total).
fn classification(outcome: &MatchOutcome) -> (u64, u64, u64, u64, u64) {
    let s = &outcome.stats;
    (
        s.counter(counter::CLASSIFY_MT),
        s.counter(counter::CLASSIFY_NMT),
        s.counter(counter::CLASSIFY_OVERLAP),
        s.counter(counter::CLASSIFY_UNDETERMINED),
        s.counter(counter::CLASSIFY_PAIRS_TOTAL),
    )
}

/// Invariants that must hold for any arm's report.
fn assert_common_invariants(
    outcome: &MatchOutcome,
    pairs_total: usize,
    label: &str,
) -> Result<(), TestCaseError> {
    let (mt, nmt, overlap, undetermined, total) = classification(outcome);
    // Classification counters mirror the outcome verbatim.
    prop_assert_eq!(mt, outcome.matching.len() as u64, "{}: classify/mt", label);
    prop_assert_eq!(
        nmt,
        outcome.negative.len() as u64,
        "{}: classify/nmt",
        label
    );
    prop_assert_eq!(
        undetermined,
        outcome.undetermined as u64,
        "{}: classify/undetermined",
        label
    );
    prop_assert_eq!(total, pairs_total as u64, "{}: classify/pairs_total", label);
    // Figure 3's partition accounts for every pair: MT + NMT +
    // undetermined covers the space, with double-recorded pairs
    // (inconsistent knowledge) counted once extra on each side.
    prop_assert_eq!(
        mt + nmt + undetermined,
        total + overlap,
        "{}: classification partition",
        label
    );
    // Derivation pushed every tuple of both sides exactly once, and
    // each was either memoized or freshly derived.
    let tuples = outcome.stats.counter(counter::DERIVE_TUPLES);
    prop_assert_eq!(
        tuples,
        (outcome.extended_r.relation.len() + outcome.extended_s.relation.len()) as u64,
        "{}: derive/tuples",
        label
    );
    prop_assert_eq!(
        outcome.stats.counter(counter::DERIVE_MEMO_HITS)
            + outcome.stats.counter(counter::DERIVE_MEMO_MISSES),
        tuples,
        "{}: memo hits + misses",
        label
    );
    // The run's wall clock bounds its sequential children.
    let wall = outcome.stats.stage_nanos("match").unwrap_or(0);
    for child in ["match/derive", "match/engine", "match/convert"] {
        prop_assert!(
            outcome.stats.stage_nanos(child).unwrap_or(0) <= wall,
            "{label}: stage {child} exceeds the run's wall time"
        );
    }
    Ok(())
}

/// Invariants specific to the blocked engine's report.
fn assert_blocked_invariants(outcome: &MatchOutcome) -> Result<(), TestCaseError> {
    let s = &outcome.stats;
    // Blocking precision sums: every candidate was either accepted
    // or rejected, globally and per rule.
    let candidates = s.counter(counter::BLOCK_CANDIDATES);
    let accepted = s.counter(counter::BLOCK_ACCEPTED);
    let rejected = s.counter(counter::BLOCK_REJECTED);
    prop_assert_eq!(candidates, accepted + rejected, "block/* sum");
    let rule_sum = |what: &str| -> u64 {
        s.counters_with_prefix("rule/")
            .filter(|c| c.name.ends_with(what))
            .map(|c| c.value)
            .sum()
    };
    prop_assert_eq!(rule_sum("/candidates"), candidates, "per-rule candidates");
    prop_assert_eq!(rule_sum("/accepted"), accepted, "per-rule accepted");
    // The engine ran with at least one worker, executed at least the
    // extended-key identity plan, and recorded every task's duration.
    prop_assert!(s.counter(counter::ENGINE_WORKERS) >= 1);
    let tasks = s.counter(counter::ENGINE_TASKS);
    prop_assert!(tasks >= 1, "no tasks recorded");
    prop_assert!(s.counter(counter::ENGINE_SERIAL_FALLBACK) <= 1);
    let task_hist = s
        .histograms
        .iter()
        .find(|h| h.name == histogram::ENGINE_TASK_NANOS)
        .expect("engine/task_nanos histogram missing");
    prop_assert_eq!(task_hist.snapshot.count, tasks, "task histogram count");
    // Compile accounting: every source rule produced at least one
    // orientation or was folded/dropped, never silently vanished.
    prop_assert!(s.counter(counter::COMPILE_SOURCE_RULES) >= 1);
    prop_assert!(s.counter(counter::COMPILE_COMPILED) >= 1);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Per-arm report invariants hold on arbitrary worlds, and the
    /// three arms' reports agree on the classification counters
    /// (same world ⇒ same partition, whichever engine computed it).
    #[test]
    fn reports_are_sound_and_agree_across_engines(config in arb_config()) {
        let w = generate(&config);
        let base = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
        let pairs_total = w.r.len() * w.s.len();

        let mut outcomes = Vec::new();
        for join in [
            JoinAlgorithm::Blocked,
            JoinAlgorithm::Hash,
            JoinAlgorithm::NestedLoop,
        ] {
            let mut c = base.clone();
            c.join = join;
            let outcome = run(&w.r, &w.s, &c);
            assert_common_invariants(&outcome, pairs_total, &format!("{join:?}"))?;
            outcomes.push((join, outcome));
        }
        assert_blocked_invariants(&outcomes[0].1)?;

        let oracle = classification(&outcomes[2].1);
        for (join, outcome) in &outcomes[..2] {
            prop_assert_eq!(
                classification(outcome), oracle,
                "{:?} classification disagrees with nested-loop", join
            );
        }
    }

    /// Each run gets a fresh recorder: running the same matcher twice
    /// yields identical work counters (no cross-run accumulation),
    /// not doubled ones. Two counter families legitimately vary
    /// between runs and are excluded from the equality check:
    /// `*/nanos` measures wall time, and `plan/cache_*` reports the
    /// matcher-lifetime plan-cache ledger, which accumulates across
    /// runs *by design* — asserted separately.
    #[test]
    fn repeated_runs_do_not_accumulate(mut config in arb_config()) {
        config.n_entities = config.n_entities.min(25);
        let w = generate(&config);
        let c = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
        let matcher = EntityMatcher::new(w.r.clone(), w.s.clone(), c).unwrap();
        let first = matcher.run().unwrap();
        let second = matcher.run().unwrap();
        let deterministic = |stats: &MatchReport| -> Vec<_> {
            stats
                .counters
                .iter()
                .filter(|c| !c.name.ends_with("/nanos") && !c.name.starts_with("plan/cache_"))
                .cloned()
                .collect()
        };
        prop_assert_eq!(deterministic(&first.stats), deterministic(&second.stats));
        // The plan cache misses once (the first run plans) and hits
        // on every rerun; each report carries the ledger as of its
        // own run.
        prop_assert_eq!(first.stats.counter(counter::PLAN_CACHE_MISSES), 1);
        prop_assert_eq!(first.stats.counter(counter::PLAN_CACHE_HITS), 0);
        prop_assert_eq!(second.stats.counter(counter::PLAN_CACHE_MISSES), 1);
        prop_assert_eq!(second.stats.counter(counter::PLAN_CACHE_HITS), 1);
    }
}

/// A deterministic spot check on a fixed world: the serial fallback
/// fires below the pair threshold (small input, auto threads), and
/// the blocked report carries the full stage hierarchy.
#[test]
fn small_world_report_shape() {
    let config = GeneratorConfig {
        n_entities: 12,
        overlap: 0.5,
        homonym_rate: 0.1,
        ilfd_coverage: 0.8,
        noise: 0.1,
        n_specialities: 16,
        n_cuisines: 6,
        seed: 7,
    };
    let w = generate(&config);
    let mut c = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
    c.threads = 0; // auto: small input must take the serial path
    let outcome = run(&w.r, &w.s, &c);
    let s = &outcome.stats;
    assert_eq!(s.counter(counter::ENGINE_SERIAL_FALLBACK), 1);
    assert_eq!(s.counter(counter::ENGINE_WORKERS), 1);
    for path in [
        "match",
        "match/derive",
        "match/derive/r",
        "match/derive/s",
        "match/engine",
        "match/engine/compile",
        "match/engine/index",
        "match/convert",
    ] {
        assert!(s.stage_nanos(path).is_some(), "stage {path} missing");
    }
    // The report round-trips through its JSON serializer without
    // panicking and mentions every classification counter.
    let json = s.to_json();
    for name in [
        counter::CLASSIFY_MT,
        counter::CLASSIFY_NMT,
        counter::CLASSIFY_UNDETERMINED,
        counter::CLASSIFY_PAIRS_TOTAL,
    ] {
        assert!(json.contains(name), "{name} absent from JSON");
    }
}
