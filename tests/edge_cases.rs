//! Edge cases and failure injection across the whole stack: empty
//! inputs, degenerate keys, contradictory knowledge, unicode values,
//! and self-integration.

use entity_id::core::algebra_pipeline;
use entity_id::core::conflict::{unify, ConflictPolicy};
use entity_id::core::integrate::IntegratedTable;
use entity_id::prelude::*;
use entity_id::relational::{Schema, Value};
use entity_id::rules::{CmpOp, Predicate, Side};

fn empty_pair() -> (Relation, Relation) {
    (
        Relation::new(Schema::of_strs("R", &["name", "cuisine"], &["name"]).unwrap()),
        Relation::new(Schema::of_strs("S", &["name", "speciality"], &["name"]).unwrap()),
    )
}

#[test]
fn empty_relations_produce_empty_everything() {
    let (r, s) = empty_pair();
    let config = MatchConfig::new(ExtendedKey::of_strs(&["name", "cuisine"]), IlfdSet::new());
    let outcome = EntityMatcher::new(r.clone(), s.clone(), config.clone())
        .unwrap()
        .run()
        .unwrap();
    assert!(outcome.matching.is_empty());
    assert!(outcome.negative.is_empty());
    assert_eq!(outcome.undetermined, 0);
    assert!(outcome.is_complete()); // vacuously
    outcome.verify().unwrap();

    let t = IntegratedTable::build(&r, &s, &outcome, &config.extended_key).unwrap();
    assert!(t.is_empty());
    let u = unify(&r, &s, &outcome, ConflictPolicy::Null).unwrap();
    assert!(u.relation.is_empty());
    assert!(u.conflicts.is_empty());
}

#[test]
fn one_sided_workload_is_all_dangling() {
    let (mut r, s) = empty_pair();
    r.insert_strs(&["a", "chinese"]).unwrap();
    r.insert_strs(&["b", "greek"]).unwrap();
    let config = MatchConfig::new(ExtendedKey::of_strs(&["name", "cuisine"]), IlfdSet::new());
    let outcome = EntityMatcher::new(r.clone(), s.clone(), config.clone())
        .unwrap()
        .run()
        .unwrap();
    assert!(outcome.matching.is_empty());
    let t = IntegratedTable::build(&r, &s, &outcome, &config.extended_key).unwrap();
    assert_eq!(t.len(), 2);
}

#[test]
fn contradictory_ilfds_first_match_picks_first_fixpoint_reports() {
    let (mut r, mut s) = empty_pair();
    r.insert_strs(&["x", "chinese"]).unwrap();
    s.insert_strs(&["x", "fusion"]).unwrap();
    let ilfds: IlfdSet = vec![
        Ilfd::of_strs(&[("speciality", "fusion")], &[("cuisine", "chinese")]),
        Ilfd::of_strs(&[("speciality", "fusion")], &[("cuisine", "indian")]),
    ]
    .into_iter()
    .collect();
    let mut config = MatchConfig::new(ExtendedKey::of_strs(&["name", "cuisine"]), ilfds);

    // First-match commits to chinese → matches.
    let outcome = EntityMatcher::new(r.clone(), s.clone(), config.clone())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(outcome.matching.len(), 1);

    // Fixpoint refuses to guess: cuisine stays NULL and the conflict
    // is reported per tuple.
    config.strategy = DerivationStrategy::Fixpoint;
    let outcome = EntityMatcher::new(r, s, config).unwrap().run().unwrap();
    assert_eq!(outcome.matching.len(), 0);
    assert!(!outcome.extended_s.is_clean());
    assert_eq!(outcome.extended_s.reports[0].conflicts.len(), 1);
}

#[test]
fn mutually_inconsistent_rules_show_up_as_consistency_violation() {
    // An extra identity rule and the ILFD distinctness rule disagree.
    let (mut r, mut s) = empty_pair();
    r.insert_strs(&["x", "greek"]).unwrap();
    s.insert_strs(&["x", "mughalai"]).unwrap();
    let ilfds: IlfdSet = vec![Ilfd::of_strs(
        &[("speciality", "mughalai")],
        &[("cuisine", "indian")],
    )]
    .into_iter()
    .collect();
    let mut config = MatchConfig::new(ExtendedKey::of_strs(&["name", "cuisine"]), ilfds);
    // DBA also (wrongly) asserts name equality is enough.
    config.extra_rules.add_identity(
        entity_id::rules::IdentityRule::new("name-eq", vec![Predicate::cross_eq("name")]).unwrap(),
    );
    let outcome = EntityMatcher::new(r, s, config).unwrap().run().unwrap();
    // The pair is in both tables; verification reports it.
    assert_eq!(outcome.matching.len(), 1);
    assert_eq!(outcome.negative.len(), 1);
    assert!(matches!(
        outcome.verify(),
        Err(entity_id::core::CoreError::ConsistencyViolation { .. })
    ));
}

#[test]
fn unicode_values_survive_the_whole_pipeline() {
    let (mut r, mut s) = empty_pair();
    r.insert_strs(&["日本橋", "日本料理"]).unwrap();
    s.insert_strs(&["日本橋", "寿司"]).unwrap();
    let ilfds: IlfdSet = vec![Ilfd::of_strs(
        &[("speciality", "寿司")],
        &[("cuisine", "日本料理")],
    )]
    .into_iter()
    .collect();
    let config = MatchConfig::new(ExtendedKey::of_strs(&["name", "cuisine"]), ilfds);
    let outcome = EntityMatcher::new(r.clone(), s.clone(), config.clone())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(outcome.matching.len(), 1);
    // CSV round trip too.
    let text = entity_id::relational::csv::to_csv(&r);
    let back = entity_id::relational::csv::from_csv(r.schema().clone(), &text).unwrap();
    assert!(r.same_tuples(&back));
}

#[test]
fn extended_key_attribute_unknown_to_both_sides_never_matches() {
    let (mut r, mut s) = empty_pair();
    r.insert_strs(&["a", "chinese"]).unwrap();
    s.insert_strs(&["a", "hunan"]).unwrap();
    // `galaxy` exists nowhere and no ILFD derives it.
    let config = MatchConfig::new(ExtendedKey::of_strs(&["name", "galaxy"]), IlfdSet::new());
    let outcome = EntityMatcher::new(r, s, config).unwrap().run().unwrap();
    assert!(outcome.matching.is_empty());
    assert_eq!(outcome.undetermined, 1);
}

#[test]
fn self_integration_matches_every_tuple_to_itself() {
    // Integrating a relation with a copy of itself: every tuple pairs
    // with its twin, uniqueness holds.
    let schema = Schema::of_strs("R", &["name", "cuisine"], &["name", "cuisine"]).unwrap();
    let mut r = Relation::new(schema.clone());
    r.insert_strs(&["a", "chinese"]).unwrap();
    r.insert_strs(&["b", "greek"]).unwrap();
    let s = {
        let mut s = Relation::new(schema.renamed("S"));
        for t in r.iter() {
            s.insert(t.clone()).unwrap();
        }
        s
    };
    let config = MatchConfig::new(ExtendedKey::of_strs(&["name", "cuisine"]), IlfdSet::new());
    let outcome = EntityMatcher::new(r, s, config).unwrap().run().unwrap();
    assert_eq!(outcome.matching.len(), 2);
    outcome.verify().unwrap();
}

#[test]
fn ordering_predicates_in_distinctness_rules() {
    // "A restaurant seating fewer than 10 cannot be the banquet hall":
    // numeric ordering comparisons in a distinctness rule.
    let r_schema = Schema::new(
        "R",
        vec![
            entity_id::relational::Attribute::str("name"),
            entity_id::relational::Attribute::int("seats"),
        ],
        vec![vec!["name".into()]],
    )
    .unwrap();
    let s_schema = Schema::new(
        "S",
        vec![
            entity_id::relational::Attribute::str("name"),
            entity_id::relational::Attribute::int("min_capacity"),
        ],
        vec![vec!["name".into()]],
    )
    .unwrap();
    let mut r = Relation::new(r_schema);
    r.insert(Tuple::new(vec![Value::str("tiny"), Value::int(8)]))
        .unwrap();
    let mut s = Relation::new(s_schema);
    s.insert(Tuple::new(vec![Value::str("tiny"), Value::int(100)]))
        .unwrap();

    let rule = entity_id::rules::DistinctnessRule::new(
        "capacity",
        vec![Predicate::new(
            entity_id::rules::Operand::attr(Side::E1, "seats"),
            CmpOp::Lt,
            entity_id::rules::Operand::attr(Side::E2, "min_capacity"),
        )],
    )
    .unwrap();
    let mut config = MatchConfig::new(ExtendedKey::of_strs(&["name"]), IlfdSet::new());
    config.extra_rules.add_distinctness(rule);
    let outcome = EntityMatcher::new(r, s, config).unwrap().run().unwrap();
    // Same name, but the distinctness rule fires and wins the pair
    // into NMT; name-only identity also fires → consistency violation
    // caught by verify, as the knowledge is contradictory.
    assert_eq!(outcome.negative.len(), 1);
}

#[test]
fn algebra_pipeline_on_empty_inputs() {
    let (r, s) = empty_pair();
    let out = algebra_pipeline::run(
        &r,
        &s,
        &ExtendedKey::of_strs(&["name", "cuisine"]),
        &IlfdSet::new(),
    )
    .unwrap();
    assert!(out.matching.is_empty());
}

#[test]
fn null_heavy_relation_never_matches_on_null() {
    let schema = Schema::of_strs("R", &["name", "cuisine"], &["name"]).unwrap();
    let mut r = Relation::new(schema.clone());
    r.insert(Tuple::new(vec![Value::str("a"), Value::Null]))
        .unwrap();
    let mut s = Relation::new(Schema::of_strs("S", &["name", "cuisine"], &["name"]).unwrap());
    s.insert(Tuple::new(vec![Value::str("b"), Value::Null]))
        .unwrap();
    let config = MatchConfig::new(ExtendedKey::of_strs(&["cuisine"]), IlfdSet::new());
    let outcome = EntityMatcher::new(r, s, config).unwrap().run().unwrap();
    // NULL = NULL must never match (non-NULL equality).
    assert!(outcome.matching.is_empty());
}

#[test]
fn very_wide_extended_key() {
    // 12 key attributes, all shared.
    let attrs: Vec<String> = (0..12).map(|i| format!("a{i}")).collect();
    let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
    let schema = Schema::of_strs("R", &attr_refs, &attr_refs[..1]).unwrap();
    let mut r = Relation::new(schema.clone());
    let row: Vec<&str> = (0..12).map(|_| "v").collect();
    let mut row_named = row.clone();
    row_named[0] = "k1";
    r.insert_strs(&row_named).unwrap();
    let mut s = Relation::new(schema.renamed("S"));
    let mut row2 = row.clone();
    row2[0] = "k1";
    s.insert_strs(&row2).unwrap();
    let config = MatchConfig::new(
        ExtendedKey::new(attrs.iter().map(|a| a.as_str().into())),
        IlfdSet::new(),
    );
    let outcome = EntityMatcher::new(r, s, config).unwrap().run().unwrap();
    assert_eq!(outcome.matching.len(), 1);
}
