//! End-to-end tests of the `eid` command-line tool: CSV + rule files
//! in, prototype-style tables out.

use std::io::Write;
use std::process::Command;

fn eid() -> Command {
    Command::new(env!("CARGO_BIN_EXE_eid"))
}

struct Fixture {
    dir: std::path::PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let dir = std::env::temp_dir().join(format!("eid-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Fixture { dir }
    }

    fn write(&self, name: &str, contents: &str) -> String {
        let path = self.dir.join(name);
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(contents.as_bytes()).unwrap();
        path.to_string_lossy().into_owned()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

const R_CSV: &str = "name,cuisine,street\n\
twincities,chinese,co_b2\n\
twincities,indian,co_b3\n\
itsgreek,greek,front_ave\n\
anjuman,indian,le_salle_ave\n\
villagewok,chinese,wash_ave\n";

const S_CSV: &str = "name,speciality,county\n\
twincities,hunan,roseville\n\
twincities,sichuan,hennepin\n\
itsgreek,gyros,ramsey\n\
anjuman,mughalai,minneapolis\n";

const RULES: &str = "\
speciality = hunan    -> cuisine = chinese\n\
speciality = sichuan  -> cuisine = chinese\n\
speciality = gyros    -> cuisine = greek\n\
speciality = mughalai -> cuisine = indian\n\
name = twincities & street = co_b2     -> speciality = hunan\n\
name = anjuman & street = le_salle_ave -> speciality = mughalai\n\
street = front_ave                     -> county = ramsey\n\
name = itsgreek & county = ramsey      -> speciality = gyros\n";

#[test]
fn match_command_reproduces_example3() {
    let fx = Fixture::new("match");
    let r = fx.write("r.csv", R_CSV);
    let s = fx.write("s.csv", S_CSV);
    let rules = fx.write("knowledge.rules", RULES);
    let out = eid()
        .args([
            "match",
            "--r",
            &r,
            "--r-key",
            "name,cuisine",
            "--s",
            &s,
            "--s-key",
            "name,speciality",
            "--rules",
            &rules,
            "--key",
            "name,cuisine,speciality",
            "--integrated",
        ])
        .output()
        .expect("run eid");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Message: The extended key is verified."));
    assert!(text.contains("matching table"));
    assert!(text.contains("anjuman"));
    assert!(text.contains("integrated table"));
    assert!(text.contains("null"));
    assert!(text.contains("matching: 3"));
}

#[test]
fn unsound_key_prints_warning_but_succeeds() {
    let fx = Fixture::new("unsound");
    let r = fx.write("r.csv", R_CSV);
    let s = fx.write("s.csv", S_CSV);
    let rules = fx.write("knowledge.rules", RULES);
    let out = eid()
        .args([
            "match",
            "--r",
            &r,
            "--r-key",
            "name,cuisine",
            "--s",
            &s,
            "--s-key",
            "name,speciality",
            "--rules",
            &rules,
            "--key",
            "name",
        ])
        .output()
        .expect("run eid");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("unsound matching result"));
}

/// Example 1 (Table 1): R(name, street, cuisine) and S(name, city,
/// manager) share only `name`.
const R1_CSV: &str = "name,street,cuisine\n\
villagewok,wash_ave,chinese\n\
ching,co_b_rd,chinese\n\
oldcountry,co_b2_rd,american\n";

const S1_CSV: &str = "name,city,manager\n\
villagewok,mpls,hwang\n\
oldcountry,roseville,libby\n\
expresscafe,burnsville,tom\n";

#[test]
fn plan_command_prints_the_golden_example1_tree() {
    let fx = Fixture::new("plan");
    let r = fx.write("r.csv", R1_CSV);
    let s = fx.write("s.csv", S1_CSV);
    let rules = fx.write("k.rules", "e1.name != e2.name -> e1 != e2\n");
    let args = [
        "plan",
        "--r",
        &r,
        "--r-key",
        "name,street",
        "--s",
        &s,
        "--s-key",
        "name,city",
        "--rules",
        &rules,
        "--key",
        "name",
    ];
    let out = eid().args(args).output().expect("run eid plan");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Golden: the full indented tree, including the cost model's
    // blocking-key rationale. 3×3 = 9 estimated pairs → serial.
    let golden = "match plan — arm blocked, mode serial(auto-small)
  mode: auto: 9 estimated pairs < 50000 — serial
  emit: buffered: est 9 raw negative pairs < 2000000: per-task buffers stay cache-resident
  stats: computed
  derive(R) — extend R with missing extended-key attributes; ILFDs fill values (§5)
  derive(S) — extend S with missing extended-key attributes; ILFDs fill values (§5)
    encode — intern 3+3 rows into columnar u32 symbols; hot predicates become integer compares
      block-index — build symbol-keyed inverted indexes for 1 probe plan(s)
        probe(extended-key-equivalence) [probe 0] — blocking key ⟨name⟩ — most selective first: name (3 distinct, 0% null)
      scan(line 1) [scan] — no single-≠ shape: fused residual scan
          dedup — first-occurrence dedup of raw pair lists in id space; runs on two threads when the lists are large
            classify — Figure-3 partition: MT / NMT / undetermined accounting
";
    assert_eq!(text, golden);

    // The JSON form carries the same plan, machine-readably.
    let out = eid().args(args).arg("--json").output().unwrap();
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "\"arm\": \"blocked\"",
        "\"mode\": \"serial(auto-small)\"",
        "\"workers\": 1",
        "\"index_free\": false",
        "\"kind\": \"identity-probe\"",
        "\"strategy\": \"probe\"",
        "\"key_positions\": [0]",
        "\"kind\": \"refute\"",
        "\"strategy\": \"scan\"",
        "\"kind\": \"classify\"",
    ] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }

    // --explain is an accepted synonym for the default text tree.
    let out = eid().args(args).arg("--explain").output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), golden);

    // Forcing threads flips the plan to parallel without executing.
    let out = eid().args(args).args(["--threads", "3"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("arm blocked_parallel, mode parallel(3)"),
        "{text}"
    );
}

/// EXPLAIN ANALYZE on Example 1: `--analyze` executes the plan and
/// joins the planner's estimates with per-node actuals. Timings vary
/// run to run, so the golden covers everything *but* the time column:
/// the header, the column names, the deterministic est/act volumes,
/// and the drift footer.
#[test]
fn plan_analyze_joins_estimates_with_actuals_on_example1() {
    let fx = Fixture::new("analyze");
    let r = fx.write("r.csv", R1_CSV);
    let s = fx.write("s.csv", S1_CSV);
    let rules = fx.write("k.rules", "e1.name != e2.name -> e1 != e2\n");
    let args = [
        "plan",
        "--r",
        &r,
        "--r-key",
        "name,street",
        "--s",
        &s,
        "--s-key",
        "name,city",
        "--rules",
        &rules,
        "--key",
        "name",
        "--analyze",
    ];
    let out = eid().args(args).output().expect("run eid plan --analyze");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let mut lines = text.lines();
    assert_eq!(
        lines.next().unwrap(),
        "match plan — arm blocked, mode serial(auto-small) (analyzed)"
    );
    assert_eq!(
        lines.next().unwrap(),
        "  mode: auto: 9 estimated pairs < 50000 — serial"
    );
    let header = lines.next().unwrap();
    for col in [
        "node",
        "est pairs",
        "act pairs",
        "rows out",
        "batches",
        "time",
    ] {
        assert!(header.contains(col), "missing column {col:?} in {header:?}");
    }
    // The probe estimated 3 pairs and saw 2 (2 shared names); the
    // fused residual scan estimated and visited all 9.
    let probe = text
        .lines()
        .find(|l| l.contains("probe(extended-key-equivalence)"))
        .expect("probe row");
    let fields: Vec<&str> = probe.split_whitespace().collect();
    assert!(
        probe.contains(" 3 ") && probe.contains(" 2 "),
        "probe est/act pairs wrong: {fields:?}"
    );
    let scan = text
        .lines()
        .find(|l| l.contains("scan(line 1)"))
        .expect("scan row");
    assert!(scan.contains(" 9 "), "scan est/act pairs wrong: {scan:?}");
    // Stage nodes carry no volume estimate: dash columns.
    let derive = text
        .lines()
        .find(|l| l.contains("derive(R)"))
        .expect("derive row");
    assert!(
        derive.contains(" - "),
        "derive should show dashes: {derive:?}"
    );
    assert_eq!(
        text.lines().last().unwrap(),
        "  drift: 0 node(s) ≥ ×4 off estimate"
    );

    // The JSON form nests the untouched plan next to the actuals.
    let out = eid().args(args).arg("--json").output().unwrap();
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "\"plan\": {",
        "\"analyze\": {",
        "\"executed\": true",
        "\"drift_factor\": 4",
        "\"drift_nodes\": 0",
    ] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }
}

#[test]
fn match_trace_out_writes_balanced_chrome_json() {
    let fx = Fixture::new("traceout");
    let r = fx.write("r.csv", R_CSV);
    let s = fx.write("s.csv", S_CSV);
    let rules = fx.write("knowledge.rules", RULES);
    let trace_path = fx.write("trace.json", "");
    let out = eid()
        .args([
            "match",
            "--r",
            &r,
            "--r-key",
            "name,cuisine",
            "--s",
            &s,
            "--s-key",
            "name,speciality",
            "--rules",
            &rules,
            "--key",
            "name,cuisine,speciality",
            "--trace-out",
            &trace_path,
        ])
        .output()
        .expect("run eid match --trace-out");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("trace written to"), "{text}");
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.ends_with("],\"displayTimeUnit\":\"ms\"}"));
    // Balanced: as many begin records as end records, at least one
    // slice, and a thread-name track for worker 0.
    let begins = trace.matches("\"ph\":\"B\"").count();
    let ends = trace.matches("\"ph\":\"E\"").count();
    assert!(begins > 0, "no slices in {trace}");
    assert_eq!(begins, ends, "unbalanced trace");
    assert!(trace.contains("\"worker 0\""));
    assert!(trace.contains("match/engine/"));
}

#[test]
fn validate_reports_rule_counts_and_redundancy() {
    let fx = Fixture::new("validate");
    let rules = fx.write(
        "k.rules",
        "a = 1 -> b = 2\nb = 2 -> c = 3\na = 1 -> c = 3\n", // third is redundant
    );
    let out = eid()
        .args(["validate", "--rules", &rules])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("3 ILFDs"));
    assert!(text.contains("redundant"));
    assert!(text.contains("minimal cover has 2"));
}

#[test]
fn parse_errors_are_reported_with_position() {
    let fx = Fixture::new("badrules");
    let rules = fx.write("bad.rules", "speciality hunan -> cuisine = chinese\n");
    let out = eid()
        .args(["validate", "--rules", &rules])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("1:"), "{err}");
}

#[test]
fn bad_csv_key_is_an_error() {
    let fx = Fixture::new("badkey");
    let r = fx.write("r.csv", R_CSV);
    let s = fx.write("s.csv", S_CSV);
    let rules = fx.write("k.rules", RULES);
    let out = eid()
        .args([
            "match",
            "--r",
            &r,
            "--r-key",
            "nope",
            "--s",
            &s,
            "--s-key",
            "name,speciality",
            "--rules",
            &rules,
            "--key",
            "name",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn demo_runs() {
    let out = eid().arg("demo").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("matching table (Table 7)"));
}

#[test]
fn unify_prints_conflicts() {
    let fx = Fixture::new("unify");
    // Shared `city` column that disagrees on the matched pair.
    let r = fx.write("r.csv", "name,cuisine,city\ntc,chinese,mpls\n");
    let s = fx.write("s.csv", "name,speciality,city\ntc,hunan,st_paul\n");
    let rules = fx.write("k.rules", "speciality = hunan -> cuisine = chinese\n");
    let out = eid()
        .args([
            "match",
            "--r",
            &r,
            "--r-key",
            "name,cuisine",
            "--s",
            &s,
            "--s-key",
            "name,speciality",
            "--rules",
            &rules,
            "--key",
            "name,cuisine",
            "--unify",
            "prefer-r",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("unified relation"));
    assert!(text.contains("conflicts resolved"));
    assert!(text.contains("city"));
}

#[test]
fn unknown_flags_and_commands_fail_cleanly() {
    let out = eid().args(["match", "--bogus", "x"]).output().unwrap();
    assert!(!out.status.success());
    let out = eid().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let out = eid().arg("--help").output().unwrap();
    assert!(out.status.success());
}

#[test]
fn session_repl_runs_the_prototype_transcript() {
    use std::io::Write as _;
    use std::process::Stdio;
    let fx = Fixture::new("session");
    let r = fx.write("r.csv", R_CSV);
    let s = fx.write("s.csv", S_CSV);
    let rules = fx.write("knowledge.rules", RULES);
    let mut child = eid()
        .args([
            "session",
            "--r",
            &r,
            "--r-key",
            "name,cuisine",
            "--s",
            &s,
            "--s-key",
            "name,speciality",
            "--rules",
            &rules,
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn session");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            b"candidates\nsetup_extkey name\nsetup_extkey name,cuisine,speciality\n\
              print_matchtable\nprint_integ_table\nbogus_command\nquit\n",
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("candidate attributes: name"));
    assert!(text.contains("unsound matching result"));
    assert!(text.contains("The extended key is verified."));
    assert!(text.contains("matching table"));
    assert!(text.contains("integrated table"));
    assert!(text.contains("unknown command `bogus_command`"));
}

#[test]
fn zero_deadline_exits_124_with_partial_report() {
    let fx = Fixture::new("deadline");
    let r = fx.write("r.csv", R_CSV);
    let s = fx.write("s.csv", S_CSV);
    let rules = fx.write("k.rules", RULES);
    let report = fx.dir.join("report.json");
    let out = eid()
        .args([
            "match",
            "--r",
            &r,
            "--r-key",
            "name,cuisine",
            "--s",
            &s,
            "--s-key",
            "name,speciality",
            "--rules",
            &rules,
            "--key",
            "name,cuisine,speciality",
            "--timeout-ms",
            "0",
            "--report-json",
            &report.to_string_lossy(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(124), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("deadline"), "{err}");
    // A tripped budget still writes the report, flagged as an abort.
    let json = std::fs::read_to_string(&report).unwrap();
    assert!(json.contains("\"abort\""), "{json}");
    assert!(json.contains("deadline"), "{json}");
    assert!(json.contains("abort/elapsed_ms"), "{json}");
}

#[test]
fn pair_budget_exits_125() {
    let fx = Fixture::new("pairs");
    let r = fx.write("r.csv", R_CSV);
    let s = fx.write("s.csv", S_CSV);
    let rules = fx.write("k.rules", RULES);
    let out = eid()
        .args([
            "match",
            "--r",
            &r,
            "--r-key",
            "name,cuisine",
            "--s",
            &s,
            "--s-key",
            "name,speciality",
            "--rules",
            &rules,
            "--key",
            "name,cuisine,speciality",
            "--max-pairs",
            "1",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(125), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("pair budget"), "{err}");
}

#[test]
fn lenient_skips_malformed_csv_rows() {
    let fx = Fixture::new("lenient");
    // One ragged row (two fields instead of three).
    let ragged = format!("{R_CSV}short,row\n");
    let r = fx.write("r.csv", &ragged);
    let s = fx.write("s.csv", S_CSV);
    let rules = fx.write("k.rules", RULES);
    let args = [
        "match",
        "--r",
        &r,
        "--r-key",
        "name,cuisine",
        "--s",
        &s,
        "--s-key",
        "name,speciality",
        "--rules",
        &rules,
        "--key",
        "name,cuisine,speciality",
    ];
    // Strict mode refuses the file outright, naming the line.
    let strict = eid().args(args).output().unwrap();
    assert!(!strict.status.success());
    assert!(String::from_utf8_lossy(&strict.stderr).contains("line"));
    // Lenient mode skips the row, warns, and matches the clean data.
    let lenient = eid().args(args).arg("--lenient").output().unwrap();
    assert!(
        lenient.status.success(),
        "{}",
        String::from_utf8_lossy(&lenient.stderr)
    );
    let err = String::from_utf8_lossy(&lenient.stderr);
    assert!(err.contains("skipped"), "{err}");
    let text = String::from_utf8_lossy(&lenient.stdout);
    assert!(text.contains("matching: 3"), "{text}");
}

#[test]
fn encode_inspect_and_store_backed_match_round_trip() {
    let fx = Fixture::new("store");
    let r = fx.write("r.csv", R_CSV);
    let s = fx.write("s.csv", S_CSV);
    let rules = fx.write("knowledge.rules", RULES);
    let store = fx.dir.join("world.eids");
    let store = store.to_string_lossy().into_owned();
    let csv_args = [
        "--r",
        &r,
        "--r-key",
        "name,cuisine",
        "--s",
        &s,
        "--s-key",
        "name,speciality",
        "--rules",
        &rules,
        "--key",
        "name,cuisine,speciality",
    ];

    // Encode once…
    let out = eid()
        .arg("encode")
        .args(csv_args)
        .args(["--out", &store])
        .output()
        .expect("run eid encode");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("encoded world:"), "{text}");
    assert!(text.contains("wrote "), "{text}");

    // …inspect shows the manifest, stats, and files…
    let out = eid().args(["inspect", "--store", &store]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("dataset world"), "{text}");
    assert!(
        text.contains("extended key: name, cuisine, speciality"),
        "{text}"
    );
    assert!(text.contains("column stats"), "{text}");
    assert!(text.contains("manifest.eid"), "{text}");

    // …and a store-backed match is byte-identical to the CSV path.
    let from_csv = eid()
        .arg("match")
        .args(csv_args)
        .args(["--integrated", "--negative"])
        .output()
        .unwrap();
    assert!(from_csv.status.success());
    let from_store = eid()
        .args(["match", "--store", &store, "--integrated", "--negative"])
        .output()
        .unwrap();
    assert!(
        from_store.status.success(),
        "{}",
        String::from_utf8_lossy(&from_store.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&from_csv.stdout),
        String::from_utf8_lossy(&from_store.stdout),
        "store-backed match differs from the CSV path"
    );

    // The store-backed plan reads persisted statistics; the CSV path
    // computes them.
    let out = eid().args(["plan", "--store", &store]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("  stats: persisted\n"), "{text}");
    let out = eid().arg("plan").args(csv_args).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("  stats: computed\n"), "{text}");

    // --store refuses to mix with CSV inputs.
    let out = eid()
        .args(["match", "--store", &store, "--r", &r])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot be combined with --store"), "{err}");

    // A truncated store file is a typed data error: exit 65, no panic.
    let stats = std::path::Path::new(&store).join("stats.eid");
    let bytes = std::fs::read(&stats).unwrap();
    std::fs::write(&stats, &bytes[..bytes.len() / 2]).unwrap();
    for cmd in ["match", "inspect", "plan"] {
        let out = eid().args([cmd, "--store", &store]).output().unwrap();
        assert_eq!(out.status.code(), Some(65), "{cmd}: {out:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("dataset store"), "{cmd}: {err}");
    }
}

#[test]
fn match_warns_on_inconsistent_data() {
    let fx = Fixture::new("warn");
    // S's hunan tuple claims greek cuisine, contradicting the ILFD.
    let r = fx.write("r.csv", "name,cuisine\ntc,chinese\n");
    let s = fx.write("s.csv", "name,speciality,cuisine\ntc,hunan,greek\n");
    let rules = fx.write("k.rules", "speciality = hunan -> cuisine = chinese\n");
    let out = eid()
        .args([
            "match",
            "--r",
            &r,
            "--r-key",
            "name,cuisine",
            "--s",
            &s,
            "--s-key",
            "name,speciality",
            "--rules",
            &rules,
            "--key",
            "name,cuisine",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("warning:"), "{text}");
    assert!(text.contains("contradicts ILFD"), "{text}");
}
