//! The S3 soundness comparison on the *second* domain — integrated
//! billing (paper §1's U.S. West / AT&T motivation) — confirming the
//! technique ranking is not an artifact of the restaurant generator.

use entity_id::baselines::{evaluate_technique, KeyEquivalence, ProbabilisticAttr};
use entity_id::datagen::{generate_billing, BillingConfig};
use entity_id::prelude::*;

fn world() -> entity_id::datagen::BillingWorkload {
    generate_billing(&BillingConfig {
        n_lines: 150,
        n_customers: 40, // few customers ⇒ many multi-region homonyms
        overlap: 0.7,
        ilfd_coverage: 1.0,
        seed: 77,
        ..BillingConfig::default()
    })
}

#[test]
fn ilfd_technique_is_sound_and_total_on_billing() {
    let w = world();
    let outcome = EntityMatcher::new(
        w.local.clone(),
        w.long_dist.clone(),
        MatchConfig::new(w.extended_key.clone(), w.ilfds.clone()),
    )
    .unwrap()
    .run()
    .unwrap();
    outcome.verify().unwrap();
    let e = Evaluation::compute(
        &w.truth,
        &outcome.matching,
        &outcome.negative,
        w.local.len() * w.long_dist.len(),
    );
    assert!(e.is_sound(), "{e:?}");
    assert_eq!(e.match_recall(), 1.0, "{e:?}");
}

#[test]
fn customer_name_matching_is_unsound_on_billing() {
    let w = world();
    // "Key equivalence" on the customer name — the naive join a
    // billing-consolidation script would write.
    let naive = KeyEquivalence::new(&["customer"], true);
    let e = evaluate_technique(&naive, &w.local, &w.long_dist, &w.truth);
    assert!(
        e.false_matches > 0,
        "multi-region customers must break name matching: {e:?}"
    );
    assert!(e.match_precision() < 1.0);
}

#[test]
fn attribute_equivalence_cannot_separate_multi_region_lines() {
    let w = world();
    // Common attributes of Local and LongDist: only `customer` — so
    // comparison values degenerate to name matching and inherit its
    // false matches.
    let prob = ProbabilisticAttr::uniform(0.9, 0.2);
    let e = evaluate_technique(&prob, &w.local, &w.long_dist, &w.truth);
    assert!(e.false_matches > 0, "{e:?}");
}

#[test]
fn partial_exchange_knowledge_degrades_recall_not_precision() {
    for coverage in [0.25, 0.5, 0.75] {
        let w = generate_billing(&BillingConfig {
            n_lines: 150,
            n_customers: 40,
            ilfd_coverage: coverage,
            seed: 78,
            ..BillingConfig::default()
        });
        let outcome = EntityMatcher::new(
            w.local.clone(),
            w.long_dist.clone(),
            MatchConfig::new(w.extended_key.clone(), w.ilfds.clone()),
        )
        .unwrap()
        .run()
        .unwrap();
        let e = Evaluation::compute(
            &w.truth,
            &outcome.matching,
            &outcome.negative,
            w.local.len() * w.long_dist.len(),
        );
        assert_eq!(
            e.match_precision(),
            1.0,
            "precision must not degrade at coverage {coverage}"
        );
        assert!(e.is_sound());
    }
    // And recall grows with coverage.
    let recalls: Vec<f64> = [0.25, 0.75]
        .iter()
        .map(|&coverage| {
            let w = generate_billing(&BillingConfig {
                n_lines: 150,
                n_customers: 40,
                ilfd_coverage: coverage,
                seed: 78,
                ..BillingConfig::default()
            });
            let outcome = EntityMatcher::new(
                w.local.clone(),
                w.long_dist.clone(),
                MatchConfig::new(w.extended_key.clone(), w.ilfds.clone()),
            )
            .unwrap()
            .run()
            .unwrap();
            Evaluation::compute(
                &w.truth,
                &outcome.matching,
                &outcome.negative,
                w.local.len() * w.long_dist.len(),
            )
            .match_recall()
        })
        .collect();
    assert!(recalls[1] > recalls[0], "{recalls:?}");
}

#[test]
fn incremental_matcher_handles_billing_feed() {
    use entity_id::core::incremental::{IncrementalMatcher, SideSel};
    let w = world();
    // Replay the long-distance side as a live feed.
    let empty_ld = Relation::new(w.long_dist.schema().clone());
    let mut m = IncrementalMatcher::new(
        w.local.clone(),
        empty_ld,
        MatchConfig::new(w.extended_key.clone(), w.ilfds.clone()),
    )
    .unwrap();
    let mut total_new = 0;
    for t in w.long_dist.iter() {
        let d = m.insert(SideSel::S, t.clone()).unwrap();
        total_new += d.new_matches.len();
    }
    // Every true pair was discovered exactly once, online.
    assert_eq!(total_new, w.truth.len());
    m.verify().unwrap();
}
