//! The deterministic fault matrix: every rung of the matching
//! runtime's degradation ladder, driven by `eid-fault` plans on a
//! fixed seed. The headline demo is the ISSUE acceptance scenario —
//! an injected worker panic on the n=800 scaling workload degrades
//! `blocked_parallel → blocked` and still produces MT/NMT
//! byte-identical to a fault-free serial run.
//!
//! The fault plan is process-global state, so every test here
//! serializes on one mutex and clears the plan before returning.

use std::sync::Mutex;

use entity_id::core::error::CoreError;
use entity_id::core::matcher::{EntityMatcher, MatchConfig, MatchOutcome};
use entity_id::core::runtime::{AbortReason, RunBudget};
use entity_id::core::stats::{counter, label};
use entity_id::datagen::{generate, GeneratorConfig};
use entity_id::relational::Relation;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The acceptance workload: 800 entities, full ILFD coverage, fixed
/// seed 42 — large enough that every block plan chunks into multiple
/// tasks and the parallel arm actually engages.
fn workload_800() -> (Relation, Relation, MatchConfig) {
    let w = generate(&GeneratorConfig {
        n_entities: 800,
        overlap: 0.5,
        homonym_rate: 0.1,
        ilfd_coverage: 1.0,
        noise: 0.0,
        n_specialities: 32,
        n_cuisines: 10,
        seed: 42,
    });
    let config = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
    (w.r, w.s, config)
}

fn run(r: &Relation, s: &Relation, config: MatchConfig) -> MatchOutcome {
    EntityMatcher::new(r.clone(), s.clone(), config)
        .expect("construct matcher")
        .run()
        .expect("fault-free run")
}

/// MT/NMT must be *identical* — same entries, same order.
fn assert_same_tables(a: &MatchOutcome, b: &MatchOutcome) {
    assert_eq!(a.matching.entries(), b.matching.entries(), "MT differs");
    assert_eq!(a.negative.entries(), b.negative.entries(), "NMT differs");
    assert_eq!(a.undetermined, b.undetermined);
}

/// The nested-loop rung guarantees the same decision *sets* (its
/// emission order differs from the blocked arms).
fn assert_same_table_sets(a: &MatchOutcome, b: &MatchOutcome) {
    let sorted = |t: &entity_id::core::match_table::PairTable| {
        let mut v: Vec<String> = t.entries().iter().map(|e| format!("{e:?}")).collect();
        v.sort();
        v
    };
    assert_eq!(sorted(&a.matching), sorted(&b.matching), "MT set differs");
    assert_eq!(sorted(&a.negative), sorted(&b.negative), "NMT set differs");
    assert_eq!(a.undetermined, b.undetermined);
}

/// The acceptance demo: a seed-driven worker panic
/// (`engine/worker@s8`, seed 42) on the parallel arm. The run must
/// degrade to the serial rerun and produce byte-identical tables,
/// with the abort and degradation visible in the report.
#[test]
fn injected_worker_panic_degrades_to_byte_identical_serial_run() {
    let _l = lock();
    eid_fault::quiet_panics();
    let (r, s, config) = workload_800();

    let mut serial = config.clone();
    serial.threads = 1;
    let oracle = run(&r, &s, serial);
    assert_eq!(oracle.stats.label(label::ENGINE_ARM), Some("blocked"));

    eid_fault::install("engine/worker@s8", 42).unwrap();
    let mut parallel = config;
    parallel.threads = 4;
    let degraded = run(&r, &s, parallel);
    eid_fault::clear();

    assert_same_tables(&oracle, &degraded);
    assert!(
        degraded.stats.counter(counter::ENGINE_ABORTED_TASKS) >= 1,
        "no aborted tasks recorded:\n{}",
        degraded.stats
    );
    assert_eq!(
        degraded.stats.counter(counter::RUNTIME_DEGRADED_TO_BLOCKED),
        1
    );
    assert_eq!(degraded.stats.label(label::ENGINE_ARM), Some("blocked"));
}

/// Poisoning the serial rerun too drops to the index-free
/// nested-loop arm, which still agrees exactly.
#[test]
fn double_poison_falls_back_to_nested_loop() {
    let _l = lock();
    eid_fault::quiet_panics();
    let (r, s, config) = workload_800();

    let mut serial = config.clone();
    serial.threads = 1;
    let oracle = run(&r, &s, serial);

    eid_fault::install("engine/worker@1;engine/serial@1", 0).unwrap();
    let mut parallel = config;
    parallel.threads = 4;
    let degraded = run(&r, &s, parallel);
    eid_fault::clear();

    assert_same_table_sets(&oracle, &degraded);
    assert_eq!(degraded.stats.label(label::ENGINE_ARM), Some("nested_loop"));
    assert_eq!(
        degraded
            .stats
            .counter(counter::RUNTIME_DEGRADED_TO_NESTED_LOOP),
        1
    );
}

/// Exhausting every rung surfaces the typed terminal error — never a
/// raw panic out of the matcher.
#[test]
fn exhausted_ladder_is_a_typed_error() {
    let _l = lock();
    eid_fault::quiet_panics();
    let (r, s, mut config) = workload_800();
    config.threads = 4;

    eid_fault::install("engine/worker@1;engine/serial@1;engine/nested@1", 0).unwrap();
    let err = EntityMatcher::new(r, s, config)
        .unwrap()
        .run()
        .expect_err("every rung was poisoned");
    eid_fault::clear();

    match err {
        CoreError::WorkerPanic { site } => assert_eq!(site, "engine/nested"),
        other => panic!("expected WorkerPanic, got: {other}"),
    }
}

/// Interner poisoning during encode is retried once on a clean
/// interner; the run then succeeds and the retry is counted.
#[test]
fn interner_poison_retries_encode_once() {
    let _l = lock();
    eid_fault::quiet_panics();
    let (r, s, config) = workload_800();

    let mut serial = config.clone();
    serial.threads = 1;
    let oracle = run(&r, &s, serial.clone());

    eid_fault::install("interner/poison@1", 0).unwrap();
    let retried = run(&r, &s, serial);
    eid_fault::clear();

    assert_same_tables(&oracle, &retried);
    assert_eq!(retried.stats.counter(counter::RUNTIME_ENCODE_RETRIES), 1);
}

/// A second consecutive encode poisoning escapes the retry and is
/// caught at the matcher's isolation boundary as a typed error.
#[test]
fn double_interner_poison_is_a_typed_error() {
    let _l = lock();
    eid_fault::quiet_panics();
    let (r, s, config) = workload_800();

    eid_fault::install("interner/poison@1;interner/poison@2", 0).unwrap();
    let err = EntityMatcher::new(r, s, config)
        .unwrap()
        .run()
        .expect_err("encode poisoned twice");
    eid_fault::clear();

    match err {
        CoreError::WorkerPanic { site } => assert_eq!(site, "engine/encode"),
        other => panic!("expected WorkerPanic, got: {other}"),
    }
}

/// A tripped pair budget is a typed abort carrying partial progress —
/// the guard's meters, not a panic and not a half-filled table.
#[test]
fn pair_budget_trips_with_partial_stats() {
    let _l = lock();
    let (r, s, mut config) = workload_800();
    config.budget = RunBudget {
        max_candidate_pairs: Some(10),
        ..RunBudget::default()
    };

    let err = EntityMatcher::new(r, s, config)
        .unwrap()
        .run()
        .expect_err("ten pairs cannot cover the workload");
    match err {
        CoreError::Aborted { reason, partial } => {
            match reason {
                AbortReason::PairBudgetExceeded { limit, observed } => {
                    assert_eq!(limit, 10);
                    assert!(observed > limit);
                }
                other => panic!("expected PairBudgetExceeded, got: {other}"),
            }
            assert!(partial.pairs_charged > 10);
        }
        other => panic!("expected Aborted, got: {other}"),
    }
}

/// A zero deadline trips before any matching work happens.
#[test]
fn deadline_trips_as_typed_abort() {
    let _l = lock();
    let (r, s, mut config) = workload_800();
    config.budget = RunBudget {
        timeout_ms: Some(0),
        ..RunBudget::default()
    };

    let err = EntityMatcher::new(r, s, config)
        .unwrap()
        .run()
        .expect_err("zero deadline");
    match err {
        CoreError::Aborted { reason, .. } => {
            assert!(matches!(
                reason,
                AbortReason::DeadlineExceeded { timeout_ms: 0 }
            ));
        }
        other => panic!("expected Aborted, got: {other}"),
    }
}

/// A memory budget too small for the blocked indexes first degrades
/// to the index-free arm, then trips on the pair lists themselves —
/// still a typed abort.
#[test]
fn memory_budget_trips_as_typed_abort() {
    let _l = lock();
    let (r, s, mut config) = workload_800();
    config.budget = RunBudget {
        max_pair_bytes: Some(64),
        ..RunBudget::default()
    };

    let err = EntityMatcher::new(r, s, config)
        .unwrap()
        .run()
        .expect_err("64 bytes of pair lists");
    match err {
        CoreError::Aborted { reason, .. } => {
            assert!(matches!(reason, AbortReason::MemBudgetExceeded { .. }));
        }
        other => panic!("expected Aborted, got: {other}"),
    }
}

/// Cancellation through a cloned guard handle: the run stops at the
/// next checkpoint with the `cancelled` reason.
#[test]
fn cancelled_guard_aborts_the_run() {
    let _l = lock();
    let (r, s, config) = workload_800();
    let matcher = EntityMatcher::new(r, s, config).unwrap();
    let guard = entity_id::core::runtime::RunGuard::unlimited();
    guard.cancel();
    let err = matcher.run_guarded(&guard).expect_err("pre-cancelled run");
    match err {
        CoreError::Aborted { reason, .. } => assert!(matches!(reason, AbortReason::Cancelled)),
        other => panic!("expected Aborted, got: {other}"),
    }
}

/// A poisoned parallel convert degrades to the serial dedup on the
/// main thread — same tables, counted fallback.
#[test]
fn convert_fault_degrades_to_serial_dedup() {
    let _l = lock();
    let (r, s, config) = workload_800();

    let mut serial = config.clone();
    serial.threads = 1;
    let oracle = run(&r, &s, serial);

    let mut parallel = config;
    parallel.threads = 4;
    eid_fault::install("convert/worker@1", 0).unwrap();
    let degraded = run(&r, &s, parallel);
    eid_fault::clear();

    assert_same_tables(&oracle, &degraded);
    // The fault site only arms when the convert would have gone
    // parallel; the refutation grid at n=800 clears that threshold.
    assert_eq!(
        degraded
            .stats
            .counter(counter::RUNTIME_CONVERT_SERIAL_FALLBACK),
        1,
        "convert never went parallel"
    );
}
