//! Chaos-schedule fault harness: randomized *multi-fault* schedules
//! across every runtime site — worker panics, merge panics, interner
//! poisoning, transient spill I/O failures, forced memory-budget
//! trips — driven against all three emission modes (buffered,
//! streamed, spilled) and thread counts {1, 2, 7}. The invariant
//! under ANY schedule: the run returns the exact fault-free decision
//! sets (possibly via a degraded execution or emission rung) or a
//! typed error — never corruption, never a raw panic, and never a
//! leaked spill temp file (the run directory is RAII-guarded through
//! aborts, poisons, and panics alike).
//!
//! Failing cases report the fault plan and seed verbatim so a
//! schedule can be replayed with `eid_fault::install(plan, seed)`.
//!
//! The fault plan is process-global; every test serializes on a
//! mutex and clears it before returning.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use proptest::prelude::*;

use entity_id::core::error::CoreError;
use entity_id::core::matcher::{EntityMatcher, MatchConfig, MatchOutcome};
use entity_id::core::plan::EmitHint;
use entity_id::core::runtime::{AbortReason, RunBudget};
use entity_id::datagen::{generate, GeneratorConfig, Workload};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Every site a chaos schedule may arm. Spill I/O sites only fire
/// under spilled emission; `runtime/budget` forces a memory-budget
/// trip at an arbitrary checkpoint.
const CHAOS_SITES: [&str; 10] = [
    "engine/worker",
    "engine/serial",
    "engine/nested",
    "engine/sink_merge",
    "interner/poison",
    "convert/worker",
    "sink/spill_open",
    "sink/spill_write",
    "sink/spill_read",
    "runtime/budget",
];

/// The acceptance grid: serial, small-parallel, and a worker count
/// that doesn't divide anything evenly.
const THREADS: [usize; 3] = [1, 2, 7];

const EMITS: [EmitHint; 3] = [EmitHint::Buffered, EmitHint::Streamed, EmitHint::Spilled];

fn world(n: usize, seed: u64) -> (Workload, MatchConfig) {
    let w = generate(&GeneratorConfig {
        n_entities: n,
        overlap: 0.6,
        homonym_rate: 0.2,
        ilfd_coverage: 1.0,
        noise: 0.0,
        n_specialities: 12,
        n_cuisines: 5,
        seed,
    });
    let config = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
    (w, config)
}

fn sorted_entries(t: &entity_id::core::match_table::PairTable) -> Vec<String> {
    let mut v: Vec<String> = t.entries().iter().map(|e| format!("{e:?}")).collect();
    v.sort();
    v
}

/// Byte-identical tables: same entries, same undetermined count.
fn same_decisions(a: &MatchOutcome, b: &MatchOutcome) -> bool {
    sorted_entries(&a.matching) == sorted_entries(&b.matching)
        && sorted_entries(&a.negative) == sorted_entries(&b.negative)
        && a.undetermined == b.undetermined
}

/// A per-case scratch parent for spill files. The matcher's own
/// [`SpillDirGuard`](entity_id::core::SpillDirGuard) creates — and
/// must remove — a run subdirectory underneath; [`ScratchDir::leaked`]
/// lists whatever survived. Drop removes the (expected-empty) parent.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new() -> ScratchDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "eid-chaos-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("create chaos scratch dir");
        ScratchDir(path)
    }

    fn path(&self) -> &PathBuf {
        &self.0
    }

    /// Entries left behind after a run — must always be empty.
    fn leaked(&self) -> Vec<String> {
        std::fs::read_dir(&self.0)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .map(|e| e.file_name().to_string_lossy().into_owned())
                    .collect()
            })
            .unwrap_or_default()
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// ANY multi-fault chaos schedule (2–3 seed-driven clauses over
    /// every runtime site), at every thread count × emission mode:
    /// byte-identical tables or a typed error, never corruption,
    /// never a leaked temp file.
    #[test]
    fn chaos_schedules_are_exact_or_typed(
        n in 10..60usize,
        world_seed in any::<u64>(),
        fault_seed in any::<u64>(),
        sites in proptest::collection::vec(0..CHAOS_SITES.len(), 2..=3),
        thread_sel in 0..THREADS.len(),
        emit_sel in 0..EMITS.len(),
    ) {
        let _l = lock();
        eid_fault::quiet_panics();
        let (w, config) = world(n, world_seed);

        let mut serial = config.clone();
        serial.threads = 1;
        let oracle = EntityMatcher::new(w.r.clone(), w.s.clone(), serial)
            .unwrap().run().unwrap();

        // Seed-driven triggers: `@s12` spreads each clause over the
        // first dozen calls at its site, deterministically per seed.
        let plan = sites.iter()
            .map(|&s| format!("{}@s12", CHAOS_SITES[s]))
            .collect::<Vec<_>>()
            .join(";");
        let scratch = ScratchDir::new();
        let mut faulty = config;
        faulty.threads = THREADS[thread_sel];
        faulty.emit = EMITS[emit_sel];
        faulty.spill_dir = Some(scratch.path().clone());
        eid_fault::install(&plan, fault_seed).unwrap();
        let got = EntityMatcher::new(w.r.clone(), w.s.clone(), faulty)
            .unwrap().run();
        eid_fault::clear();

        match got {
            Ok(outcome) => {
                prop_assert!(
                    same_decisions(&oracle, &outcome),
                    "diverged under plan `{plan}` seed {fault_seed} \
                     threads={} emit={:?}",
                    THREADS[thread_sel], EMITS[emit_sel]
                );
                outcome.verify().unwrap();
            }
            // Degradation ladder exhausted by injected panics: typed.
            Err(CoreError::WorkerPanic { .. }) => {}
            // Injected `runtime/budget` trip: typed abort whose
            // partial stats are internally consistent.
            Err(CoreError::Aborted { reason, partial }) => {
                prop_assert!(
                    matches!(reason, AbortReason::MemBudgetExceeded { .. }),
                    "unexpected abort reason under plan `{plan}` seed {fault_seed}: {reason}"
                );
                prop_assert!(partial.tasks_completed <= partial.tasks_total);
            }
            Err(other) => prop_assert!(
                false,
                "untyped failure under plan `{plan}` seed {fault_seed}: {other}"
            ),
        }
        let leaked = scratch.leaked();
        prop_assert!(
            leaked.is_empty(),
            "leaked spill files under plan `{plan}` seed {fault_seed}: {leaked:?}"
        );
    }

    /// A `max_pair_bytes` budget plus a fault-forced trip at ANY
    /// checkpoint (`runtime/budget@k`): the run lands in spilled mode
    /// with exact counts, or trips as a typed abort with consistent
    /// partial stats — never a mixed table.
    #[test]
    fn budget_trip_at_any_checkpoint_is_spilled_exact_or_typed_abort(
        n in 40..120usize,
        world_seed in any::<u64>(),
        k in 1..40u64,
        thread_sel in 0..THREADS.len(),
    ) {
        let _l = lock();
        let (w, config) = world(n, world_seed);

        let mut serial = config.clone();
        serial.threads = 1;
        let oracle = EntityMatcher::new(w.r.clone(), w.s.clone(), serial)
            .unwrap().run().unwrap();

        // 8 KiB: below any workload here's estimated pair bytes, so
        // an auto parallel plan must degrade to out-of-core emission
        // rather than plan an abort.
        let budget = 8 * 1024u64;
        let scratch = ScratchDir::new();
        let mut budgeted = config;
        budgeted.threads = THREADS[thread_sel];
        budgeted.budget = RunBudget {
            max_pair_bytes: Some(budget),
            ..RunBudget::default()
        };
        budgeted.spill_dir = Some(scratch.path().clone());
        eid_fault::install(&format!("runtime/budget@{k}"), 0).unwrap();
        let got = EntityMatcher::new(w.r.clone(), w.s.clone(), budgeted)
            .unwrap().run();
        eid_fault::clear();

        match got {
            Ok(outcome) => {
                prop_assert!(
                    same_decisions(&oracle, &outcome),
                    "diverged under budget@{k} threads={}",
                    THREADS[thread_sel]
                );
                outcome.verify().unwrap();
                // Whether the planner chose spilled here depends on
                // its pair estimate vs the budget — tiny worlds can
                // legitimately stay buffered and fit. The
                // deterministic budget→spilled planning check lives
                // in `no_spill_restores_abort_as_the_final_rung`.
            }
            Err(CoreError::Aborted { reason, partial }) => {
                match reason {
                    AbortReason::MemBudgetExceeded { limit, observed } => {
                        prop_assert_eq!(limit, budget);
                        prop_assert!(observed >= 1);
                        prop_assert!(partial.tasks_completed <= partial.tasks_total);
                    }
                    other => prop_assert!(false, "wrong abort reason: {other}"),
                }
            }
            Err(other) => prop_assert!(false, "untyped failure under budget@{k}: {other}"),
        }
        let leaked = scratch.leaked();
        prop_assert!(leaked.is_empty(), "leaked spill files: {leaked:?}");
    }
}

/// Builds a world big enough that spilled emission writes real
/// segments: the sink needs at least two row-range shards (rows per
/// side past the ~1 M-bit shard target) before a worker's resident
/// bytes can ever exceed the per-shard cap and trigger a flush.
fn big_world() -> (Workload, MatchConfig) {
    world(1600, 7)
}

/// Deterministic spill I/O chaos: transient faults retry with backoff
/// and stay exact; exhausted writes are contained (shards stay
/// resident); exhausted reads drop the emission rung spilled →
/// streamed and still land exact. The spill dir is empty after every
/// variant.
#[test]
fn spill_io_faults_recover_or_degrade_a_rung() {
    let _l = lock();
    eid_fault::quiet_panics();
    let (w, config) = big_world();

    let mut serial = config.clone();
    serial.threads = 1;
    let oracle = EntityMatcher::new(w.r.clone(), w.s.clone(), serial)
        .unwrap()
        .run()
        .unwrap();

    // (plan, expects_io_retries, expects_rung_drop)
    let exhaust = |site: &str| -> String {
        (1..=4)
            .map(|t| format!("{site}@{t}"))
            .collect::<Vec<_>>()
            .join(";")
    };
    let schedules: Vec<(String, bool, bool)> = vec![
        // One transient failure per site: the retry recovers it.
        ("sink/spill_open@1".to_string(), true, false),
        ("sink/spill_write@1".to_string(), true, false),
        ("sink/spill_read@1".to_string(), true, false),
        // Write exhaustion is contained: the sink latches write-failed
        // and keeps shards resident — still exact, same rung.
        (exhaust("sink/spill_write"), true, false),
        // Read exhaustion at merge is terminal for the spilled rung:
        // the ladder drops to streamed emission and reruns.
        (exhaust("sink/spill_read"), true, true),
        // No faults: the baseline spilled run itself.
        (String::new(), false, false),
    ];

    for (plan, expect_retries, expect_drop) in schedules {
        let scratch = ScratchDir::new();
        let mut spilled = config.clone();
        spilled.threads = 2;
        spilled.emit = EmitHint::Spilled;
        spilled.spill_dir = Some(scratch.path().clone());
        if !plan.is_empty() {
            eid_fault::install(&plan, 0).unwrap();
        }
        let got = EntityMatcher::new(w.r.clone(), w.s.clone(), spilled)
            .unwrap()
            .run();
        eid_fault::clear();

        let outcome = got.unwrap_or_else(|e| panic!("plan `{plan}` failed typed: {e}"));
        assert!(
            same_decisions(&oracle, &outcome),
            "plan `{plan}` diverged from the fault-free oracle"
        );
        outcome.verify().unwrap();
        let retries = outcome.stats.counter("runtime/io_retries");
        if expect_retries {
            assert!(retries >= 1, "plan `{plan}` recorded no io retries");
        }
        let fallbacks = outcome.stats.counter("runtime/spill_fallback");
        assert_eq!(
            fallbacks,
            u64::from(expect_drop),
            "plan `{plan}` rung drops"
        );
        if plan.is_empty() {
            // The clean spilled run must actually have spilled.
            assert!(
                outcome.stats.counter("sink/spill_bytes") > 0,
                "baseline spilled run wrote no segments — workload too small"
            );
        }
        let leaked = scratch.leaked();
        assert!(leaked.is_empty(), "plan `{plan}` leaked: {leaked:?}");
    }
}

/// `--no-spill` opts out: the same budget that degrades to spilled by
/// default aborts typed when spilling is disabled — the final rung of
/// the ladder is unchanged.
#[test]
fn no_spill_restores_abort_as_the_final_rung() {
    let _l = lock();
    let (w, config) = big_world();

    // Between the spilled run's gross allocation volume and the
    // buffered run's (which adds ~8 bytes per materialized pair on
    // top): with spill the run completes out-of-core, without it the
    // same budget is a typed abort.
    const BUDGET: u64 = 8 * 1024 * 1024;
    let budget = RunBudget {
        max_pair_bytes: Some(BUDGET),
        ..RunBudget::default()
    };

    let mut with_spill = config.clone();
    with_spill.threads = 2;
    with_spill.budget = budget.clone();
    let ok = EntityMatcher::new(w.r.clone(), w.s.clone(), with_spill)
        .unwrap()
        .run()
        .expect("budgeted run should degrade to spilled, not abort");
    assert!(
        ok.stats
            .label("plan/emit")
            .unwrap_or("?")
            .starts_with("spilled"),
        "budgeted run did not plan spilled emission"
    );

    let mut no_spill = config;
    no_spill.threads = 2;
    no_spill.budget = budget;
    no_spill.spill = false;
    match EntityMatcher::new(w.r.clone(), w.s.clone(), no_spill)
        .unwrap()
        .run()
    {
        Err(CoreError::Aborted {
            reason: AbortReason::MemBudgetExceeded { limit, .. },
            ..
        }) => assert_eq!(limit, BUDGET),
        other => panic!("--no-spill run should abort typed, got {other:?}"),
    }
}

/// Satellite: an explicit `--emit streamed` hint below the auto
/// threshold is honoured (not silently ignored), and a structurally
/// gated hint is surfaced via the `plan/emit_hint_overridden`
/// warn-once counter with the gate named in the emit label.
#[test]
fn explicit_emit_hints_are_honoured_or_reported() {
    let _l = lock();
    let (w, config) = world(40, 11);

    // Far below STREAM_MIN_PAIRS, yet the explicit hint wins.
    let mut streamed = config.clone();
    streamed.threads = 2;
    streamed.emit = EmitHint::Streamed;
    let outcome = EntityMatcher::new(w.r.clone(), w.s.clone(), streamed)
        .unwrap()
        .run()
        .unwrap();
    assert!(
        outcome
            .stats
            .label("plan/emit")
            .unwrap_or("?")
            .starts_with("streamed"),
        "explicit streamed hint was ignored: {:?}",
        outcome.stats.label("plan/emit")
    );
    assert_eq!(outcome.stats.counter("plan/emit_hint_overridden"), 0);

    // Structural gate: no refutation phase — the hint cannot apply,
    // and the run says so instead of silently buffering.
    let mut gated = config;
    gated.threads = 2;
    gated.emit = EmitHint::Streamed;
    gated.collect_negative = false;
    let outcome = EntityMatcher::new(w.r.clone(), w.s.clone(), gated)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(outcome.stats.counter("plan/emit_hint_overridden"), 1);
    let emit = outcome.stats.label("plan/emit").unwrap_or("?");
    assert!(
        emit.starts_with("buffered") && emit.contains("overridden"),
        "gated hint not reported: {emit}"
    );
}
