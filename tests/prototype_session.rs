//! Experiment E10 — the §6.3 prototype transcript.

use entity_id::core::session::{Session, MSG_UNSOUND, MSG_VERIFIED};
use entity_id::datagen::restaurant;

fn open() -> Session {
    let (r, s, _, ilfds) = restaurant::example3();
    Session::new(r, s, ilfds)
}

/// Transcript 1: {Name, Spec, Cui} → "The extended key is verified."
#[test]
fn full_key_is_verified() {
    let mut session = open();
    let report = session
        .setup_extended_key(&["name", "speciality", "cuisine"])
        .unwrap();
    assert!(report.verified);
    assert_eq!(report.message, MSG_VERIFIED);
}

/// Transcript 2: {Name} → "The extended key causes unsound matching
/// result."
#[test]
fn name_only_key_is_unsound() {
    let mut session = open();
    let report = session.setup_extended_key(&["name"]).unwrap();
    assert!(!report.verified);
    assert_eq!(report.message, MSG_UNSOUND);
}

/// The matching-table printout has the transcript's three rows in
/// sorted order with the right key columns.
#[test]
fn print_matchtable_transcript() {
    let mut session = open();
    session
        .setup_extended_key(&["name", "speciality", "cuisine"])
        .unwrap();
    let out = session.matching_table_display().unwrap();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines[0], "matching table");
    // Header row contains the r_ and s_ key columns.
    let header = lines[2];
    for col in ["r_name", "r_cuisine", "s_name", "s_speciality"] {
        assert!(header.contains(col), "missing {col} in {header:?}");
    }
    // Data rows, sorted: anjuman < itsgreek < twincities.
    let data: Vec<&str> = lines[4..]
        .iter()
        .filter(|l| !l.is_empty())
        .copied()
        .collect();
    assert_eq!(data.len(), 3);
    assert!(data[0].starts_with("anjuman"));
    assert!(data[1].starts_with("itsgreek"));
    assert!(data[2].starts_with("twincities"));
    // Row contents.
    assert!(data[0].contains("indian") && data[0].contains("mughalai"));
    assert!(data[1].contains("greek") && data[1].contains("gyros"));
    assert!(data[2].contains("chinese") && data[2].contains("hunan"));
}

/// The integrated-table printout shows six rows with NULLs rendered
/// as `null`, like the transcript.
#[test]
fn print_integ_table_transcript() {
    let mut session = open();
    session
        .setup_extended_key(&["name", "speciality", "cuisine"])
        .unwrap();
    let out = session.integrated_table_display().unwrap();
    assert!(out.starts_with("integrated table"));
    let data: Vec<&str> = out
        .lines()
        .skip(4)
        .filter(|l| !l.trim().is_empty())
        .collect();
    assert_eq!(data.len(), 6);
    // The villagewok row ends in a sea of nulls.
    let vw = data.iter().find(|l| l.contains("villagewok")).unwrap();
    assert!(vw.contains("null"));
    // The sichuan row is S-only: begins with null (r side missing).
    let sichuan = data.iter().find(|l| l.contains("sichuan")).unwrap();
    assert!(sichuan.starts_with("null"));
}

/// Extended-table printouts match the prototype's `print_RRtable` /
/// `print_SStable` shape.
#[test]
fn print_extended_tables() {
    let mut session = open();
    session
        .setup_extended_key(&["name", "speciality", "cuisine"])
        .unwrap();
    let rr = session.extended_r_display().unwrap();
    assert!(rr.starts_with("extended R table"));
    // R′ contains the derived speciality values.
    assert!(rr.contains("hunan"));
    assert!(rr.contains("gyros"));
    assert!(rr.contains("mughalai"));
    let ss = session.extended_s_display().unwrap();
    assert!(ss.starts_with("extended S table"));
    assert!(ss.contains("chinese")); // derived cuisine
}

/// Candidate attributes include exactly the cross-matchable ones.
#[test]
fn candidate_attribute_listing() {
    let session = open();
    let names: Vec<String> = session
        .candidate_attributes()
        .iter()
        .map(|a| a.to_string())
        .collect();
    assert!(names.contains(&"name".to_string()));
    assert!(names.contains(&"speciality".to_string()));
    assert!(names.contains(&"cuisine".to_string()));
    assert!(!names.contains(&"street".to_string()));
}

/// Re-running setup with a different key replaces the outcome (the
/// prototype's `abolish(matchtable,4)` + re-consult).
#[test]
fn setup_can_be_rerun() {
    let mut session = open();
    session.setup_extended_key(&["name"]).unwrap();
    let first = session.outcome().unwrap().matching.len();
    session
        .setup_extended_key(&["name", "speciality", "cuisine"])
        .unwrap();
    let second = session.outcome().unwrap().matching.len();
    assert_ne!(first, second);
    assert_eq!(second, 3);
}
