//! Equivalence properties for the vectorized refutation kernels:
//! the chunked term kernels must agree with scalar three-valued
//! semantics on arbitrary symbol columns (NULLs, both float zero
//! signs, numerically equal `Int`/`Float` pairs), the per-rule term
//! lists derived from interned rule shapes must agree with
//! [`InternedRule::fires`] driver by driver, kernels-on and
//! kernels-off runs must classify identically, and a plan carrying
//! [`PlanNodeKind::VectorScan`] nodes must execute byte-identically
//! to its scalar rewrite twins at every thread count.

use proptest::prelude::*;

use entity_id::core::kernels::{self, KernelTally, Term, TermOp, LANES};
use entity_id::core::plan::PlanNodeKind;
use entity_id::datagen::{generate, GeneratorConfig};
use entity_id::prelude::*;
use entity_id::relational::{Columns, Interner, Sym, NULL_SYM};
use entity_id::rules::{CompiledRuleBase, InternedRule, InternedRuleBase, NeqSide};

/// Values engineered for collisions: a tiny alphabet, numerically
/// equal `Int`/`Float` pairs, both zero signs, and NULLs.
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-3i64..3).prop_map(Value::int),
        (-6i32..6).prop_map(|n| Value::float(f64::from(n) / 2.0)),
        Just(Value::float(0.0)),
        Just(Value::float(-0.0)),
        prop::sample::select(vec!["a", "b", "chinese", "wash_ave"]).prop_map(Value::str),
    ]
}

/// Non-NULL values for kernel term targets (rule literals are never
/// NULL: the compiler rejects them before interning).
fn arb_target() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-3i64..3).prop_map(Value::int),
        (-6i32..6).prop_map(|n| Value::float(f64::from(n) / 2.0)),
        Just(Value::float(0.0)),
        Just(Value::float(-0.0)),
        prop::sample::select(vec!["a", "b", "chinese", "wash_ave"]).prop_map(Value::str),
    ]
}

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        10..50usize,  // n_entities
        0.0..1.0f64,  // overlap
        0.0..0.4f64,  // homonym_rate
        0.0..1.0f64,  // ilfd_coverage
        0.0..0.3f64,  // noise
        any::<u64>(), // seed
    )
        .prop_map(
            |(n, overlap, homonym, coverage, noise, seed)| GeneratorConfig {
                n_entities: n,
                overlap,
                homonym_rate: homonym,
                ilfd_coverage: coverage,
                noise,
                n_specialities: 16,
                n_cuisines: 6,
                seed,
            },
        )
}

/// The scalar three-valued reference a term must agree with: `=`
/// fires on symbol equality (NULL symbols never equal a literal),
/// `≠` fires only when the symbol is known and different.
fn scalar_term(v: Sym, sym: Sym, op: TermOp) -> bool {
    match op {
        TermOp::Eq => v == sym,
        TermOp::Ne => v != sym && v != NULL_SYM,
    }
}

/// One rule's residual evaluation state for driver row `i`, derived
/// from the interned shapes exactly as the engine's vectorized
/// residual does: `None` when an `R`-side check fails (or a join
/// column is NULL) so the rule cannot fire for any `j`; otherwise
/// the `S`-side term list whose conjunction decides each `j`.
fn driver_terms<'c>(
    rule: &InternedRule,
    cols_r: &Columns,
    cols_s: &'c Columns,
    i: usize,
) -> Option<Vec<Term<'c>>> {
    let mut r_checks: Vec<(usize, Sym, TermOp)> = Vec::new();
    let mut joins: Vec<(usize, usize)> = Vec::new();
    let mut s_consts: Vec<(usize, Sym, TermOp)> = Vec::new();
    if let Some(shape) = rule.identity_shape() {
        r_checks.extend(shape.r_lits.iter().map(|&(p, s)| (p, s, TermOp::Eq)));
        joins.extend(shape.join.iter().copied());
        s_consts.extend(shape.s_lits.iter().map(|&(p, s)| (p, s, TermOp::Eq)));
    } else if let Some(shape) = rule.distinct_shape() {
        r_checks.extend(shape.r_lits.iter().map(|&(p, s)| (p, s, TermOp::Eq)));
        s_consts.extend(shape.s_lits.iter().map(|&(p, s)| (p, s, TermOp::Eq)));
        let (side, pos, sym) = shape.neq;
        match side {
            NeqSide::R => r_checks.push((pos, sym, TermOp::Ne)),
            NeqSide::S => s_consts.push((pos, sym, TermOp::Ne)),
        }
    } else {
        unreachable!("kernel shape without identity or distinct shape");
    }
    for &(p, sym, op) in &r_checks {
        if !scalar_term(cols_r.get(i, p), sym, op) {
            return None;
        }
    }
    let mut terms = Vec::with_capacity(joins.len() + s_consts.len());
    for &(rp, sp) in &joins {
        let sym = cols_r.get(i, rp);
        if sym == NULL_SYM {
            return None;
        }
        terms.push(Term {
            col: cols_s.col(sp),
            sym,
            op: TermOp::Eq,
        });
    }
    for &(p, sym, op) in &s_consts {
        terms.push(Term {
            col: cols_s.col(p),
            sym,
            op,
        });
    }
    Some(terms)
}

/// `(matching, negative)` id pairs, sorted and deduplicated — the
/// set view two plans must share even when emission order differs.
type PairSets = (Vec<(u32, u32)>, Vec<(u32, u32)>);

fn canon_pairs(p: &EnginePairs) -> PairSets {
    let dedup_sort = |v: &[(u32, u32)]| {
        let mut v = v.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    };
    (dedup_sort(&p.matching), dedup_sort(&p.negative))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `conj_scan` (and the AVX2/portable `conj_chunk` under it)
    /// emits exactly the rows where every term's scalar three-valued
    /// test holds, in ascending order, on arbitrary interned columns.
    #[test]
    fn conj_scan_agrees_with_scalar_terms(
        cells in prop::collection::vec(arb_value(), 0..150),
        arity in 1..4usize,
        specs in prop::collection::vec((0..4usize, arb_target(), any::<bool>()), 1..5),
    ) {
        let mut interner = Interner::new();
        let rows = cells.len() / arity;
        let cols: Vec<Vec<Sym>> = (0..arity)
            .map(|c| {
                cells[c * rows..(c + 1) * rows]
                    .iter()
                    .map(|v| interner.intern(v))
                    .collect()
            })
            .collect();
        let terms: Vec<Term<'_>> = specs
            .iter()
            .map(|(c, target, eq)| Term {
                col: &cols[c % arity],
                sym: interner.intern(target),
                op: if *eq { TermOp::Eq } else { TermOp::Ne },
            })
            .collect();
        let expected: Vec<u32> = (0..rows)
            .filter(|&j| terms.iter().all(|t| scalar_term(t.col[j], t.sym, t.op)))
            .map(|j| j as u32)
            .collect();
        let mut tally = KernelTally::default();
        let mut got = Vec::new();
        kernels::conj_scan(&terms, 0..rows, &mut tally, |row| got.push(row));
        prop_assert_eq!(&got, &expected);
        // The tally accounts for every row exactly once.
        prop_assert_eq!(
            tally.lane_rows + tally.scalar_tail,
            rows as u64,
            "lane_rows + scalar_tail must cover the scan"
        );
        prop_assert_eq!(tally.scalar_tail as usize, rows % LANES);
    }

    /// The disagreement kernels (dense scan and gather variant) keep
    /// exactly the rows whose symbol is known and different from the
    /// constant — never NULL rows, never agreeing rows.
    #[test]
    fn disagree_kernels_agree_with_scalar(
        cells in prop::collection::vec(arb_value(), 0..150),
        target in arb_target(),
        keep in prop::collection::vec(any::<bool>(), 0..150),
    ) {
        let mut interner = Interner::new();
        let col: Vec<Sym> = cells.iter().map(|v| interner.intern(v)).collect();
        let c = interner.intern(&target);
        let expected: Vec<u32> = (0..col.len())
            .filter(|&j| col[j] != c && col[j] != NULL_SYM)
            .map(|j| j as u32)
            .collect();
        let mut tally = KernelTally::default();
        let mut got = Vec::new();
        kernels::disagree_rows(&col, c, &mut tally, &mut got);
        prop_assert_eq!(&got, &expected);

        // Gather variant over an arbitrary pre-filtered subset.
        let subset: Vec<u32> = (0..col.len())
            .filter(|&j| keep.get(j).copied().unwrap_or(false))
            .map(|j| j as u32)
            .collect();
        let expected_subset: Vec<u32> = subset
            .iter()
            .copied()
            .filter(|&j| col[j as usize] != c && col[j as usize] != NULL_SYM)
            .collect();
        let mut got_subset = Vec::new();
        kernels::gather_disagree(&col, c, &subset, &mut tally, &mut got_subset);
        prop_assert_eq!(&got_subset, &expected_subset);
    }

    /// For every interned rule with a kernel shape, the term-list
    /// evaluation the vectorized residual runs (R-side checks
    /// resolved per driver, S-side conjunction swept by the kernel)
    /// agrees with [`InternedRule::fires`] on every `(i, j)` pair of
    /// the extended relations.
    #[test]
    fn kernel_terms_agree_with_interned_rule_fires(config in arb_config()) {
        let w = generate(&config);
        let base = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
        let matcher = EntityMatcher::new(w.r.clone(), w.s.clone(), base).unwrap();
        let outcome = matcher.run().unwrap();
        let rb = matcher.rule_base().unwrap();
        let ext_r = &outcome.extended_r.relation;
        let ext_s = &outcome.extended_s.relation;
        let compiled = CompiledRuleBase::compile(&rb, ext_r.schema(), ext_s.schema());
        let mut interner = Interner::new();
        let interned = InternedRuleBase::from_compiled(&compiled, &mut interner);
        let cols_r = Columns::encode(ext_r, &mut interner);
        let cols_s = Columns::encode(ext_s, &mut interner);
        let mut shaped = 0usize;
        for rule in interned.identity.iter().chain(interned.distinctness.iter()) {
            if rule.kernel_shape().is_none() {
                continue;
            }
            shaped += 1;
            for i in 0..cols_r.rows() {
                let expected: Vec<u32> = (0..cols_s.rows())
                    .filter(|&j| rule.fires(&cols_r, i, &cols_s, j, &interner))
                    .map(|j| j as u32)
                    .collect();
                match driver_terms(rule, &cols_r, &cols_s, i) {
                    None => prop_assert!(
                        expected.is_empty(),
                        "rule {} driver {}: R-side checks failed but fires() found {} rows",
                        rule.name, i, expected.len()
                    ),
                    Some(terms) => {
                        let mut tally = KernelTally::default();
                        let mut got = Vec::new();
                        kernels::conj_scan(&terms, 0..cols_s.rows(), &mut tally, |row| {
                            got.push(row);
                        });
                        prop_assert_eq!(&got, &expected, "rule {} driver {}", rule.name, i);
                    }
                }
            }
        }
        // The generated rule bases always contain kernel-shaped
        // rules (the extended key compiles to an equi-join identity
        // rule); an accidental all-skip would hollow out the test.
        prop_assert!(shaped > 0, "no kernel-shaped rules in the generated rule base");
    }

    /// Kernels on and kernels off classify every generated world
    /// identically — same matching table, same negative table, same
    /// undetermined count — at several thread counts.
    #[test]
    fn kernels_on_off_classify_identically(
        config in arb_config(),
        threads in prop::sample::select(vec![0usize, 1, 2, 7]),
    ) {
        let w = generate(&config);
        let mut on_cfg = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
        on_cfg.threads = threads;
        on_cfg.kernels = true;
        let mut off_cfg = on_cfg.clone();
        off_cfg.kernels = false;
        let run = |cfg: &MatchConfig| {
            EntityMatcher::new(w.r.clone(), w.s.clone(), cfg.clone())
                .unwrap()
                .run()
                .unwrap()
        };
        let on = run(&on_cfg);
        let off = run(&off_cfg);
        prop_assert_eq!(on.matching.entries(), off.matching.entries(), "matching");
        prop_assert_eq!(on.negative.entries(), off.negative.entries(), "negative");
        prop_assert_eq!(on.undetermined, off.undetermined, "undetermined");
    }
}

/// On a world large enough to clear [`VECTOR_MIN_PAIRS`], the Auto
/// planner dispatches `VectorScan` nodes, and the vectorized plan is
/// byte-identical to its serial rewrite twin, set-identical to the
/// index-free (nested-loop) twin and to a kernels-off plan, and
/// invariant across thread counts.
#[test]
fn vector_scan_plan_agrees_with_scalar_twins() {
    let config = GeneratorConfig {
        n_entities: 1200,
        overlap: 0.5,
        homonym_rate: 0.1,
        ilfd_coverage: 0.9,
        noise: 0.05,
        n_specialities: 16,
        n_cuisines: 6,
        seed: 42,
    };
    let w = generate(&config);
    let base = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
    let matcher = EntityMatcher::new(w.r.clone(), w.s.clone(), base).unwrap();
    let outcome = matcher.run().unwrap();
    let rb = matcher.rule_base().unwrap();
    let ext_r = &outcome.extended_r.relation;
    let ext_s = &outcome.extended_s.relation;
    let guard = RunGuard::unlimited();

    let exec = Executor::new(ext_r, ext_s, &rb, 2);
    assert!(
        exec.kernels_enabled(),
        "kernels default on in this environment"
    );
    let plan = exec.plan(true, true, ArmHint::Auto);
    let vector_nodes = plan
        .nodes
        .iter()
        .filter(|n| matches!(n.kind, PlanNodeKind::VectorScan { .. }))
        .count();
    assert!(
        vector_nodes > 0,
        "Auto planner must emit VectorScan at n_entities=1200"
    );

    let baseline = exec.execute(&plan, &guard).unwrap();
    let golden = canon_pairs(&baseline);

    // Serial rewrite twin: byte-identical emission, not just the
    // same set — the vectorized scans enumerate drivers and rows in
    // the same ascending order the scalar paths do.
    let serial = exec.execute(&plan.rewrite_serial(), &guard).unwrap();
    assert_eq!(
        serial.matching, baseline.matching,
        "serial twin: matching order"
    );
    assert_eq!(
        serial.negative, baseline.negative,
        "serial twin: negative order"
    );

    // Index-free (nested-loop) twin: same sets. The rewrite drops
    // every VectorScan back to a scalar residual scan.
    let nested_plan = plan.rewrite_index_free().rewrite_serial();
    assert!(
        !nested_plan
            .nodes
            .iter()
            .any(|n| matches!(n.kind, PlanNodeKind::VectorScan { .. })),
        "rewrite_index_free must lower VectorScan"
    );
    let nested = exec.execute(&nested_plan, &guard).unwrap();
    assert_eq!(canon_pairs(&nested), golden, "index-free twin");

    // Kernels-off executor: scalar plan, same sets.
    let mut scalar_exec = Executor::new(ext_r, ext_s, &rb, 2);
    scalar_exec.set_kernels(false);
    let scalar_plan = scalar_exec.plan(true, true, ArmHint::Auto);
    assert!(
        !scalar_plan
            .nodes
            .iter()
            .any(|n| matches!(n.kind, PlanNodeKind::VectorScan { .. })),
        "kernels-off planner must not emit VectorScan"
    );
    let scalar = scalar_exec.execute(&scalar_plan, &guard).unwrap();
    assert_eq!(canon_pairs(&scalar), golden, "kernels off vs on");

    // Thread invariance: the vectorized plan's output does not
    // depend on the worker count.
    for threads in [1usize, 2, 7] {
        let exec_t = Executor::new(ext_r, ext_s, &rb, threads);
        let plan_t = exec_t.plan(true, true, ArmHint::Auto);
        let got = exec_t.execute(&plan_t, &guard).unwrap();
        assert_eq!(
            canon_pairs(&got),
            golden,
            "threads={threads} changed the pair sets"
        );
    }
}
