//! Property-based validation of the entity-identification engine on
//! synthetic integrated worlds with ground truth: soundness (§3.2),
//! monotonicity (§3.3), join-algorithm agreement, integrated-table
//! invariants, and CSV round-trips.

use proptest::prelude::*;

use entity_id::core::integrate::IntegratedTable;
use entity_id::datagen::{generate, GeneratorConfig};
use entity_id::prelude::*;
use entity_id::relational::csv;

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        10..80usize,  // n_entities
        0.0..1.0f64,  // overlap
        0.0..0.4f64,  // homonym_rate
        0.0..1.0f64,  // ilfd_coverage
        any::<u64>(), // seed
    )
        .prop_map(|(n, overlap, homonym, coverage, seed)| GeneratorConfig {
            n_entities: n,
            overlap,
            homonym_rate: homonym,
            ilfd_coverage: coverage,
            noise: 0.0,
            n_specialities: 16,
            n_cuisines: 6,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The ILFD technique is sound on every generated world: no false
    /// matches, no false refutations, and the §3.2 verification
    /// passes.
    #[test]
    fn matcher_is_always_sound(config in arb_config()) {
        let w = generate(&config);
        let outcome = EntityMatcher::new(
            w.r.clone(), w.s.clone(),
            MatchConfig::new(w.extended_key.clone(), w.ilfds.clone()),
        ).unwrap().run().unwrap();
        outcome.verify().unwrap();
        let eval = Evaluation::compute(
            &w.truth, &outcome.matching, &outcome.negative, w.r.len() * w.s.len());
        prop_assert!(eval.is_sound(), "{eval:?} for {config:?}");
    }

    /// Full ILFD coverage additionally yields full recall.
    #[test]
    fn full_coverage_finds_everything(mut config in arb_config()) {
        config.ilfd_coverage = 1.0;
        let w = generate(&config);
        let outcome = EntityMatcher::new(
            w.r.clone(), w.s.clone(),
            MatchConfig::new(w.extended_key.clone(), w.ilfds.clone()),
        ).unwrap().run().unwrap();
        let eval = Evaluation::compute(
            &w.truth, &outcome.matching, &outcome.negative, w.r.len() * w.s.len());
        prop_assert_eq!(eval.match_recall(), 1.0, "{:?}", config);
    }

    /// Hash join and nested loop produce identical tables.
    #[test]
    fn join_algorithms_agree(config in arb_config()) {
        let w = generate(&config);
        let mut c = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
        let hash = EntityMatcher::new(w.r.clone(), w.s.clone(), c.clone())
            .unwrap().run().unwrap();
        c.join = JoinAlgorithm::NestedLoop;
        let nested = EntityMatcher::new(w.r.clone(), w.s.clone(), c)
            .unwrap().run().unwrap();
        prop_assert!(hash.matching.includes(&nested.matching));
        prop_assert!(nested.matching.includes(&hash.matching));
        prop_assert!(hash.negative.includes(&nested.negative));
        prop_assert!(nested.negative.includes(&hash.negative));
    }

    /// First-match and fixpoint derivation agree whenever the ILFD
    /// set is conflict-free (the generator's families are functional,
    /// so they always are).
    #[test]
    fn derivation_strategies_agree(config in arb_config()) {
        let w = generate(&config);
        let mut c = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
        let first = EntityMatcher::new(w.r.clone(), w.s.clone(), c.clone())
            .unwrap().run().unwrap();
        c.strategy = DerivationStrategy::Fixpoint;
        let fix = EntityMatcher::new(w.r.clone(), w.s.clone(), c)
            .unwrap().run().unwrap();
        prop_assert!(first.matching.includes(&fix.matching));
        prop_assert!(fix.matching.includes(&first.matching));
    }

    /// Monotonicity (§3.3): sweeping ILFDs in any prefix order never
    /// retracts a decision.
    #[test]
    fn knowledge_sweeps_are_monotonic(mut config in arb_config()) {
        config.n_entities = config.n_entities.min(30); // sweep is quadratic
        config.ilfd_coverage = 1.0;
        let w = generate(&config);
        let ilfds: Vec<_> = w.full_ilfds.iter().cloned().collect();
        let base = MatchConfig::new(w.extended_key.clone(), IlfdSet::new());
        let sweep = entity_id::core::monotonic::KnowledgeSweep::run(
            &w.r, &w.s, &base, &ilfds).unwrap();
        prop_assert_eq!(sweep.verify_monotonic(), None);
        // Undetermined counts are non-increasing.
        for win in sweep.steps.windows(2) {
            prop_assert!(win[1].partition.undetermined <= win[0].partition.undetermined);
        }
    }

    /// Integrated-table invariants: row count is |R| + |S| − |MT|,
    /// and every R tuple's street (a column unique to R) appears
    /// exactly once.
    #[test]
    fn integrated_table_accounts_for_every_tuple(config in arb_config()) {
        let w = generate(&config);
        let outcome = EntityMatcher::new(
            w.r.clone(), w.s.clone(),
            MatchConfig::new(w.extended_key.clone(), w.ilfds.clone()),
        ).unwrap().run().unwrap();
        // Only valid when MT is one-to-one, which soundness guarantees.
        outcome.verify().unwrap();
        let t = IntegratedTable::build(&w.r, &w.s, &outcome, &w.extended_key).unwrap();
        prop_assert_eq!(t.len(), w.r.len() + w.s.len() - outcome.matching.len());

        let street_pos = t.relation().schema()
            .position(&"r_street".into()).unwrap();
        let mut streets: Vec<String> = t.relation().iter()
            .filter_map(|row| row.get(street_pos).as_str().map(str::to_string))
            .collect();
        streets.sort();
        let mut expected: Vec<String> = w.r.iter()
            .map(|row| row.get(2).as_str().unwrap().to_string())
            .collect();
        expected.sort();
        prop_assert_eq!(streets, expected);
    }

    /// Relations survive a CSV round trip.
    #[test]
    fn csv_round_trip(config in arb_config()) {
        let w = generate(&config);
        for rel in [&w.r, &w.s, &w.universe] {
            let text = csv::to_csv(rel);
            let back = csv::from_csv(rel.schema().clone(), &text).unwrap();
            prop_assert!(rel.same_tuples(&back));
        }
    }

    /// The generator's promise: its extended key really is a key of
    /// the universe, so extended-key equivalence is a valid identity
    /// rule for these worlds.
    #[test]
    fn generated_extended_key_is_valid(config in arb_config()) {
        let w = generate(&config);
        prop_assert!(w.extended_key.unique_in(&w.universe));
    }
}
