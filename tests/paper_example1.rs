//! Experiment E1 — the paper's Example 1 (Table 1).
//!
//! Demonstrates why naive common-attribute matching fails and how the
//! extra semantic information the paper hints at ("restaurants have
//! unique (name, street, city); Wash. Ave. is only in Mpls; the
//! restaurant owned by Hwang is only on Wash. Ave.") resolves it.

use entity_id::baselines::{run_technique, KeyEquivalence};
use entity_id::datagen::restaurant;
use entity_id::prelude::*;

/// Naive matching on the common attribute `name` matches VillageWok
/// and OldCountry across the two relations.
#[test]
fn name_matching_looks_plausible_before_the_insert() {
    let (r, s) = restaurant::example1();
    let naive = KeyEquivalence::new(&["name"], true);
    let outcome = run_technique(&naive, &r, &s);
    assert_eq!(outcome.matching.len(), 2);
    // And the uniqueness constraint holds — so the flaw is invisible.
    assert!(outcome.matching.verify_uniqueness().is_ok());
}

/// After inserting ("VillageWok", "Penn.Ave."), one S tuple matches
/// two R tuples: the uniqueness constraint (§3.2) is violated and the
/// naive technique is exposed as unsound.
#[test]
fn ambiguous_insert_breaks_uniqueness() {
    let (mut r, s) = restaurant::example1();
    restaurant::example1_ambiguous_insert(&mut r);
    let naive = KeyEquivalence::new(&["name"], true);
    let outcome = run_technique(&naive, &r, &s);
    assert_eq!(outcome.matching.len(), 3);
    let err = outcome.matching.verify_uniqueness().unwrap_err();
    assert!(err.to_string().contains("villagewok"));
}

/// The paper's fix: with the extended key {name, street, city} and
/// ILFDs capturing the extra knowledge, the first tuples match and
/// the Penn. Ave. insertion no longer causes any problem.
#[test]
fn extended_key_with_ilfds_resolves_the_ambiguity() {
    let (mut r, s) = restaurant::example1();
    restaurant::example1_ambiguous_insert(&mut r);

    let key = ExtendedKey::of_strs(&["name", "street", "city"]);
    let ilfds: IlfdSet = vec![
        // "Wash.Ave. is only in city Mpls."
        Ilfd::of_strs(&[("street", "wash_ave")], &[("city", "mpls")]),
        // "The restaurant owned by Hwang is only on Wash.Ave." —
        // manager is an S attribute; derive the street from it.
        Ilfd::of_strs(&[("manager", "hwang")], &[("street", "wash_ave")]),
    ]
    .into_iter()
    .collect();

    let outcome = EntityMatcher::new(r, s, MatchConfig::new(key, ilfds))
        .unwrap()
        .run()
        .unwrap();
    outcome.verify().expect("sound under the extended key");

    // Exactly the Wash. Ave. VillageWok matches; Penn. Ave. does not.
    assert_eq!(outcome.matching.len(), 1);
    let e = &outcome.matching.entries()[0];
    assert_eq!(e.r_key, Tuple::of_strs(&["villagewok", "wash_ave"]));
    assert_eq!(e.s_key, Tuple::of_strs(&["villagewok", "mpls"]));
}

/// Without city knowledge, OldCountry's Roseville record cannot be
/// matched to the Co. B2 Rd. record — the sound technique stays
/// undetermined rather than guessing.
#[test]
fn sound_technique_prefers_undetermined_over_guessing() {
    let (r, s) = restaurant::example1();
    let key = ExtendedKey::of_strs(&["name", "street", "city"]);
    let ilfds: IlfdSet = vec![Ilfd::of_strs(
        &[("street", "wash_ave")],
        &[("city", "mpls")],
    )]
    .into_iter()
    .collect();
    let outcome = EntityMatcher::new(r, s, MatchConfig::new(key, ilfds))
        .unwrap()
        .run()
        .unwrap();
    outcome.verify().unwrap();
    // Nothing is provable without the Hwang rule: street of S tuples
    // is underivable, so no extended-key match fires.
    assert_eq!(outcome.matching.len(), 0);
    assert!(outcome.undetermined > 0);
}
