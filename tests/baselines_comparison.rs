//! Experiment S3 (deterministic slice) — the five §2.2 baselines vs
//! the paper's ILFD technique on worlds with instance-level homonyms.
//!
//! The shape claim from the paper: techniques that guess (key
//! equivalence on a non-key, probabilistic matching, heuristics) lose
//! soundness as homonyms appear, while the ILFD technique stays sound
//! (it simply leaves harder pairs undetermined).

use entity_id::baselines::{
    evaluate_technique, KeyEquivalence, ProbabilisticAttr, ProbabilisticKey, UserSpecified,
};
use entity_id::datagen::{generate, GeneratorConfig};
use entity_id::prelude::*;

fn homonym_world(homonym_rate: f64) -> entity_id::datagen::Workload {
    generate(&GeneratorConfig {
        n_entities: 120,
        overlap: 0.6,
        homonym_rate,
        ilfd_coverage: 1.0,
        noise: 0.1,
        seed: 99,
        ..GeneratorConfig::default()
    })
}

fn ilfd_eval(w: &entity_id::datagen::Workload) -> Evaluation {
    let outcome = EntityMatcher::new(
        w.r.clone(),
        w.s.clone(),
        MatchConfig::new(w.extended_key.clone(), w.ilfds.clone()),
    )
    .unwrap()
    .run()
    .unwrap();
    Evaluation::compute(
        &w.truth,
        &outcome.matching,
        &outcome.negative,
        w.r.len() * w.s.len(),
    )
}

/// With no homonyms, name matching happens to work; with homonyms it
/// produces false matches while the ILFD technique stays sound.
#[test]
fn key_equivalence_breaks_under_homonyms_ilfd_does_not() {
    let clean = homonym_world(0.0);
    let dirty = homonym_world(0.35);

    let naive = KeyEquivalence::new(&["name"], true);
    let clean_eval = evaluate_technique(&naive, &clean.r, &clean.s, &clean.truth);
    assert_eq!(
        clean_eval.false_matches, 0,
        "no homonyms → no false matches"
    );

    let dirty_eval = evaluate_technique(&naive, &dirty.r, &dirty.s, &dirty.truth);
    assert!(
        dirty_eval.false_matches > 0,
        "homonyms must break name matching: {dirty_eval:?}"
    );

    let ilfd = ilfd_eval(&dirty);
    assert!(ilfd.is_sound(), "{ilfd:?}");
    assert_eq!(ilfd.match_recall(), 1.0);
}

/// The probabilistic techniques trade soundness for coverage: on
/// noisy, homonym-ridden worlds they admit erroneous matches.
#[test]
fn probabilistic_techniques_admit_errors() {
    let w = homonym_world(0.35);

    let prob_key = ProbabilisticKey::new(&["name"], 0.6, 0.1);
    let pk = evaluate_technique(&prob_key, &w.r, &w.s, &w.truth);
    assert!(pk.false_matches > 0, "{pk:?}");

    let prob_attr = ProbabilisticAttr::uniform(0.9, 0.2);
    let pa = evaluate_technique(&prob_attr, &w.r, &w.s, &w.truth);
    // Common attributes are (name, city): homonym pairs in the same
    // city agree on everything common → false matches.
    assert!(pa.false_matches > 0, "{pa:?}");
}

/// A perfectly maintained user table is sound and complete — the
/// oracle upper bound — but thinning it (partial maintenance) loses
/// completeness while keeping soundness.
#[test]
fn user_table_oracle_and_partial_maintenance() {
    let w = homonym_world(0.2);
    let full = UserSpecified::from_truth(
        w.truth.iter().cloned(),
        vec![0, 2], // (name, street) positions in R
        vec![0, 1], // (name, speciality) positions in S
    );
    let full_eval = evaluate_technique(&full, &w.r, &w.s, &w.truth);
    assert!(full_eval.is_sound());
    assert_eq!(full_eval.completeness(), 1.0);
    assert_eq!(full_eval.match_recall(), 1.0);

    let mut k = 0;
    let half = full.thin(|_| {
        k += 1;
        k % 2 == 0
    });
    let half_eval = evaluate_technique(&half, &w.r, &w.s, &w.truth);
    assert!(half_eval.is_sound());
    assert!(half_eval.match_recall() < 1.0);
    assert!(half_eval.completeness() < 1.0);
}

/// The central comparison: across homonym rates, only the ILFD
/// technique (and the oracle) keep precision 1.0.
#[test]
fn precision_across_homonym_rates() {
    for rate in [0.0, 0.15, 0.3] {
        let w = homonym_world(rate);
        let ilfd = ilfd_eval(&w);
        assert_eq!(
            ilfd.match_precision(),
            1.0,
            "ILFD precision dropped at homonym rate {rate}"
        );
        let naive = evaluate_technique(&KeyEquivalence::new(&["name"], true), &w.r, &w.s, &w.truth);
        if rate > 0.0 {
            assert!(
                naive.match_precision() < 1.0,
                "expected naive precision < 1 at rate {rate}"
            );
        }
    }
}
