//! Property tests for the relational algebra: the laws the §4.2
//! pipeline silently relies on (join symmetry, semi/anti partition,
//! outer-join row accounting, projection idempotence) on randomized
//! relations with NULLs.

use proptest::prelude::*;

use entity_id::relational::{algebra, AttrName, Relation, Schema, Tuple, Value};

/// A random two-column relation with NULLs and small value domains
/// (to force joins, duplicates and NULL paths).
fn arb_relation(name: &'static str) -> impl Strategy<Value = Relation> {
    prop::collection::vec(
        (prop::option::of(0..4i64), prop::option::of(0..3i64)),
        0..12,
    )
    .prop_map(move |rows| {
        let schema = Schema::new(
            name,
            vec![
                entity_id::relational::Attribute::int("k"),
                entity_id::relational::Attribute::int("v"),
            ],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new_unchecked(schema);
        for (k, v) in rows {
            rel.insert(Tuple::new(vec![
                k.map(Value::int).unwrap_or(Value::Null),
                v.map(Value::int).unwrap_or(Value::Null),
            ]))
            .unwrap();
        }
        rel
    })
}

fn on() -> [(AttrName, AttrName); 1] {
    [(AttrName::new("k"), AttrName::new("k"))]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// |A ⋈ B| = |B ⋈ A| (join cardinality is symmetric).
    #[test]
    fn equi_join_cardinality_symmetric(a in arb_relation("A"), b in arb_relation("B")) {
        let ab = algebra::equi_join(&a, &b, &on()).unwrap();
        let ba = algebra::equi_join(&b, &a, &on()).unwrap();
        prop_assert_eq!(ab.len(), ba.len());
    }

    /// Semi-join + anti-join partition the left relation.
    #[test]
    fn semi_anti_partition(a in arb_relation("A"), b in arb_relation("B")) {
        let semi = algebra::semi_join(&a, &b, &on()).unwrap();
        let anti = algebra::anti_join(&a, &b, &on()).unwrap();
        // Set semantics: duplicates collapse in anti (difference), so
        // compare as sets against the deduplicated left side.
        let dedup_a = algebra::union(&a, &a).unwrap();
        let dedup_semi = algebra::union(&semi, &semi).unwrap();
        let rejoined = algebra::union(&dedup_semi, &anti).unwrap();
        prop_assert!(rejoined.same_tuples(&dedup_a));
    }

    /// Full outer join accounts for every input tuple: its row count
    /// is |A ⋈ B| + |dangling A| + |dangling B|, and at least
    /// max(|A|, |B|).
    #[test]
    fn full_outer_join_accounting(a in arb_relation("A"), b in arb_relation("B")) {
        let inner = algebra::equi_join(&a, &b, &on()).unwrap();
        let full = algebra::outer_join(&a, &b, &on(), algebra::JoinSide::Full).unwrap();
        let left = algebra::outer_join(&a, &b, &on(), algebra::JoinSide::Left).unwrap();
        let right = algebra::outer_join(&a, &b, &on(), algebra::JoinSide::Right).unwrap();
        prop_assert!(full.len() >= a.len().max(b.len()));
        // full = inner + (left − inner) + (right − inner)
        prop_assert_eq!(
            full.len(),
            inner.len() + (left.len() - inner.len()) + (right.len() - inner.len())
        );
    }

    /// Projection is idempotent and never grows the relation.
    #[test]
    fn projection_idempotent(a in arb_relation("A")) {
        let attrs = [AttrName::new("k")];
        let p1 = algebra::project(&a, &attrs).unwrap();
        let p2 = algebra::project(&p1, &attrs).unwrap();
        prop_assert!(p1.same_tuples(&p2));
        prop_assert!(p1.len() <= a.len());
    }

    /// Union is commutative and difference-consistent:
    /// (A ∪ B) − B ⊆ A.
    #[test]
    fn union_difference_laws(a in arb_relation("A"), b in arb_relation("B")) {
        let ab = algebra::union(&a, &b).unwrap();
        let ba = algebra::union(&b, &a).unwrap();
        prop_assert!(ab.same_tuples(&ba));
        let diff = algebra::difference(&ab, &b).unwrap();
        for t in diff.iter() {
            prop_assert!(a.tuples().contains(t));
        }
    }

    /// NULL keys never join, in any operator.
    #[test]
    fn nulls_never_join_anywhere(a in arb_relation("A"), b in arb_relation("B")) {
        let semi = algebra::semi_join(&a, &b, &on()).unwrap();
        prop_assert!(semi.iter().all(|t| !t.get(0).is_null()));
        let inner = algebra::equi_join(&a, &b, &on()).unwrap();
        prop_assert!(inner.iter().all(|t| !t.get(0).is_null()));
    }
}
