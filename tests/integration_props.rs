//! Property tests for the post-match layers: attribute-conflict
//! unification and the virtual-integration view.

use proptest::prelude::*;

use entity_id::core::conflict::{detect_conflicts, unify, ConflictPolicy};
use entity_id::core::virtual_view::{filter_integrated, Selection, VirtualView};
use entity_id::datagen::{generate, GeneratorConfig};
use entity_id::prelude::*;

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        10..60usize,
        0.0..1.0f64,
        0.0..0.3f64,
        0.0..0.5f64,
        any::<u64>(),
    )
        .prop_map(|(n, overlap, homonym, noise, seed)| GeneratorConfig {
            n_entities: n,
            overlap,
            homonym_rate: homonym,
            ilfd_coverage: 1.0,
            noise,
            n_specialities: 12,
            n_cuisines: 5,
            seed,
        })
}

fn run(w: &entity_id::datagen::Workload) -> MatchOutcome {
    EntityMatcher::new(
        w.r.clone(),
        w.s.clone(),
        MatchConfig::new(w.extended_key.clone(), w.ilfds.clone()),
    )
    .unwrap()
    .run()
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Unify invariants: row count is |R| + |S| − |MT|; with noise 0
    /// there are no conflicts; every conflict is on the shared `city`
    /// column; and the policy decides the surviving value.
    #[test]
    fn unify_invariants(config in arb_config()) {
        let w = generate(&config);
        let outcome = run(&w);
        outcome.verify().unwrap();
        let conflicts = detect_conflicts(&w.r, &w.s, &outcome).unwrap();
        if config.noise == 0.0 {
            prop_assert!(conflicts.is_empty());
        }
        for c in &conflicts {
            prop_assert_eq!(c.attr.as_str(), "city");
        }
        for policy in [ConflictPolicy::PreferR, ConflictPolicy::PreferS, ConflictPolicy::Null] {
            let u = unify(&w.r, &w.s, &outcome, policy).unwrap();
            prop_assert_eq!(
                u.relation.len(),
                w.r.len() + w.s.len() - outcome.matching.len()
            );
            prop_assert_eq!(u.conflicts.len(), conflicts.len());
        }
        // Spot-check the policy semantics on the first conflict.
        if let Some(c) = conflicts.first() {
            let city = entity_id::relational::AttrName::new("city");
            for (policy, expected) in [
                (ConflictPolicy::PreferR, Some(c.r_value.clone())),
                (ConflictPolicy::PreferS, Some(c.s_value.clone())),
                (ConflictPolicy::Null, None),
            ] {
                let u = unify(&w.r, &w.s, &outcome, policy).unwrap();
                // Find the merged row for this pair via its name+street
                // (R's key is (name, street), both present unprefixed).
                let schema = u.relation.schema().clone();
                let name_pos = schema.position(&"name".into()).unwrap();
                let street_pos = schema.position(&"street".into()).unwrap();
                let row = u.relation.iter().find(|t| {
                    t.get(name_pos) == c.r_key.get(0) && t.get(street_pos) == c.r_key.get(1)
                }).expect("merged row present");
                let got = row.value_of(&schema, &city).unwrap();
                match expected {
                    Some(v) => prop_assert_eq!(got, &v),
                    None => prop_assert!(got.is_null()),
                }
            }
        }
    }

    /// Virtual-view pushdown equals materialize-then-filter for
    /// random equality selections (including empty results).
    #[test]
    fn virtual_view_equals_oracle(config in arb_config(), pick in any::<prop::sample::Index>()) {
        let w = generate(&config);
        let view = VirtualView::new(
            w.r.clone(),
            w.s.clone(),
            MatchConfig::new(w.extended_key.clone(), w.ilfds.clone()),
        );
        let materialized = view.materialize().unwrap();

        // Random selections drawn from the universe plus one miss.
        let entity = &w.universe.tuples()[pick.index(w.universe.len())];
        let selections: Vec<Vec<Selection>> = vec![
            vec![Selection::eq("name", entity.get(0).clone())],
            vec![Selection::eq("cuisine", entity.get(1).clone())],
            vec![
                Selection::eq("name", entity.get(0).clone()),
                Selection::eq("cuisine", entity.get(1).clone()),
            ],
            vec![Selection::eq("name", "no_such_restaurant")],
            // city is shared and non-key, and the generator's noise
            // creates conflicts on it — the pushdown-safety regression.
            vec![Selection::eq("city", entity.get(4).clone())],
        ];
        for sel in selections {
            let fast = view.select(&sel).unwrap();
            let oracle = filter_integrated(&materialized, &sel).unwrap();
            prop_assert!(
                fast.table.relation().same_tuples(oracle.relation()),
                "divergence on {:?}: fast={} oracle={}",
                sel, fast.table.len(), oracle.len()
            );
            // Pushdown never scans more than the full relations.
            prop_assert!(fast.scanned_r <= w.r.len());
            prop_assert!(fast.scanned_s <= w.s.len());
        }
    }
}
