//! Property-based hardening checks: under *any* fault schedule or
//! budget, the matcher either returns the exact fault-free decision
//! sets or a typed error — never a panic escaping the API, never an
//! unsound partial table. And a cancelled incremental event followed
//! by a resume is monotonic: the abort changes nothing, the retry
//! lands the full event.
//!
//! The fault plan is process-global; every test that arms one
//! serializes on a mutex and clears it before returning.

use std::sync::Mutex;

use proptest::prelude::*;

use entity_id::core::error::CoreError;
use entity_id::core::matcher::{EntityMatcher, MatchConfig, MatchOutcome};
use entity_id::core::runtime::{AbortReason, RunBudget};
use entity_id::core::{IncrementalMatcher, SideSel};
use entity_id::datagen::{generate, GeneratorConfig, Workload};
use entity_id::relational::Relation;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Every fault site the runtime exposes (CSV sites are exercised in
/// the relational crate's own tests; the spill I/O sites only fire
/// under spilled emission, exercised by `chaos_props`; the store
/// sites only fire on dataset encode/open, exercised by
/// `store_props` — here they are inert and prove unfired sites
/// change nothing).
const SITES: [&str; 13] = [
    "engine/worker",
    "engine/serial",
    "engine/nested",
    "engine/sink_merge",
    "interner/poison",
    "convert/worker",
    "sink/spill_open",
    "sink/spill_write",
    "sink/spill_read",
    "store/open",
    "store/read",
    "store/write",
    "csv/read",
];

fn world(n: usize, seed: u64) -> (Workload, MatchConfig) {
    let w = generate(&GeneratorConfig {
        n_entities: n,
        overlap: 0.6,
        homonym_rate: 0.2,
        ilfd_coverage: 1.0,
        noise: 0.0,
        n_specialities: 12,
        n_cuisines: 5,
        seed,
    });
    let config = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
    (w, config)
}

fn sorted_entries(t: &entity_id::core::match_table::PairTable) -> Vec<String> {
    let mut v: Vec<String> = t.entries().iter().map(|e| format!("{e:?}")).collect();
    v.sort();
    v
}

fn assert_same_decisions(a: &MatchOutcome, b: &MatchOutcome) {
    assert_eq!(sorted_entries(&a.matching), sorted_entries(&b.matching));
    assert_eq!(sorted_entries(&a.negative), sorted_entries(&b.negative));
    assert_eq!(a.undetermined, b.undetermined);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// ANY two-clause fault schedule: the run either lands the exact
    /// fault-free decision sets (possibly via a degraded arm) or a
    /// typed `WorkerPanic` — and the §3.2 verification holds either
    /// way. No schedule may leak a raw panic or a half table.
    #[test]
    fn any_fault_schedule_is_exact_or_typed(
        n in 10..50usize,
        world_seed in any::<u64>(),
        fault_seed in any::<u64>(),
        s1 in 0..12usize, k1 in 1..12u64,
        s2 in 0..12usize, k2 in 1..12u64,
    ) {
        let _l = lock();
        eid_fault::quiet_panics();
        let (w, config) = world(n, world_seed);

        let mut serial = config.clone();
        serial.threads = 1;
        let oracle = EntityMatcher::new(w.r.clone(), w.s.clone(), serial)
            .unwrap().run().unwrap();

        let plan = format!("{}@{};{}@{}", SITES[s1], k1, SITES[s2], k2);
        eid_fault::install(&plan, fault_seed).unwrap();
        let mut faulty = config;
        faulty.threads = 3;
        let got = EntityMatcher::new(w.r.clone(), w.s.clone(), faulty)
            .unwrap().run();
        eid_fault::clear();

        match got {
            Ok(outcome) => {
                assert_same_decisions(&oracle, &outcome);
                outcome.verify().unwrap();
            }
            Err(CoreError::WorkerPanic { .. }) => {} // ladder exhausted: typed
            Err(other) => prop_assert!(false, "untyped failure: {other}"),
        }
    }

    /// ANY pair budget: the run either completes with the exact
    /// fault-free decisions or trips as a typed abort whose partial
    /// stats are consistent with the budget.
    #[test]
    fn any_pair_budget_is_exact_or_typed_abort(
        n in 10..50usize,
        world_seed in any::<u64>(),
        max_pairs in 1..20_000u64,
    ) {
        let _l = lock();
        let (w, config) = world(n, world_seed);

        let mut serial = config.clone();
        serial.threads = 1;
        let oracle = EntityMatcher::new(w.r.clone(), w.s.clone(), serial)
            .unwrap().run().unwrap();

        let mut budgeted = config;
        budgeted.threads = 1;
        budgeted.budget = RunBudget {
            max_candidate_pairs: Some(max_pairs),
            ..RunBudget::default()
        };
        match EntityMatcher::new(w.r.clone(), w.s.clone(), budgeted).unwrap().run() {
            Ok(outcome) => assert_same_decisions(&oracle, &outcome),
            Err(CoreError::Aborted { reason, partial }) => {
                match reason {
                    AbortReason::PairBudgetExceeded { limit, observed } => {
                        prop_assert_eq!(limit, max_pairs);
                        prop_assert!(observed > limit);
                        prop_assert!(partial.pairs_charged == observed);
                    }
                    other => prop_assert!(false, "wrong reason: {other}"),
                }
            }
            Err(other) => prop_assert!(false, "untyped failure: {other}"),
        }
    }

    /// §3.3 under cancellation: an aborted incremental event leaves
    /// the tables untouched; re-arming the guard and retrying lands
    /// the full event. Decisions never retract, and the final state
    /// equals the batch oracle.
    #[test]
    fn cancel_then_resume_is_monotonic(
        n in 5..25usize,
        world_seed in any::<u64>(),
        max_pairs in 0..60u64,
    ) {
        let _l = lock();
        let (w, config) = world(n, world_seed);
        let tight = RunBudget {
            max_candidate_pairs: Some(max_pairs),
            ..RunBudget::default()
        };

        let empty_r = Relation::new(w.r.schema().clone());
        let empty_s = Relation::new(w.s.schema().clone());
        let mut m = IncrementalMatcher::new(empty_r, empty_s, config.clone()).unwrap();
        m.set_budget(&tight);

        let script: Vec<(SideSel, _)> = w
            .r.iter().map(|t| (SideSel::R, t.clone()))
            .chain(w.s.iter().map(|t| (SideSel::S, t.clone())))
            .collect();
        let mut aborts = 0u32;
        for (side, tuple) in script {
            let (before_m, before_n) = (m.matching().len(), m.negative().len());
            let (before_r, before_s) = {
                let (r, s) = m.relations();
                (r.len(), s.len())
            };
            match m.insert(side, tuple.clone()) {
                Ok(_) => {}
                Err(CoreError::Aborted { .. }) => {
                    aborts += 1;
                    // The aborted event must not have leaked anything:
                    // no decisions, and the base insert rolled back.
                    prop_assert_eq!(m.matching().len(), before_m);
                    prop_assert_eq!(m.negative().len(), before_n);
                    let (r, s) = m.relations();
                    prop_assert_eq!((r.len(), s.len()), (before_r, before_s));
                    // Resume: re-arm and retry the same event.
                    m.set_budget(&RunBudget::default());
                    m.insert(side, tuple).unwrap();
                    m.set_budget(&tight);
                }
                Err(other) => prop_assert!(false, "untyped failure: {other}"),
            }
            // Monotone: decisions never retract across any event.
            prop_assert!(m.matching().len() >= before_m);
            prop_assert!(m.negative().len() >= before_n);
        }
        m.verify().unwrap();

        // The resumed state equals a from-scratch batch run.
        let (br, bs) = m.relations();
        let mut batch_cfg = config;
        batch_cfg.threads = 1;
        let batch = EntityMatcher::new(br.clone(), bs.clone(), batch_cfg)
            .unwrap().run().unwrap();
        prop_assert!(m.matching().includes(&batch.matching));
        prop_assert!(batch.matching.includes(m.matching()));
        prop_assert!(m.negative().includes(&batch.negative));
        prop_assert!(batch.negative.includes(m.negative()));
        // With a zero budget and tuples on both sides, at least one
        // event must actually have tripped and been resumed.
        let (fr, fs) = m.relations();
        if max_pairs == 0 && !fr.is_empty() && !fs.is_empty() {
            prop_assert!(aborts > 0, "budget never tripped");
        }
    }
}
