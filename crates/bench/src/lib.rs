//! Shared helpers for the benchmark harness and the `experiments`
//! binary: canned workload configurations and ILFD-set builders used
//! by both the Criterion benches and the table regeneration.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use eid_datagen::{generate, GeneratorConfig, Workload};
use eid_ilfd::{Ilfd, IlfdSet, PropSymbol, SymbolSet};
use eid_relational::Value;

/// A scaling workload with `n` entities and everything else at
/// benchmark defaults (full coverage, mild homonyms).
pub fn scaling_workload(n: usize, seed: u64) -> Workload {
    generate(&GeneratorConfig {
        n_entities: n,
        overlap: 0.5,
        homonym_rate: 0.1,
        ilfd_coverage: 1.0,
        noise: 0.0,
        n_specialities: 32,
        n_cuisines: 10,
        seed,
    })
}

/// A synthetic ILFD chain `a₀=0 → a₁=0 → … → a_depth=0` for closure
/// and derivation benchmarks (worst-case sequential firing).
pub fn chain_ilfds(depth: usize) -> IlfdSet {
    (0..depth)
        .map(|i| {
            Ilfd::new(
                SymbolSet::from_symbols([PropSymbol::new(format!("a{i}"), Value::int(0))]),
                SymbolSet::from_symbols([PropSymbol::new(format!("a{}", i + 1), Value::int(0))]),
            )
        })
        .collect()
}

/// A wide, flat ILFD family: `spec=i → cui=(i mod k)` over `n` rules —
/// the realistic shape of DBA-asserted domain knowledge.
pub fn flat_ilfds(n: usize, k: usize) -> IlfdSet {
    (0..n as i64)
        .map(|i| {
            Ilfd::new(
                SymbolSet::from_symbols([PropSymbol::new("spec", Value::int(i))]),
                SymbolSet::from_symbols([PropSymbol::new("cui", Value::int(i % k as i64))]),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_ilfd::closure::symbol_closure;

    #[test]
    fn chain_closure_reaches_the_end() {
        let f = chain_ilfds(10);
        let start = SymbolSet::from_symbols([PropSymbol::new("a0", Value::int(0))]);
        let plus = symbol_closure(&start, &f);
        assert_eq!(plus.len(), 11);
    }

    #[test]
    fn flat_family_size() {
        assert_eq!(flat_ilfds(50, 7).len(), 50);
    }

    #[test]
    fn scaling_workload_scales() {
        let small = scaling_workload(20, 1);
        let large = scaling_workload(200, 1);
        assert!(large.r.len() > small.r.len());
    }
}
