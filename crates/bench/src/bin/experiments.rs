//! Regenerates every table and figure of Lim et al. (ICDE 1993) plus
//! the repository's own quantitative studies.
//!
//! Usage:
//!
//! ```text
//! experiments [all | table1 | figure1 | figure2 | figure3 | table2_3 |
//!              table4 | table5_7 | table8 | figure4 | prototype |
//!              theory | techniques | scaling]
//! ```

use std::collections::HashMap;
use std::time::Instant;

use eid_baselines::{
    evaluate_technique, KeyEquivalence, ProbabilisticAttr, ProbabilisticKey, Technique,
    UserSpecified,
};
use eid_bench::scaling_workload;
use eid_core::algebra_pipeline;
use eid_core::integrate::IntegratedTable;
use eid_core::matcher::{EntityMatcher, JoinAlgorithm, MatchConfig};
use eid_core::metrics::Evaluation;
use eid_core::monotonic::KnowledgeSweep;
use eid_core::partition::Partition;
use eid_core::session::Session;
use eid_datagen::{generate, restaurant, GeneratorConfig};
use eid_ilfd::axioms::prove;
use eid_ilfd::closure::{enumerate_closure, implies, minimal_cover};
use eid_ilfd::tables::paper_table8;
use eid_ilfd::{Ilfd, IlfdSet};
use eid_relational::display::render_default;
use eid_rules::ExtendedKey;

fn banner(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// E1 — Table 1 and Example 1.
fn table1() {
    banner("Table 1 / Example 1: no common candidate key");
    let (mut r, s) = restaurant::example1();
    println!("{}", render_default("R (key: name, street)", &r));
    println!("{}", render_default("S (key: name, city)", &s));

    let naive = KeyEquivalence::new(&["name"], true);
    let before = eid_baselines::run_technique(&naive, &r, &s);
    println!(
        "naive name matching: {} pairs, uniqueness {}",
        before.matching.len(),
        if before.matching.verify_uniqueness().is_ok() {
            "OK (flaw hidden)"
        } else {
            "VIOLATED"
        }
    );

    restaurant::example1_ambiguous_insert(&mut r);
    println!("\ninsert (villagewok, penn_ave, chinese) into R …");
    let after = eid_baselines::run_technique(&naive, &r, &s);
    println!(
        "naive name matching: {} pairs, uniqueness {}",
        after.matching.len(),
        match after.matching.verify_uniqueness() {
            Ok(()) => "OK".to_string(),
            Err(e) => format!("VIOLATED — {e}"),
        }
    );
}

/// E2 — Figure 1: tuples vs real-world entities.
fn figure1() {
    banner("Figure 1: correspondence between tuples and entities");
    // A five-entity world: e1 R-only, e2/e3 in both, e4 unmodeled,
    // e5 S-only — the figure's a-/b- instance pattern.
    let w = generate(&GeneratorConfig {
        n_entities: 5,
        overlap: 0.5,
        homonym_rate: 0.0,
        seed: 4,
        ..GeneratorConfig::default()
    });
    println!("integrated world: {} entities", w.universe.len());
    println!(
        "relation R models {} of them, S models {}",
        w.r.len(),
        w.s.len()
    );
    println!("true matches (a_i ~ b_j pairs): {}", w.truth.len());
    for (rk, sk) in w.truth.iter().map(|p| (&p.0, &p.1)) {
        println!("  R{rk} ~ S{sk}");
    }
}

/// E3 — Figure 2: the soundness trap and the domain-attribute fix.
fn figure2() {
    banner("Figure 2: identical attribute values, different entities");
    let (db1, db2) = restaurant::figure2();
    let prob = ProbabilisticAttr::uniform(0.9, 0.2);
    let d = prob.decide(
        db1.schema(),
        &db1.tuples()[0],
        db2.schema(),
        &db2.tuples()[0],
    );
    println!("attribute-equivalence on (villagewok, chinese) vs (villagewok, chinese): {d:?}");
    println!("  → declared matching, but the entities are DIFFERENT (soundness violated)");

    let (db1, db2) = restaurant::figure2_with_domain();
    let d = prob.decide(
        db1.schema(),
        &db1.tuples()[0],
        db2.schema(),
        &db2.tuples()[0],
    );
    println!("with the domain attribute (db1 vs db2): {d:?}");
    println!("  → the pair no longer reaches the accept threshold; soundness restored");
}

/// E4 — Figure 3: the three-region partition as knowledge grows.
fn figure3() {
    banner("Figure 3: matching / not-matching / undetermined vs #ILFDs");
    let (r, s, key, ilfds) = restaurant::example3();
    let list: Vec<Ilfd> = ilfds.iter().cloned().collect();
    let config = MatchConfig::new(key, IlfdSet::new());
    let sweep = KnowledgeSweep::run(&r, &s, &config, &list).expect("sweep");
    println!("ILFDs | matching | not-matching | undetermined | completeness");
    for (k, p) in sweep.series() {
        println!(
            "{k:>5} | {:>8} | {:>12} | {:>12} | {:>10.1}%",
            p.matching,
            p.not_matching,
            p.undetermined,
            p.completeness() * 100.0
        );
    }
    assert!(sweep.verify_monotonic().is_none());
    println!("(monotonic: no decided pair ever retracted)");
}

/// E5 + E6 — Example 2 (Tables 2, 3) and Table 4.
fn table2_3_4() {
    banner("Tables 2-4 / Example 2: extended key {name, cuisine} + one ILFD");
    let (r, s, key, ilfds) = restaurant::example2();
    println!("{}", render_default("R", &r));
    println!("{}", render_default("S", &s));
    println!("ILFD: {}", ilfds.as_slice()[0]);
    let outcome = EntityMatcher::new(r, s, MatchConfig::new(key, ilfds))
        .expect("matcher")
        .run()
        .expect("run");
    println!(
        "\n{}",
        render_default(
            "Table 3 — matching table MT_RS",
            &outcome.matching.to_relation("MT").unwrap()
        )
    );
    println!(
        "{}",
        render_default(
            "Table 4 — negative matching table NMT_RS",
            &outcome.negative.to_relation("NMT").unwrap()
        )
    );
    outcome.verify().expect("sound");
    println!("{}", Partition::of(&outcome));
}

/// E7 — Example 3 (Tables 5, 6, 7).
fn table5_7() {
    banner("Tables 5-7 / Example 3: full restaurant workload");
    let (r, s, _key, ilfds) = restaurant::example3();
    println!("{}", render_default("Table 5 — R", &r));
    println!("{}", render_default("Table 5 — S", &s));
    println!("ILFDs I1-I8:\n{ilfds}");
    println!(
        "derived I9: {} (implied: {})",
        restaurant::ilfd_i9(),
        implies(&ilfds, &restaurant::ilfd_i9())
    );

    let mut session = Session::new(r, s, ilfds);
    session
        .setup_extended_key(&["name", "cuisine", "speciality"])
        .expect("setup");
    println!("\n{}", session.extended_r_display().unwrap());
    println!("{}", session.extended_s_display().unwrap());
    println!("{}", session.matching_table_display().unwrap());
}

/// E8 — Table 8: ILFD tables and the §4.2 algebra pipeline.
fn table8() {
    banner("Table 8: ILFD table IM(speciality; cuisine) + algebra pipeline");
    let t8 = paper_table8();
    println!(
        "{}",
        render_default("IM(speciality; cuisine)", t8.relation())
    );

    let (r, s, key, ilfds) = restaurant::example3();
    let pipeline = algebra_pipeline::run(&r, &s, &key, &ilfds).expect("pipeline");
    println!(
        "{}",
        render_default(
            "MT via relational expressions (Π(R' ⋈_KExt S'))",
            &pipeline.matching.to_relation("MT").unwrap()
        )
    );

    let mut config = MatchConfig::new(key, ilfds);
    config.strategy = eid_ilfd::Strategy::Fixpoint;
    let matcher = EntityMatcher::new(r, s, config).unwrap().run().unwrap();
    let agree = pipeline.matching.includes(&matcher.matching)
        && matcher.matching.includes(&pipeline.matching);
    println!("pipeline ≡ rule-based matcher: {agree}");
    assert!(agree);
}

/// E9 — Figure 4: the end-to-end dataflow.
fn figure4() {
    banner("Figure 4: entity identification using ILFD tables (dataflow)");
    let (r, s, key, ilfds) = restaurant::example3();
    println!(
        "R ({} tuples), S ({} tuples)  ──►  [extend with K_Ext − K]",
        r.len(),
        s.len()
    );
    let outcome = EntityMatcher::new(r.clone(), s.clone(), MatchConfig::new(key.clone(), ilfds))
        .unwrap()
        .run()
        .unwrap();
    println!(
        "R' ({} tuples), S' ({} tuples)  ──►  [⋈ over K_Ext]",
        outcome.extended_r.relation.len(),
        outcome.extended_s.relation.len()
    );
    println!(
        "MT_RS ({} pairs)  ──►  [MT ⋈ R ⟗ S]",
        outcome.matching.len()
    );
    let t = IntegratedTable::build(&r, &s, &outcome, &key).unwrap();
    println!("T_RS ({} rows)", t.len());
    println!(
        "\n{}",
        render_default("integrated table T_RS", t.relation())
    );
}

/// E10 — the §6.3 prototype transcript.
fn prototype() {
    banner("§6.3 prototype session transcript");
    let (r, s, _, ilfds) = restaurant::example3();
    let mut session = Session::new(r, s, ilfds);

    println!("| ?- setup_extkey.    % keys = {{name, speciality, cuisine}}");
    let rep = session
        .setup_extended_key(&["name", "speciality", "cuisine"])
        .unwrap();
    println!("{}", rep.message);

    println!("\n| ?- setup_extkey.    % keys = {{name}}");
    let rep = session.setup_extended_key(&["name"]).unwrap();
    println!("{}", rep.message);

    // Restore the good key and print the tables as the transcript does.
    session
        .setup_extended_key(&["name", "speciality", "cuisine"])
        .unwrap();
    println!(
        "\n| ?- print_matchtable.\n{}",
        session.matching_table_display().unwrap()
    );
    println!(
        "| ?- print_integ_table.\n{}",
        session.integrated_table_display().unwrap()
    );
}

/// E11 — §5 theory demonstrations.
fn theory() {
    banner("§5 theory: axioms, closures, covers");
    // The §5.2 closure example.
    let f: IlfdSet = vec![
        Ilfd::of_strs(&[("A", "a1")], &[("B", "b1")]),
        Ilfd::of_strs(&[("B", "b1")], &[("C", "c1")]),
    ]
    .into_iter()
    .collect();
    println!("F = {{ {} ; {} }}", f.as_slice()[0], f.as_slice()[1]);
    let target = Ilfd::of_strs(&[("A", "a1")], &[("C", "c1")]);
    println!("F ⊨ {target}: {}", implies(&f, &target));
    let proof = prove(&f, &target).expect("derivable");
    println!("axiom derivation found, {} steps", proof.size());

    // Bounded F+ enumeration — "expensive to compute".
    let universe: Vec<_> = f
        .iter()
        .flat_map(|i| i.antecedent().iter().chain(i.consequent().iter()).cloned())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let start = Instant::now();
    let fplus = enumerate_closure(&f, &universe, universe.len());
    println!(
        "|F⁺| over its own {}-symbol universe: {} non-trivial ILFDs ({:?})",
        universe.len(),
        fplus.len(),
        start.elapsed()
    );

    // Minimal cover demo.
    let mut redundant = f.clone();
    redundant.insert(target);
    let cover = minimal_cover(&redundant);
    println!(
        "minimal cover of F ∪ {{derived}}: {} ILFDs (redundancy removed)",
        cover.len()
    );

    // I9 derivation.
    let ilfds = restaurant::example3_ilfds();
    println!(
        "\npaper I9 {}: implied = {}",
        restaurant::ilfd_i9(),
        implies(&ilfds, &restaurant::ilfd_i9())
    );
}

/// S3 — technique comparison across homonym rates.
fn techniques() {
    banner("S3: soundness/completeness of all techniques vs homonym rate");
    println!(
        "{:<22} {:>8} {:>10} {:>10} {:>12} {:>7}",
        "technique", "homonyms", "precision", "recall", "completeness", "sound"
    );
    for rate in [0.0, 0.1, 0.2, 0.3, 0.4] {
        let w = generate(&GeneratorConfig {
            n_entities: 200,
            overlap: 0.6,
            homonym_rate: rate,
            ilfd_coverage: 1.0,
            noise: 0.1,
            seed: 7,
            ..GeneratorConfig::default()
        });
        let total = w.r.len() * w.s.len();

        // The paper's technique.
        let outcome = EntityMatcher::new(
            w.r.clone(),
            w.s.clone(),
            MatchConfig::new(w.extended_key.clone(), w.ilfds.clone()),
        )
        .unwrap()
        .run()
        .unwrap();
        let evals: Vec<(String, Evaluation)> = vec![
            (
                "ilfd-extended-key".into(),
                Evaluation::compute(&w.truth, &outcome.matching, &outcome.negative, total),
            ),
            (
                "key-equivalence".into(),
                evaluate_technique(&KeyEquivalence::new(&["name"], true), &w.r, &w.s, &w.truth),
            ),
            (
                "probabilistic-key".into(),
                evaluate_technique(
                    &ProbabilisticKey::new(&["name"], 0.6, 0.1),
                    &w.r,
                    &w.s,
                    &w.truth,
                ),
            ),
            (
                "probabilistic-attr".into(),
                evaluate_technique(&ProbabilisticAttr::uniform(0.9, 0.2), &w.r, &w.s, &w.truth),
            ),
            ("user-specified(50%)".into(), {
                let full =
                    UserSpecified::from_truth(w.truth.iter().cloned(), vec![0, 2], vec![0, 1]);
                let mut k = 0;
                let half = full.thin(|_| {
                    k += 1;
                    k % 2 == 0
                });
                evaluate_technique(&half, &w.r, &w.s, &w.truth)
            }),
        ];
        for (name, e) in evals {
            println!(
                "{:<22} {:>8.2} {:>10.3} {:>10.3} {:>12.3} {:>7}",
                name,
                rate,
                e.match_precision(),
                e.match_recall(),
                e.completeness(),
                e.is_sound()
            );
        }
        println!();
    }
}

/// Extended-key discovery from FD knowledge (the §4.1 minimality
/// requirement, automated).
fn keys() {
    banner("Extended-key discovery: candidate keys of the integrated scheme");
    use eid_ilfd::fd::Fd;
    use eid_relational::AttrName;
    // Example 3's integrated scheme and its FD knowledge:
    // speciality → cuisine; (name, street) → everything.
    let attrs = ["name", "cuisine", "speciality", "street", "county"]
        .iter()
        .map(AttrName::new);
    let fds = vec![
        Fd::of_strs(&["speciality"], &["cuisine"]),
        Fd::of_strs(&["street"], &["county"]),
        Fd::of_strs(&["name", "street"], &["speciality"]),
        Fd::of_strs(&["name", "cuisine", "speciality"], &["street"]),
    ];
    println!("FDs asserted about the integrated world:");
    for fd in &fds {
        println!("  {fd}");
    }
    let keys = ExtendedKey::suggest_from_fds(attrs, &fds);
    println!("\ncandidate extended keys (all minimal):");
    for k in &keys {
        println!("  {k}");
    }
    assert!(!keys.is_empty());
}

/// S1/S2/S4 — quick scaling numbers (full statistics live in the
/// Criterion benches; this prints one-shot timings for the record).
fn scaling() {
    banner("S1: matching-table construction scaling (one-shot timings)");
    println!(
        "{:>8} {:>10} {:>14} {:>14}",
        "entities", "pairs", "hash join", "nested loop"
    );
    for n in [100usize, 400, 1600] {
        let w = scaling_workload(n, 11);
        let mut config = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
        config.collect_negative = false;

        let start = Instant::now();
        let hash = EntityMatcher::new(w.r.clone(), w.s.clone(), config.clone())
            .unwrap()
            .run()
            .unwrap();
        let hash_t = start.elapsed();

        config.join = JoinAlgorithm::NestedLoop;
        let start = Instant::now();
        let nested = EntityMatcher::new(w.r.clone(), w.s.clone(), config)
            .unwrap()
            .run()
            .unwrap();
        let nested_t = start.elapsed();

        assert_eq!(hash.matching.len(), nested.matching.len());
        println!(
            "{:>8} {:>10} {:>14?} {:>14?}",
            n,
            w.r.len() * w.s.len(),
            hash_t,
            nested_t
        );
    }

    banner("S4: derivation-strategy ablation (first-match vs fixpoint)");
    println!("{:>8} {:>14} {:>14}", "entities", "first-match", "fixpoint");
    for n in [400usize, 1600] {
        let w = scaling_workload(n, 13);
        let mut config = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
        config.collect_negative = false;
        let start = Instant::now();
        let a = EntityMatcher::new(w.r.clone(), w.s.clone(), config.clone())
            .unwrap()
            .run()
            .unwrap();
        let t1 = start.elapsed();
        config.strategy = eid_ilfd::Strategy::Fixpoint;
        let start = Instant::now();
        let b = EntityMatcher::new(w.r.clone(), w.s.clone(), config)
            .unwrap()
            .run()
            .unwrap();
        let t2 = start.elapsed();
        assert_eq!(a.matching.len(), b.matching.len());
        println!("{:>8} {:>14?} {:>14?}", n, t1, t2);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let mut commands: HashMap<&str, fn()> = HashMap::new();
    commands.insert("table1", table1 as fn());
    commands.insert("figure1", figure1);
    commands.insert("figure2", figure2);
    commands.insert("figure3", figure3);
    commands.insert("table2_3", table2_3_4);
    commands.insert("table4", table2_3_4);
    commands.insert("table5_7", table5_7);
    commands.insert("table8", table8);
    commands.insert("figure4", figure4);
    commands.insert("prototype", prototype);
    commands.insert("theory", theory);
    commands.insert("techniques", techniques);
    commands.insert("scaling", scaling);
    commands.insert("keys", keys);

    match which {
        "all" => {
            for f in [
                table1, figure1, figure2, figure3, table2_3_4, table5_7, table8, figure4,
                prototype, theory, keys, techniques, scaling,
            ] {
                f();
            }
        }
        name => match commands.get(name) {
            Some(f) => f(),
            None => {
                eprintln!(
                    "unknown experiment `{name}`; known: all, {}",
                    commands.keys().copied().collect::<Vec<_>>().join(", ")
                );
                std::process::exit(2);
            }
        },
    }
}
