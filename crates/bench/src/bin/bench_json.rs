//! Machine-readable matching benchmark: nested-loop oracle vs the
//! seed hash path vs the blocked engine (serial and parallel), at a
//! few workload sizes, written to `BENCH_matching.json` at the repo
//! root. Each engine entry embeds the per-stage breakdown and engine
//! counters from its [`MatchOutcome::stats`] report, so a regression
//! can be localised (compile? index? residual scan?) without
//! re-profiling — plus the planner's decisions (execution mode,
//! chosen blocking keys per rule) and the plan-cache hit/miss
//! counts, so a perf delta can also be traced to a *plan* change.
//!
//! Run with `cargo run --release -p eid-bench --bin bench_json`.
//! Pass sizes as arguments to override the defaults, e.g.
//! `bench_json 100 200`. `--out <path>` redirects the JSON file
//! (the smoke test in `scripts/check.sh` writes to a temp file
//! instead of clobbering the committed benchmark), and
//! `--engines blocked,blocked_parallel` restricts the arms — handy
//! when iterating on the fast engines without re-running the
//! multi-second oracle arms. The cross-engine agreement assert uses
//! the first selected arm as the reference, so the committed
//! benchmark (all arms) still checks everything against the
//! nested-loop oracle.

use std::sync::Arc;
use std::time::Instant;

use eid_bench::scaling_workload;
use eid_core::matcher::{EntityMatcher, JoinAlgorithm, MatchConfig, MatchOutcome};
use eid_core::plan::EmitHint;
use eid_core::store::Dataset;
use eid_core::SpillDirGuard;
use eid_obs::MatchReport;

/// One engine configuration under measurement.
struct Engine {
    name: &'static str,
    join: JoinAlgorithm,
    threads: usize,
    /// Largest workload this arm runs at. The quadratic scalar
    /// oracle arms stop at 3200 — beyond that they dominate the
    /// whole benchmark's wall time while measuring nothing new; the
    /// cross-engine agreement assert then uses the first *selected*
    /// arm as its reference.
    max_n: usize,
}

const ENGINES: &[Engine] = &[
    Engine {
        name: "nested_loop",
        join: JoinAlgorithm::NestedLoop,
        threads: 1,
        max_n: 3200,
    },
    Engine {
        name: "hash",
        join: JoinAlgorithm::Hash,
        threads: 1,
        max_n: 3200,
    },
    Engine {
        name: "blocked",
        join: JoinAlgorithm::Blocked,
        threads: 1,
        max_n: usize::MAX,
    },
    Engine {
        name: "blocked_parallel",
        join: JoinAlgorithm::Blocked,
        threads: 0,
        max_n: usize::MAX,
    },
];

struct Measurement {
    name: &'static str,
    seconds: f64,
    pairs_per_sec: f64,
    matching: usize,
    negative: usize,
    undetermined: usize,
    /// Observability report of the last timed run (stage timings are
    /// that run's, not the best-of-3's).
    stats: MatchReport,
    /// Plan-cache `(hits, misses)` across every rep of this engine —
    /// all reps after the first should hit.
    plan_cache: (u64, u64),
}

/// The planner's decisions for one engine run, as a JSON object:
/// the execution-mode label, the chosen blocking key (with the cost
/// model's rationale) per probed identity rule, and the plan-cache
/// accounting. Read off the run's `plan/*` report labels.
fn plan_json(stats: &MatchReport, plan_cache: (u64, u64)) -> String {
    let mode = stats.label("plan/mode").unwrap_or("?");
    let emit = stats.label("plan/emit").unwrap_or("?");
    let keys: Vec<String> = stats
        .labels
        .iter()
        .filter_map(|l| {
            l.name
                .strip_prefix("plan/key/")
                .map(|rule| format!("\"{rule}\": \"{}\"", l.value))
        })
        .collect();
    format!(
        "\"plan\": {{\"mode\": \"{mode}\", \"emit\": \"{emit}\", \"keys\": {{{}}}, \
         \"cache_hits\": {}, \"cache_misses\": {}}}",
        keys.join(", "),
        plan_cache.0,
        plan_cache.1
    )
}

/// The `--emit` flag value, for the JSON header.
fn emit_hint_str(hint: EmitHint) -> &'static str {
    match hint {
        EmitHint::Auto => "auto",
        EmitHint::Buffered => "buffered",
        EmitHint::Streamed => "streamed",
        EmitHint::Spilled => "spilled",
    }
}

/// The per-stage and counter breakdown of one engine run, as three
/// JSON maps: stage path → seconds, counter name → value, histogram
/// name → tail quantiles (p50/p95/p99 in nanoseconds — the per-task
/// latency distribution, not just its sum). Per-rule counters are
/// elided (they scale with the rule base, not the engine).
fn breakdown_json(stats: &MatchReport) -> String {
    let stages: Vec<String> = stats
        .stages
        .iter()
        .map(|s| format!("\"{}\": {}", s.path, json_f64(s.nanos as f64 / 1e9)))
        .collect();
    let counters: Vec<String> = stats
        .counters
        .iter()
        .filter(|c| !c.name.starts_with("rule/"))
        .map(|c| format!("\"{}\": {}", c.name, c.value))
        .collect();
    let histograms: Vec<String> = stats
        .histograms
        .iter()
        .map(|h| {
            format!(
                "\"{}\": {{\"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                h.name,
                h.snapshot.count,
                h.snapshot.quantile(0.50),
                h.snapshot.quantile(0.95),
                h.snapshot.quantile(0.99)
            )
        })
        .collect();
    format!(
        "\"stages\": {{{}}}, \"counters\": {{{}}}, \"histograms\": {{{}}}",
        stages.join(", "),
        counters.join(", "),
        histograms.join(", ")
    )
}

/// Measures every engine at one size. Repetitions are interleaved
/// round-robin — engine A rep 1, engine B rep 1, …, engine A rep 2 —
/// so slow system bursts and frequency drift hit all engines alike
/// instead of biasing whichever ran last. Each engine's rep count
/// targets ~0.6s of measurement — ~1.2s for sub-150ms arms, whose
/// minima converge only with many samples on a noisy box (min 8,
/// max 100); the best rep is kept.
fn measure_all(
    engines: &[&Engine],
    config: &MatchConfig,
    r: &eid_relational::Relation,
    s: &eid_relational::Relation,
) -> Vec<(MatchOutcome, f64, (u64, u64))> {
    let matchers: Vec<EntityMatcher> = engines
        .iter()
        .map(|engine| {
            let mut config = config.clone();
            config.join = engine.join;
            config.threads = engine.threads;
            EntityMatcher::new(r.clone(), s.clone(), config).unwrap()
        })
        .collect();
    let mut outcomes = Vec::with_capacity(matchers.len());
    let mut reps = Vec::with_capacity(matchers.len());
    for matcher in &matchers {
        let start = Instant::now();
        outcomes.push(matcher.run().unwrap());
        let warmup = start.elapsed().as_secs_f64();
        let target = if warmup < 0.15 { 1.2 } else { 0.6 };
        reps.push(((target / warmup.max(1e-9)).ceil() as usize).clamp(8, 100));
    }
    let mut best = vec![f64::INFINITY; matchers.len()];
    for round in 0..reps.iter().copied().max().unwrap_or(0) {
        for (k, matcher) in matchers.iter().enumerate() {
            if round >= reps[k] {
                continue;
            }
            let start = Instant::now();
            outcomes[k] = matcher.run().unwrap();
            best[k] = best[k].min(start.elapsed().as_secs_f64());
        }
    }
    let caches: Vec<(u64, u64)> = matchers.iter().map(|m| m.plan_cache_stats()).collect();
    outcomes
        .into_iter()
        .zip(best)
        .zip(caches)
        .map(|((outcome, seconds), cache)| (outcome, seconds, cache))
        .collect()
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    // The repo root is two levels above this crate's manifest.
    let mut out_path: String =
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_matching.json").to_string();
    let mut sizes: Vec<usize> = Vec::new();
    let mut engines: Vec<&Engine> = ENGINES.iter().collect();
    let mut kernels = eid_core::kernels::enabled_default();
    let mut emit = EmitHint::Auto;
    let mut trace_out: Option<String> = None;
    let mut export_dir: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            out_path = args.next().expect("--out needs a path");
        } else if arg == "--trace-out" {
            trace_out = Some(args.next().expect("--trace-out needs a path"));
        } else if arg == "--emit" {
            let v = args
                .next()
                .expect("--emit needs auto|buffered|streamed|spilled");
            emit = match v.as_str() {
                "auto" => EmitHint::Auto,
                "buffered" => EmitHint::Buffered,
                "streamed" => EmitHint::Streamed,
                "spilled" => EmitHint::Spilled,
                other => {
                    panic!("--emit must be auto, buffered, streamed, or spilled, got {other:?}")
                }
            };
        } else if arg == "--engines" {
            let names = args.next().expect("--engines needs a comma-separated list");
            engines = names
                .split(',')
                .map(|name| {
                    ENGINES
                        .iter()
                        .find(|e| e.name == name)
                        .unwrap_or_else(|| panic!("unknown engine {name:?}"))
                })
                .collect();
        } else if arg == "--kernels" {
            let v = args.next().expect("--kernels needs on|off");
            kernels = match v.as_str() {
                "on" => true,
                "off" => false,
                other => panic!("--kernels must be on or off, got {other:?}"),
            };
        } else if arg == "--export" {
            export_dir = Some(args.next().expect("--export needs a directory"));
        } else if arg == "--store-dir" {
            store_dir = Some(args.next().expect("--store-dir needs a directory"));
        } else {
            sizes.push(arg.parse().expect("sizes must be integers"));
        }
    }
    let default_sizes = sizes.is_empty();
    if default_sizes {
        sizes = vec![200, 400, 800, 1600, 3200, 6400];
    }

    // `--export DIR` output is disposable until the whole benchmark
    // completes: a panic mid-run (cross-engine disagreement, write
    // failure) must not leave a half-written workload tree behind.
    // A pre-existing directory belongs to the user and is never
    // guarded; one we create is removed on unwind and kept on
    // success.
    let mut export_guard = export_dir.as_ref().and_then(|dir| {
        let path = std::path::PathBuf::from(dir);
        if path.exists() {
            None
        } else {
            std::fs::create_dir_all(&path)
                .unwrap_or_else(|e| panic!("--export {}: {e}", path.display()));
            Some(SpillDirGuard::adopt(path, false))
        }
    });

    let mut size_objects = Vec::new();
    for &n in &sizes {
        let w = scaling_workload(n, 42);
        // `--export DIR` writes each size's workload as CSV + rules
        // under DIR/n<size>/ so the `eid` CLI (e.g. a count-alloc
        // build) can replay the exact bench inputs.
        if let Some(dir) = &export_dir {
            let sub = std::path::Path::new(dir).join(format!("n{n}"));
            eid_datagen::io::export_workload(&w, &sub)
                .unwrap_or_else(|e| panic!("--export {}: {e:?}", sub.display()));
            eprintln!("exported n={n} workload to {}", sub.display());
        }
        let mut config = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
        config.kernels = kernels;
        config.emit = emit;
        let pairs = w.r.len() * w.s.len();
        let selected: Vec<&Engine> = engines.iter().copied().filter(|e| n <= e.max_n).collect();
        eprintln!(
            "n_entities={n}: |R|={}, |S|={}, {pairs} pairs",
            w.r.len(),
            w.s.len()
        );

        let mut measurements: Vec<Measurement> = Vec::new();
        for (engine, (outcome, seconds, plan_cache)) in selected
            .iter()
            .zip(measure_all(&selected, &config, &w.r, &w.s))
        {
            eprintln!(
                "  {:<17} {seconds:>10.4}s  {:>12.0} pairs/s  |MT|={} |NMT|={}",
                engine.name,
                pairs as f64 / seconds,
                outcome.matching.len(),
                outcome.negative.len()
            );
            measurements.push(Measurement {
                name: engine.name,
                seconds,
                pairs_per_sec: pairs as f64 / seconds,
                matching: outcome.matching.len(),
                negative: outcome.negative.len(),
                undetermined: outcome.undetermined,
                stats: outcome.stats,
                plan_cache,
            });
        }

        // All engines must agree — this is a benchmark, not a place
        // to quietly diverge from the oracle (the first selected arm
        // is the reference; with all arms on that is the nested-loop
        // oracle up to its size cap).
        let oracle = &measurements[0];
        for m in &measurements[1..] {
            assert_eq!(
                (m.matching, m.negative, m.undetermined),
                (oracle.matching, oracle.negative, oracle.undetermined),
                "{} disagrees with the {} reference at n={n}",
                m.name,
                oracle.name
            );
        }

        // Kernels A/B: one blocked run with the kernel dispatch
        // flipped must classify every pair identically — the planner
        // flag is a pure performance decision.
        let ab = {
            let mut ab_config = config.clone();
            ab_config.join = JoinAlgorithm::Blocked;
            ab_config.threads = 0;
            ab_config.kernels = !kernels;
            EntityMatcher::new(w.r.clone(), w.s.clone(), ab_config)
                .unwrap()
                .run()
                .unwrap()
        };
        assert_eq!(
            (ab.matching.len(), ab.negative.len(), ab.undetermined),
            (oracle.matching, oracle.negative, oracle.undetermined),
            "kernels={} disagrees with kernels={kernels} at n={n}",
            !kernels
        );
        let kernels_json = format!(
            "\"kernels\": {{\"enabled\": {kernels}, \"simd\": \"{}\", \
             \"ab_identical\": true}}",
            eid_core::kernels::simd_level()
        );

        // Emit A/B: the same blocked run with the emission path
        // flipped (streamed ⇄ buffered) must classify every pair
        // identically — the sharded sink is a pure representation
        // change. The flip is read off the blocked arm's resolved
        // plan label, so the A/B is meaningful whatever `--emit`
        // (or the auto threshold) picked for the timed runs.
        let resolved_emit = measurements
            .iter()
            .find(|m| m.name.starts_with("blocked"))
            .or(measurements.first())
            .and_then(|m| m.stats.label("plan/emit"))
            .unwrap_or("?")
            .to_string();
        let ab_flip = if resolved_emit.starts_with("streamed") {
            EmitHint::Buffered
        } else {
            EmitHint::Streamed
        };
        let ab = {
            let mut ab_config = config.clone();
            ab_config.join = JoinAlgorithm::Blocked;
            ab_config.threads = 0;
            ab_config.emit = ab_flip;
            EntityMatcher::new(w.r.clone(), w.s.clone(), ab_config)
                .unwrap()
                .run()
                .unwrap()
        };
        assert_eq!(
            (ab.matching.len(), ab.negative.len(), ab.undetermined),
            (oracle.matching, oracle.negative, oracle.undetermined),
            "emit={} disagrees with the timed arms at n={n}",
            emit_hint_str(ab_flip)
        );
        let emit_json = format!(
            "\"emit\": {{\"hint\": \"{}\", \"resolved\": \"{}\", \
             \"ab_flip\": \"{}\", \"ab_identical\": true}}",
            emit_hint_str(emit),
            resolved_emit.split(':').next().unwrap_or("?"),
            emit_hint_str(ab_flip)
        );

        let nested = measurements.iter().find(|m| m.name == "nested_loop");
        let speedup = |name: &str| -> f64 {
            match (nested, measurements.iter().find(|m| m.name == name)) {
                (Some(base), Some(m)) => base.seconds / m.seconds,
                _ => f64::NAN, // serialized as null when either arm is absent
            }
        };
        let engines_json: Vec<String> = measurements
            .iter()
            .map(|m| {
                format!(
                    concat!(
                        "{{\"name\": \"{}\", \"seconds\": {}, ",
                        "\"pairs_per_sec\": {}, \"matching\": {}, ",
                        "\"negative\": {}, \"undetermined\": {}, {}, {}}}"
                    ),
                    m.name,
                    json_f64(m.seconds),
                    json_f64(m.pairs_per_sec),
                    m.matching,
                    m.negative,
                    m.undetermined,
                    plan_json(&m.stats, m.plan_cache),
                    breakdown_json(&m.stats)
                )
            })
            .collect();
        size_objects.push(format!(
            concat!(
                "    {{\n",
                "      \"n_entities\": {},\n",
                "      \"r_rows\": {},\n",
                "      \"s_rows\": {},\n",
                "      \"pairs\": {},\n",
                "      {},\n",
                "      {},\n",
                "      \"engines\": [\n        {}\n      ],\n",
                "      \"speedup_blocked_vs_nested_loop\": {},\n",
                "      \"speedup_blocked_parallel_vs_nested_loop\": {}\n",
                "    }}"
            ),
            n,
            w.r.len(),
            w.s.len(),
            pairs,
            kernels_json,
            emit_json,
            engines_json.join(",\n        "),
            json_f64(speedup("blocked")),
            json_f64(speedup("blocked_parallel"))
        ));
    }

    // Core-count scaling at the largest size: the blocked arm's task
    // queue is worker-count-invariant in output, so throughput per
    // thread count is a clean strong-scaling curve.
    let scaling_json = {
        let avail = std::thread::available_parallelism().map_or(1, |p| p.get());
        let n = sizes.iter().copied().max().unwrap_or(0);
        let w = scaling_workload(n, 42);
        let pairs = (w.r.len() * w.s.len()) as f64;
        let mut threads: Vec<usize> = Vec::new();
        let mut t = 1;
        while t < avail {
            threads.push(t);
            t *= 2;
        }
        threads.push(avail);
        let mut rows = Vec::new();
        for &t in &threads {
            let mut config = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
            config.join = JoinAlgorithm::Blocked;
            config.threads = t;
            config.kernels = kernels;
            config.emit = emit;
            let matcher = EntityMatcher::new(w.r.clone(), w.s.clone(), config).unwrap();
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let start = Instant::now();
                matcher.run().unwrap();
                best = best.min(start.elapsed().as_secs_f64());
            }
            eprintln!(
                "scaling n={n} threads={t}: {best:.4}s  {:.0} pairs/s",
                pairs / best
            );
            rows.push(format!(
                "{{\"threads\": {t}, \"seconds\": {}, \"pairs_per_sec\": {}}}",
                json_f64(best),
                json_f64(pairs / best)
            ));
        }
        format!(
            "  \"scaling\": {{\"available_parallelism\": {avail}, \"n_entities\": {n}, \
             \"blocked_by_threads\": [\n    {}\n  ]}},\n",
            rows.join(",\n    ")
        )
    };

    // Spill A/B/C at the largest size. Three arms against one world:
    // streamed with no budget (baseline), auto emission under a
    // 32 MiB pair-byte budget (the planner must degrade to spilled
    // rather than abort — but at bench scale the resident bitmap fits
    // the budget-derived shard cap, so no segments are written), and
    // forced spilled with floor-sized caps (real segment I/O: the
    // spill traffic and retry counters come from this arm). All three
    // must classify identically — out-of-core emission changes
    // nothing but the memory profile.
    //
    // Below n=3200 the raw-pair estimate sits under the budget, so a
    // 32 MiB cap never flips the plan to spilled and the section would
    // be vacuous — skip it rather than assert on a plan the planner
    // has no reason to choose.
    const SPILL_MIN_N: usize = 3200;
    let spill_json = if sizes.iter().copied().max().unwrap_or(0) < SPILL_MIN_N {
        String::new()
    } else {
        let n = sizes.iter().copied().max().unwrap_or(0);
        let w = scaling_workload(n, 42);
        let budget_bytes: u64 = 32 * 1024 * 1024;
        let run_arm = |hint: EmitHint, budget: Option<u64>| {
            let mut config = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
            config.join = JoinAlgorithm::Blocked;
            config.threads = 0;
            config.kernels = kernels;
            config.emit = hint;
            config.budget.max_pair_bytes = budget;
            let matcher = EntityMatcher::new(w.r.clone(), w.s.clone(), config).unwrap();
            let mut best = f64::INFINITY;
            let mut outcome = None;
            for _ in 0..3 {
                let start = Instant::now();
                outcome = Some(matcher.run().unwrap());
                best = best.min(start.elapsed().as_secs_f64());
            }
            (outcome.unwrap(), best)
        };
        let (streamed, streamed_s) = run_arm(EmitHint::Streamed, None);
        let (budgeted, budgeted_s) = run_arm(EmitHint::Auto, Some(budget_bytes));
        let (forced, forced_s) = run_arm(EmitHint::Spilled, None);
        let counts = |o: &MatchOutcome| (o.matching.len(), o.negative.len(), o.undetermined);
        assert_eq!(
            counts(&budgeted),
            counts(&streamed),
            "budgeted spilled emission disagrees with streamed at n={n}"
        );
        assert_eq!(
            counts(&forced),
            counts(&streamed),
            "forced spilled emission disagrees with streamed at n={n}"
        );
        assert!(
            budgeted
                .stats
                .label("plan/emit")
                .is_some_and(|e| e.starts_with("spilled")),
            "a {budget_bytes}-byte budget did not plan spilled emission at n={n}: {:?}",
            budgeted.stats.label("plan/emit")
        );
        let spill_bytes = forced.stats.counter("sink/spill_bytes");
        assert!(
            spill_bytes > 0,
            "forced spilled arm wrote no segments at n={n}"
        );
        eprintln!(
            "spill n={n}: streamed {streamed_s:.4}s, spilled {budgeted_s:.4}s under {} MiB, \
             forced-spill {forced_s:.4}s ({spill_bytes} spill bytes, {} segments, {} io retries)",
            budget_bytes / (1024 * 1024),
            forced.stats.counter("sink/spill_shards"),
            forced.stats.counter("runtime/io_retries"),
        );
        format!(
            "  \"spill\": {{\"n_entities\": {n}, \"budget_bytes\": {budget_bytes}, \
             \"streamed_seconds\": {}, \"spilled_seconds\": {}, \
             \"forced_spilled_seconds\": {}, \
             \"spill_bytes\": {spill_bytes}, \"spill_segments\": {}, \"io_retries\": {}, \
             \"ab_identical\": true}},\n",
            json_f64(streamed_s),
            json_f64(budgeted_s),
            json_f64(forced_s),
            forced.stats.counter("sink/spill_shards"),
            forced.stats.counter("runtime/io_retries"),
        )
    };

    // Persistent dataset-store rung: encode the workload once,
    // persist it, and run matching three ways — full re-encode (the
    // CSV path: derive + intern inside every run), warm RAM (the
    // pre-encoded dataset reused across runs), and cold open (read
    // the store back from disk, then run). The default rung is
    // n=25600 — a size the timed matrix never touches — and the
    // store-backed arms never re-encode: one `Dataset::encode` feeds
    // the write, every open, and both store-backed match arms.
    // `encode_ms` times the whole original ingest pipeline — CSV
    // parse (re-interning every value) plus `Dataset::encode` — since
    // that is what a store-less invocation pays before it can match.
    // Opening must be far cheaper than encoding (asserted < 5% of
    // encode time at n ≥ 6400).
    let store_json = {
        let n = if default_sizes {
            25_600
        } else {
            sizes.iter().copied().max().unwrap_or(0)
        };
        let w = scaling_workload(n, 42);
        let csv_dir =
            std::env::temp_dir().join(format!("eid-bench-store-csv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&csv_dir);
        eid_datagen::io::export_workload(&w, &csv_dir).expect("export workload csv");
        let r_text = std::fs::read_to_string(csv_dir.join("r.csv")).expect("read r.csv");
        let s_text = std::fs::read_to_string(csv_dir.join("s.csv")).expect("read s.csv");
        let t0 = Instant::now();
        let r = eid_relational::csv::from_csv_inferred("R", &r_text, &["name", "street"])
            .expect("parse r.csv");
        let s = eid_relational::csv::from_csv_inferred("S", &s_text, &["name", "speciality"])
            .expect("parse s.csv");
        let ds = Dataset::encode(
            "bench",
            r,
            s,
            w.extended_key.clone(),
            w.ilfds.clone(),
            eid_ilfd::Strategy::FirstMatch,
        )
        .expect("encode bench dataset");
        let encode_s = t0.elapsed().as_secs_f64();
        let _ = std::fs::remove_dir_all(&csv_dir);

        let (parent, keep_store) = match &store_dir {
            Some(dir) => (std::path::PathBuf::from(dir), true),
            None => (
                std::env::temp_dir().join(format!("eid-bench-store-{}", std::process::id())),
                false,
            ),
        };
        std::fs::create_dir_all(&parent).expect("create store dir");
        let dir = parent.join(format!("bench-n{n}.eids"));
        let t0 = Instant::now();
        let store_bytes = ds.write(&dir).expect("write bench dataset");
        let write_s = t0.elapsed().as_secs_f64();

        let mut open_s = f64::INFINITY;
        let mut opened = None;
        for _ in 0..5 {
            let t0 = Instant::now();
            opened = Some(Dataset::open(&dir).expect("open bench dataset"));
            open_s = open_s.min(t0.elapsed().as_secs_f64());
        }
        let opened = Arc::new(opened.expect("at least one open"));
        let encoded = Arc::new(ds);

        let tune = |mut config: MatchConfig| {
            config.join = JoinAlgorithm::Blocked;
            config.threads = 0;
            config.kernels = kernels;
            config.emit = emit;
            config
        };
        let best_run = |matcher: &EntityMatcher| {
            let mut best = f64::INFINITY;
            let mut outcome = None;
            for _ in 0..2 {
                let t0 = Instant::now();
                outcome = Some(matcher.run().expect("bench store run"));
                best = best.min(t0.elapsed().as_secs_f64());
            }
            (outcome.expect("at least one run"), best)
        };
        let reencode_matcher = EntityMatcher::new(
            w.r.clone(),
            w.s.clone(),
            tune(MatchConfig::new(w.extended_key.clone(), w.ilfds.clone())),
        )
        .expect("re-encode matcher");
        let (reencode, reencode_s) = best_run(&reencode_matcher);
        let warm_matcher =
            EntityMatcher::from_dataset(Arc::clone(&encoded), tune(encoded.match_config()))
                .expect("warm matcher");
        let (warm, warm_s) = best_run(&warm_matcher);
        let cold_matcher =
            EntityMatcher::from_dataset(Arc::clone(&opened), tune(opened.match_config()))
                .expect("cold matcher");
        let (cold, cold_s) = best_run(&cold_matcher);

        let counts = |o: &MatchOutcome| (o.matching.len(), o.negative.len(), o.undetermined);
        assert_eq!(
            counts(&warm),
            counts(&reencode),
            "warm store-backed run disagrees with the re-encode path at n={n}"
        );
        assert_eq!(
            counts(&cold),
            counts(&reencode),
            "cold store-backed run disagrees with the re-encode path at n={n}"
        );
        assert_eq!(
            cold.stats.label("plan/stats"),
            Some("persisted"),
            "cold run did not plan from persisted statistics at n={n}"
        );
        if n >= 6400 {
            assert!(
                open_s < 0.05 * encode_s,
                "store open ({open_s:.4}s) is not < 5% of encode ({encode_s:.4}s) at n={n}"
            );
        }
        if !keep_store {
            let _ = std::fs::remove_dir_all(&parent);
        }
        eprintln!(
            "store n={n}: encode {encode_s:.4}s, write {write_s:.4}s ({store_bytes} bytes), \
             open {open_s:.4}s ({:.1}% of encode); match re-encode {reencode_s:.4}s, \
             warm {warm_s:.4}s, cold {cold_s:.4}s",
            100.0 * open_s / encode_s.max(1e-12)
        );
        format!(
            "  \"store\": {{\"n_entities\": {n}, \"encode_ms\": {}, \"write_ms\": {}, \
             \"open_ms\": {}, \"store_bytes\": {store_bytes}, \
             \"reencode_seconds\": {}, \"warm_seconds\": {}, \"cold_seconds\": {}, \
             \"open_pct_of_encode\": {}, \"stats_source_cold\": \"persisted\", \
             \"ab_identical\": true}},\n",
            json_f64(encode_s * 1e3),
            json_f64(write_s * 1e3),
            json_f64(open_s * 1e3),
            json_f64(reencode_s),
            json_f64(warm_s),
            json_f64(cold_s),
            json_f64(100.0 * open_s / encode_s.max(1e-12)),
        )
    };

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"matching\",\n",
            "  \"workload\": \"eid_bench::scaling_workload(n, 42), full refutation\",\n",
            "  \"metric\": \"pairs_per_sec = |R|*|S| / best-of-N wall seconds (N sized to ~0.6-1.2s)\",\n",
            "{}",
            "{}",
            "{}",
            "  \"sizes\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scaling_json,
        spill_json,
        store_json,
        size_objects.join(",\n")
    );

    // One *extra* traced run at the largest size (outside the timed
    // reps, so tracing overhead never touches the numbers above),
    // exported as Chrome trace_event JSON for Perfetto.
    if let Some(path) = trace_out {
        let n = sizes.iter().copied().max().unwrap_or(0);
        let w = scaling_workload(n, 42);
        let mut config = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
        config.join = JoinAlgorithm::Blocked;
        config.threads = 0;
        config.kernels = kernels;
        config.emit = emit;
        config.trace = true;
        let outcome = EntityMatcher::new(w.r.clone(), w.s.clone(), config)
            .unwrap()
            .run()
            .unwrap();
        let trace = outcome.trace.expect("traced blocked run yields a timeline");
        std::fs::write(&path, trace.to_chrome_json()).expect("write trace JSON");
        eprintln!(
            "wrote {path} (n={n}, {} slices) — load in Perfetto or chrome://tracing",
            trace.slice_count()
        );
    }

    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    if let Some(g) = export_guard.as_mut() {
        g.set_keep(true);
    }
    eprintln!("wrote {out_path}");
    println!("{json}");
}
