//! Machine-readable matching benchmark: nested-loop oracle vs the
//! seed hash path vs the blocked engine (serial and parallel), at a
//! few workload sizes, written to `BENCH_matching.json` at the repo
//! root.
//!
//! Run with `cargo run --release -p eid-bench --bin bench_json`.
//! Pass sizes as arguments to override the defaults, e.g.
//! `bench_json 100 200`.

use std::time::Instant;

use eid_bench::scaling_workload;
use eid_core::matcher::{EntityMatcher, JoinAlgorithm, MatchConfig, MatchOutcome};

/// One engine configuration under measurement.
struct Engine {
    name: &'static str,
    join: JoinAlgorithm,
    threads: usize,
}

const ENGINES: &[Engine] = &[
    Engine {
        name: "nested_loop",
        join: JoinAlgorithm::NestedLoop,
        threads: 1,
    },
    Engine {
        name: "hash",
        join: JoinAlgorithm::Hash,
        threads: 1,
    },
    Engine {
        name: "blocked",
        join: JoinAlgorithm::Blocked,
        threads: 1,
    },
    Engine {
        name: "blocked_parallel",
        join: JoinAlgorithm::Blocked,
        threads: 0,
    },
];

struct Measurement {
    name: &'static str,
    seconds: f64,
    pairs_per_sec: f64,
    matching: usize,
    negative: usize,
    undetermined: usize,
}

fn measure(
    engine: &Engine,
    config: &MatchConfig,
    r: &eid_relational::Relation,
    s: &eid_relational::Relation,
) -> (MatchOutcome, f64) {
    let mut config = config.clone();
    config.join = engine.join;
    config.threads = engine.threads;
    let matcher = EntityMatcher::new(r.clone(), s.clone(), config).unwrap();
    // Warm-up once, then keep the best of three timed runs.
    let mut outcome = matcher.run().unwrap();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        outcome = matcher.run().unwrap();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (outcome, best)
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let sizes: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .map(|a| a.parse().expect("sizes must be integers"))
            .collect();
        if args.is_empty() {
            vec![200, 400, 800]
        } else {
            args
        }
    };

    let mut size_objects = Vec::new();
    for &n in &sizes {
        let w = scaling_workload(n, 42);
        let config = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
        let pairs = w.r.len() * w.s.len();
        eprintln!(
            "n_entities={n}: |R|={}, |S|={}, {pairs} pairs",
            w.r.len(),
            w.s.len()
        );

        let mut measurements: Vec<Measurement> = Vec::new();
        for engine in ENGINES {
            let (outcome, seconds) = measure(engine, &config, &w.r, &w.s);
            eprintln!(
                "  {:<17} {seconds:>10.4}s  {:>12.0} pairs/s  |MT|={} |NMT|={}",
                engine.name,
                pairs as f64 / seconds,
                outcome.matching.len(),
                outcome.negative.len()
            );
            measurements.push(Measurement {
                name: engine.name,
                seconds,
                pairs_per_sec: pairs as f64 / seconds,
                matching: outcome.matching.len(),
                negative: outcome.negative.len(),
                undetermined: outcome.undetermined,
            });
        }

        // All engines must agree — this is a benchmark, not a place
        // to quietly diverge from the oracle.
        let oracle = &measurements[0];
        for m in &measurements[1..] {
            assert_eq!(
                (m.matching, m.negative, m.undetermined),
                (oracle.matching, oracle.negative, oracle.undetermined),
                "{} disagrees with the nested-loop oracle at n={n}",
                m.name
            );
        }

        let speedup = |name: &str| -> f64 {
            let m = measurements.iter().find(|m| m.name == name).unwrap();
            oracle.seconds / m.seconds
        };
        let engines_json: Vec<String> = measurements
            .iter()
            .map(|m| {
                format!(
                    concat!(
                        "{{\"name\": \"{}\", \"seconds\": {}, ",
                        "\"pairs_per_sec\": {}, \"matching\": {}, ",
                        "\"negative\": {}, \"undetermined\": {}}}"
                    ),
                    m.name,
                    json_f64(m.seconds),
                    json_f64(m.pairs_per_sec),
                    m.matching,
                    m.negative,
                    m.undetermined
                )
            })
            .collect();
        size_objects.push(format!(
            concat!(
                "    {{\n",
                "      \"n_entities\": {},\n",
                "      \"r_rows\": {},\n",
                "      \"s_rows\": {},\n",
                "      \"pairs\": {},\n",
                "      \"engines\": [\n        {}\n      ],\n",
                "      \"speedup_blocked_vs_nested_loop\": {},\n",
                "      \"speedup_blocked_parallel_vs_nested_loop\": {}\n",
                "    }}"
            ),
            n,
            w.r.len(),
            w.s.len(),
            pairs,
            engines_json.join(",\n        "),
            json_f64(speedup("blocked")),
            json_f64(speedup("blocked_parallel"))
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"matching\",\n",
            "  \"workload\": \"eid_bench::scaling_workload(n, 42), full refutation\",\n",
            "  \"metric\": \"pairs_per_sec = |R|*|S| / best-of-3 wall seconds\",\n",
            "  \"sizes\": [\n{}\n  ]\n",
            "}}\n"
        ),
        size_objects.join(",\n")
    );

    // The repo root is two levels above this crate's manifest.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_matching.json");
    std::fs::write(out, &json).expect("write BENCH_matching.json");
    eprintln!("wrote {out}");
    println!("{json}");
}
