//! Machine-readable matching benchmark: nested-loop oracle vs the
//! seed hash path vs the blocked engine (serial and parallel), at a
//! few workload sizes, written to `BENCH_matching.json` at the repo
//! root. Each engine entry embeds the per-stage breakdown and engine
//! counters from its [`MatchOutcome::stats`] report, so a regression
//! can be localised (compile? index? residual scan?) without
//! re-profiling.
//!
//! Run with `cargo run --release -p eid-bench --bin bench_json`.
//! Pass sizes as arguments to override the defaults, e.g.
//! `bench_json 100 200`.

use std::time::Instant;

use eid_bench::scaling_workload;
use eid_core::matcher::{EntityMatcher, JoinAlgorithm, MatchConfig, MatchOutcome};
use eid_obs::MatchReport;

/// One engine configuration under measurement.
struct Engine {
    name: &'static str,
    join: JoinAlgorithm,
    threads: usize,
}

const ENGINES: &[Engine] = &[
    Engine {
        name: "nested_loop",
        join: JoinAlgorithm::NestedLoop,
        threads: 1,
    },
    Engine {
        name: "hash",
        join: JoinAlgorithm::Hash,
        threads: 1,
    },
    Engine {
        name: "blocked",
        join: JoinAlgorithm::Blocked,
        threads: 1,
    },
    Engine {
        name: "blocked_parallel",
        join: JoinAlgorithm::Blocked,
        threads: 0,
    },
];

struct Measurement {
    name: &'static str,
    seconds: f64,
    pairs_per_sec: f64,
    matching: usize,
    negative: usize,
    undetermined: usize,
    /// Observability report of the last timed run (stage timings are
    /// that run's, not the best-of-3's).
    stats: MatchReport,
}

/// The per-stage and counter breakdown of one engine run, as two JSON
/// maps: stage path → seconds, counter name → value. Per-rule
/// counters are elided (they scale with the rule base, not the
/// engine).
fn breakdown_json(stats: &MatchReport) -> String {
    let stages: Vec<String> = stats
        .stages
        .iter()
        .map(|s| format!("\"{}\": {}", s.path, json_f64(s.nanos as f64 / 1e9)))
        .collect();
    let counters: Vec<String> = stats
        .counters
        .iter()
        .filter(|c| !c.name.starts_with("rule/"))
        .map(|c| format!("\"{}\": {}", c.name, c.value))
        .collect();
    format!(
        "\"stages\": {{{}}}, \"counters\": {{{}}}",
        stages.join(", "),
        counters.join(", ")
    )
}

/// Measures every engine at one size. Repetitions are interleaved
/// round-robin — engine A rep 1, engine B rep 1, …, engine A rep 2 —
/// so slow system bursts and frequency drift hit all engines alike
/// instead of biasing whichever ran last. Each engine's rep count
/// targets ~0.6s of measurement (min 8, max 100: short runs on a
/// noisy box need many samples for a stable minimum); the best rep
/// is kept.
fn measure_all(
    config: &MatchConfig,
    r: &eid_relational::Relation,
    s: &eid_relational::Relation,
) -> Vec<(MatchOutcome, f64)> {
    let matchers: Vec<EntityMatcher> = ENGINES
        .iter()
        .map(|engine| {
            let mut config = config.clone();
            config.join = engine.join;
            config.threads = engine.threads;
            EntityMatcher::new(r.clone(), s.clone(), config).unwrap()
        })
        .collect();
    let mut outcomes = Vec::with_capacity(matchers.len());
    let mut reps = Vec::with_capacity(matchers.len());
    for matcher in &matchers {
        let start = Instant::now();
        outcomes.push(matcher.run().unwrap());
        let warmup = start.elapsed().as_secs_f64();
        reps.push(((0.6 / warmup.max(1e-9)).ceil() as usize).clamp(8, 100));
    }
    let mut best = vec![f64::INFINITY; matchers.len()];
    for round in 0..reps.iter().copied().max().unwrap_or(0) {
        for (k, matcher) in matchers.iter().enumerate() {
            if round >= reps[k] {
                continue;
            }
            let start = Instant::now();
            outcomes[k] = matcher.run().unwrap();
            best[k] = best[k].min(start.elapsed().as_secs_f64());
        }
    }
    outcomes.into_iter().zip(best).collect()
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let sizes: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .map(|a| a.parse().expect("sizes must be integers"))
            .collect();
        if args.is_empty() {
            vec![200, 400, 800]
        } else {
            args
        }
    };

    let mut size_objects = Vec::new();
    for &n in &sizes {
        let w = scaling_workload(n, 42);
        let config = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
        let pairs = w.r.len() * w.s.len();
        eprintln!(
            "n_entities={n}: |R|={}, |S|={}, {pairs} pairs",
            w.r.len(),
            w.s.len()
        );

        let mut measurements: Vec<Measurement> = Vec::new();
        for (engine, (outcome, seconds)) in ENGINES.iter().zip(measure_all(&config, &w.r, &w.s)) {
            eprintln!(
                "  {:<17} {seconds:>10.4}s  {:>12.0} pairs/s  |MT|={} |NMT|={}",
                engine.name,
                pairs as f64 / seconds,
                outcome.matching.len(),
                outcome.negative.len()
            );
            measurements.push(Measurement {
                name: engine.name,
                seconds,
                pairs_per_sec: pairs as f64 / seconds,
                matching: outcome.matching.len(),
                negative: outcome.negative.len(),
                undetermined: outcome.undetermined,
                stats: outcome.stats,
            });
        }

        // All engines must agree — this is a benchmark, not a place
        // to quietly diverge from the oracle.
        let oracle = &measurements[0];
        for m in &measurements[1..] {
            assert_eq!(
                (m.matching, m.negative, m.undetermined),
                (oracle.matching, oracle.negative, oracle.undetermined),
                "{} disagrees with the nested-loop oracle at n={n}",
                m.name
            );
        }

        let speedup = |name: &str| -> f64 {
            let m = measurements.iter().find(|m| m.name == name).unwrap();
            oracle.seconds / m.seconds
        };
        let engines_json: Vec<String> = measurements
            .iter()
            .map(|m| {
                format!(
                    concat!(
                        "{{\"name\": \"{}\", \"seconds\": {}, ",
                        "\"pairs_per_sec\": {}, \"matching\": {}, ",
                        "\"negative\": {}, \"undetermined\": {}, {}}}"
                    ),
                    m.name,
                    json_f64(m.seconds),
                    json_f64(m.pairs_per_sec),
                    m.matching,
                    m.negative,
                    m.undetermined,
                    breakdown_json(&m.stats)
                )
            })
            .collect();
        size_objects.push(format!(
            concat!(
                "    {{\n",
                "      \"n_entities\": {},\n",
                "      \"r_rows\": {},\n",
                "      \"s_rows\": {},\n",
                "      \"pairs\": {},\n",
                "      \"engines\": [\n        {}\n      ],\n",
                "      \"speedup_blocked_vs_nested_loop\": {},\n",
                "      \"speedup_blocked_parallel_vs_nested_loop\": {}\n",
                "    }}"
            ),
            n,
            w.r.len(),
            w.s.len(),
            pairs,
            engines_json.join(",\n        "),
            json_f64(speedup("blocked")),
            json_f64(speedup("blocked_parallel"))
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"matching\",\n",
            "  \"workload\": \"eid_bench::scaling_workload(n, 42), full refutation\",\n",
            "  \"metric\": \"pairs_per_sec = |R|*|S| / best-of-N wall seconds (N sized to ~0.6s)\",\n",
            "  \"sizes\": [\n{}\n  ]\n",
            "}}\n"
        ),
        size_objects.join(",\n")
    );

    // The repo root is two levels above this crate's manifest.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_matching.json");
    std::fs::write(out, &json).expect("write BENCH_matching.json");
    eprintln!("wrote {out}");
    println!("{json}");
}
