//! S2/S4 — per-tuple ILFD derivation: first-match (Prolog cut) vs
//! fixpoint (closure), over chain depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use eid_bench::chain_ilfds;
use eid_ilfd::{derive_tuple, Strategy};
use eid_relational::{Schema, Tuple, Value};

fn bench_derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("derive_tuple");
    for depth in [8usize, 32, 128] {
        let f = chain_ilfds(depth);
        let attrs: Vec<String> = (0..=depth).map(|i| format!("a{i}")).collect();
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let schema = Schema::of_strs("T", &attr_refs, &attr_refs[..1]).unwrap();
        // Only a0 is known; the whole chain must be derived.
        let mut values = vec![Value::Null; depth + 1];
        values[0] = Value::int(0);
        let tuple = Tuple::new(values);
        for (label, strategy) in [
            ("first_match", Strategy::FirstMatch),
            ("fixpoint", Strategy::Fixpoint),
        ] {
            group.bench_with_input(BenchmarkId::new(label, depth), &depth, |b, _| {
                b.iter(|| {
                    derive_tuple(
                        black_box(&schema),
                        black_box(&tuple),
                        black_box(&f),
                        strategy,
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_derivation);
criterion_main!(benches);
