//! S1 — matching-table construction scaling: hash join vs nested
//! loop, and the §4.2 algebra pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use eid_bench::scaling_workload;
use eid_core::algebra_pipeline;
use eid_core::matcher::{EntityMatcher, JoinAlgorithm, MatchConfig};

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    group.sample_size(10);
    for n in [100usize, 400, 1600] {
        let w = scaling_workload(n, 21);
        let mut config = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
        config.collect_negative = false;

        let hash_cfg = config.clone();
        group.bench_with_input(BenchmarkId::new("hash_join", n), &n, |b, _| {
            b.iter(|| {
                EntityMatcher::new(w.r.clone(), w.s.clone(), hash_cfg.clone())
                    .unwrap()
                    .run()
                    .unwrap()
            })
        });

        // Nested loop is quadratic; cap it to keep the suite fast.
        if n <= 400 {
            let mut nl_cfg = config.clone();
            nl_cfg.join = JoinAlgorithm::NestedLoop;
            group.bench_with_input(BenchmarkId::new("nested_loop", n), &n, |b, _| {
                b.iter(|| {
                    EntityMatcher::new(w.r.clone(), w.s.clone(), nl_cfg.clone())
                        .unwrap()
                        .run()
                        .unwrap()
                })
            });
        }

        group.bench_with_input(BenchmarkId::new("algebra_pipeline", n), &n, |b, _| {
            b.iter(|| {
                algebra_pipeline::run(black_box(&w.r), black_box(&w.s), &w.extended_key, &w.ilfds)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
