//! S2 — symbol-closure scaling: chain depth and flat family width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use eid_bench::{chain_ilfds, flat_ilfds};
use eid_ilfd::closure::{minimal_cover, symbol_closure, symbol_closure_naive};
use eid_ilfd::{PropSymbol, SymbolSet};
use eid_relational::Value;

fn bench_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("symbol_closure");
    for depth in [16usize, 64, 256, 1024] {
        let f = chain_ilfds(depth);
        let start = SymbolSet::from_symbols([PropSymbol::new("a0", Value::int(0))]);
        group.bench_with_input(BenchmarkId::new("chain", depth), &depth, |b, _| {
            b.iter(|| symbol_closure(black_box(&start), black_box(&f)))
        });
        if depth <= 256 {
            group.bench_with_input(BenchmarkId::new("chain_naive", depth), &depth, |b, _| {
                b.iter(|| symbol_closure_naive(black_box(&start), black_box(&f)))
            });
        }
    }
    for width in [64usize, 256, 1024] {
        let f = flat_ilfds(width, 8);
        let start = SymbolSet::from_symbols([PropSymbol::new("spec", Value::int(3))]);
        group.bench_with_input(BenchmarkId::new("flat", width), &width, |b, _| {
            b.iter(|| symbol_closure(black_box(&start), black_box(&f)))
        });
    }
    group.finish();
}

fn bench_minimal_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimal_cover");
    group.sample_size(20);
    for depth in [8usize, 32, 64] {
        let f = chain_ilfds(depth);
        group.bench_with_input(BenchmarkId::new("chain", depth), &depth, |b, _| {
            b.iter(|| minimal_cover(black_box(&f)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_closure, bench_minimal_cover);
criterion_main!(benches);
