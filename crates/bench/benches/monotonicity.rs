//! E4 — cost of re-running identification as knowledge grows (the
//! Figure-3 sweep), per incremental ILFD.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use eid_core::matcher::MatchConfig;
use eid_core::monotonic::KnowledgeSweep;
use eid_datagen::{generate, GeneratorConfig};
use eid_ilfd::IlfdSet;

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("knowledge_sweep");
    group.sample_size(10);
    for n in [20usize, 60] {
        let w = generate(&GeneratorConfig {
            n_entities: n,
            ilfd_coverage: 1.0,
            n_specialities: 12,
            seed: 51,
            ..GeneratorConfig::default()
        });
        let ilfds: Vec<_> = w.full_ilfds.iter().cloned().collect();
        let config = MatchConfig::new(w.extended_key.clone(), IlfdSet::new());
        group.bench_with_input(BenchmarkId::new("entities", n), &n, |b, _| {
            b.iter(|| KnowledgeSweep::run(&w.r, &w.s, &config, &ilfds).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
