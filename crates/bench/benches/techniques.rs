//! S3 — per-pair decision cost of each technique.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use eid_baselines::{
    run_technique, KeyEquivalence, ProbabilisticAttr, ProbabilisticKey, Technique,
};
use eid_bench::scaling_workload;
use eid_core::matcher::{EntityMatcher, MatchConfig};

fn bench_techniques(c: &mut Criterion) {
    let w = scaling_workload(200, 31);
    let mut group = c.benchmark_group("techniques_200_entities");
    group.sample_size(10);

    let techniques: Vec<(&str, Box<dyn Technique>)> = vec![
        (
            "key_equivalence",
            Box::new(KeyEquivalence::new(&["name"], true)),
        ),
        (
            "probabilistic_key",
            Box::new(ProbabilisticKey::new(&["name"], 0.6, 0.1)),
        ),
        (
            "probabilistic_attr",
            Box::new(ProbabilisticAttr::uniform(0.9, 0.2)),
        ),
    ];
    for (name, t) in &techniques {
        group.bench_function(*name, |b| {
            b.iter(|| run_technique(black_box(t.as_ref()), &w.r, &w.s))
        });
    }

    let config = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
    group.bench_function("ilfd_extended_key", |b| {
        b.iter(|| {
            EntityMatcher::new(w.r.clone(), w.s.clone(), config.clone())
                .unwrap()
                .run()
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_techniques);
criterion_main!(benches);
