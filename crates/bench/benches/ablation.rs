//! S4 — design-choice ablations: derivation strategy and
//! negative-table collection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use eid_bench::scaling_workload;
use eid_core::matcher::{EntityMatcher, MatchConfig};
use eid_ilfd::Strategy;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for n in [200usize, 800] {
        let w = scaling_workload(n, 41);
        for (label, strategy) in [
            ("first_match", Strategy::FirstMatch),
            ("fixpoint", Strategy::Fixpoint),
        ] {
            let mut config = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
            config.strategy = strategy;
            config.collect_negative = false;
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    EntityMatcher::new(w.r.clone(), w.s.clone(), config.clone())
                        .unwrap()
                        .run()
                        .unwrap()
                })
            });
        }
        // Refutation phase cost (quadratic) vs matching only.
        if n <= 200 {
            let mut config = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
            config.collect_negative = true;
            group.bench_with_input(BenchmarkId::new("with_negative_table", n), &n, |b, _| {
                b.iter(|| {
                    EntityMatcher::new(w.r.clone(), w.s.clone(), config.clone())
                        .unwrap()
                        .run()
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
