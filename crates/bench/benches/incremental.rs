//! Incremental maintenance vs batch recomputation: the cost of one
//! tuple insertion under each regime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use eid_bench::scaling_workload;
use eid_core::incremental::{IncrementalMatcher, SideSel};
use eid_core::matcher::{EntityMatcher, MatchConfig};
use eid_relational::Tuple;

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_one_tuple");
    group.sample_size(10);
    for n in [200usize, 800] {
        let w = scaling_workload(n, 61);
        let mut config = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
        config.collect_negative = false;

        // Incremental: clone a warmed matcher, insert one tuple.
        let warmed = IncrementalMatcher::new(w.r.clone(), w.s.clone(), config.clone()).unwrap();
        let mut counter = 0u64;
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                let mut m = warmed.clone();
                counter += 1;
                m.insert(
                    SideSel::R,
                    Tuple::of_strs(&[
                        &format!("fresh{counter}"),
                        "cuisine_x",
                        &format!("street{counter}"),
                        "city_x",
                    ]),
                )
                .unwrap()
            })
        });

        // Batch: re-run the whole matcher with the tuple added.
        group.bench_with_input(BenchmarkId::new("batch_recompute", n), &n, |b, _| {
            b.iter(|| {
                let mut r = w.r.clone();
                counter += 1;
                r.insert(Tuple::of_strs(&[
                    &format!("fresh{counter}"),
                    "cuisine_x",
                    &format!("street{counter}"),
                    "city_x",
                ]))
                .unwrap();
                EntityMatcher::new(r, w.s.clone(), config.clone())
                    .unwrap()
                    .run()
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
