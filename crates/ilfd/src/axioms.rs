//! Armstrong's axioms for ILFDs (§5.2) as verified proof trees.
//!
//! The paper establishes three inference rules — *reflexivity*,
//! *augmentation*, *transitivity* — proves them sound (Lemma 1),
//! derives *union*, *pseudo-transitivity* and *decomposition*
//! (Lemma 2), and shows the axiom system sound **and complete**
//! (Theorem 1). This module makes the proof system executable:
//! [`Derivation`] is a proof tree whose constructors enforce each
//! axiom's side conditions, and [`prove`] implements the
//! completeness argument constructively — whenever `F ⊨ X → Y` it
//! builds an explicit axiom derivation of `X → Y` from `F`.

use std::fmt;

use crate::closure::symbol_closure;
use crate::ilfd::{Ilfd, IlfdSet};
use crate::symbol::SymbolSet;

/// Error raised when an axiom's side condition is violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxiomError {
    /// Reflexivity requires the conclusion's consequent to be a
    /// subset of its antecedent.
    NotReflexive,
    /// Transitivity requires the left conclusion's consequent to
    /// equal the right conclusion's antecedent.
    TransitivityMismatch,
    /// The cited ILFD is not a member of the given set `F`.
    NotGiven,
}

impl fmt::Display for AxiomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxiomError::NotReflexive => {
                write!(f, "reflexivity requires Y ⊆ X in X → Y")
            }
            AxiomError::TransitivityMismatch => {
                write!(f, "transitivity requires X → Y and Y → Z with matching Y")
            }
            AxiomError::NotGiven => write!(f, "ILFD is not a member of F"),
        }
    }
}

impl std::error::Error for AxiomError {}

/// A proof tree in the ILFD axiom system. Every constructor checks
/// its side condition, so a constructed `Derivation` *is* a valid
/// proof; [`Derivation::conclusion`] reads off the proved ILFD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Derivation {
    /// An ILFD taken from `F`.
    Given(Ilfd),
    /// Reflexivity: `⊢ X → Y` whenever `Y ⊆ X` (trivial ILFDs).
    Reflexivity(Ilfd),
    /// Augmentation: from `X → Y` conclude `X∧Z → Y∧Z`.
    Augmentation {
        /// Proof of the premise `X → Y`.
        premise: Box<Derivation>,
        /// The conjunction `Z` added to both sides.
        with: SymbolSet,
    },
    /// Transitivity: from `X → Y` and `Y → Z` conclude `X → Z`.
    Transitivity {
        /// Proof of `X → Y`.
        left: Box<Derivation>,
        /// Proof of `Y → Z`.
        right: Box<Derivation>,
    },
}

impl Derivation {
    /// Cites a member of `F`.
    pub fn given(f: &IlfdSet, ilfd: Ilfd) -> Result<Derivation, AxiomError> {
        if f.contains(&ilfd) {
            Ok(Derivation::Given(ilfd))
        } else {
            Err(AxiomError::NotGiven)
        }
    }

    /// Applies reflexivity: proves `x → y` when `y ⊆ x`.
    pub fn reflexivity(x: SymbolSet, y: SymbolSet) -> Result<Derivation, AxiomError> {
        if y.is_subset(&x) {
            Ok(Derivation::Reflexivity(Ilfd::new(x, y)))
        } else {
            Err(AxiomError::NotReflexive)
        }
    }

    /// Applies augmentation with `z`.
    pub fn augmentation(premise: Derivation, z: SymbolSet) -> Derivation {
        Derivation::Augmentation {
            premise: Box::new(premise),
            with: z,
        }
    }

    /// Applies transitivity; the intermediate conjunctions must match
    /// exactly.
    pub fn transitivity(left: Derivation, right: Derivation) -> Result<Derivation, AxiomError> {
        if left.conclusion().consequent() == right.conclusion().antecedent() {
            Ok(Derivation::Transitivity {
                left: Box::new(left),
                right: Box::new(right),
            })
        } else {
            Err(AxiomError::TransitivityMismatch)
        }
    }

    /// The ILFD this tree proves.
    pub fn conclusion(&self) -> Ilfd {
        match self {
            Derivation::Given(i) | Derivation::Reflexivity(i) => i.clone(),
            Derivation::Augmentation { premise, with } => {
                let p = premise.conclusion();
                Ilfd::new(
                    p.antecedent().union_with(with),
                    p.consequent().union_with(with),
                )
            }
            Derivation::Transitivity { left, right } => Ilfd::new(
                left.conclusion().antecedent().clone(),
                right.conclusion().consequent().clone(),
            ),
        }
    }

    /// Number of axiom applications (proof size).
    pub fn size(&self) -> usize {
        match self {
            Derivation::Given(_) | Derivation::Reflexivity(_) => 1,
            Derivation::Augmentation { premise, .. } => 1 + premise.size(),
            Derivation::Transitivity { left, right } => 1 + left.size() + right.size(),
        }
    }

    /// **Union rule** (Lemma 2.1): from `X → Y` and `X → Z` derive
    /// `X → Y∧Z`, expressed via the three primitive axioms.
    pub fn union_rule(xy: Derivation, xz: Derivation) -> Result<Derivation, AxiomError> {
        let x = xy.conclusion().antecedent().clone();
        let y = xy.conclusion().consequent().clone();
        let z = xz.conclusion().consequent().clone();
        if &x != xz.conclusion().antecedent() {
            return Err(AxiomError::TransitivityMismatch);
        }
        // X → Y   ⊢(aug X)   X → X∧Y
        let step1 = Derivation::augmentation(xy, x.clone());
        let step1 = normalize_to(step1, &x, &x.union_with(&y))?;
        // X → Z   ⊢(aug Y)   X∧Y → Y∧Z
        let step2 = Derivation::augmentation(xz, y.clone());
        let step2 = normalize_to(step2, &x.union_with(&y), &y.union_with(&z))?;
        // transitivity
        Derivation::transitivity(step1, step2)
    }

    /// **Pseudo-transitivity rule** (Lemma 2.2): from `X → Y` and
    /// `W∧Y → Z` derive `W∧X → Z`.
    pub fn pseudo_transitivity(xy: Derivation, wyz: Derivation) -> Result<Derivation, AxiomError> {
        let w_and_y = wyz.conclusion().antecedent().clone();
        let x = xy.conclusion().antecedent().clone();
        // W∧X → W∧Y by augmenting X → Y with W∧Y's leftover part ∪ X;
        // we simply augment with the full W∧Y antecedent minus Y plus X.
        let y = xy.conclusion().consequent().clone();
        let w: SymbolSet = w_and_y.iter().filter(|s| !y.contains(s)).cloned().collect();
        let aug = Derivation::augmentation(xy, w.union_with(&x));
        // aug proves  X∧(W∧X) → Y∧(W∧X)  =  W∧X → W∧X∧Y
        let wx = w.union_with(&x);
        let aug = normalize_to(aug, &wx, &wx.union_with(&y))?;
        // W∧X∧Y → Z: weaken wyz's antecedent via reflexivity + transitivity.
        let refl = Derivation::reflexivity(wx.union_with(&y), w_and_y)?;
        let chain = Derivation::transitivity(refl, wyz)?;
        Derivation::transitivity(aug, chain)
    }

    /// **Decomposition rule** (Lemma 2.3): from `X → Y∧Z` derive
    /// `X → Z` (for any subset `Z` of the consequent).
    pub fn decomposition(xyz: Derivation, z: SymbolSet) -> Result<Derivation, AxiomError> {
        let yz = xyz.conclusion().consequent().clone();
        if !z.is_subset(&yz) {
            return Err(AxiomError::NotReflexive);
        }
        let refl = Derivation::reflexivity(yz, z)?;
        Derivation::transitivity(xyz, refl)
    }
}

/// Conjunction-of-symbols proofs sometimes conclude syntactically
/// different but set-equal ILFDs (e.g. `X∧X → Y∧X`). This helper
/// re-states a derivation's conclusion as exactly `want_ante →
/// want_cons` when the sets already match, inserting reflexivity
/// bridges when the match is by subset in the right direction.
fn normalize_to(
    d: Derivation,
    want_ante: &SymbolSet,
    want_cons: &SymbolSet,
) -> Result<Derivation, AxiomError> {
    let c = d.conclusion();
    let mut out = d;
    // Strengthen antecedent: want_ante → current antecedent by reflexivity.
    if c.antecedent() != want_ante {
        let refl = Derivation::reflexivity(want_ante.clone(), c.antecedent().clone())?;
        out = Derivation::transitivity(refl, out)?;
    }
    // Weaken consequent: current consequent → want_cons by reflexivity.
    let c = out.conclusion();
    if c.consequent() != want_cons {
        let refl = Derivation::reflexivity(c.consequent().clone(), want_cons.clone())?;
        out = Derivation::transitivity(out, refl)?;
    }
    Ok(out)
}

/// Constructive completeness (Theorem 1): if `F ⊨ X → Y`, builds an
/// explicit axiom derivation of `X → Y` from `F`; returns `None`
/// when the implication does not hold.
///
/// The construction mirrors the classical FD proof: starting from the
/// reflexive `X → X`, repeatedly pick a member `U → V` of `F` with
/// `U` inside the proved consequent `Z`, augment it with `Z` to get
/// `Z → Z∧V`, and chain by transitivity, until `Y` is covered; a
/// final reflexivity step projects onto `Y`.
pub fn prove(f: &IlfdSet, target: &Ilfd) -> Option<Derivation> {
    let x = target.antecedent().clone();
    let y = target.consequent().clone();
    if !y.is_subset(&symbol_closure(&x, f)) {
        return None;
    }
    // proof proves X → Z; grow Z.
    let mut z = x.clone();
    let mut proof = Derivation::reflexivity(x.clone(), x.clone()).expect("X ⊆ X");
    loop {
        if y.is_subset(&z) {
            break;
        }
        // Find a firing ILFD that adds something new.
        let firing = f
            .iter()
            .find(|i| i.antecedent().is_subset(&z) && !i.consequent().is_subset(&z))?; // closure membership guarantees progress, so None is unreachable
                                                                                       // Given U → V, augment with Z:  U∧Z → V∧Z  =  Z → Z∧V.
        let given = Derivation::Given(firing.clone());
        let aug = Derivation::augmentation(given, z.clone());
        let new_z = z.union_with(firing.consequent());
        let aug = normalize_to(aug, &z, &new_z).ok()?;
        proof = Derivation::transitivity(proof, aug).ok()?;
        z = new_z;
    }
    // Project Z onto Y.
    let refl = Derivation::reflexivity(z, y).ok()?;
    let done = Derivation::transitivity(proof, refl).ok()?;
    debug_assert_eq!(done.conclusion(), *target);
    Some(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::implies;

    fn example_f() -> IlfdSet {
        vec![
            Ilfd::of_strs(&[("A", "a1")], &[("B", "b1")]),
            Ilfd::of_strs(&[("B", "b1")], &[("C", "c1")]),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn reflexivity_checks_subset() {
        let x = SymbolSet::of_strs(&[("a", "1"), ("b", "2")]);
        let y = SymbolSet::of_strs(&[("a", "1")]);
        let d = Derivation::reflexivity(x.clone(), y.clone()).unwrap();
        assert_eq!(d.conclusion(), Ilfd::new(x.clone(), y.clone()));
        assert_eq!(
            Derivation::reflexivity(y, x).unwrap_err(),
            AxiomError::NotReflexive
        );
    }

    #[test]
    fn augmentation_adds_to_both_sides() {
        let f = example_f();
        let d = Derivation::given(&f, f.as_slice()[0].clone()).unwrap();
        let z = SymbolSet::of_strs(&[("Z", "z")]);
        let aug = Derivation::augmentation(d, z);
        assert_eq!(
            aug.conclusion(),
            Ilfd::of_strs(&[("A", "a1"), ("Z", "z")], &[("B", "b1"), ("Z", "z")])
        );
    }

    #[test]
    fn transitivity_requires_matching_middle() {
        let f = example_f();
        let ab = Derivation::given(&f, f.as_slice()[0].clone()).unwrap();
        let bc = Derivation::given(&f, f.as_slice()[1].clone()).unwrap();
        let ac = Derivation::transitivity(ab.clone(), bc).unwrap();
        assert_eq!(
            ac.conclusion(),
            Ilfd::of_strs(&[("A", "a1")], &[("C", "c1")])
        );
        assert_eq!(
            Derivation::transitivity(ab.clone(), ab).unwrap_err(),
            AxiomError::TransitivityMismatch
        );
    }

    #[test]
    fn given_rejects_non_members() {
        let f = example_f();
        let foreign = Ilfd::of_strs(&[("Q", "q")], &[("R", "r")]);
        assert_eq!(
            Derivation::given(&f, foreign).unwrap_err(),
            AxiomError::NotGiven
        );
    }

    #[test]
    fn union_rule_merges_consequents() {
        let f: IlfdSet = vec![
            Ilfd::of_strs(&[("X", "x")], &[("Y", "y")]),
            Ilfd::of_strs(&[("X", "x")], &[("Z", "z")]),
        ]
        .into_iter()
        .collect();
        let xy = Derivation::given(&f, f.as_slice()[0].clone()).unwrap();
        let xz = Derivation::given(&f, f.as_slice()[1].clone()).unwrap();
        let u = Derivation::union_rule(xy, xz).unwrap();
        assert_eq!(
            u.conclusion(),
            Ilfd::of_strs(&[("X", "x")], &[("Y", "y"), ("Z", "z")])
        );
    }

    #[test]
    fn pseudo_transitivity_rule() {
        let f: IlfdSet = vec![
            Ilfd::of_strs(&[("X", "x")], &[("Y", "y")]),
            Ilfd::of_strs(&[("W", "w"), ("Y", "y")], &[("Z", "z")]),
        ]
        .into_iter()
        .collect();
        let xy = Derivation::given(&f, f.as_slice()[0].clone()).unwrap();
        let wyz = Derivation::given(&f, f.as_slice()[1].clone()).unwrap();
        let p = Derivation::pseudo_transitivity(xy, wyz).unwrap();
        assert_eq!(
            p.conclusion(),
            Ilfd::of_strs(&[("W", "w"), ("X", "x")], &[("Z", "z")])
        );
    }

    #[test]
    fn decomposition_rule() {
        let f: IlfdSet = vec![Ilfd::of_strs(&[("X", "x")], &[("Y", "y"), ("Z", "z")])]
            .into_iter()
            .collect();
        let d = Derivation::given(&f, f.as_slice()[0].clone()).unwrap();
        let dec = Derivation::decomposition(d, SymbolSet::of_strs(&[("Z", "z")])).unwrap();
        assert_eq!(
            dec.conclusion(),
            Ilfd::of_strs(&[("X", "x")], &[("Z", "z")])
        );
    }

    #[test]
    fn prove_constructs_derivation_for_implied_ilfd() {
        let f = example_f();
        let target = Ilfd::of_strs(&[("A", "a1")], &[("C", "c1")]);
        let proof = prove(&f, &target).expect("implied");
        assert_eq!(proof.conclusion(), target);
        assert!(proof.size() >= 3);
    }

    #[test]
    fn prove_fails_for_non_implied() {
        let f = example_f();
        let bogus = Ilfd::of_strs(&[("C", "c1")], &[("A", "a1")]);
        assert!(prove(&f, &bogus).is_none());
    }

    #[test]
    fn prove_handles_trivial_targets_with_empty_f() {
        let f = IlfdSet::new();
        let trivial = Ilfd::of_strs(&[("A", "a"), ("B", "b")], &[("B", "b")]);
        let proof = prove(&f, &trivial).unwrap();
        assert_eq!(proof.conclusion(), trivial);
    }

    #[test]
    fn prove_agrees_with_implies_on_paper_i9() {
        let f: IlfdSet = vec![
            Ilfd::of_strs(&[("street", "front_ave")], &[("county", "ramsey")]),
            Ilfd::of_strs(
                &[("name", "itsgreek"), ("county", "ramsey")],
                &[("spec", "gyros")],
            ),
        ]
        .into_iter()
        .collect();
        let i9 = Ilfd::of_strs(
            &[("name", "itsgreek"), ("street", "front_ave")],
            &[("spec", "gyros")],
        );
        assert!(implies(&f, &i9));
        let proof = prove(&f, &i9).unwrap();
        assert_eq!(proof.conclusion(), i9);
    }
}
