//! Classical functional dependencies and the ILFD ↔ FD bridge.
//!
//! §5.1 relates the two notions. Proposition 2: *if for each
//! combination of values `a₁…aₘ` in the domains of `A₁…Aₘ` there is
//! an ILFD `(A₁=a₁) ∧ … ∧ (Aₘ=aₘ) → (B₁=b₁) ∧ … ∧ (Bₙ=bₙ)` that
//! holds in the relation `R`, then the FD `{A₁,…,Aₘ} → {B₁,…,Bₙ}`
//! also holds in `R`.* The converse is false — FDs do not suggest
//! particular values.
//!
//! This module provides a standard FD engine (attribute-set closure,
//! implication, satisfaction checking over relations) and the
//! Proposition-2 constructions in both directions:
//! [`fd_from_ilfd_family`] checks the premise and concludes the FD,
//! and [`ilfds_from_relation_fd`] extracts the (relation-specific)
//! ILFD family witnessing an FD that holds in a given relation.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use serde::{Deserialize, Serialize};

use eid_relational::{AttrName, Relation, Tuple};

use crate::ilfd::{Ilfd, IlfdSet};
use crate::symbol::{PropSymbol, SymbolSet};

/// A functional dependency `lhs → rhs` over attribute *names* (not
/// values — contrast with [`Ilfd`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Fd {
    /// Determinant attribute set.
    pub lhs: BTreeSet<AttrName>,
    /// Determined attribute set.
    pub rhs: BTreeSet<AttrName>,
}

impl Fd {
    /// Builds `lhs → rhs`.
    pub fn new(
        lhs: impl IntoIterator<Item = AttrName>,
        rhs: impl IntoIterator<Item = AttrName>,
    ) -> Self {
        Fd {
            lhs: lhs.into_iter().collect(),
            rhs: rhs.into_iter().collect(),
        }
    }

    /// Builds from attribute name strings.
    pub fn of_strs(lhs: &[&str], rhs: &[&str]) -> Self {
        Fd::new(
            lhs.iter().map(|s| AttrName::new(*s)),
            rhs.iter().map(|s| AttrName::new(*s)),
        )
    }

    /// Trivial iff `rhs ⊆ lhs`.
    pub fn is_trivial(&self) -> bool {
        self.rhs.is_subset(&self.lhs)
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let l: Vec<&str> = self.lhs.iter().map(|a| a.as_str()).collect();
        let r: Vec<&str> = self.rhs.iter().map(|a| a.as_str()).collect();
        write!(f, "{{{}}} → {{{}}}", l.join(", "), r.join(", "))
    }
}

/// Attribute-set closure `X⁺` with respect to a set of FDs — the
/// classical fixpoint algorithm §5.2 says the symbol closure mirrors.
pub fn attr_closure(x: &BTreeSet<AttrName>, fds: &[Fd]) -> BTreeSet<AttrName> {
    let mut closure = x.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for fd in fds {
            if fd.lhs.is_subset(&closure) && !fd.rhs.is_subset(&closure) {
                closure.extend(fd.rhs.iter().cloned());
                changed = true;
            }
        }
    }
    closure
}

/// Logical implication for FDs: `fds ⊨ target` iff
/// `target.rhs ⊆ (target.lhs)⁺`.
pub fn fd_implies(fds: &[Fd], target: &Fd) -> bool {
    target.rhs.is_subset(&attr_closure(&target.lhs, fds))
}

/// Whether the FD holds in `rel`: every pair of tuples agreeing on
/// `lhs` (with all values non-NULL) agrees on `rhs`. NULL `lhs`
/// values exempt a tuple — NULL means *unknown*, so it cannot witness
/// agreement.
pub fn fd_holds_in(rel: &Relation, fd: &Fd) -> bool {
    let lhs_pos: Vec<usize> = match fd
        .lhs
        .iter()
        .map(|a| rel.schema().try_position(a).ok_or(()))
        .collect::<Result<_, _>>()
    {
        Ok(v) => v,
        Err(()) => return false,
    };
    let rhs_pos: Vec<usize> = match fd
        .rhs
        .iter()
        .map(|a| rel.schema().try_position(a).ok_or(()))
        .collect::<Result<_, _>>()
    {
        Ok(v) => v,
        Err(()) => return false,
    };
    let mut seen: HashMap<Tuple, Tuple> = HashMap::new();
    for t in rel.iter() {
        if !t.non_null_at(&lhs_pos) {
            continue;
        }
        let key = t.project(&lhs_pos);
        let val = t.project(&rhs_pos);
        match seen.entry(key) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(val);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                if e.get() != &val {
                    return false;
                }
            }
        }
    }
    true
}

/// Enumerates the **candidate keys** of a relation scheme with
/// attribute set `attrs` under the FDs `fds`: the minimal attribute
/// sets whose closure covers everything. Classic exponential search
/// pruned by (i) seeding with the attributes that appear in no RHS
/// (they are in every key) and (ii) minimality filtering.
///
/// The paper's extended key is "a minimal set of attributes … needed
/// to uniquely identify an instance of type E in the integrated real
/// world" — i.e. a candidate key of the integrated scheme; this
/// function lets a DBA *derive* the candidate extended keys from FD
/// knowledge instead of guessing them.
pub fn candidate_keys(attrs: &BTreeSet<AttrName>, fds: &[Fd]) -> Vec<BTreeSet<AttrName>> {
    if attrs.is_empty() {
        return Vec::new();
    }
    // Attributes never determined by anything must be in every key.
    let determined: BTreeSet<AttrName> = fds
        .iter()
        .flat_map(|fd| fd.rhs.iter().filter(|a| !fd.lhs.contains(a)).cloned())
        .collect();
    let core: BTreeSet<AttrName> = attrs.difference(&determined).cloned().collect();
    let optional: Vec<AttrName> = attrs.intersection(&determined).cloned().collect();
    assert!(optional.len() <= 20, "candidate-key search space too large");

    let is_superkey =
        |set: &BTreeSet<AttrName>| -> bool { attr_closure(set, fds).is_superset(attrs) };

    let mut keys: Vec<BTreeSet<AttrName>> = Vec::new();
    // Enumerate subsets of the optional attributes by increasing size
    // so minimality is a subset check against already-found keys.
    for mask in 0u32..(1 << optional.len()) {
        let mut set = core.clone();
        for (i, a) in optional.iter().enumerate() {
            if mask & (1 << i) != 0 {
                set.insert(a.clone());
            }
        }
        if !is_superkey(&set) {
            continue;
        }
        if keys.iter().any(|k| k.is_subset(&set)) {
            continue;
        }
        // Remove any previously added supersets (enumeration order is
        // not strictly by size).
        keys.retain(|k| !set.is_subset(k));
        keys.push(set);
    }
    keys.sort();
    keys
}

/// Proposition 2, checked constructively. Given a relation `rel` and
/// an ILFD set `f`, tests whether *every* tuple's `lhs`-value
/// combination is covered by some ILFD in `f` over exactly the `lhs`
/// attributes deriving all of `rhs`, and that `rel` satisfies those
/// ILFDs; if so the FD `lhs → rhs` is guaranteed (and this function
/// verifies it holds).
pub fn fd_from_ilfd_family(rel: &Relation, f: &IlfdSet, fd: &Fd) -> bool {
    // Every tuple combination must be covered.
    for t in rel.iter() {
        let mut ante = SymbolSet::new();
        let mut total = true;
        for a in &fd.lhs {
            match t.value_of(rel.schema(), a) {
                Some(v) if !v.is_null() => {
                    ante.insert(PropSymbol::new(a.clone(), v.clone()));
                }
                _ => {
                    total = false;
                    break;
                }
            }
        }
        if !total {
            continue; // NULL lhs tuples are exempt, as in `fd_holds_in`
        }
        // The closure of the antecedent must pin down every rhs attribute.
        let closure = crate::closure::symbol_closure(&ante, f);
        for b in &fd.rhs {
            let derived: Vec<&PropSymbol> = closure.iter().filter(|s| &s.attr == b).collect();
            if derived.len() != 1 {
                return false;
            }
            // The tuple itself must agree (f holds in rel for this tuple).
            match t.value_of(rel.schema(), b) {
                Some(v) if v.non_null_eq(&derived[0].value) => {}
                _ => return false,
            }
        }
    }
    debug_assert!(fd_holds_in(rel, fd), "Proposition 2 violated");
    true
}

/// The reverse construction: if `fd` holds in `rel`, extract the
/// witnessing ILFD family — one ILFD per distinct `lhs`-value
/// combination present in `rel`. (Only meaningful for the given
/// relation instance; this is why the converse of Proposition 2 does
/// not hold in general.)
pub fn ilfds_from_relation_fd(rel: &Relation, fd: &Fd) -> Option<IlfdSet> {
    if !fd_holds_in(rel, fd) {
        return None;
    }
    let mut out = IlfdSet::new();
    for t in rel.iter() {
        let mut ante = SymbolSet::new();
        let mut cons = SymbolSet::new();
        let mut ok = true;
        for a in &fd.lhs {
            match t.value_of(rel.schema(), a) {
                Some(v) if !v.is_null() => {
                    ante.insert(PropSymbol::new(a.clone(), v.clone()));
                }
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        for b in &fd.rhs {
            match t.value_of(rel.schema(), b) {
                Some(v) if !v.is_null() => {
                    cons.insert(PropSymbol::new(b.clone(), v.clone()));
                }
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            out.insert(Ilfd::new(ante, cons));
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_relational::{Schema, Value};

    fn name(s: &str) -> AttrName {
        AttrName::new(s)
    }

    fn restaurant_rel() -> Relation {
        let schema = Schema::of_strs("R", &["name", "speciality", "cuisine"], &["name"]).unwrap();
        let mut r = Relation::new(schema);
        r.insert_strs(&["a", "hunan", "chinese"]).unwrap();
        r.insert_strs(&["b", "sichuan", "chinese"]).unwrap();
        r.insert_strs(&["c", "gyros", "greek"]).unwrap();
        r
    }

    #[test]
    fn attr_closure_chains() {
        let fds = vec![Fd::of_strs(&["a"], &["b"]), Fd::of_strs(&["b"], &["c"])];
        let x: BTreeSet<AttrName> = [name("a")].into_iter().collect();
        let plus = attr_closure(&x, &fds);
        assert!(plus.contains(&name("c")));
        assert_eq!(plus.len(), 3);
    }

    #[test]
    fn fd_implies_transitivity() {
        let fds = vec![Fd::of_strs(&["a"], &["b"]), Fd::of_strs(&["b"], &["c"])];
        assert!(fd_implies(&fds, &Fd::of_strs(&["a"], &["c"])));
        assert!(!fd_implies(&fds, &Fd::of_strs(&["c"], &["a"])));
    }

    #[test]
    fn fd_holds_in_relation() {
        let r = restaurant_rel();
        assert!(fd_holds_in(&r, &Fd::of_strs(&["speciality"], &["cuisine"])));
        // cuisine does not determine speciality (chinese → {hunan, sichuan}).
        assert!(!fd_holds_in(
            &r,
            &Fd::of_strs(&["cuisine"], &["speciality"])
        ));
    }

    #[test]
    fn fd_on_missing_attribute_fails() {
        let r = restaurant_rel();
        assert!(!fd_holds_in(&r, &Fd::of_strs(&["nope"], &["cuisine"])));
    }

    #[test]
    fn null_lhs_tuples_are_exempt() {
        let schema = Schema::of_strs("T", &["a", "b"], &["a"]).unwrap();
        let mut r = Relation::new_unchecked(schema);
        r.insert(Tuple::new(vec![Value::Null, Value::str("x")]))
            .unwrap();
        r.insert(Tuple::new(vec![Value::Null, Value::str("y")]))
            .unwrap();
        assert!(fd_holds_in(&r, &Fd::of_strs(&["a"], &["b"])));
    }

    #[test]
    fn proposition_2_premise_implies_fd() {
        let r = restaurant_rel();
        let f: IlfdSet = vec![
            Ilfd::of_strs(&[("speciality", "hunan")], &[("cuisine", "chinese")]),
            Ilfd::of_strs(&[("speciality", "sichuan")], &[("cuisine", "chinese")]),
            Ilfd::of_strs(&[("speciality", "gyros")], &[("cuisine", "greek")]),
        ]
        .into_iter()
        .collect();
        let fd = Fd::of_strs(&["speciality"], &["cuisine"]);
        assert!(fd_from_ilfd_family(&r, &f, &fd));
        assert!(fd_holds_in(&r, &fd));
    }

    #[test]
    fn incomplete_family_fails_premise() {
        let r = restaurant_rel();
        let f: IlfdSet = vec![Ilfd::of_strs(
            &[("speciality", "hunan")],
            &[("cuisine", "chinese")],
        )]
        .into_iter()
        .collect();
        // gyros/sichuan combinations are uncovered.
        assert!(!fd_from_ilfd_family(
            &r,
            &f,
            &Fd::of_strs(&["speciality"], &["cuisine"])
        ));
    }

    #[test]
    fn extracted_ilfd_family_witnesses_fd() {
        let r = restaurant_rel();
        let fd = Fd::of_strs(&["speciality"], &["cuisine"]);
        let f = ilfds_from_relation_fd(&r, &fd).unwrap();
        assert_eq!(f.len(), 3);
        assert!(fd_from_ilfd_family(&r, &f, &fd));
        // Converse direction: extraction refuses a violated FD.
        assert!(ilfds_from_relation_fd(&r, &Fd::of_strs(&["cuisine"], &["speciality"])).is_none());
    }

    #[test]
    fn candidate_keys_basic() {
        // R(a, b, c) with a → b, b → c: the only key is {a}.
        let attrs: BTreeSet<AttrName> = ["a", "b", "c"].iter().map(|s| name(s)).collect();
        let fds = vec![Fd::of_strs(&["a"], &["b"]), Fd::of_strs(&["b"], &["c"])];
        let keys = candidate_keys(&attrs, &fds);
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0], [name("a")].into_iter().collect());
    }

    #[test]
    fn candidate_keys_multiple() {
        // a → b and b → a: both {a, c} and {b, c} are keys.
        let attrs: BTreeSet<AttrName> = ["a", "b", "c"].iter().map(|s| name(s)).collect();
        let fds = vec![Fd::of_strs(&["a"], &["b"]), Fd::of_strs(&["b"], &["a"])];
        let mut keys = candidate_keys(&attrs, &fds);
        keys.sort();
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&["a", "c"].iter().map(|s| name(s)).collect()));
        assert!(keys.contains(&["b", "c"].iter().map(|s| name(s)).collect()));
    }

    #[test]
    fn no_fds_means_whole_set_is_the_key() {
        let attrs: BTreeSet<AttrName> = ["a", "b"].iter().map(|s| name(s)).collect();
        let keys = candidate_keys(&attrs, &[]);
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0], attrs);
    }

    #[test]
    fn keys_are_minimal() {
        let attrs: BTreeSet<AttrName> = ["name", "cuisine", "speciality"]
            .iter()
            .map(|s| name(s))
            .collect();
        // speciality → cuisine (the paper's family as an FD).
        let fds = vec![Fd::of_strs(&["speciality"], &["cuisine"])];
        let keys = candidate_keys(&attrs, &fds);
        // {name, speciality} is the single minimal key.
        assert_eq!(keys.len(), 1);
        assert_eq!(
            keys[0],
            ["name", "speciality"].iter().map(|s| name(s)).collect()
        );
    }

    #[test]
    fn fd_display_and_trivial() {
        let fd = Fd::of_strs(&["a", "b"], &["a"]);
        assert!(fd.is_trivial());
        assert_eq!(fd.to_string(), "{a, b} → {a}");
    }
}
