//! Propositional symbols `(A = a)` and sets thereof.
//!
//! §5 of the paper reduces ILFD reasoning to propositional logic:
//! each boolean condition `Attribute = constant` is treated as a
//! propositional symbol, and an ILFD becomes an implication between
//! conjunctions of such symbols. [`PropSymbol`] is one symbol,
//! [`SymbolSet`] an ordered conjunction.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use eid_relational::{AttrName, Schema, Tuple, Value};

/// A propositional symbol: the condition `attr = value`.
///
/// The value must be non-NULL — `(A = NULL)` is not a condition the
/// paper's ILFD language can express (NULL means *unknown*, and
/// ILFD antecedents/consequents quantify over real-world attribute
/// values).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PropSymbol {
    /// The attribute.
    pub attr: AttrName,
    /// The (non-NULL) constant it is compared against.
    pub value: Value,
}

impl PropSymbol {
    /// Builds `attr = value`. Panics on NULL values (a programming
    /// error: the ILFD language has no NULL conditions).
    pub fn new(attr: impl Into<AttrName>, value: impl Into<Value>) -> Self {
        let value = value.into();
        assert!(
            !value.is_null(),
            "propositional symbols cannot carry NULL values"
        );
        PropSymbol {
            attr: attr.into(),
            value,
        }
    }

    /// Whether `tuple` (under `schema`) makes this symbol true.
    /// A NULL or missing attribute value makes it false — the tuple
    /// does not (yet) witness the condition.
    pub fn holds_in(&self, schema: &Schema, tuple: &Tuple) -> bool {
        tuple
            .value_of(schema, &self.attr)
            .map(|v| v.non_null_eq(&self.value))
            .unwrap_or(false)
    }
}

impl fmt::Display for PropSymbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} = {})", self.attr, self.value)
    }
}

/// An ordered set of propositional symbols, read as a conjunction.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SymbolSet {
    symbols: BTreeSet<PropSymbol>,
}

impl SymbolSet {
    /// The empty conjunction (logically `true`).
    pub fn new() -> Self {
        SymbolSet::default()
    }

    /// Builds a set from symbols.
    pub fn from_symbols(symbols: impl IntoIterator<Item = PropSymbol>) -> Self {
        SymbolSet {
            symbols: symbols.into_iter().collect(),
        }
    }

    /// Builds a set of string-valued conditions: `[("spec", "hunan")]`.
    pub fn of_strs(pairs: &[(&str, &str)]) -> Self {
        SymbolSet::from_symbols(
            pairs
                .iter()
                .map(|(a, v)| PropSymbol::new(*a, Value::str(*v))),
        )
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the conjunction is empty (logically `true`).
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Adds a symbol.
    pub fn insert(&mut self, s: PropSymbol) -> bool {
        self.symbols.insert(s)
    }

    /// Whether `s` is a member.
    pub fn contains(&self, s: &PropSymbol) -> bool {
        self.symbols.contains(s)
    }

    /// Subset test: every symbol of `self` is in `other`.
    pub fn is_subset(&self, other: &SymbolSet) -> bool {
        self.symbols.is_subset(&other.symbols)
    }

    /// Set union (conjunction of both).
    pub fn union_with(&self, other: &SymbolSet) -> SymbolSet {
        SymbolSet {
            symbols: self.symbols.union(&other.symbols).cloned().collect(),
        }
    }

    /// Iterates over symbols in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &PropSymbol> {
        self.symbols.iter()
    }

    /// The distinct attributes mentioned.
    pub fn attributes(&self) -> BTreeSet<AttrName> {
        self.symbols.iter().map(|s| s.attr.clone()).collect()
    }

    /// Whether every symbol holds in `tuple` (under `schema`).
    pub fn holds_in(&self, schema: &Schema, tuple: &Tuple) -> bool {
        self.symbols.iter().all(|s| s.holds_in(schema, tuple))
    }

    /// Whether the set binds some attribute to two different values —
    /// such a conjunction is unsatisfiable by any single entity.
    pub fn is_contradictory(&self) -> bool {
        let mut prev: Option<&PropSymbol> = None;
        for s in &self.symbols {
            if let Some(p) = prev {
                if p.attr == s.attr && p.value != s.value {
                    return true;
                }
            }
            prev = Some(s);
        }
        false
    }

    /// Extracts all symbols a tuple witnesses: one `(A = a)` per
    /// non-NULL attribute value. This is the propositional view of a
    /// tuple used by closure-based derivation.
    pub fn of_tuple(schema: &Schema, tuple: &Tuple) -> SymbolSet {
        let mut set = SymbolSet::new();
        for (attr, value) in schema.attributes().iter().zip(tuple.values()) {
            if !value.is_null() {
                set.insert(PropSymbol {
                    attr: attr.name.clone(),
                    value: value.clone(),
                });
            }
        }
        set
    }
}

impl FromIterator<PropSymbol> for SymbolSet {
    fn from_iter<I: IntoIterator<Item = PropSymbol>>(iter: I) -> Self {
        SymbolSet::from_symbols(iter)
    }
}

impl<'a> IntoIterator for &'a SymbolSet {
    type Item = &'a PropSymbol;
    type IntoIter = std::collections::btree_set::Iter<'a, PropSymbol>;
    fn into_iter(self) -> Self::IntoIter {
        self.symbols.iter()
    }
}

impl fmt::Display for SymbolSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.symbols.is_empty() {
            return f.write_str("⊤");
        }
        for (i, s) in self.symbols.iter().enumerate() {
            if i > 0 {
                f.write_str(" ∧ ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_relational::Schema;

    #[test]
    #[should_panic(expected = "NULL")]
    fn null_symbol_panics() {
        PropSymbol::new("a", Value::Null);
    }

    #[test]
    fn symbol_holds_in_tuple() {
        let schema = Schema::of_strs("R", &["spec", "cui"], &["spec"]).unwrap();
        let t = Tuple::of_strs(&["hunan", "chinese"]);
        assert!(PropSymbol::new("spec", "hunan").holds_in(&schema, &t));
        assert!(!PropSymbol::new("spec", "gyros").holds_in(&schema, &t));
        assert!(!PropSymbol::new("missing", "x").holds_in(&schema, &t));
    }

    #[test]
    fn null_value_does_not_witness_symbol() {
        let schema = Schema::of_strs("R", &["spec"], &["spec"]).unwrap();
        let t = Tuple::new(vec![Value::Null]);
        assert!(!PropSymbol::new("spec", "hunan").holds_in(&schema, &t));
    }

    #[test]
    fn set_subset_and_union() {
        let a = SymbolSet::of_strs(&[("x", "1")]);
        let b = SymbolSet::of_strs(&[("x", "1"), ("y", "2")]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert_eq!(a.union_with(&b), b);
    }

    #[test]
    fn contradiction_detection() {
        let ok = SymbolSet::of_strs(&[("x", "1"), ("y", "1")]);
        assert!(!ok.is_contradictory());
        let bad = SymbolSet::of_strs(&[("x", "1"), ("x", "2")]);
        assert!(bad.is_contradictory());
    }

    #[test]
    fn of_tuple_skips_nulls() {
        let schema = Schema::of_strs("R", &["a", "b"], &["a"]).unwrap();
        let t = Tuple::new(vec![Value::str("v"), Value::Null]);
        let s = SymbolSet::of_tuple(&schema, &t);
        assert_eq!(s.len(), 1);
        assert!(s.contains(&PropSymbol::new("a", "v")));
    }

    #[test]
    fn display_forms() {
        let s = SymbolSet::of_strs(&[("spec", "hunan")]);
        assert_eq!(s.to_string(), "(spec = hunan)");
        assert_eq!(SymbolSet::new().to_string(), "⊤");
    }

    #[test]
    fn empty_set_holds_vacuously() {
        let schema = Schema::of_strs("R", &["a"], &["a"]).unwrap();
        let t = Tuple::new(vec![Value::Null]);
        assert!(SymbolSet::new().holds_in(&schema, &t));
    }
}
