//! A propositional Horn-clause view of ILFD reasoning.
//!
//! §5: "Although ILFDs can be modeled using propositional logic, it
//! can also be modeled in first order logic as program clauses \[9,
//! Lloyd\]. … representing ILFDs using propositional logic can make
//! the ILFD reasoning process simpler." Decomposed ILFDs *are*
//! definite Horn clauses — one positive literal (the consequent
//! symbol), negative literals for the antecedent. This module gives
//! that reading its own engine:
//!
//! * [`HornProgram`] — clauses over [`PropSymbol`] atoms;
//! * [`HornProgram::forward_chain`] — bottom-up consequence operator
//!   (`T_P ↑ ω`), the semantics the fixpoint derivation strategy
//!   implements;
//! * [`HornProgram::prove_goal`] — top-down SLD resolution with
//!   memoization and loop detection, the semantics of the Prolog
//!   prototype (§6).
//!
//! Both agree with [`crate::closure::symbol_closure`] on every input
//! — the property suite and the unit tests here pin that down,
//! giving the closure algorithm two independent oracles.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::ilfd::IlfdSet;
use crate::symbol::{PropSymbol, SymbolSet};

/// A definite Horn clause `body₁ ∧ … ∧ bodyₙ → head`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HornClause {
    /// The positive literal.
    pub head: PropSymbol,
    /// The negative literals (empty = a fact).
    pub body: Vec<PropSymbol>,
}

impl fmt::Display for HornClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, b) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{b}")?;
            }
        }
        write!(f, ".")
    }
}

/// A set of definite clauses.
#[derive(Debug, Clone, Default)]
pub struct HornProgram {
    clauses: Vec<HornClause>,
    /// head atom → clause indices, for backward chaining.
    by_head: HashMap<PropSymbol, Vec<usize>>,
}

impl HornProgram {
    /// An empty program.
    pub fn new() -> Self {
        HornProgram::default()
    }

    /// Converts an ILFD set: each decomposed ILFD becomes a clause.
    pub fn from_ilfds(f: &IlfdSet) -> Self {
        let mut p = HornProgram::new();
        for ilfd in f.iter() {
            for part in ilfd.decompose() {
                let head = part
                    .consequent()
                    .iter()
                    .next()
                    .expect("decomposed consequent")
                    .clone();
                let body: Vec<PropSymbol> = part.antecedent().iter().cloned().collect();
                p.push(HornClause { head, body });
            }
        }
        p
    }

    /// Adds a clause.
    pub fn push(&mut self, clause: HornClause) {
        self.by_head
            .entry(clause.head.clone())
            .or_default()
            .push(self.clauses.len());
        self.clauses.push(clause);
    }

    /// The clauses.
    pub fn clauses(&self) -> &[HornClause] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Bottom-up consequence operator to fixpoint: the least Herbrand
    /// model of the program extended with `facts`. Agenda-driven,
    /// linear in program size.
    pub fn forward_chain(&self, facts: &SymbolSet) -> SymbolSet {
        let mut unsatisfied: Vec<usize> = self.clauses.iter().map(|c| c.body.len()).collect();
        let mut waiting: HashMap<&PropSymbol, Vec<usize>> = HashMap::new();
        for (i, c) in self.clauses.iter().enumerate() {
            for b in &c.body {
                waiting.entry(b).or_default().push(i);
            }
        }
        let mut model = facts.clone();
        let mut agenda: Vec<PropSymbol> = facts.iter().cloned().collect();
        let mut done: HashSet<PropSymbol> = HashSet::new();
        // Facts in the program fire immediately.
        for (i, c) in self.clauses.iter().enumerate() {
            if unsatisfied[i] == 0 && model.insert(c.head.clone()) {
                agenda.push(c.head.clone());
            }
        }
        while let Some(atom) = agenda.pop() {
            if !done.insert(atom.clone()) {
                continue;
            }
            if let Some(indices) = waiting.get(&atom) {
                for &i in indices {
                    unsatisfied[i] -= 1;
                    if unsatisfied[i] == 0 {
                        let head = &self.clauses[i].head;
                        if model.insert(head.clone()) {
                            agenda.push(head.clone());
                        }
                    }
                }
            }
        }
        model
    }

    /// Top-down SLD proof of a single goal atom from `facts`, with
    /// memoization; cyclic rule paths fail finitely (where Prolog
    /// would loop). Clause order is respected, so this is the
    /// semantics of the prototype's backward chaining.
    pub fn prove_goal(&self, goal: &PropSymbol, facts: &SymbolSet) -> bool {
        let mut memo: HashMap<PropSymbol, bool> = HashMap::new();
        let mut stack: Vec<PropSymbol> = Vec::new();
        self.sld(goal, facts, &mut memo, &mut stack)
    }

    fn sld(
        &self,
        goal: &PropSymbol,
        facts: &SymbolSet,
        memo: &mut HashMap<PropSymbol, bool>,
        stack: &mut Vec<PropSymbol>,
    ) -> bool {
        if facts.contains(goal) {
            return true;
        }
        if let Some(&r) = memo.get(goal) {
            return r;
        }
        if stack.contains(goal) {
            return false; // cut the cycle
        }
        stack.push(goal.clone());
        let mut proved = false;
        if let Some(indices) = self.by_head.get(goal) {
            'clauses: for &i in indices {
                for b in &self.clauses[i].body {
                    if !self.sld(b, facts, memo, stack) {
                        continue 'clauses;
                    }
                }
                proved = true;
                break;
            }
        }
        stack.pop();
        // Memoize successes unconditionally. Failures are only safe
        // to cache at the top level: a goal that failed because the
        // only path looped through an active ancestor may be provable
        // once that ancestor is established (e.g. `b :- a` while `a`
        // is still on the stack but later proved via another clause).
        if proved || stack.is_empty() {
            memo.insert(goal.clone(), proved);
        }
        proved
    }

    /// Whether every atom of `goals` is provable.
    pub fn prove_all(&self, goals: &SymbolSet, facts: &SymbolSet) -> bool {
        goals.iter().all(|g| self.prove_goal(g, facts))
    }

    /// Like [`HornProgram::prove_goal`], but returns the **proof
    /// trace**: the clauses applied, in the order they completed
    /// (sub-proofs first), ending with the clause whose head is the
    /// goal. `Some(vec![])` means the goal is a given fact; `None`
    /// means unprovable. Used for match explanations.
    pub fn prove_goal_trace(
        &self,
        goal: &PropSymbol,
        facts: &SymbolSet,
    ) -> Option<Vec<HornClause>> {
        let mut trace = Vec::new();
        let mut stack = Vec::new();
        let mut memo: HashMap<PropSymbol, bool> = HashMap::new();
        self.sld_trace(goal, facts, &mut memo, &mut stack, &mut trace)
            .then_some(trace)
    }

    fn sld_trace(
        &self,
        goal: &PropSymbol,
        facts: &SymbolSet,
        memo: &mut HashMap<PropSymbol, bool>,
        stack: &mut Vec<PropSymbol>,
        trace: &mut Vec<HornClause>,
    ) -> bool {
        if facts.contains(goal) {
            return true;
        }
        // A goal already proved in this trace needs no re-derivation.
        if trace.iter().any(|c| &c.head == goal) {
            return true;
        }
        if let Some(&false) = memo.get(goal) {
            return false;
        }
        if stack.contains(goal) {
            return false;
        }
        stack.push(goal.clone());
        let mut proved = false;
        if let Some(indices) = self.by_head.get(goal) {
            'clauses: for &i in indices {
                let before = trace.len();
                for b in &self.clauses[i].body {
                    if !self.sld_trace(b, facts, memo, stack, trace) {
                        trace.truncate(before); // roll back the failed branch
                        continue 'clauses;
                    }
                }
                trace.push(self.clauses[i].clone());
                proved = true;
                break;
            }
        }
        stack.pop();
        if !proved && stack.is_empty() {
            memo.insert(goal.clone(), false);
        }
        proved
    }
}

impl fmt::Display for HornProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.clauses {
            writeln!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::symbol_closure;
    use crate::ilfd::Ilfd;
    use eid_relational::Value;

    fn sym(a: &str, v: &str) -> PropSymbol {
        PropSymbol::new(a, Value::str(v))
    }

    fn example3_program() -> (IlfdSet, HornProgram) {
        let f: IlfdSet = vec![
            Ilfd::of_strs(&[("spec", "hunan")], &[("cui", "chinese")]),
            Ilfd::of_strs(&[("spec", "gyros")], &[("cui", "greek")]),
            Ilfd::of_strs(&[("street", "front_ave")], &[("county", "ramsey")]),
            Ilfd::of_strs(
                &[("name", "itsgreek"), ("county", "ramsey")],
                &[("spec", "gyros")],
            ),
        ]
        .into_iter()
        .collect();
        let p = HornProgram::from_ilfds(&f);
        (f, p)
    }

    #[test]
    fn conversion_produces_one_clause_per_decomposed_ilfd() {
        let (_f, p) = example3_program();
        assert_eq!(p.len(), 4);
        assert!(p.to_string().contains(":-"));
    }

    #[test]
    fn forward_chaining_equals_symbol_closure() {
        let (f, p) = example3_program();
        let starts = [
            SymbolSet::new(),
            SymbolSet::of_strs(&[("spec", "hunan")]),
            SymbolSet::of_strs(&[("name", "itsgreek"), ("street", "front_ave")]),
            SymbolSet::of_strs(&[("county", "ramsey")]),
        ];
        for s in starts {
            assert_eq!(
                p.forward_chain(&s),
                symbol_closure(&s, &f),
                "diverged on {s}"
            );
        }
    }

    #[test]
    fn backward_chaining_proves_the_chain() {
        let (_f, p) = example3_program();
        let facts = SymbolSet::of_strs(&[("name", "itsgreek"), ("street", "front_ave")]);
        assert!(p.prove_goal(&sym("county", "ramsey"), &facts));
        assert!(p.prove_goal(&sym("spec", "gyros"), &facts));
        assert!(p.prove_goal(&sym("cui", "greek"), &facts));
        assert!(!p.prove_goal(&sym("cui", "chinese"), &facts));
    }

    #[test]
    fn backward_equals_forward_membership() {
        let (_f, p) = example3_program();
        let facts = SymbolSet::of_strs(&[("name", "itsgreek"), ("street", "front_ave")]);
        let model = p.forward_chain(&facts);
        for goal in [
            sym("county", "ramsey"),
            sym("spec", "gyros"),
            sym("cui", "greek"),
            sym("cui", "chinese"),
            sym("name", "other"),
        ] {
            assert_eq!(p.prove_goal(&goal, &facts), model.contains(&goal), "{goal}");
        }
    }

    #[test]
    fn cyclic_programs_terminate_both_ways() {
        let f: IlfdSet = vec![
            Ilfd::of_strs(&[("a", "1")], &[("b", "1")]),
            Ilfd::of_strs(&[("b", "1")], &[("a", "1")]),
        ]
        .into_iter()
        .collect();
        let p = HornProgram::from_ilfds(&f);
        let empty = SymbolSet::new();
        assert!(!p.prove_goal(&sym("a", "1"), &empty));
        assert_eq!(p.forward_chain(&empty).len(), 0);
        // With one fact, the cycle closes.
        let facts = SymbolSet::of_strs(&[("a", "1")]);
        assert!(p.prove_goal(&sym("b", "1"), &facts));
        assert_eq!(p.forward_chain(&facts).len(), 2);
    }

    #[test]
    fn program_facts_fire_without_input() {
        let mut p = HornProgram::new();
        p.push(HornClause {
            head: sym("b", "1"),
            body: vec![],
        });
        p.push(HornClause {
            head: sym("c", "1"),
            body: vec![sym("b", "1")],
        });
        let model = p.forward_chain(&SymbolSet::new());
        assert!(model.contains(&sym("b", "1")));
        assert!(model.contains(&sym("c", "1")));
        assert!(p.prove_goal(&sym("c", "1"), &SymbolSet::new()));
    }

    /// Regression: a failure caused by cycle truncation must not be
    /// cached. Here `b` first "fails" while `a` is on the stack, but
    /// `a` is then proved via `c`, making `b :- a` succeed — the
    /// conjunction `a ∧ b` is provable.
    #[test]
    fn cycle_truncated_failures_are_not_cached() {
        let f: IlfdSet = vec![
            Ilfd::of_strs(&[("b", "1")], &[("a", "1")]),
            Ilfd::of_strs(&[("c", "1")], &[("a", "1")]),
            Ilfd::of_strs(&[("a", "1")], &[("b", "1")]),
        ]
        .into_iter()
        .collect();
        let p = HornProgram::from_ilfds(&f);
        let facts = SymbolSet::of_strs(&[("c", "1")]);
        // Membership agrees with the forward model on both atoms.
        let model = p.forward_chain(&facts);
        assert!(model.contains(&sym("a", "1")));
        assert!(model.contains(&sym("b", "1")));
        assert!(p.prove_goal(&sym("a", "1"), &facts));
        assert!(p.prove_goal(&sym("b", "1"), &facts));
        assert!(p.prove_all(&SymbolSet::of_strs(&[("a", "1"), ("b", "1")]), &facts));

        // The in-call variant: one clause whose body is the whole
        // conjunction, so `b` is queried under the same memo that
        // watched it fail during `a`'s proof.
        let g: IlfdSet = vec![
            Ilfd::of_strs(&[("b", "1")], &[("a", "1")]),
            Ilfd::of_strs(&[("c", "1")], &[("a", "1")]),
            Ilfd::of_strs(&[("a", "1")], &[("b", "1")]),
            Ilfd::of_strs(&[("a", "1"), ("b", "1")], &[("top", "1")]),
        ]
        .into_iter()
        .collect();
        let p = HornProgram::from_ilfds(&g);
        assert!(p.prove_goal(&sym("top", "1"), &facts));
    }

    #[test]
    fn trace_records_the_chain_in_dependency_order() {
        let (_f, p) = example3_program();
        let facts = SymbolSet::of_strs(&[("name", "itsgreek"), ("street", "front_ave")]);
        let trace = p.prove_goal_trace(&sym("cui", "greek"), &facts).unwrap();
        // county := ramsey, then spec := gyros, then cui := greek.
        let heads: Vec<String> = trace.iter().map(|c| c.head.to_string()).collect();
        assert_eq!(
            heads,
            vec!["(county = ramsey)", "(spec = gyros)", "(cui = greek)"]
        );
        // Facts need no trace; unprovable goals return None.
        assert_eq!(
            p.prove_goal_trace(&sym("name", "itsgreek"), &facts),
            Some(vec![])
        );
        assert_eq!(p.prove_goal_trace(&sym("cui", "chinese"), &facts), None);
    }

    #[test]
    fn trace_rolls_back_failed_branches() {
        // First clause for the goal fails midway; trace must not keep
        // its partial sub-proofs.
        let f: IlfdSet = vec![
            // goal :- a, missing.   (a provable, missing not)
            Ilfd::of_strs(&[("a", "1"), ("missing", "1")], &[("goal", "1")]),
            // goal :- a.
            Ilfd::of_strs(&[("a", "1")], &[("goal", "1")]),
            // a :- b.
            Ilfd::of_strs(&[("b", "1")], &[("a", "1")]),
        ]
        .into_iter()
        .collect();
        let p = HornProgram::from_ilfds(&f);
        let facts = SymbolSet::of_strs(&[("b", "1")]);
        let trace = p.prove_goal_trace(&sym("goal", "1"), &facts).unwrap();
        let heads: Vec<String> = trace.iter().map(|c| c.head.to_string()).collect();
        assert_eq!(heads, vec!["(a = 1)", "(goal = 1)"]);
    }

    #[test]
    fn prove_all_conjunction() {
        let (_f, p) = example3_program();
        let facts = SymbolSet::of_strs(&[("name", "itsgreek"), ("street", "front_ave")]);
        let goals = SymbolSet::of_strs(&[("spec", "gyros"), ("cui", "greek")]);
        assert!(p.prove_all(&goals, &facts));
        let goals = SymbolSet::of_strs(&[("spec", "gyros"), ("cui", "chinese")]);
        assert!(!p.prove_all(&goals, &facts));
    }
}
