//! ILFD satisfaction and violation over relations.
//!
//! §5: "We say that a relation `R` satisfies ILFD `X → Y` if for
//! every possible tuple `r ∈ R`, such that `X` holds, it is also
//! true that `Y` holds in `r`" — note that unlike FDs, "checking for
//! violation of ILFDs involves only one tuple".

use eid_relational::{Relation, Schema, Tuple};

use crate::ilfd::{Ilfd, IlfdSet};

/// Whether a single `tuple` (under `schema`) satisfies `ilfd`.
///
/// The implication is material: a tuple whose values do not witness
/// the full antecedent satisfies the ILFD vacuously. A NULL
/// consequent attribute does **not** satisfy the ILFD when the
/// antecedent holds — the tuple fails to witness the required
/// condition. (Relations holding partially-derived tuples should be
/// checked with [`tuple_satisfies_lenient`] instead, which treats
/// NULL as *unknown, possibly consistent*.)
pub fn tuple_satisfies(schema: &Schema, tuple: &Tuple, ilfd: &Ilfd) -> bool {
    !ilfd.antecedent().holds_in(schema, tuple) || ilfd.consequent().holds_in(schema, tuple)
}

/// Like [`tuple_satisfies`], but a NULL (or schema-missing)
/// consequent attribute is treated as consistent: the tuple does not
/// *contradict* the ILFD, it merely lacks information. Only a
/// non-NULL consequent value different from the required constant is
/// a violation.
pub fn tuple_satisfies_lenient(schema: &Schema, tuple: &Tuple, ilfd: &Ilfd) -> bool {
    if !ilfd.antecedent().holds_in(schema, tuple) {
        return true;
    }
    ilfd.consequent().iter().all(|s| {
        match tuple.value_of(schema, &s.attr) {
            None => true,                       // attribute not modeled
            Some(v) if v.is_null() => true,     // unknown
            Some(v) => v.non_null_eq(&s.value), // must agree
        }
    })
}

/// Whether every tuple of `rel` satisfies `ilfd`.
pub fn relation_satisfies(rel: &Relation, ilfd: &Ilfd) -> bool {
    rel.iter().all(|t| tuple_satisfies(rel.schema(), t, ilfd))
}

/// Whether `rel` violates `ilfd` (the negation of
/// [`relation_satisfies`], provided for the paper's vocabulary).
pub fn relation_violates(rel: &Relation, ilfd: &Ilfd) -> bool {
    !relation_satisfies(rel, ilfd)
}

/// The tuples of `rel` that violate `ilfd` (strict semantics).
pub fn violating_tuples<'a>(rel: &'a Relation, ilfd: &'a Ilfd) -> Vec<&'a Tuple> {
    rel.iter()
        .filter(|t| !tuple_satisfies(rel.schema(), t, ilfd))
        .collect()
}

/// Whether every tuple of `rel` satisfies every ILFD in `f`.
pub fn relation_satisfies_all(rel: &Relation, f: &IlfdSet) -> bool {
    f.iter().all(|i| relation_satisfies(rel, i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_relational::{Schema, Value};

    fn schema() -> std::sync::Arc<Schema> {
        Schema::of_strs("R", &["spec", "cui"], &["spec"]).unwrap()
    }

    fn i1() -> Ilfd {
        Ilfd::of_strs(&[("spec", "hunan")], &[("cui", "chinese")])
    }

    #[test]
    fn witnessing_tuple_satisfies() {
        let t = Tuple::of_strs(&["hunan", "chinese"]);
        assert!(tuple_satisfies(&schema(), &t, &i1()));
    }

    #[test]
    fn contradicting_tuple_violates() {
        let t = Tuple::of_strs(&["hunan", "greek"]);
        assert!(!tuple_satisfies(&schema(), &t, &i1()));
    }

    #[test]
    fn vacuous_satisfaction_when_antecedent_fails() {
        let t = Tuple::of_strs(&["gyros", "greek"]);
        assert!(tuple_satisfies(&schema(), &t, &i1()));
    }

    #[test]
    fn null_consequent_strict_vs_lenient() {
        let t = Tuple::new(vec![Value::str("hunan"), Value::Null]);
        assert!(!tuple_satisfies(&schema(), &t, &i1()));
        assert!(tuple_satisfies_lenient(&schema(), &t, &i1()));
    }

    #[test]
    fn missing_attribute_lenient() {
        let narrow = Schema::of_strs("R", &["spec"], &["spec"]).unwrap();
        let t = Tuple::of_strs(&["hunan"]);
        assert!(tuple_satisfies_lenient(&narrow, &t, &i1()));
        // Strict: cuisine cannot be witnessed, so the ILFD fails.
        assert!(!tuple_satisfies(&narrow, &t, &i1()));
    }

    #[test]
    fn relation_level_checks_and_violators() {
        let mut rel = Relation::new_unchecked(schema());
        rel.insert(Tuple::of_strs(&["hunan", "chinese"])).unwrap();
        rel.insert(Tuple::of_strs(&["gyros", "greek"])).unwrap();
        assert!(relation_satisfies(&rel, &i1()));
        rel.insert(Tuple::of_strs(&["hunan", "indian"])).unwrap();
        assert!(relation_violates(&rel, &i1()));
        let ilfd = i1();
        let bad = violating_tuples(&rel, &ilfd);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].get(1), &Value::str("indian"));
    }

    #[test]
    fn relation_satisfies_all_over_set() {
        let f: IlfdSet = vec![
            i1(),
            Ilfd::of_strs(&[("spec", "gyros")], &[("cui", "greek")]),
        ]
        .into_iter()
        .collect();
        let mut rel = Relation::new_unchecked(schema());
        rel.insert(Tuple::of_strs(&["hunan", "chinese"])).unwrap();
        rel.insert(Tuple::of_strs(&["gyros", "greek"])).unwrap();
        assert!(relation_satisfies_all(&rel, &f));
    }
}
