//! Instance-level functional dependencies.
//!
//! An ILFD (§4.1) is a semantic constraint on the real-world entities
//! of one entity set:
//!
//! ```text
//! (A₁ = a₁) ∧ … ∧ (Aₙ = aₙ)  →  (B = b)
//! ```
//!
//! §5 generalizes the consequent to a conjunction (the union rule
//! combines ILFDs with identical antecedents), so [`Ilfd`] stores a
//! [`SymbolSet`] on both sides.

use std::fmt;

use serde::{Deserialize, Serialize};

use eid_relational::Value;

use crate::symbol::{PropSymbol, SymbolSet};

/// An instance-level functional dependency `X → Y` over one entity
/// set, with `X` and `Y` conjunctions of `(attribute = constant)`
/// symbols.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ilfd {
    antecedent: SymbolSet,
    consequent: SymbolSet,
}

impl Ilfd {
    /// Builds `antecedent → consequent`.
    pub fn new(antecedent: SymbolSet, consequent: SymbolSet) -> Self {
        Ilfd {
            antecedent,
            consequent,
        }
    }

    /// Builds an ILFD from string-valued conditions:
    /// `Ilfd::of_strs(&[("speciality", "hunan")], &[("cuisine", "chinese")])`
    /// is the paper's I1.
    pub fn of_strs(antecedent: &[(&str, &str)], consequent: &[(&str, &str)]) -> Self {
        Ilfd::new(
            SymbolSet::of_strs(antecedent),
            SymbolSet::of_strs(consequent),
        )
    }

    /// A single-condition-to-single-condition ILFD, the common shape.
    pub fn simple(
        ante_attr: &str,
        ante_value: impl Into<Value>,
        cons_attr: &str,
        cons_value: impl Into<Value>,
    ) -> Self {
        Ilfd::new(
            SymbolSet::from_symbols([PropSymbol::new(ante_attr, ante_value)]),
            SymbolSet::from_symbols([PropSymbol::new(cons_attr, cons_value)]),
        )
    }

    /// The antecedent conjunction `X`.
    pub fn antecedent(&self) -> &SymbolSet {
        &self.antecedent
    }

    /// The consequent conjunction `Y`.
    pub fn consequent(&self) -> &SymbolSet {
        &self.consequent
    }

    /// Whether this ILFD is *trivial* (reflexivity axiom instances):
    /// the consequent is a subset of the antecedent, so it "holds in
    /// any entity set and does not depend on F".
    pub fn is_trivial(&self) -> bool {
        self.consequent.is_subset(&self.antecedent)
    }

    /// Whether the antecedent is contradictory (binds an attribute to
    /// two values). Such an ILFD is vacuously satisfied by every
    /// tuple.
    pub fn has_contradictory_antecedent(&self) -> bool {
        self.antecedent.is_contradictory()
    }

    /// Splits this ILFD into one ILFD per consequent symbol
    /// (decomposition rule).
    pub fn decompose(&self) -> Vec<Ilfd> {
        self.consequent
            .iter()
            .map(|s| {
                Ilfd::new(
                    self.antecedent.clone(),
                    SymbolSet::from_symbols([s.clone()]),
                )
            })
            .collect()
    }

    /// Combines ILFDs with identical antecedents into one (union
    /// rule, §5: "two or more ILFDs with identical antecedent
    /// conditions can be combined into one formula"). Returns `None`
    /// if the antecedents differ.
    pub fn combine(&self, other: &Ilfd) -> Option<Ilfd> {
        (self.antecedent == other.antecedent).then(|| {
            Ilfd::new(
                self.antecedent.clone(),
                self.consequent.union_with(&other.consequent),
            )
        })
    }
}

impl fmt::Display for Ilfd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} → {}", self.antecedent, self.consequent)
    }
}

/// An ordered collection of ILFDs (`F` in the paper's notation).
///
/// Order matters to the Prolog-faithful *first-match* derivation
/// strategy (§6.1: a cut commits to the first ILFD whose antecedent
/// succeeds), so `IlfdSet` preserves insertion order while also
/// deduplicating.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IlfdSet {
    ilfds: Vec<Ilfd>,
}

impl IlfdSet {
    /// An empty set.
    pub fn new() -> Self {
        IlfdSet::default()
    }

    /// Builds from an iterator, deduplicating while preserving first
    /// occurrence order.
    pub fn from_iter_dedup(iter: impl IntoIterator<Item = Ilfd>) -> Self {
        let mut set = IlfdSet::new();
        for i in iter {
            set.insert(i);
        }
        set
    }

    /// Adds an ILFD (no-op if already present). Returns whether it
    /// was new.
    pub fn insert(&mut self, ilfd: Ilfd) -> bool {
        if self.ilfds.contains(&ilfd) {
            false
        } else {
            self.ilfds.push(ilfd);
            true
        }
    }

    /// Number of ILFDs.
    pub fn len(&self) -> usize {
        self.ilfds.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ilfds.is_empty()
    }

    /// The ILFDs in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Ilfd> {
        self.ilfds.iter()
    }

    /// The ILFDs as a slice.
    pub fn as_slice(&self) -> &[Ilfd] {
        &self.ilfds
    }

    /// Membership test.
    pub fn contains(&self, ilfd: &Ilfd) -> bool {
        self.ilfds.contains(ilfd)
    }

    /// A new set restricted to ILFDs whose symbols only mention
    /// attributes accepted by `keep`.
    pub fn filter_attrs(&self, keep: impl Fn(&eid_relational::AttrName) -> bool) -> IlfdSet {
        IlfdSet {
            ilfds: self
                .ilfds
                .iter()
                .filter(|i| {
                    i.antecedent().attributes().iter().all(&keep)
                        && i.consequent().attributes().iter().all(&keep)
                })
                .cloned()
                .collect(),
        }
    }
}

impl FromIterator<Ilfd> for IlfdSet {
    fn from_iter<I: IntoIterator<Item = Ilfd>>(iter: I) -> Self {
        IlfdSet::from_iter_dedup(iter)
    }
}

impl<'a> IntoIterator for &'a IlfdSet {
    type Item = &'a Ilfd;
    type IntoIter = std::slice::Iter<'a, Ilfd>;
    fn into_iter(self) -> Self::IntoIter {
        self.ilfds.iter()
    }
}

impl fmt::Display for IlfdSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in &self.ilfds {
            writeln!(f, "{i}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_i1_displays() {
        let i1 = Ilfd::of_strs(&[("speciality", "hunan")], &[("cuisine", "chinese")]);
        assert_eq!(i1.to_string(), "(speciality = hunan) → (cuisine = chinese)");
    }

    #[test]
    fn trivial_iff_consequent_subset_of_antecedent() {
        let t = Ilfd::of_strs(&[("a", "1"), ("b", "2")], &[("a", "1")]);
        assert!(t.is_trivial());
        let nt = Ilfd::of_strs(&[("a", "1")], &[("b", "2")]);
        assert!(!nt.is_trivial());
    }

    #[test]
    fn decompose_splits_consequent() {
        let i = Ilfd::of_strs(&[("a", "1")], &[("b", "2"), ("c", "3")]);
        let parts = i.decompose();
        assert_eq!(parts.len(), 2);
        assert!(parts.iter().all(|p| p.consequent().len() == 1));
        assert!(parts.iter().all(|p| p.antecedent() == i.antecedent()));
    }

    #[test]
    fn combine_requires_same_antecedent() {
        let a = Ilfd::of_strs(&[("x", "1")], &[("y", "2")]);
        let b = Ilfd::of_strs(&[("x", "1")], &[("z", "3")]);
        let c = a.combine(&b).unwrap();
        assert_eq!(c.consequent().len(), 2);
        let d = Ilfd::of_strs(&[("w", "9")], &[("z", "3")]);
        assert!(a.combine(&d).is_none());
    }

    #[test]
    fn set_dedups_preserving_order() {
        let i1 = Ilfd::of_strs(&[("a", "1")], &[("b", "2")]);
        let i2 = Ilfd::of_strs(&[("c", "3")], &[("d", "4")]);
        let set: IlfdSet = vec![i1.clone(), i2.clone(), i1.clone()]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
        assert_eq!(set.as_slice()[0], i1);
        assert_eq!(set.as_slice()[1], i2);
    }

    #[test]
    fn filter_attrs_drops_foreign_ilfds() {
        let i1 = Ilfd::of_strs(&[("a", "1")], &[("b", "2")]);
        let i2 = Ilfd::of_strs(&[("c", "3")], &[("b", "4")]);
        let set: IlfdSet = vec![i1.clone(), i2].into_iter().collect();
        let filtered = set.filter_attrs(|a| a.as_str() != "c");
        assert_eq!(filtered.len(), 1);
        assert!(filtered.contains(&i1));
    }

    #[test]
    fn contradictory_antecedent_flagged() {
        let i = Ilfd::of_strs(&[("a", "1"), ("a", "2")], &[("b", "3")]);
        assert!(i.has_contradictory_antecedent());
    }
}
