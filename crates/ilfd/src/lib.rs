//! # `eid-ilfd` — instance-level functional dependency theory
//!
//! ILFDs (§4.1 and §5 of Lim et al., ICDE 1993) are semantic
//! constraints on real-world entities of the form
//!
//! ```text
//! (A₁ = a₁) ∧ … ∧ (Aₙ = aₙ)  →  (B = b)
//! ```
//!
//! They look like functional dependencies but bind *values*, not
//! attributes, and a single tuple can violate one. This crate
//! implements the paper's complete ILFD theory:
//!
//! * [`symbol`] — propositional symbols `(A = a)` and conjunctions;
//! * [`ilfd`] — ILFDs and ordered ILFD sets;
//! * [`closure`] — linear-time symbol closure `X⁺_F`, logical
//!   implication, equivalence, minimal covers, and bounded `F⁺`
//!   enumeration;
//! * [`axioms`] — Armstrong's axioms for ILFDs as verified proof
//!   trees, the derived union/pseudo-transitivity/decomposition
//!   rules (Lemma 2), and a constructive completeness procedure
//!   ([`axioms::prove`], Theorem 1);
//! * [`satisfaction`] — per-tuple and per-relation ILFD checking;
//! * [`mod@derive`] — filling in missing attribute values of tuples
//!   (Prolog-faithful first-match-with-cut, and an order-independent
//!   fixpoint with conflict detection);
//! * [`tables`] — ILFD tables `IM(x̄,y)` stored as relations (§4.2,
//!   Table 8) with the `Π(R ⋈ IM)` derivation join;
//! * [`fd`] — classical FDs and the Proposition 2 bridge.
//!
//! ## Example: the paper's derived ILFD I9
//!
//! ```
//! use eid_ilfd::{Ilfd, IlfdSet, closure};
//!
//! let f: IlfdSet = vec![
//!     // I7: street = front_ave → county = ramsey
//!     Ilfd::of_strs(&[("street", "front_ave")], &[("county", "ramsey")]),
//!     // I8: name = itsgreek ∧ county = ramsey → speciality = gyros
//!     Ilfd::of_strs(&[("name", "itsgreek"), ("county", "ramsey")],
//!                   &[("speciality", "gyros")]),
//! ].into_iter().collect();
//!
//! // I9 is derivable: name = itsgreek ∧ street = front_ave → speciality = gyros
//! let i9 = Ilfd::of_strs(&[("name", "itsgreek"), ("street", "front_ave")],
//!                        &[("speciality", "gyros")]);
//! assert!(closure::implies(&f, &i9));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod axioms;
pub mod closure;
pub mod derive;
pub mod fd;
pub mod horn;
pub mod ilfd;
pub mod satisfaction;
pub mod symbol;
pub mod tables;

pub use axioms::{AxiomError, Derivation};
pub use closure::{implies, symbol_closure};
pub use derive::{
    derive_relation, derive_relation_with_stats, derive_tuple, DeriveReport, DeriveStats, Strategy,
};
pub use fd::Fd;
pub use horn::{HornClause, HornProgram};
pub use ilfd::{Ilfd, IlfdSet};
pub use symbol::{PropSymbol, SymbolSet};
pub use tables::IlfdTable;
