//! Deriving missing attribute values of a tuple from ILFDs.
//!
//! This is the step that makes extended-key equivalence applicable
//! (§4.1): "ILFDs can be used to derive the missing key attribute
//! values that are required for using extended key equivalence."
//!
//! Two strategies are provided:
//!
//! * [`Strategy::FirstMatch`] — faithful to the Prolog prototype
//!   (§6.1): attributes are evaluated by backward chaining through
//!   the ILFDs **in insertion order**, and "a cut (!) is given at the
//!   end of an ILFD to prevent other ILFDs from being used once the
//!   former ILFD has successfully derived the attribute value"; when
//!   every ILFD fails the value defaults to NULL.
//! * [`Strategy::Fixpoint`] — computes the full symbol closure of the
//!   tuple (so chained ILFDs like the paper's I7+I8 ⇒ I9 always
//!   fire regardless of rule order) and assigns each missing
//!   attribute its uniquely derived value; if two ILFDs derive
//!   *different* values for the same attribute the conflict is
//!   reported and the attribute stays NULL.
//!
//! Both strategies never overwrite a non-NULL base value; the
//! fixpoint strategy additionally reports *inconsistencies* — given
//! values that contradict what the ILFDs derive.

use std::collections::HashMap;

use eid_relational::{AttrName, FxHashMap, Interner, Relation, Schema, Sym, Tuple, Value};

use crate::closure::symbol_closure;
use crate::ilfd::IlfdSet;
use crate::symbol::SymbolSet;

/// How missing values are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Prolog-faithful: ordered backward chaining with cut.
    #[default]
    FirstMatch,
    /// Order-independent symbol-closure fixpoint with conflict
    /// detection.
    Fixpoint,
}

/// Two ILFDs derived different values for the same missing attribute
/// (only possible under [`Strategy::Fixpoint`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The attribute with conflicting derivations.
    pub attr: AttrName,
    /// The distinct values derived for it.
    pub values: Vec<Value>,
}

/// A given (non-NULL) value contradicts what the ILFDs derive for
/// that attribute — the tuple is inconsistent with the ILFD set,
/// violating the paper's assumption that "all tuples modeling the
/// real world are consistent with the ILFDs".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inconsistency {
    /// The attribute in question.
    pub attr: AttrName,
    /// The value stored in the tuple.
    pub given: Value,
    /// A different value the ILFDs derive.
    pub derived: Value,
}

/// What a derivation pass did to one tuple.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeriveReport {
    /// Attribute values that were filled in.
    pub assigned: Vec<(AttrName, Value)>,
    /// Conflicting derivations (fixpoint only); the attributes stay NULL.
    pub conflicts: Vec<Conflict>,
    /// Given values contradicted by derivation (fixpoint only).
    pub inconsistencies: Vec<Inconsistency>,
}

impl DeriveReport {
    /// Whether anything noteworthy happened.
    pub fn is_clean(&self) -> bool {
        self.conflicts.is_empty() && self.inconsistencies.is_empty()
    }
}

/// What one [`derive_relation`] pass cost — the derivation half of
/// the engine's observability report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeriveStats {
    /// Tuples processed.
    pub tuples: usize,
    /// Tuples whose ILFD-mentioned projection was already memoized
    /// (no backward chaining ran).
    pub memo_hits: usize,
    /// Distinct projections actually derived (backward chaining ran).
    pub memo_misses: usize,
    /// Attribute values filled in across all tuples.
    pub assigned: usize,
}

/// Derives missing (NULL) attribute values of `tuple` under `schema`
/// from the ILFD set `f`, returning the completed tuple and a report.
pub fn derive_tuple(
    schema: &Schema,
    tuple: &Tuple,
    f: &IlfdSet,
    strategy: Strategy,
) -> (Tuple, DeriveReport) {
    match strategy {
        Strategy::FirstMatch => first_match(schema, tuple, f),
        Strategy::Fixpoint => fixpoint(schema, tuple, f),
    }
}

/// Applies [`derive_tuple`] to every tuple of `rel`, returning the
/// completed relation (same schema) and the per-tuple reports.
///
/// Derivation is **memoized** on the tuple's projection onto the
/// ILFD-mentioned attributes (antecedent ∪ consequent attributes
/// present in the schema): both strategies read and write only those
/// attributes, so tuples agreeing on the projection derive
/// identically. Relations with many duplicate projections — the norm
/// when a few ILFD antecedent values spread over many tuples — pay
/// for backward chaining once per distinct projection instead of
/// once per tuple.
pub fn derive_relation(
    rel: &Relation,
    f: &IlfdSet,
    strategy: Strategy,
) -> (Relation, Vec<DeriveReport>) {
    let (out, reports, _) = derive_relation_with_stats(rel, f, strategy);
    (out, reports)
}

/// [`derive_relation`] plus a [`DeriveStats`] accounting of the pass
/// (tuples processed, memo hits/misses, values assigned).
pub fn derive_relation_with_stats(
    rel: &Relation,
    f: &IlfdSet,
    strategy: Strategy,
) -> (Relation, Vec<DeriveReport>, DeriveStats) {
    let schema = rel.schema();
    let mut mentioned: Vec<usize> = f
        .iter()
        .flat_map(|ilfd| ilfd.antecedent().iter().chain(ilfd.consequent().iter()))
        .filter_map(|sym| schema.try_position(&sym.attr))
        .collect();
    mentioned.sort_unstable();
    mentioned.dedup();

    // Interned projection → (positional assignments, report of the
    // first tuple with that projection). Keys are flat `Vec<Sym>`s —
    // no per-tuple `Tuple` allocation or `Value` re-hashing; the
    // interner uses `intern_exact`, whose symbol equality is exactly
    // `Value`'s own `Eq` (the relation the old tuple-keyed memo
    // grouped by).
    type Derived = (Vec<(usize, Value)>, DeriveReport);
    let mut interner = Interner::new();
    let mut memo: FxHashMap<Vec<Sym>, Derived> = FxHashMap::default();
    let mut out = Relation::new_unchecked(schema.clone());
    let mut reports = Vec::with_capacity(rel.len());
    let mut stats = DeriveStats::default();
    for t in rel.iter() {
        stats.tuples += 1;
        let key: Vec<Sym> = mentioned
            .iter()
            .map(|&p| interner.intern_exact(t.get(p)))
            .collect();
        let (assignments, report) = match memo.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                stats.memo_hits += 1;
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                stats.memo_misses += 1;
                let (_, rep) = derive_tuple(schema, t, f, strategy);
                let assignments = rep
                    .assigned
                    .iter()
                    .map(|(attr, v)| {
                        let pos = schema
                            .try_position(attr)
                            .expect("assigned attr is in schema");
                        (pos, v.clone())
                    })
                    .collect();
                e.insert((assignments, rep))
            }
        };
        stats.assigned += assignments.len();
        let mut nt = t.clone();
        for (pos, v) in assignments.iter() {
            nt = nt.with_value(*pos, v.clone());
        }
        out.insert(nt).expect("same schema");
        reports.push(report.clone());
    }
    (out, reports, stats)
}

// ---------------------------------------------------------------------------
// First-match (Prolog cut) strategy
// ---------------------------------------------------------------------------

/// Memoized backward-chaining evaluation of one attribute, with the
/// prototype's semantics: base facts win, then ILFDs in order with a
/// cut on first success, then the NULL default. Cyclic rule chains
/// (which would loop in Prolog) fail the offending path instead.
struct FirstMatchEval<'a> {
    schema: &'a Schema,
    tuple: &'a Tuple,
    f: &'a IlfdSet,
    memo: HashMap<AttrName, Value>,
    in_progress: Vec<AttrName>,
}

impl FirstMatchEval<'_> {
    fn eval(&mut self, attr: &AttrName) -> Value {
        if let Some(v) = self.memo.get(attr) {
            return v.clone();
        }
        if self.in_progress.contains(attr) {
            // A cyclic derivation; Prolog would not terminate. Fail
            // this path (NULL) without memoizing so an outer,
            // non-cyclic path can still succeed.
            return Value::Null;
        }
        // Base fact.
        if let Some(v) = self.tuple.value_of(self.schema, attr) {
            if !v.is_null() {
                let v = v.clone();
                self.memo.insert(attr.clone(), v.clone());
                return v;
            }
        }
        self.in_progress.push(attr.clone());
        let mut result = Value::Null;
        'rules: for ilfd in self.f.iter() {
            // Which value does this ILFD bind for `attr`, if any?
            let Some(bound) = ilfd.consequent().iter().find(|s| &s.attr == attr) else {
                continue;
            };
            for cond in ilfd.antecedent() {
                if !self.eval(&cond.attr).non_null_eq(&cond.value) {
                    continue 'rules;
                }
            }
            // Antecedent succeeded: cut.
            result = bound.value.clone();
            break;
        }
        self.in_progress.pop();
        self.memo.insert(attr.clone(), result.clone());
        result
    }
}

fn first_match(schema: &Schema, tuple: &Tuple, f: &IlfdSet) -> (Tuple, DeriveReport) {
    let mut eval = FirstMatchEval {
        schema,
        tuple,
        f,
        memo: HashMap::new(),
        in_progress: Vec::new(),
    };
    let mut out = tuple.clone();
    let mut report = DeriveReport::default();
    for (pos, attr) in schema.attributes().iter().enumerate() {
        if tuple.get(pos).is_null() {
            let v = eval.eval(&attr.name);
            if !v.is_null() {
                out = out.with_value(pos, v.clone());
                report.assigned.push((attr.name.clone(), v));
            }
        }
    }
    (out, report)
}

// ---------------------------------------------------------------------------
// Fixpoint (closure) strategy
// ---------------------------------------------------------------------------

fn fixpoint(schema: &Schema, tuple: &Tuple, f: &IlfdSet) -> (Tuple, DeriveReport) {
    let base = SymbolSet::of_tuple(schema, tuple);
    let closure = symbol_closure(&base, f);

    // Group derived symbols by attribute.
    let mut by_attr: HashMap<AttrName, Vec<Value>> = HashMap::new();
    for s in closure.iter() {
        let entry = by_attr.entry(s.attr.clone()).or_default();
        if !entry.contains(&s.value) {
            entry.push(s.value.clone());
        }
    }

    let mut out = tuple.clone();
    let mut report = DeriveReport::default();
    for (pos, attr) in schema.attributes().iter().enumerate() {
        let given = tuple.get(pos);
        let Some(derived) = by_attr.get(&attr.name) else {
            continue;
        };
        if given.is_null() {
            match derived.as_slice() {
                [v] => {
                    out = out.with_value(pos, v.clone());
                    report.assigned.push((attr.name.clone(), v.clone()));
                }
                many => report.conflicts.push(Conflict {
                    attr: attr.name.clone(),
                    values: many.to_vec(),
                }),
            }
        } else {
            // The closure contains (attr = given) by construction;
            // any *other* derived value is an inconsistency.
            for v in derived {
                if !v.non_null_eq(given) {
                    report.inconsistencies.push(Inconsistency {
                        attr: attr.name.clone(),
                        given: given.clone(),
                        derived: v.clone(),
                    });
                }
            }
        }
    }
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilfd::Ilfd;

    fn schema() -> std::sync::Arc<Schema> {
        Schema::of_strs("S", &["name", "spec", "cui", "county", "street"], &["name"]).unwrap()
    }

    fn paper_ilfds() -> IlfdSet {
        vec![
            // I1..I4
            Ilfd::of_strs(&[("spec", "hunan")], &[("cui", "chinese")]),
            Ilfd::of_strs(&[("spec", "sichuan")], &[("cui", "chinese")]),
            Ilfd::of_strs(&[("spec", "gyros")], &[("cui", "greek")]),
            Ilfd::of_strs(&[("spec", "mughalai")], &[("cui", "indian")]),
            // I7, I8 (chain)
            Ilfd::of_strs(&[("street", "front_ave")], &[("county", "ramsey")]),
            Ilfd::of_strs(
                &[("name", "itsgreek"), ("county", "ramsey")],
                &[("spec", "gyros")],
            ),
        ]
        .into_iter()
        .collect()
    }

    fn t(
        name: &str,
        spec: Option<&str>,
        cui: Option<&str>,
        county: Option<&str>,
        street: Option<&str>,
    ) -> Tuple {
        Tuple::new(vec![
            Value::str(name),
            spec.map(Value::str).unwrap_or(Value::Null),
            cui.map(Value::str).unwrap_or(Value::Null),
            county.map(Value::str).unwrap_or(Value::Null),
            street.map(Value::str).unwrap_or(Value::Null),
        ])
    }

    #[test]
    fn simple_derivation_both_strategies() {
        let tup = t("twincities", Some("hunan"), None, None, None);
        for s in [Strategy::FirstMatch, Strategy::Fixpoint] {
            let (out, rep) = derive_tuple(&schema(), &tup, &paper_ilfds(), s);
            assert_eq!(out.get(2), &Value::str("chinese"), "{s:?}");
            assert_eq!(rep.assigned.len(), 1);
            assert!(rep.is_clean());
        }
    }

    #[test]
    fn chained_derivation_i7_then_i8() {
        // itsgreek on front_ave: county := ramsey (I7), then spec :=
        // gyros (I8), then cui := greek (I3) — a three-step chain.
        let tup = t("itsgreek", None, None, None, Some("front_ave"));
        for s in [Strategy::FirstMatch, Strategy::Fixpoint] {
            let (out, rep) = derive_tuple(&schema(), &tup, &paper_ilfds(), s);
            assert_eq!(out.get(1), &Value::str("gyros"), "{s:?}");
            assert_eq!(out.get(2), &Value::str("greek"), "{s:?}");
            assert_eq!(out.get(3), &Value::str("ramsey"), "{s:?}");
            assert_eq!(rep.assigned.len(), 3, "{s:?}");
        }
    }

    #[test]
    fn underivable_stays_null() {
        let tup = t("unknown", None, None, None, None);
        let (out, rep) = derive_tuple(&schema(), &tup, &paper_ilfds(), Strategy::FirstMatch);
        assert!(out.get(1).is_null());
        assert!(out.get(2).is_null());
        assert!(rep.assigned.is_empty());
    }

    #[test]
    fn base_values_are_never_overwritten() {
        // spec=mughalai would derive cui=indian, but cui is given as chinese.
        let tup = t("x", Some("mughalai"), Some("chinese"), None, None);
        let (out, _) = derive_tuple(&schema(), &tup, &paper_ilfds(), Strategy::FirstMatch);
        assert_eq!(out.get(2), &Value::str("chinese"));
        let (out, rep) = derive_tuple(&schema(), &tup, &paper_ilfds(), Strategy::Fixpoint);
        assert_eq!(out.get(2), &Value::str("chinese"));
        // …but fixpoint reports the inconsistency.
        assert_eq!(rep.inconsistencies.len(), 1);
        assert_eq!(rep.inconsistencies[0].derived, Value::str("indian"));
    }

    #[test]
    fn first_match_cut_commits_to_first_rule() {
        // Two rules derive different cuisines from the same antecedent;
        // the prototype's cut keeps the first.
        let f: IlfdSet = vec![
            Ilfd::of_strs(&[("spec", "fusion")], &[("cui", "chinese")]),
            Ilfd::of_strs(&[("spec", "fusion")], &[("cui", "indian")]),
        ]
        .into_iter()
        .collect();
        let tup = t("x", Some("fusion"), None, None, None);
        let (out, rep) = derive_tuple(&schema(), &tup, &f, Strategy::FirstMatch);
        assert_eq!(out.get(2), &Value::str("chinese"));
        assert!(rep.conflicts.is_empty());
        // Fixpoint reports the conflict and leaves NULL.
        let (out, rep) = derive_tuple(&schema(), &tup, &f, Strategy::Fixpoint);
        assert!(out.get(2).is_null());
        assert_eq!(rep.conflicts.len(), 1);
        assert_eq!(rep.conflicts[0].values.len(), 2);
    }

    #[test]
    fn cyclic_rules_terminate() {
        // a=1 → b=1 and b=1 → a=1, tuple gives neither.
        let f: IlfdSet = vec![
            Ilfd::of_strs(&[("spec", "x")], &[("cui", "y")]),
            Ilfd::of_strs(&[("cui", "y")], &[("spec", "x")]),
        ]
        .into_iter()
        .collect();
        let tup = t("n", None, None, None, None);
        let (out, _) = derive_tuple(&schema(), &tup, &f, Strategy::FirstMatch);
        assert!(out.get(1).is_null());
        assert!(out.get(2).is_null());
        let (out, _) = derive_tuple(&schema(), &tup, &f, Strategy::Fixpoint);
        assert!(out.get(1).is_null());
    }

    #[test]
    fn derive_relation_maps_all_tuples() {
        let mut rel = Relation::new_unchecked(schema());
        rel.insert(t("a", Some("hunan"), None, None, None)).unwrap();
        rel.insert(t("b", Some("gyros"), None, None, None)).unwrap();
        let (out, reports) = derive_relation(&rel, &paper_ilfds(), Strategy::FirstMatch);
        assert_eq!(out.tuples()[0].get(2), &Value::str("chinese"));
        assert_eq!(out.tuples()[1].get(2), &Value::str("greek"));
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn derive_relation_memoized_matches_per_tuple_derivation() {
        // Tuples differing only on attributes no ILFD mentions share
        // one memoized derivation; the result must still equal
        // tuple-by-tuple derivation, with untouched values preserved.
        let f: IlfdSet = vec![Ilfd::of_strs(&[("spec", "hunan")], &[("cui", "chinese")])]
            .into_iter()
            .collect();
        let mut rel = Relation::new_unchecked(schema());
        for name in ["a", "b", "c"] {
            rel.insert(t(name, Some("hunan"), None, None, Some(name)))
                .unwrap();
        }
        rel.insert(t("d", Some("gyros"), None, None, None)).unwrap();
        for strategy in [Strategy::FirstMatch, Strategy::Fixpoint] {
            let (out, reports) = derive_relation(&rel, &f, strategy);
            for (i, tup) in rel.iter().enumerate() {
                let (expect_t, expect_r) = derive_tuple(&schema(), tup, &f, strategy);
                assert_eq!(out.tuples()[i], expect_t, "{strategy:?} tuple {i}");
                assert_eq!(reports[i], expect_r, "{strategy:?} report {i}");
            }
            assert_eq!(out.tuples()[0].get(0), &Value::str("a"));
            assert_eq!(out.tuples()[1].get(4), &Value::str("b"));
            assert!(out.tuples()[3].get(2).is_null());
        }
    }

    #[test]
    fn first_match_order_dependence_vs_fixpoint_order_independence() {
        // With I8 before I7, first-match must still find the chain
        // because evaluation is backward-chaining (county is evaluated
        // on demand), mirroring Prolog's semantics.
        let f: IlfdSet = vec![
            Ilfd::of_strs(
                &[("name", "itsgreek"), ("county", "ramsey")],
                &[("spec", "gyros")],
            ),
            Ilfd::of_strs(&[("street", "front_ave")], &[("county", "ramsey")]),
        ]
        .into_iter()
        .collect();
        let tup = t("itsgreek", None, None, None, Some("front_ave"));
        let (out, _) = derive_tuple(&schema(), &tup, &f, Strategy::FirstMatch);
        assert_eq!(out.get(1), &Value::str("gyros"));
    }
}
