//! ILFD tables — storing uniform ILFDs as relations (§4.2, Table 8).
//!
//! "For the second category of useful ILFDs \[many ILFDs of uniform
//! format\], it may be storage efficient to store the ILFDs as
//! relations. … ILFDs of the form `(E.A₁=a₁) ∧ … ∧ (E.Aₙ=aₙ) →
//! (E.B=b)` can be stored in the relation schema
//! `ILFD(A₁, A₂, …, Aₙ, B)`." The paper writes `IM(x̄,y)` for the
//! ILFD table over antecedent attributes `x̄` deriving attribute `y`.

use std::collections::BTreeMap;

use eid_relational::{algebra, AttrName, Relation, Result, Schema, Tuple, Value};

use crate::ilfd::{Ilfd, IlfdSet};
use crate::symbol::PropSymbol;

/// A relation-backed store of uniform ILFDs: all rules share the same
/// antecedent attribute set `x̄` and consequent attribute `y`.
#[derive(Debug, Clone)]
pub struct IlfdTable {
    antecedent_attrs: Vec<AttrName>,
    consequent_attr: AttrName,
    relation: Relation,
}

impl IlfdTable {
    /// Creates an empty `IM(antecedent_attrs, consequent_attr)` table.
    pub fn new(antecedent_attrs: Vec<AttrName>, consequent_attr: AttrName) -> Result<Self> {
        let mut attrs: Vec<&str> = antecedent_attrs.iter().map(|a| a.as_str()).collect();
        attrs.push(consequent_attr.as_str());
        let key: Vec<&str> = antecedent_attrs.iter().map(|a| a.as_str()).collect();
        let name = format!("IM({}; {})", key.join(","), consequent_attr.as_str());
        let schema = Schema::of_strs(name, &attrs, &key)?;
        Ok(IlfdTable {
            antecedent_attrs,
            consequent_attr,
            relation: Relation::new(schema),
        })
    }

    /// The antecedent attributes `x̄`.
    pub fn antecedent_attrs(&self) -> &[AttrName] {
        &self.antecedent_attrs
    }

    /// The derived attribute `y`.
    pub fn consequent_attr(&self) -> &AttrName {
        &self.consequent_attr
    }

    /// The backing relation (for the §4.2 algebra pipeline and for
    /// printing Table 8).
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Number of stored rules.
    pub fn len(&self) -> usize {
        self.relation.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.relation.is_empty()
    }

    /// Inserts the rule `x̄ = antecedent_values → y = consequent_value`.
    /// The antecedent is the table's candidate key, so two rules with
    /// the same antecedent values are rejected — the relational
    /// representation cannot express the conflicting derivations that
    /// [`crate::derive::Strategy::Fixpoint`] reports.
    pub fn insert_rule(
        &mut self,
        antecedent_values: Vec<Value>,
        consequent_value: Value,
    ) -> Result<()> {
        let mut values = antecedent_values;
        values.push(consequent_value);
        self.relation.insert(Tuple::new(values))
    }

    /// Converts the stored rules back to an [`IlfdSet`].
    pub fn to_ilfds(&self) -> IlfdSet {
        let n = self.antecedent_attrs.len();
        self.relation
            .iter()
            .map(|t| {
                let ante = self
                    .antecedent_attrs
                    .iter()
                    .enumerate()
                    .map(|(i, a)| PropSymbol::new(a.clone(), t.get(i).clone()))
                    .collect();
                let cons = [PropSymbol::new(
                    self.consequent_attr.clone(),
                    t.get(n).clone(),
                )]
                .into_iter()
                .collect();
                Ilfd::new(ante, cons)
            })
            .collect()
    }

    /// Looks up the derived `y` value for the given antecedent values,
    /// if a rule matches.
    pub fn lookup(&self, antecedent_values: &Tuple) -> Option<Value> {
        self.relation
            .find_by_primary_key(antecedent_values)
            .map(|t| t.get(self.antecedent_attrs.len()).clone())
    }

    /// The §4.2 relational expression `R^j_{y_i} = Π_{K_R, y_i}(R ⋈ IM)`:
    /// joins `rel` with this ILFD table on the antecedent attributes
    /// and projects `rel`'s primary key plus the derived attribute.
    ///
    /// Requires `rel` to define all antecedent attributes (tables
    /// whose antecedents mention attributes `rel` lacks are simply not
    /// applicable to `rel`; callers filter with [`IlfdTable::applies_to`]).
    pub fn derive_join(&self, rel: &Relation) -> Result<Relation> {
        // Degenerate case: deriving an attribute that is part of
        // `rel`'s primary key is pointless (key attributes are
        // non-NULL base facts) and would collide in the projection.
        if rel.schema().primary_key().contains(&self.consequent_attr) {
            let mut names: Vec<&str> = Vec::new();
            let key = rel.schema().primary_key();
            for k in &key {
                names.push(k.as_str());
            }
            let schema = Schema::of_strs("∅", &names, &names)?;
            return Ok(Relation::new_unchecked(schema));
        }
        let on: Vec<(AttrName, AttrName)> = self
            .antecedent_attrs
            .iter()
            .map(|a| (a.clone(), a.clone()))
            .collect();
        let joined = algebra::equi_join(rel, &self.relation, &on)?;
        // Output attribute names in the joined relation: rel's key
        // attributes keep their names unless they collide with the IM
        // schema; the derived attribute may be prefixed if rel also
        // has it (it typically does not — that is why it is derived).
        let mut keep: Vec<AttrName> = Vec::new();
        for k in rel.schema().primary_key() {
            if joined.schema().has_attribute(&k) {
                keep.push(k);
            } else {
                keep.push(AttrName::new(format!("{}.{}", rel.name(), k)));
            }
        }
        let y = &self.consequent_attr;
        if joined.schema().has_attribute(y) {
            keep.push(y.clone());
        } else {
            keep.push(AttrName::new(format!("{}.{}", self.relation.name(), y)));
        }
        let mut out = algebra::project(&joined, &keep)?;
        // Normalize any prefixed names back to their plain forms.
        for (plain, kept) in rel
            .schema()
            .primary_key()
            .into_iter()
            .chain([y.clone()])
            .zip(keep.clone())
        {
            if plain != kept {
                out = algebra::rename_attr(&out, &kept, &plain)?;
            }
        }
        Ok(out)
    }

    /// Whether `rel` defines every antecedent attribute (so
    /// [`IlfdTable::derive_join`] is applicable).
    pub fn applies_to(&self, rel: &Relation) -> bool {
        self.antecedent_attrs
            .iter()
            .all(|a| rel.schema().has_attribute(a))
    }
}

/// Partitions an [`IlfdSet`] into uniform [`IlfdTable`]s.
///
/// Multi-consequent ILFDs are decomposed first; rules are grouped by
/// (antecedent attribute set, consequent attribute). Rules whose
/// antecedent binds the same attribute twice (contradictory) are
/// skipped, as are duplicate-antecedent rules within a group (the
/// first is kept, matching the first-match strategy's cut).
pub fn tables_from_ilfds(f: &IlfdSet) -> Result<Vec<IlfdTable>> {
    let mut groups: BTreeMap<(Vec<AttrName>, AttrName), IlfdTable> = BTreeMap::new();
    for ilfd in f.iter() {
        if ilfd.has_contradictory_antecedent() {
            continue;
        }
        for part in ilfd.decompose() {
            let ante_attrs: Vec<AttrName> =
                part.antecedent().iter().map(|s| s.attr.clone()).collect();
            let cons = part
                .consequent()
                .iter()
                .next()
                .expect("decomposed ILFD has one consequent")
                .clone();
            let key = (ante_attrs.clone(), cons.attr.clone());
            let table = match groups.entry(key) {
                std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(IlfdTable::new(ante_attrs.clone(), cons.attr.clone())?)
                }
            };
            let ante_values: Vec<Value> =
                part.antecedent().iter().map(|s| s.value.clone()).collect();
            // Ignore duplicate antecedents (cut semantics keeps the first).
            let _ = table.insert_rule(ante_values, cons.value);
        }
    }
    Ok(groups.into_values().collect())
}

/// Round-trips a set of ILFD tables back into one [`IlfdSet`].
pub fn ilfds_from_tables(tables: &[IlfdTable]) -> IlfdSet {
    let mut out = IlfdSet::new();
    for t in tables {
        for i in t.to_ilfds().iter() {
            out.insert(i.clone());
        }
    }
    out
}

/// Builds the paper's Table 8 — `IM(speciality; cuisine)` holding
/// I1–I4 — as a ready-made fixture.
pub fn paper_table8() -> IlfdTable {
    let mut t = IlfdTable::new(vec![AttrName::new("speciality")], AttrName::new("cuisine"))
        .expect("valid schema");
    for (spec, cui) in [
        ("hunan", "chinese"),
        ("sichuan", "chinese"),
        ("gyros", "greek"),
        ("mughalai", "indian"),
    ] {
        t.insert_rule(vec![Value::str(spec)], Value::str(cui))
            .expect("unique antecedents");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table8_contents() {
        let t = paper_table8();
        assert_eq!(t.len(), 4);
        assert_eq!(
            t.lookup(&Tuple::of_strs(&["mughalai"])),
            Some(Value::str("indian"))
        );
        assert_eq!(t.lookup(&Tuple::of_strs(&["nope"])), None);
    }

    #[test]
    fn to_ilfds_round_trip() {
        let t = paper_table8();
        let f = t.to_ilfds();
        assert_eq!(f.len(), 4);
        assert!(f.contains(&Ilfd::of_strs(
            &[("speciality", "hunan")],
            &[("cuisine", "chinese")]
        )));
    }

    #[test]
    fn tables_from_ilfds_groups_by_shape() {
        let f: IlfdSet = vec![
            Ilfd::of_strs(&[("speciality", "hunan")], &[("cuisine", "chinese")]),
            Ilfd::of_strs(&[("speciality", "gyros")], &[("cuisine", "greek")]),
            Ilfd::of_strs(&[("street", "front_ave")], &[("county", "ramsey")]),
        ]
        .into_iter()
        .collect();
        let tables = tables_from_ilfds(&f).unwrap();
        assert_eq!(tables.len(), 2);
        let back = ilfds_from_tables(&tables);
        assert!(crate::closure::equivalent(&f, &back));
    }

    #[test]
    fn multi_consequent_ilfds_are_decomposed() {
        let f: IlfdSet = vec![Ilfd::of_strs(&[("a", "1")], &[("b", "2"), ("c", "3")])]
            .into_iter()
            .collect();
        let tables = tables_from_ilfds(&f).unwrap();
        assert_eq!(tables.len(), 2);
    }

    #[test]
    fn duplicate_antecedent_keeps_first_rule() {
        let f: IlfdSet = vec![
            Ilfd::of_strs(&[("spec", "fusion")], &[("cui", "chinese")]),
            Ilfd::of_strs(&[("spec", "fusion")], &[("cui", "indian")]),
        ]
        .into_iter()
        .collect();
        let tables = tables_from_ilfds(&f).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 1);
        assert_eq!(
            tables[0].lookup(&Tuple::of_strs(&["fusion"])),
            Some(Value::str("chinese"))
        );
    }

    #[test]
    fn derive_join_produces_key_plus_derived_attr() {
        // S(name, speciality) with key name; derive cuisine.
        let schema = Schema::of_strs("S", &["name", "speciality"], &["name"]).unwrap();
        let mut s = Relation::new(schema);
        s.insert_strs(&["twincities", "hunan"]).unwrap();
        s.insert_strs(&["anjuman", "mughalai"]).unwrap();
        s.insert_strs(&["mystery", "unlisted"]).unwrap();
        let t = paper_table8();
        assert!(t.applies_to(&s));
        let derived = t.derive_join(&s).unwrap();
        assert_eq!(derived.len(), 2); // `mystery` has no rule
        assert!(derived.schema().has_attribute(&AttrName::new("name")));
        assert!(derived.schema().has_attribute(&AttrName::new("cuisine")));
        let rows = derived.sorted_tuples();
        assert_eq!(rows[0], Tuple::of_strs(&["anjuman", "indian"]));
        assert_eq!(rows[1], Tuple::of_strs(&["twincities", "chinese"]));
    }

    #[test]
    fn applies_to_requires_antecedent_attrs() {
        let schema = Schema::of_strs("R", &["name", "street"], &["name"]).unwrap();
        let r = Relation::new(schema);
        assert!(!paper_table8().applies_to(&r));
    }
}
