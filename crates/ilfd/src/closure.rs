//! Closure computation and logical implication for ILFDs.
//!
//! §5.2: "computing the closure `X⁺_F` of a set of propositional
//! symbols `X` with respect to a set of ILFDs `F` is relatively
//! easier \[than computing `F⁺`\]. Essentially, the algorithm … is the
//! same as that for computing the closure of a set of attributes with
//! respect to a set of FDs." We implement the standard linear-time
//! counter algorithm (Beeri–Bernstein) transliterated to symbols.

use std::collections::HashMap;

use crate::ilfd::{Ilfd, IlfdSet};
use crate::symbol::{PropSymbol, SymbolSet};

/// Computes the closure `X⁺_F`: every propositional symbol derivable
/// from `x` using Armstrong's axioms for ILFDs over `f`.
///
/// Runs in time linear in the total size of `f` plus the output.
pub fn symbol_closure(x: &SymbolSet, f: &IlfdSet) -> SymbolSet {
    // unsatisfied[i] = number of antecedent symbols of f[i] not yet in the closure.
    let mut unsatisfied: Vec<usize> = f.iter().map(|i| i.antecedent().len()).collect();
    // For each symbol, the ILFDs whose antecedent mentions it.
    let mut waiting: HashMap<&PropSymbol, Vec<usize>> = HashMap::new();
    for (idx, ilfd) in f.iter().enumerate() {
        for s in ilfd.antecedent() {
            waiting.entry(s).or_default().push(idx);
        }
    }

    let mut closure = x.clone();
    let mut queue: Vec<PropSymbol> = x.iter().cloned().collect();
    // ILFDs with empty antecedents fire immediately.
    let mut fire: Vec<usize> = unsatisfied
        .iter()
        .enumerate()
        .filter(|(_, &c)| c == 0)
        .map(|(i, _)| i)
        .collect();

    loop {
        for idx in fire.drain(..) {
            for s in f.as_slice()[idx].consequent() {
                if closure.insert(s.clone()) {
                    queue.push(s.clone());
                }
            }
        }
        match queue.pop() {
            None => break,
            Some(s) => {
                if let Some(idxs) = waiting.get(&s) {
                    for &idx in idxs {
                        unsatisfied[idx] -= 1;
                        if unsatisfied[idx] == 0 {
                            fire.push(idx);
                        }
                    }
                    // Each symbol is dequeued once; drop its entry so a
                    // duplicate enqueue cannot double-decrement.
                    let key = s.clone();
                    waiting.remove(&key);
                }
            }
        }
    }
    closure
}

/// Reference implementation of [`symbol_closure`]: the textbook
/// quadratic fixpoint ("repeat until no ILFD adds anything"). Kept as
/// an independent oracle for tests and as the baseline in the closure
/// benchmarks; the counter-based algorithm must always agree with it.
pub fn symbol_closure_naive(x: &SymbolSet, f: &IlfdSet) -> SymbolSet {
    let mut closure = x.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for ilfd in f.iter() {
            if ilfd.antecedent().is_subset(&closure) && !ilfd.consequent().is_subset(&closure) {
                closure = closure.union_with(ilfd.consequent());
                changed = true;
            }
        }
    }
    closure
}

/// Logical implication `F ⊨ X → Y`: by Theorem 1 (soundness and
/// completeness of Armstrong's axioms for ILFDs) this holds iff
/// `Y ⊆ X⁺_F`.
pub fn implies(f: &IlfdSet, ilfd: &Ilfd) -> bool {
    ilfd.consequent()
        .is_subset(&symbol_closure(ilfd.antecedent(), f))
}

/// Whether `f` is a member of the closure `F⁺` of `g` **and** vice
/// versa — i.e. the two sets are logically equivalent (imply the same
/// ILFDs).
pub fn equivalent(f: &IlfdSet, g: &IlfdSet) -> bool {
    f.iter().all(|i| implies(g, i)) && g.iter().all(|i| implies(f, i))
}

/// Computes a **minimal cover** of `f`: an equivalent set where
/// every consequent is a single symbol, no antecedent symbol is
/// extraneous, and no ILFD is redundant. Analogous to FD minimal
/// covers; useful for storing ILFD knowledge bases compactly.
pub fn minimal_cover(f: &IlfdSet) -> IlfdSet {
    // 1. Decompose consequents to single symbols; drop trivial ILFDs.
    let mut work: Vec<Ilfd> = f
        .iter()
        .flat_map(|i| i.decompose())
        .filter(|i| !i.is_trivial())
        .collect();
    work.dedup();

    // 2. Remove extraneous antecedent symbols: symbol s of X is
    //    extraneous in X→y if (X−{s})⁺ still contains y.
    let full: IlfdSet = work.iter().cloned().collect();
    let mut reduced: Vec<Ilfd> = Vec::with_capacity(work.len());
    for ilfd in &work {
        let mut ante: Vec<PropSymbol> = ilfd.antecedent().iter().cloned().collect();
        let mut changed = true;
        while changed {
            changed = false;
            for k in 0..ante.len() {
                if ante.len() == 1 {
                    break;
                }
                let candidate: SymbolSet = ante
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != k)
                    .map(|(_, s)| s.clone())
                    .collect();
                let derivable = ilfd
                    .consequent()
                    .is_subset(&symbol_closure(&candidate, &full));
                if derivable {
                    ante.remove(k);
                    changed = true;
                    break;
                }
            }
        }
        reduced.push(Ilfd::new(
            ante.into_iter().collect(),
            ilfd.consequent().clone(),
        ));
    }

    // 3. Remove redundant ILFDs: drop i if the rest still implies it.
    let mut keep: Vec<bool> = vec![true; reduced.len()];
    for k in 0..reduced.len() {
        keep[k] = false;
        let rest: IlfdSet = reduced
            .iter()
            .enumerate()
            .filter(|(j, _)| keep[*j])
            .map(|(_, i)| i.clone())
            .collect();
        if !implies(&rest, &reduced[k]) {
            keep[k] = true;
        }
    }
    reduced
        .into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(i, _)| i)
        .collect()
}

/// Enumerates the full closure `F⁺` restricted to a symbol universe —
/// every non-trivial, satisfiable `X → Y` with `X` drawn from
/// `universe` (antecedent size ≤ `max_antecedent`) and
/// `Y = X⁺_F − X`. Exponential in `|universe|`; intended for tests
/// and the theory experiment, mirroring §5's remark that "the closure
/// of a set of ILFDs is expensive to compute".
pub fn enumerate_closure(f: &IlfdSet, universe: &[PropSymbol], max_antecedent: usize) -> Vec<Ilfd> {
    let n = universe.len();
    assert!(n <= 20, "closure enumeration universe too large");
    let mut out = Vec::new();
    for mask in 1u32..(1 << n) {
        if (mask.count_ones() as usize) > max_antecedent {
            continue;
        }
        let x: SymbolSet = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| universe[i].clone())
            .collect();
        if x.is_contradictory() {
            continue;
        }
        let plus = symbol_closure(&x, f);
        let y: SymbolSet = plus.iter().filter(|s| !x.contains(s)).cloned().collect();
        if !y.is_empty() {
            out.push(Ilfd::new(x, y));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_relational::Value;

    fn sym(a: &str, v: &str) -> PropSymbol {
        PropSymbol::new(a, Value::str(v))
    }

    /// The §5.2 example: F = {(A=a1)→(B=b1), (B=b1)→(C=c1)}.
    fn example_f() -> IlfdSet {
        vec![
            Ilfd::of_strs(&[("A", "a1")], &[("B", "b1")]),
            Ilfd::of_strs(&[("B", "b1")], &[("C", "c1")]),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn closure_chains_transitively() {
        let x = SymbolSet::from_symbols([sym("A", "a1")]);
        let plus = symbol_closure(&x, &example_f());
        assert!(plus.contains(&sym("A", "a1")));
        assert!(plus.contains(&sym("B", "b1")));
        assert!(plus.contains(&sym("C", "c1")));
        assert_eq!(plus.len(), 3);
    }

    #[test]
    fn naive_and_counter_closures_agree() {
        let f = example_f();
        for start in [
            SymbolSet::new(),
            SymbolSet::from_symbols([sym("A", "a1")]),
            SymbolSet::from_symbols([sym("B", "b1")]),
            SymbolSet::from_symbols([sym("C", "c1"), sym("A", "a1")]),
            SymbolSet::from_symbols([sym("Z", "z")]),
        ] {
            assert_eq!(
                symbol_closure(&start, &f),
                symbol_closure_naive(&start, &f),
                "diverged on {start}"
            );
        }
    }

    #[test]
    fn closure_of_unrelated_symbol_is_itself() {
        let x = SymbolSet::from_symbols([sym("Z", "z")]);
        let plus = symbol_closure(&x, &example_f());
        assert_eq!(plus.len(), 1);
    }

    #[test]
    fn empty_antecedent_ilfds_always_fire() {
        let f: IlfdSet = vec![Ilfd::new(
            SymbolSet::new(),
            SymbolSet::of_strs(&[("B", "b")]),
        )]
        .into_iter()
        .collect();
        let plus = symbol_closure(&SymbolSet::new(), &f);
        assert!(plus.contains(&sym("B", "b")));
    }

    #[test]
    fn implies_transitive_consequence() {
        // F ⊨ (A=a1) → (C=c1), the transitivity axiom's conclusion.
        let target = Ilfd::of_strs(&[("A", "a1")], &[("C", "c1")]);
        assert!(implies(&example_f(), &target));
        // But not (C=c1) → (A=a1).
        let wrong = Ilfd::of_strs(&[("C", "c1")], &[("A", "a1")]);
        assert!(!implies(&example_f(), &wrong));
    }

    #[test]
    fn implies_trivial_always() {
        let trivial = Ilfd::of_strs(&[("Q", "q"), ("R", "r")], &[("Q", "q")]);
        assert!(implies(&IlfdSet::new(), &trivial));
    }

    #[test]
    fn multi_symbol_antecedent_requires_all() {
        // I5: name=twincities ∧ street=co_b2 → spec=hunan
        let f: IlfdSet = vec![Ilfd::of_strs(
            &[("name", "twincities"), ("street", "co_b2")],
            &[("spec", "hunan")],
        )]
        .into_iter()
        .collect();
        let partial = SymbolSet::of_strs(&[("name", "twincities")]);
        assert!(!symbol_closure(&partial, &f).contains(&sym("spec", "hunan")));
        let full = SymbolSet::of_strs(&[("name", "twincities"), ("street", "co_b2")]);
        assert!(symbol_closure(&full, &f).contains(&sym("spec", "hunan")));
    }

    #[test]
    fn derived_ilfd_i9_from_i7_i8() {
        // Paper: I7 (street=front_ave → county=ramsey) and
        // I8 (name=itsgreek ∧ county=ramsey → spec=gyros) derive
        // I9 (name=itsgreek ∧ street=front_ave → spec=gyros).
        let f: IlfdSet = vec![
            Ilfd::of_strs(&[("street", "front_ave")], &[("county", "ramsey")]),
            Ilfd::of_strs(
                &[("name", "itsgreek"), ("county", "ramsey")],
                &[("spec", "gyros")],
            ),
        ]
        .into_iter()
        .collect();
        let i9 = Ilfd::of_strs(
            &[("name", "itsgreek"), ("street", "front_ave")],
            &[("spec", "gyros")],
        );
        assert!(implies(&f, &i9));
    }

    #[test]
    fn equivalent_sets() {
        let f = example_f();
        // g adds the derived transitive ILFD — logically equivalent.
        let mut g = f.clone();
        g.insert(Ilfd::of_strs(&[("A", "a1")], &[("C", "c1")]));
        assert!(equivalent(&f, &g));
        // h loses information.
        let h: IlfdSet = vec![Ilfd::of_strs(&[("A", "a1")], &[("B", "b1")])]
            .into_iter()
            .collect();
        assert!(!equivalent(&f, &h));
    }

    #[test]
    fn minimal_cover_removes_redundant_ilfd() {
        let mut f = example_f();
        f.insert(Ilfd::of_strs(&[("A", "a1")], &[("C", "c1")])); // derivable
        let m = minimal_cover(&f);
        assert!(equivalent(&m, &f));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn minimal_cover_strips_extraneous_antecedent_symbols() {
        // (A=a1) → (B=b1); (A=a1 ∧ Z=z) → (B=b1) has Z extraneous.
        let f: IlfdSet = vec![
            Ilfd::of_strs(&[("A", "a1")], &[("B", "b1")]),
            Ilfd::of_strs(&[("A", "a1"), ("Z", "z")], &[("B", "b1")]),
        ]
        .into_iter()
        .collect();
        let m = minimal_cover(&f);
        assert!(equivalent(&m, &f));
        assert_eq!(m.len(), 1);
        assert_eq!(m.as_slice()[0].antecedent().len(), 1);
    }

    #[test]
    fn minimal_cover_of_empty_is_empty() {
        assert!(minimal_cover(&IlfdSet::new()).is_empty());
    }

    #[test]
    fn enumerate_closure_contains_derived_and_respects_bounds() {
        let f = example_f();
        let universe = vec![sym("A", "a1"), sym("B", "b1"), sym("C", "c1")];
        let all = enumerate_closure(&f, &universe, 3);
        let derived = Ilfd::of_strs(&[("A", "a1")], &[("B", "b1"), ("C", "c1")]);
        assert!(all.contains(&derived));
        // Everything enumerated is implied by F.
        assert!(all.iter().all(|i| implies(&f, i)));
        // Contradictory antecedents are skipped.
        let universe2 = vec![sym("A", "a1"), sym("A", "a2")];
        let some = enumerate_closure(&f, &universe2, 2);
        assert!(some.iter().all(|i| !i.antecedent().is_contradictory()));
    }
}
