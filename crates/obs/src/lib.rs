//! # `eid-obs` — first-party observability for the matching engine
//!
//! The build environment vendors offline stub crates, so there is no
//! `tracing` to lean on; this crate hand-rolls the three primitives
//! the engine needs and nothing more:
//!
//! * [`Counter`] — a thread-safe monotone counter (relaxed atomics,
//!   cheap enough for hot paths);
//! * [`Histogram`] — a lock-free log2-bucketed value distribution
//!   (task durations, batch sizes);
//! * [`Recorder`] + [`Span`] — coarse-grained hierarchical wall-time
//!   spans over a monotonic clock, aggregated by `/`-separated path.
//!
//! A [`Recorder`] is a cheaply cloneable shared handle; every clone
//! feeds the same underlying sinks, so worker threads can record
//! concurrently. [`Recorder::report`] snapshots everything into a
//! [`MatchReport`] — a plain, serializable value that renders as an
//! aligned text breakdown ([`std::fmt::Display`]) or as JSON
//! ([`MatchReport::to_json`], hand-rolled because no data-format
//! crate ships with the repository).
//!
//! Design constraints (mirrored from the engine's perf budget):
//! counters are relaxed atomics and may be tallied locally and
//! flushed once per task; spans are per *phase* or per *task*, never
//! per pair; nothing in this crate allocates on the hot path once
//! the handles are registered.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod counter;
mod histogram;
pub mod json;
mod recorder;
mod report;

pub use counter::Counter;
pub use histogram::{Histogram, HistogramSnapshot};
pub use recorder::{Recorder, Span};
pub use report::{CounterStat, HistogramStat, LabelStat, MatchReport, StageStat};
