//! # `eid-obs` — first-party observability for the matching engine
//!
//! The build environment vendors offline stub crates, so there is no
//! `tracing` to lean on; this crate hand-rolls the three primitives
//! the engine needs and nothing more:
//!
//! * [`Counter`] — a thread-safe monotone counter (relaxed atomics,
//!   cheap enough for hot paths);
//! * [`Histogram`] — a lock-free log2-bucketed value distribution
//!   (task durations, batch sizes);
//! * [`Recorder`] + [`Span`] — coarse-grained hierarchical wall-time
//!   spans over a monotonic clock, aggregated by `/`-separated path.
//!
//! A [`Recorder`] is a cheaply cloneable shared handle; every clone
//! feeds the same underlying sinks, so worker threads can record
//! concurrently. [`Recorder::report`] snapshots everything into a
//! [`MatchReport`] — a plain, serializable value that renders as an
//! aligned text breakdown ([`std::fmt::Display`]) or as JSON
//! ([`MatchReport::to_json`], hand-rolled because no data-format
//! crate ships with the repository).
//!
//! Design constraints (mirrored from the engine's perf budget):
//! counters are relaxed atomics and may be tallied locally and
//! flushed once per task; spans are per *phase* or per *task*, never
//! per pair; nothing in this crate allocates on the hot path once
//! the handles are registered.
//!
//! Two deeper instruments build on the same discipline:
//!
//! * [`trace`] — plan-attributed execution timelines. Bounded
//!   per-worker [`TraceSink`] buffers are filled *post-scope* from
//!   per-task reports (the hot loop never takes a lock) and exported
//!   as Chrome `trace_event` JSON for Perfetto.
//! * [`alloc`] — a feature-gated (`count-alloc`) counting global
//!   allocator with stage-scoped attribution, turning the memory
//!   budget from an estimate into a measurement.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc;
mod counter;
mod histogram;
pub mod json;
mod recorder;
mod report;
pub mod trace;

pub use counter::Counter;
pub use histogram::{Histogram, HistogramSnapshot};
pub use recorder::{Recorder, Span};
pub use report::{CounterStat, HistogramStat, LabelStat, MatchReport, StageStat};
pub use trace::{Trace, TraceEvent, TracePhase, TraceSink};
