//! Lock-free log2-bucketed histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per bit width of `u64`.
const BUCKETS: usize = 65;

/// A lightweight value distribution over `u64` samples.
///
/// Values are assigned to power-of-two buckets: bucket 0 holds the
/// value `0`, bucket `i ≥ 1` holds values in `[2^(i−1), 2^i − 1]`.
/// Recording is a pair of relaxed atomic adds plus an atomic max —
/// no locks, no allocation — so it is safe to call once per task
/// (not per pair) from any worker thread.
///
/// Quantiles reported by [`HistogramSnapshot::quantile`] are bucket
/// upper bounds: exact to within a factor of two, which is all a
/// task-duration breakdown needs.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket index of a value.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The largest value a bucket holds.
fn upper_bound(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        b if b >= 64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((upper_bound(i), n));
                count += n;
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A plain-data copy of a [`Histogram`], safe to serialize and clone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`, in
    /// ascending bound order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The bucket upper bound at quantile `q ∈ [0, 1]` — an estimate
    /// exact to within a factor of two. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bound.min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(upper_bound(0), 0);
        assert_eq!(upper_bound(1), 1);
        assert_eq!(upper_bound(2), 3);
        assert_eq!(upper_bound(64), u64::MAX);
    }

    #[test]
    fn snapshot_statistics() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 106);
        assert_eq!(s.max, 100);
        assert!((s.mean() - 21.2).abs() < 1e-9);
        // Median lands in the bucket holding 2 and 3.
        assert_eq!(s.quantile(0.5), 3);
        // The top quantile is capped at the true max.
        assert_eq!(s.quantile(1.0), 100);
    }

    #[test]
    fn empty_snapshot_is_quiet() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn concurrent_records_preserved() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 2000);
    }
}
