//! The serializable observability snapshot.

use std::fmt;

use crate::histogram::HistogramSnapshot;
use crate::json;

/// Aggregated wall time of one span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStat {
    /// `/`-separated hierarchical path (e.g. `match/engine/index`).
    pub path: String,
    /// Total nanoseconds across all recordings of this path. For
    /// per-task paths drained by several workers this is *busy* time
    /// (it can exceed the parent's wall time).
    pub nanos: u64,
    /// How many spans were merged into this aggregate.
    pub count: u64,
}

/// One named counter value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterStat {
    /// The counter's name (conventionally `group/name`).
    pub name: String,
    /// The counted value.
    pub value: u64,
}

/// One named histogram snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramStat {
    /// The histogram's name.
    pub name: String,
    /// Its point-in-time distribution.
    pub snapshot: HistogramSnapshot,
}

/// One string-valued label — a categorical annotation of the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelStat {
    /// The label's name (e.g. `engine`).
    pub name: String,
    /// Its value (e.g. `blocked_parallel`).
    pub value: String,
}

/// Everything one matching run (or one incremental matcher lifetime)
/// observed: stage timings, counters, histograms, and labels.
///
/// Plain data — cloneable, comparable, and serializable to JSON via
/// [`MatchReport::to_json`]. The stage list, counter list, and
/// histogram list are each sorted by name, so two reports of the
/// same run shape are structurally comparable and the JSON output is
/// deterministic up to timing values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchReport {
    /// Stage timings, sorted by path.
    pub stages: Vec<StageStat>,
    /// Counters, sorted by name.
    pub counters: Vec<CounterStat>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramStat>,
    /// Labels, sorted by name.
    pub labels: Vec<LabelStat>,
}

impl MatchReport {
    /// The value of the counter named `name`, or 0 when the counter
    /// was never touched (an untouched counter and a zero counter are
    /// observationally identical).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// The value of the label named `name`, if the run set it.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|l| l.name == name)
            .map(|l| l.value.as_str())
    }

    /// Sets the counter named `name` to `value`, inserting it in
    /// sorted position when absent. Lets post-run stages (e.g. CLI
    /// ingestion tallies) fold into a snapshot already taken.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        match self
            .counters
            .binary_search_by(|c| c.name.as_str().cmp(name))
        {
            Ok(i) => self.counters[i].value = value,
            Err(i) => self.counters.insert(
                i,
                CounterStat {
                    name: name.to_string(),
                    value,
                },
            ),
        }
    }

    /// Sets the label named `name`, inserting in sorted position.
    pub fn set_label(&mut self, name: &str, value: &str) {
        match self.labels.binary_search_by(|l| l.name.as_str().cmp(name)) {
            Ok(i) => self.labels[i].value = value.to_string(),
            Err(i) => self.labels.insert(
                i,
                LabelStat {
                    name: name.to_string(),
                    value: value.to_string(),
                },
            ),
        }
    }

    /// The counters whose names start with `prefix`.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = &'a CounterStat> + 'a {
        self.counters
            .iter()
            .filter(move |c| c.name.starts_with(prefix))
    }

    /// Total nanoseconds recorded at `path`, if any span ran there.
    pub fn stage_nanos(&self, path: &str) -> Option<u64> {
        self.stages.iter().find(|s| s.path == path).map(|s| s.nanos)
    }

    /// Total seconds recorded at `path` (0.0 when absent).
    pub fn stage_seconds(&self, path: &str) -> f64 {
        self.stage_nanos(path).unwrap_or(0) as f64 / 1e9
    }

    /// Serializes the report to pretty-printed JSON.
    ///
    /// Schema (documented in DESIGN.md §8):
    ///
    /// ```json
    /// {
    ///   "stages":     [{"path": "...", "nanos": 0, "count": 0}],
    ///   "counters":   [{"name": "...", "value": 0}],
    ///   "histograms": [{"name": "...", "count": 0, "sum": 0,
    ///                   "max": 0, "mean": 0.0, "p50": 0, "p95": 0,
    ///                   "p99": 0, "buckets": [{"le": 0, "count": 0}]}],
    ///   "labels":     [{"name": "...", "value": "..."}]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"stages\": [");
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"path\": ");
            json::push_str_literal(&mut out, &s.path);
            out.push_str(&format!(
                ", \"nanos\": {}, \"count\": {}}}",
                s.nanos, s.count
            ));
        }
        if !self.stages.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"name\": ");
            json::push_str_literal(&mut out, &c.name);
            out.push_str(&format!(", \"value\": {}}}", c.value));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let s = &h.snapshot;
            out.push_str("    {\"name\": ");
            json::push_str_literal(&mut out, &h.name);
            out.push_str(&format!(
                ", \"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
                s.count,
                s.sum,
                s.max,
                json::f64_literal(s.mean()),
                s.quantile(0.50),
                s.quantile(0.95),
                s.quantile(0.99),
            ));
            for (j, (le, n)) in s.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{{\"le\": {le}, \"count\": {n}}}"));
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"labels\": [");
        for (i, l) in self.labels.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"name\": ");
            json::push_str_literal(&mut out, &l.name);
            out.push_str(", \"value\": ");
            json::push_str_literal(&mut out, &l.value);
            out.push('}');
        }
        if !self.labels.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Renders a nanosecond quantity human-readably.
fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

impl fmt::Display for MatchReport {
    /// An aligned text breakdown: stages indented by hierarchy depth,
    /// then counters, then histogram summaries.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "stages (wall/busy time):")?;
        for s in &self.stages {
            let depth = s.path.matches('/').count();
            let name = s.path.rsplit('/').next().unwrap_or(&s.path);
            let label = format!("{}{}", "  ".repeat(depth + 1), name);
            let times = if s.count > 1 {
                format!("{} ({}x)", fmt_nanos(s.nanos), s.count)
            } else {
                fmt_nanos(s.nanos)
            };
            writeln!(f, "{label:<32} {times:>18}")?;
        }
        writeln!(f, "counters:")?;
        for c in &self.counters {
            writeln!(f, "  {:<40} {:>12}", c.name, c.value)?;
        }
        if !self.labels.is_empty() {
            writeln!(f, "labels:")?;
            for l in &self.labels {
                writeln!(f, "  {:<40} {}", l.name, l.value)?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(f, "histograms:")?;
            for h in &self.histograms {
                let s = &h.snapshot;
                writeln!(
                    f,
                    "  {:<28} n={:<6} mean={:<12} p50≤{:<12} p95≤{:<12} p99≤{:<12} max={}",
                    h.name,
                    s.count,
                    fmt_nanos(s.mean() as u64),
                    fmt_nanos(s.quantile(0.50)),
                    fmt_nanos(s.quantile(0.95)),
                    fmt_nanos(s.quantile(0.99)),
                    fmt_nanos(s.max),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn sample() -> MatchReport {
        let rec = Recorder::new();
        rec.record_span("match", 2_000_000);
        rec.record_span("match/engine", 1_500_000);
        rec.record_span("match/engine/index", 300_000);
        rec.add("block/candidates", 10);
        rec.add("block/accepted", 7);
        rec.histogram("engine/task_nanos").record(750_000);
        rec.report()
    }

    #[test]
    fn accessors() {
        let r = sample();
        assert_eq!(r.counter("block/candidates"), 10);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.stage_nanos("match/engine"), Some(1_500_000));
        assert_eq!(r.stage_nanos("absent"), None);
        assert!((r.stage_seconds("match") - 0.002).abs() < 1e-12);
        assert_eq!(r.counters_with_prefix("block/").count(), 2);
    }

    #[test]
    fn json_is_well_formed_and_deterministic() {
        let r = sample();
        let json = r.to_json();
        // Deterministic: identical snapshot → identical text.
        assert_eq!(json, r.to_json());
        // Structure probes (no JSON parser available offline).
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"stages\""));
        assert!(json.contains("\"path\": \"match/engine/index\""));
        assert!(json.contains("\"name\": \"block/candidates\", \"value\": 10"));
        assert!(json.contains("\"histograms\""));
        // Balanced braces/brackets — a cheap well-formedness check.
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn display_indents_by_hierarchy() {
        let text = sample().to_string();
        assert!(text.contains("  match "));
        assert!(text.contains("    engine "));
        assert!(text.contains("      index "));
        assert!(text.contains("block/accepted"));
        assert!(text.contains("engine/task_nanos"));
    }

    #[test]
    fn empty_report_renders() {
        let r = MatchReport::default();
        assert!(r.to_json().contains("\"counters\": []"));
        assert!(r.to_json().contains("\"labels\": []"));
        assert!(r.to_string().contains("counters:"));
    }

    #[test]
    fn labels_round_trip() {
        let rec = Recorder::new();
        rec.set_label("engine", "blocked_parallel");
        rec.set_label("engine", "blocked"); // replaces
        let r = rec.report();
        assert_eq!(r.label("engine"), Some("blocked"));
        assert_eq!(r.label("missing"), None);
        let json = r.to_json();
        assert!(json.contains("{\"name\": \"engine\", \"value\": \"blocked\"}"));
        assert!(r.to_string().contains("labels:"));
    }

    #[test]
    fn set_counter_and_label_keep_sorted_order() {
        let mut r = sample();
        r.set_counter("block/candidates", 99);
        r.set_counter("aaa/first", 1);
        assert_eq!(r.counter("block/candidates"), 99);
        assert_eq!(r.counter("aaa/first"), 1);
        let names: Vec<_> = r.counters.iter().map(|c| c.name.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);

        r.set_label("zz", "1");
        r.set_label("aa", "2");
        r.set_label("zz", "3");
        assert_eq!(r.label("zz"), Some("3"));
        assert_eq!(r.labels[0].name, "aa");
    }
}
