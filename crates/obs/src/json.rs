//! A minimal JSON writer.
//!
//! The workspace's vendored `serde` is an offline stub with no data
//! format, so reports serialize through these few helpers instead.
//! Only what [`MatchReport`](crate::MatchReport) (and the bench
//! harness) needs: string escaping and a small buffer-building
//! convention — callers push directly into a `String`.

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON string literal for `s` (quotes included).
pub fn str_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_str_literal(&mut out, s);
    out
}

/// A JSON number for a float: finite values render with six decimal
/// places, non-finite ones as `null` (JSON has no NaN/Infinity).
pub fn f64_literal(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(str_literal("plain"), "\"plain\"");
        assert_eq!(str_literal("a\"b"), "\"a\\\"b\"");
        assert_eq!(str_literal("a\\b"), "\"a\\\\b\"");
        assert_eq!(str_literal("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(str_literal("\u{1}"), "\"\\u0001\"");
        // Non-ASCII passes through unescaped (JSON allows it).
        assert_eq!(str_literal("café"), "\"café\"");
    }

    #[test]
    fn float_rendering() {
        assert_eq!(f64_literal(1.5), "1.500000");
        assert_eq!(f64_literal(f64::NAN), "null");
        assert_eq!(f64_literal(f64::INFINITY), "null");
    }
}
