//! The shared recorder: named counters, histograms, and spans.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::counter::Counter;
use crate::histogram::Histogram;
use crate::report::{CounterStat, HistogramStat, LabelStat, MatchReport, StageStat};

/// Aggregated wall time for one span path.
#[derive(Debug, Default, Clone, Copy)]
struct SpanAgg {
    nanos: u64,
    count: u64,
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    spans: Mutex<BTreeMap<String, SpanAgg>>,
    labels: Mutex<BTreeMap<String, String>>,
}

/// A cheaply cloneable handle to one set of observability sinks.
///
/// Every clone shares the same underlying state, so a recorder can be
/// handed to worker threads and an [`MatchReport`](crate::MatchReport)
/// snapshot taken from any clone. Registration ([`Recorder::counter`],
/// [`Recorder::histogram`]) takes a short lock and should happen at
/// setup or task granularity; the returned [`Counter`]/[`Histogram`]
/// handles are lock-free thereafter.
///
/// Span paths use `/` as the hierarchy separator (e.g.
/// `match/engine/index`); reports sort and indent by path.
#[derive(Debug, Clone, Default)]
pub struct Recorder(Arc<Inner>);

impl Recorder {
    /// A fresh, empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut counters = self.0.counters.lock().expect("recorder poisoned");
        match counters.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::new());
                counters.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// Adds `n` to the counter named `name` (registering it if new).
    /// Convenience for cold paths; hot paths should hold the
    /// [`Recorder::counter`] handle.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut histograms = self.0.histograms.lock().expect("recorder poisoned");
        match histograms.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new());
                histograms.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// Sets the string-valued label `name` to `value`, replacing any
    /// previous value. Labels annotate a run with categorical facts a
    /// counter cannot carry — which engine arm published the tables,
    /// why a run aborted.
    pub fn set_label(&self, name: &str, value: &str) {
        let mut labels = self.0.labels.lock().expect("recorder poisoned");
        labels.insert(name.to_string(), value.to_string());
    }

    /// Starts a wall-time span at `path`; the elapsed time is
    /// recorded when the returned guard drops (or
    /// [`Span::finish`] is called).
    pub fn span(&self, path: &str) -> Span<'_> {
        Span {
            recorder: self,
            path: path.to_string(),
            start: Instant::now(),
        }
    }

    /// Merges `nanos` of wall time into the span aggregate at `path`.
    /// Used directly when a duration is measured out of band (e.g.
    /// per-task timings flushed from a worker).
    pub fn record_span(&self, path: &str, nanos: u64) {
        let mut spans = self.0.spans.lock().expect("recorder poisoned");
        let agg = spans.entry(path.to_string()).or_default();
        agg.nanos += nanos;
        agg.count += 1;
    }

    /// Snapshots every sink into a plain [`MatchReport`].
    pub fn report(&self) -> MatchReport {
        let stages = self
            .0
            .spans
            .lock()
            .expect("recorder poisoned")
            .iter()
            .map(|(path, agg)| StageStat {
                path: path.clone(),
                nanos: agg.nanos,
                count: agg.count,
            })
            .collect();
        let counters = self
            .0
            .counters
            .lock()
            .expect("recorder poisoned")
            .iter()
            .map(|(name, c)| CounterStat {
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        let histograms = self
            .0
            .histograms
            .lock()
            .expect("recorder poisoned")
            .iter()
            .map(|(name, h)| HistogramStat {
                name: name.clone(),
                snapshot: h.snapshot(),
            })
            .collect();
        let labels = self
            .0
            .labels
            .lock()
            .expect("recorder poisoned")
            .iter()
            .map(|(name, value)| LabelStat {
                name: name.clone(),
                value: value.clone(),
            })
            .collect();
        MatchReport {
            stages,
            counters,
            histograms,
            labels,
        }
    }
}

/// A live wall-time span; records into its [`Recorder`] on drop.
#[derive(Debug)]
pub struct Span<'a> {
    recorder: &'a Recorder,
    path: String,
    start: Instant,
}

impl Span<'_> {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let nanos = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.recorder.record_span(&self.path, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_across_clones() {
        let a = Recorder::new();
        let b = a.clone();
        a.counter("x").add(2);
        b.counter("x").inc();
        assert_eq!(a.report().counter("x"), 3);
    }

    #[test]
    fn spans_aggregate_by_path() {
        let rec = Recorder::new();
        rec.record_span("match/engine", 10);
        rec.record_span("match/engine", 5);
        rec.span("match").finish();
        let report = rec.report();
        assert_eq!(report.stage_nanos("match/engine"), Some(15));
        let engine = report
            .stages
            .iter()
            .find(|s| s.path == "match/engine")
            .unwrap();
        assert_eq!(engine.count, 2);
        assert!(report.stage_nanos("match").is_some());
    }

    #[test]
    fn span_guard_measures_monotonic_time() {
        let rec = Recorder::new();
        {
            let _span = rec.span("work");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(rec.report().stage_nanos("work").unwrap() >= 2_000_000);
    }

    #[test]
    fn histograms_snapshot_through_report() {
        let rec = Recorder::new();
        rec.histogram("h").record(7);
        let report = rec.report();
        assert_eq!(report.histograms.len(), 1);
        assert_eq!(report.histograms[0].snapshot.count, 1);
    }

    #[test]
    fn concurrent_workers_record_into_one_report() {
        let rec = Recorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rec = rec.clone();
                scope.spawn(move || {
                    let c = rec.counter("tasks");
                    for _ in 0..100 {
                        c.inc();
                    }
                    rec.record_span("busy", 1);
                });
            }
        });
        let report = rec.report();
        assert_eq!(report.counter("tasks"), 400);
        assert_eq!(report.stage_nanos("busy"), Some(4));
    }
}
