//! A counting global allocator with stage-scoped attribution.
//!
//! The engine's memory budget (`max_pair_bytes`) has so far charged
//! *estimates* — 8 bytes per emitted pair — which misses allocator
//! slack, reserve headroom, and every non-pair allocation. This
//! module measures the real thing: a [`CountingAlloc`] wraps the
//! system allocator and tallies bytes allocated, freed, live, and
//! peak, plus a per-thread cumulative count the engine can delta
//! around a task to charge its measured footprint.
//!
//! Counting is compiled in only under the `count-alloc` cargo
//! feature; without it [`CountingAlloc`] is a zero-overhead
//! passthrough to [`System`] and every reader returns 0, so the
//! default build pays nothing. A binary opts in by enabling the
//! feature and installing the allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: eid_obs::alloc::CountingAlloc = eid_obs::alloc::CountingAlloc;
//! ```
//!
//! **Stage scopes** attribute allocations to coarse pipeline stages.
//! A [`StageScope`] guard tags the current thread with a small slot
//! index; every byte allocated while the guard lives is credited to
//! that slot. Slot meanings belong to the caller (the matcher uses
//! derive/engine/convert); slot 0 is the untagged default.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of stage-attribution slots (slot 0 = untagged).
pub const STAGE_SLOTS: usize = 8;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);
static FREED: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static STAGES: [AtomicU64; STAGE_SLOTS] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

#[cfg(feature = "count-alloc")]
thread_local! {
    static CUR_STAGE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
    static THREAD_ALLOCATED: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

#[cfg(feature = "count-alloc")]
#[inline]
fn on_alloc(bytes: u64) {
    let allocated = ALLOCATED.fetch_add(bytes, Ordering::Relaxed) + bytes;
    let live = allocated.saturating_sub(FREED.load(Ordering::Relaxed));
    PEAK.fetch_max(live, Ordering::Relaxed);
    // `Cell<T: !Drop>` thread-locals register no destructor, so these
    // accesses are safe inside the allocator; `try_with` covers the
    // narrow teardown window anyway.
    let slot = CUR_STAGE.try_with(|s| s.get()).unwrap_or(0);
    STAGES[slot.min(STAGE_SLOTS - 1)].fetch_add(bytes, Ordering::Relaxed);
    let _ = THREAD_ALLOCATED.try_with(|t| t.set(t.get() + bytes));
}

#[cfg(feature = "count-alloc")]
#[inline]
fn on_free(bytes: u64) {
    FREED.fetch_add(bytes, Ordering::Relaxed);
}

/// A counting wrapper around the system allocator. Install as the
/// `#[global_allocator]` with the `count-alloc` feature enabled to
/// activate measured memory accounting; without the feature it is a
/// plain passthrough.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

// SAFETY: defers every allocation to `System` unchanged; the
// counting side effects touch only atomics and no-Drop thread-locals.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        #[cfg(feature = "count-alloc")]
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        #[cfg(feature = "count-alloc")]
        on_free(layout.size() as u64);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        #[cfg(feature = "count-alloc")]
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        #[cfg(feature = "count-alloc")]
        if !p.is_null() {
            on_free(layout.size() as u64);
            on_alloc(new_size as u64);
        }
        p
    }
}

/// Whether measured accounting is live: the feature is compiled in
/// *and* the counting allocator is installed (any process allocates
/// long before user code runs, so a zero total means "not counting").
pub fn active() -> bool {
    cfg!(feature = "count-alloc") && ALLOCATED.load(Ordering::Relaxed) > 0
}

/// Cumulative bytes allocated process-wide (0 when not counting).
pub fn total_allocated() -> u64 {
    ALLOCATED.load(Ordering::Relaxed)
}

/// Cumulative bytes freed process-wide.
pub fn total_freed() -> u64 {
    FREED.load(Ordering::Relaxed)
}

/// Bytes currently live (allocated − freed, saturating).
pub fn live_bytes() -> u64 {
    total_allocated().saturating_sub(total_freed())
}

/// The high-water mark of live bytes.
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Cumulative bytes the *current thread* has allocated. Delta this
/// around a task to measure the task's allocation footprint.
pub fn thread_allocated() -> u64 {
    #[cfg(feature = "count-alloc")]
    {
        THREAD_ALLOCATED.try_with(|t| t.get()).unwrap_or(0)
    }
    #[cfg(not(feature = "count-alloc"))]
    {
        0
    }
}

/// Cumulative bytes attributed to stage `slot` (clamped to the last
/// slot when out of range).
pub fn stage_bytes(slot: usize) -> u64 {
    STAGES[slot.min(STAGE_SLOTS - 1)].load(Ordering::Relaxed)
}

/// A point-in-time copy of every allocator meter; subtract two
/// snapshots to attribute a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Cumulative bytes allocated.
    pub allocated: u64,
    /// Cumulative bytes freed.
    pub freed: u64,
    /// Peak live bytes (monotone; not delta-able).
    pub peak: u64,
    /// Cumulative bytes per stage slot.
    pub stages: [u64; STAGE_SLOTS],
}

impl AllocSnapshot {
    /// The bytes each meter grew since `earlier` (peak carries the
    /// later absolute value — a high-water mark has no useful delta).
    pub fn since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        let mut stages = [0u64; STAGE_SLOTS];
        for (i, s) in stages.iter_mut().enumerate() {
            *s = self.stages[i].saturating_sub(earlier.stages[i]);
        }
        AllocSnapshot {
            allocated: self.allocated.saturating_sub(earlier.allocated),
            freed: self.freed.saturating_sub(earlier.freed),
            peak: self.peak,
            stages,
        }
    }
}

/// Snapshots every meter.
pub fn snapshot() -> AllocSnapshot {
    let mut stages = [0u64; STAGE_SLOTS];
    for (i, s) in stages.iter_mut().enumerate() {
        *s = STAGES[i].load(Ordering::Relaxed);
    }
    AllocSnapshot {
        allocated: total_allocated(),
        freed: total_freed(),
        peak: peak_bytes(),
        stages,
    }
}

/// An RAII guard tagging the current thread's allocations with a
/// stage slot; restores the previous slot on drop. A no-op without
/// the `count-alloc` feature.
#[derive(Debug)]
pub struct StageScope {
    #[cfg(feature = "count-alloc")]
    prev: usize,
}

impl StageScope {
    /// Enters stage `slot` on the current thread.
    pub fn enter(slot: usize) -> StageScope {
        #[cfg(feature = "count-alloc")]
        {
            let prev = CUR_STAGE
                .try_with(|s| {
                    let p = s.get();
                    s.set(slot.min(STAGE_SLOTS - 1));
                    p
                })
                .unwrap_or(0);
            StageScope { prev }
        }
        #[cfg(not(feature = "count-alloc"))]
        {
            let _ = slot;
            StageScope {}
        }
    }
}

impl Drop for StageScope {
    fn drop(&mut self) {
        #[cfg(feature = "count-alloc")]
        let _ = CUR_STAGE.try_with(|s| s.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_without_installation_reads_zero() {
        // These unit tests run without the counting allocator
        // installed as the global allocator, so every meter is 0 and
        // the scopes are harmless.
        if !cfg!(feature = "count-alloc") {
            assert!(!active());
            assert_eq!(total_allocated(), 0);
        }
        let _scope = StageScope::enter(3);
        let v: Vec<u8> = Vec::with_capacity(1024);
        drop(v);
        assert_eq!(
            live_bytes(),
            total_allocated().saturating_sub(total_freed())
        );
    }

    #[test]
    fn snapshot_delta_is_saturating_and_per_stage() {
        let a = AllocSnapshot {
            allocated: 100,
            freed: 40,
            peak: 90,
            stages: [10, 0, 0, 0, 0, 0, 0, 0],
        };
        let b = AllocSnapshot {
            allocated: 250,
            freed: 100,
            peak: 120,
            stages: [10, 30, 0, 0, 0, 0, 0, 0],
        };
        let d = b.since(&a);
        assert_eq!(d.allocated, 150);
        assert_eq!(d.freed, 60);
        assert_eq!(d.peak, 120, "peak carries the later absolute value");
        assert_eq!(d.stages[0], 0);
        assert_eq!(d.stages[1], 30);
        assert_eq!(a.since(&b).allocated, 0, "reverse delta saturates");
    }

    #[test]
    fn counting_allocator_is_usable_as_an_allocator() {
        // Exercise the GlobalAlloc impl directly (not installed).
        let a = CountingAlloc;
        unsafe {
            let layout = Layout::from_size_align(64, 8).unwrap();
            let p = a.alloc(layout);
            assert!(!p.is_null());
            let p = a.realloc(p, layout, 128);
            assert!(!p.is_null());
            a.dealloc(p, Layout::from_size_align(128, 8).unwrap());
            let z = a.alloc_zeroed(layout);
            assert!(!z.is_null());
            assert_eq!(std::slice::from_raw_parts(z, 64), &[0u8; 64]);
            a.dealloc(z, layout);
        }
    }
}
