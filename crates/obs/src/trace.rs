//! Plan-attributed execution timelines.
//!
//! The aggregate counters and spans answer *how much* each stage
//! cost; a timeline answers *which worker spent it, on which plan
//! node, when*. This module records bounded per-worker event streams
//! and serializes them as Chrome `trace_event` JSON, loadable in
//! Perfetto or `chrome://tracing`.
//!
//! The design mirrors the engine's tally discipline: workers never
//! touch a shared sink from the hot loop. Each task's timing rides
//! back to the coordinating thread inside its task report, and the
//! coordinator replays the run into one [`TraceSink`] per worker
//! *post-scope*. A sink is a bounded buffer — once full it drops
//! whole slices (never half of one), so the begin/end stream stays
//! balanced by construction and memory stays bounded no matter how
//! long a run is.
//!
//! Timestamps are nanoseconds relative to a single run epoch taken
//! when the executor starts, so slices from different workers share
//! one comparable time axis.

use std::sync::Arc;

use crate::json::push_str_literal;

/// Default per-worker event capacity: 2^16 events ≈ 32 768 slices,
/// about 3 MB per worker worst case — far above what a bounded task
/// count produces, low enough to cap a pathological run.
pub const DEFAULT_SINK_CAPACITY: usize = 1 << 16;

/// Whether an event opens or closes a slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Opens a slice (`ph: "B"` in Chrome trace terms).
    Begin,
    /// Closes the most recent open slice on the same track (`"E"`).
    End,
}

/// One timeline event: a begin or end keyed by plan-node span label,
/// worker id, and task index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Begin or end.
    pub phase: TracePhase,
    /// The slice name — a plan-node label, or `kernel/tile` for
    /// nested kernel slices. Shared, so repeated labels cost one
    /// allocation per run, not one per event.
    pub name: Arc<str>,
    /// The worker (track) the event belongs to. The coordinating
    /// thread is worker 0.
    pub worker: u32,
    /// The engine task index the slice executed.
    pub task: u32,
    /// The plan-node id the slice is attributed to.
    pub node: u32,
    /// Nanoseconds since the run epoch.
    pub ts_nanos: u64,
    /// Kernel batches attributed to the slice (0 for non-kernel
    /// slices; recorded on the begin event).
    pub batches: u64,
}

impl TraceEvent {
    /// A begin event.
    pub fn begin(
        name: &Arc<str>,
        worker: u32,
        task: u32,
        node: u32,
        ts_nanos: u64,
        batches: u64,
    ) -> TraceEvent {
        TraceEvent {
            phase: TracePhase::Begin,
            name: Arc::clone(name),
            worker,
            task,
            node,
            ts_nanos,
            batches,
        }
    }

    /// The end event closing a slice opened by `begin`.
    pub fn end(name: &Arc<str>, worker: u32, task: u32, node: u32, ts_nanos: u64) -> TraceEvent {
        TraceEvent {
            phase: TracePhase::End,
            name: Arc::clone(name),
            worker,
            task,
            node,
            ts_nanos,
            batches: 0,
        }
    }
}

/// A bounded per-worker event buffer.
///
/// Events are appended in chronological order (a worker executes its
/// tasks sequentially, so replaying its tasks in claim order yields a
/// sorted, properly nested stream). Appends are all-or-nothing per
/// slice group: when the remaining capacity cannot hold a whole
/// group, the group is dropped and counted, never truncated — the
/// stream stays balanced.
#[derive(Debug)]
pub struct TraceSink {
    worker: u32,
    capacity: usize,
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl TraceSink {
    /// An empty sink for `worker` holding at most `capacity` events.
    pub fn new(worker: u32, capacity: usize) -> TraceSink {
        TraceSink {
            worker,
            capacity,
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// The worker this sink records.
    pub fn worker(&self) -> u32 {
        self.worker
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Slice groups dropped because the sink was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends a balanced group of events (one task's slices) — all
    /// or nothing. Returns `false` when the group was dropped.
    pub fn record_group(&mut self, group: &[TraceEvent]) -> bool {
        if self.events.len() + group.len() > self.capacity {
            self.dropped += 1;
            return false;
        }
        self.events.extend_from_slice(group);
        true
    }
}

/// A merged run timeline: every worker's events plus drop accounting.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All events, grouped by worker in absorb order; within one
    /// worker, chronological.
    pub events: Vec<TraceEvent>,
    /// Total slice groups dropped across all absorbed sinks.
    pub dropped: u64,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Moves a worker's sink into the trace.
    pub fn absorb(&mut self, sink: TraceSink) {
        self.dropped += sink.dropped;
        self.events.extend(sink.events);
    }

    /// Number of complete slices (begin events; equals end events
    /// when the trace is balanced).
    pub fn slice_count(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| e.phase == TracePhase::Begin)
            .count() as u64
    }

    /// Whether every worker's stream opens and closes slices in
    /// matched, properly nested pairs.
    pub fn balanced(&self) -> bool {
        let mut workers: Vec<u32> = self.events.iter().map(|e| e.worker).collect();
        workers.sort_unstable();
        workers.dedup();
        workers.iter().all(|&w| {
            let mut stack: Vec<&Arc<str>> = Vec::new();
            for e in self.events.iter().filter(|e| e.worker == w) {
                match e.phase {
                    TracePhase::Begin => stack.push(&e.name),
                    TracePhase::End => match stack.pop() {
                        Some(open) => {
                            if **open != *e.name {
                                return false;
                            }
                        }
                        None => return false,
                    },
                }
            }
            stack.is_empty()
        })
    }

    /// Whether timestamps never run backwards within a worker's
    /// stream (they cannot, if sinks were filled in replay order).
    pub fn timestamps_monotonic(&self) -> bool {
        let mut last: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for e in &self.events {
            let prev = last.entry(e.worker).or_insert(0);
            if e.ts_nanos < *prev {
                return false;
            }
            *prev = e.ts_nanos;
        }
        true
    }

    /// Sum of the `batches` arguments across begin events — the
    /// kernel batches the timeline accounts for.
    pub fn batches_total(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| e.phase == TracePhase::Begin)
            .map(|e| e.batches)
            .sum()
    }

    /// Serializes the timeline as Chrome `trace_event` JSON (the
    /// "JSON object format": a `traceEvents` array of `B`/`E` events
    /// plus thread-name metadata), loadable in Perfetto and
    /// `chrome://tracing`. Timestamps are microseconds with
    /// nanosecond precision; worker ids become thread tracks.
    pub fn to_chrome_json(&self) -> String {
        let mut workers: Vec<u32> = self.events.iter().map(|e| e.worker).collect();
        workers.sort_unstable();
        workers.dedup();

        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for &w in &workers {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{w},\
                 \"args\":{{\"name\":\"worker {w}\"}}}}"
            ));
        }
        // Emit per worker so each track's B/E stream stays in its
        // recorded (chronological, properly nested) order.
        for &w in &workers {
            for e in self.events.iter().filter(|e| e.worker == w) {
                out.push(',');
                let ts_us = e.ts_nanos as f64 / 1000.0;
                match e.phase {
                    TracePhase::Begin => {
                        out.push_str("{\"name\":");
                        push_str_literal(&mut out, &e.name);
                        out.push_str(&format!(
                            ",\"ph\":\"B\",\"pid\":0,\"tid\":{},\"ts\":{ts_us:.3},\
                             \"args\":{{\"task\":{},\"node\":{},\"batches\":{}}}}}",
                            e.worker, e.task, e.node, e.batches
                        ));
                    }
                    TracePhase::End => {
                        out.push_str("{\"name\":");
                        push_str_literal(&mut out, &e.name);
                        out.push_str(&format!(
                            ",\"ph\":\"E\",\"pid\":0,\"tid\":{},\"ts\":{ts_us:.3}}}",
                            e.worker
                        ));
                    }
                }
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    fn slice(sink: &mut TraceSink, name: &Arc<str>, task: u32, node: u32, t0: u64, t1: u64) {
        let w = sink.worker();
        sink.record_group(&[
            TraceEvent::begin(name, w, task, node, t0, 0),
            TraceEvent::end(name, w, task, node, t1),
        ]);
    }

    #[test]
    fn slices_balance_and_count() {
        let name = label("match/engine/identity/key-eq");
        let mut sink = TraceSink::new(1, 16);
        slice(&mut sink, &name, 0, 4, 10, 20);
        slice(&mut sink, &name, 1, 4, 25, 40);
        let mut trace = Trace::new();
        trace.absorb(sink);
        assert_eq!(trace.slice_count(), 2);
        assert!(trace.balanced());
        assert!(trace.timestamps_monotonic());
    }

    #[test]
    fn nested_groups_stay_nested() {
        let task = label("match/engine/residual");
        let tile = label("kernel/tile");
        let mut sink = TraceSink::new(0, 16);
        sink.record_group(&[
            TraceEvent::begin(&task, 0, 7, 5, 100, 0),
            TraceEvent::begin(&tile, 0, 7, 5, 110, 3),
            TraceEvent::end(&tile, 0, 7, 5, 150),
            TraceEvent::end(&task, 0, 7, 5, 160),
        ]);
        let mut trace = Trace::new();
        trace.absorb(sink);
        assert!(trace.balanced());
        assert_eq!(trace.slice_count(), 2);
        assert_eq!(trace.batches_total(), 3);
    }

    #[test]
    fn full_sink_drops_whole_groups() {
        let name = label("n");
        let mut sink = TraceSink::new(0, 3);
        assert!(sink.record_group(&[
            TraceEvent::begin(&name, 0, 0, 0, 0, 0),
            TraceEvent::end(&name, 0, 0, 0, 1),
        ]));
        // Only one slot left: a two-event group must be refused whole.
        assert!(!sink.record_group(&[
            TraceEvent::begin(&name, 0, 1, 0, 2, 0),
            TraceEvent::end(&name, 0, 1, 0, 3),
        ]));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 1);
        let mut trace = Trace::new();
        trace.absorb(sink);
        assert!(trace.balanced(), "drops never split a begin/end pair");
        assert_eq!(trace.dropped, 1);
    }

    #[test]
    fn unbalanced_streams_are_detected() {
        let name = label("n");
        let mut trace = Trace::new();
        trace.events.push(TraceEvent::begin(&name, 0, 0, 0, 0, 0));
        assert!(!trace.balanced(), "dangling begin");
        trace.events.clear();
        trace.events.push(TraceEvent::end(&name, 0, 0, 0, 0));
        assert!(!trace.balanced(), "end without begin");
        let other = label("m");
        trace.events.clear();
        trace.events.push(TraceEvent::begin(&name, 0, 0, 0, 0, 0));
        trace.events.push(TraceEvent::end(&other, 0, 0, 0, 1));
        assert!(!trace.balanced(), "mismatched names");
    }

    #[test]
    fn chrome_json_shape() {
        let name = label("match/engine/identity/\"quoted\"");
        let mut sink = TraceSink::new(2, 8);
        slice(&mut sink, &name, 3, 4, 1500, 2500);
        let mut trace = Trace::new();
        trace.absorb(sink);
        let json = trace.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""), "thread metadata present");
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"tid\":2"));
        assert!(json.contains("\"ts\":1.500"), "ns become µs");
        assert!(json.contains("\\\"quoted\\\""), "names are escaped");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "braces balance"
        );
    }

    #[test]
    fn empty_trace_serializes() {
        let json = Trace::new().to_chrome_json();
        assert_eq!(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    }
}
