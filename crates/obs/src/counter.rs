//! Thread-safe monotone counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone event counter.
///
/// All operations use [`Ordering::Relaxed`]: counts are statistics,
/// not synchronization, and relaxed atomics compile to plain locked
/// adds — cheap enough to sit near (though preferably not inside)
/// the pair loop. Hot paths should tally into a local `u64` and
/// [`Counter::add`] once per task.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` to the count.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_at_zero_and_accumulates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn concurrent_adds_are_not_lost() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}
