//! Rule precompilation: positional evaluators and block plans.
//!
//! [`crate::rulebase::RuleBase::decide`] resolves attribute names
//! against schemas on **every** predicate evaluation — fine for one
//! pair, ruinous inside an `|R|·|S|` loop. A [`CompiledRuleBase`]
//! does that work once per run:
//!
//! * attribute names become column positions in the two concrete
//!   schemas ([`CompiledOperand::R`]/[`CompiledOperand::S`]);
//! * the two orientations a symmetric rule must be checked in
//!   (`(e₁,e₂)` and `(e₂,e₁)`) become two compiled rules, deduplicated
//!   when the rule is syntactically symmetric;
//! * predicates over attributes missing from a schema make the whole
//!   (three-valued) conjunction unknowable — such compiled rules are
//!   **dead** and dropped;
//! * constant-only predicates are folded at compile time;
//! * rules whose shape admits index-based candidate generation expose
//!   it via [`CompiledRule::identity_shape`] /
//!   [`CompiledRule::distinct_shape`], which the blocked engine in
//!   `eid-core` turns into hash-index probes instead of pairwise
//!   scans.

use eid_relational::{Schema, Tuple, Value};

use crate::pred::{CmpOp, Operand, Predicate, Side};
use crate::rulebase::RuleBase;

/// A predicate operand resolved against the two concrete schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledOperand {
    /// Column `pos` of the `R`-side tuple.
    R(usize),
    /// Column `pos` of the `S`-side tuple.
    S(usize),
    /// A constant.
    Const(Value),
}

impl CompiledOperand {
    fn resolve<'a>(&'a self, tr: &'a Tuple, ts: &'a Tuple) -> Option<&'a Value> {
        let v = match self {
            CompiledOperand::R(p) => tr.get(*p),
            CompiledOperand::S(p) => ts.get(*p),
            CompiledOperand::Const(v) => return Some(v),
        };
        (!v.is_null()).then_some(v)
    }

    /// A stable sort key for canonicalization.
    fn rank(&self) -> (u8, usize, Option<&Value>) {
        match self {
            CompiledOperand::R(p) => (0, *p, None),
            CompiledOperand::S(p) => (1, *p, None),
            CompiledOperand::Const(v) => (2, 0, Some(v)),
        }
    }
}

/// One predicate with both operands resolved to column positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledPredicate {
    /// Left operand.
    pub lhs: CompiledOperand,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: CompiledOperand,
}

impl CompiledPredicate {
    /// Three-valued evaluation over a positional tuple pair.
    #[inline]
    pub fn eval(&self, tr: &Tuple, ts: &Tuple) -> Option<bool> {
        let l = self.lhs.resolve(tr, ts)?;
        let r = self.rhs.resolve(tr, ts)?;
        let ord = l.compare(r)?;
        Some(self.op.test(ord))
    }

    /// Rewrites `>`/`≥` to `<`/`≤` (operand swap) and orders the
    /// operands of symmetric operators canonically, so syntactically
    /// mirrored predicates compare equal.
    fn canonical(&self) -> CompiledPredicate {
        let (mut lhs, mut op, mut rhs) = (self.lhs.clone(), self.op, self.rhs.clone());
        match op {
            CmpOp::Gt => {
                std::mem::swap(&mut lhs, &mut rhs);
                op = CmpOp::Lt;
            }
            CmpOp::Ge => {
                std::mem::swap(&mut lhs, &mut rhs);
                op = CmpOp::Le;
            }
            CmpOp::Eq | CmpOp::Ne => {
                if lhs.rank() > rhs.rank() {
                    std::mem::swap(&mut lhs, &mut rhs);
                }
            }
            CmpOp::Lt | CmpOp::Le => {}
        }
        CompiledPredicate { lhs, op, rhs }
    }
}

/// A rule compiled for one orientation over `(R-tuple, S-tuple)`
/// pairs: a conjunction of positional predicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledRule {
    /// The source rule's name (both orientations share it).
    pub name: String,
    predicates: Vec<CompiledPredicate>,
}

impl CompiledRule {
    /// The compiled predicate conjunction.
    pub fn predicates(&self) -> &[CompiledPredicate] {
        &self.predicates
    }

    /// Three-valued conjunction: `Some(false)` short-circuits,
    /// any unknown predicate makes the conjunction unknown.
    pub fn eval(&self, tr: &Tuple, ts: &Tuple) -> Option<bool> {
        let mut all_true = true;
        for p in &self.predicates {
            match p.eval(tr, ts) {
                Some(true) => {}
                Some(false) => return Some(false),
                None => all_true = false,
            }
        }
        all_true.then_some(true)
    }

    /// Whether the rule fires (conjunction definitely true).
    #[inline]
    pub fn fires(&self, tr: &Tuple, ts: &Tuple) -> bool {
        self.eval(tr, ts) == Some(true)
    }

    fn canonical(&self) -> Vec<CompiledPredicate> {
        let mut c: Vec<CompiledPredicate> = self
            .predicates
            .iter()
            .map(CompiledPredicate::canonical)
            .collect();
        c.sort_by(|a, b| {
            (a.lhs.rank(), a.op as u8, a.rhs.rank()).cmp(&(b.lhs.rank(), b.op as u8, b.rhs.rank()))
        });
        c
    }

    /// The equi-join shape, when every predicate is an equality
    /// literal or a cross-relation attribute equality. Pairs
    /// surviving the shape's filters+join *candidate* generation
    /// still get a final [`CompiledRule::fires`] check (cheap, and it
    /// keeps index equality and three-valued comparison semantics
    /// from having to coincide exactly).
    pub fn identity_shape(&self) -> Option<IdentityShape> {
        let mut shape = IdentityShape::default();
        for p in &self.predicates {
            match (&p.lhs, p.op, &p.rhs) {
                (CompiledOperand::R(pos), CmpOp::Eq, CompiledOperand::Const(v))
                | (CompiledOperand::Const(v), CmpOp::Eq, CompiledOperand::R(pos)) => {
                    shape.r_lits.push((*pos, v.clone()));
                }
                (CompiledOperand::S(pos), CmpOp::Eq, CompiledOperand::Const(v))
                | (CompiledOperand::Const(v), CmpOp::Eq, CompiledOperand::S(pos)) => {
                    shape.s_lits.push((*pos, v.clone()));
                }
                (CompiledOperand::R(rp), CmpOp::Eq, CompiledOperand::S(sp))
                | (CompiledOperand::S(sp), CmpOp::Eq, CompiledOperand::R(rp)) => {
                    shape.join.push((*rp, *sp));
                }
                _ => return None,
            }
        }
        Some(shape)
    }

    /// The ILFD-induced refutation shape: equality literals on both
    /// relations plus exactly one `≠`-constant literal. The blocked
    /// engine enumerates only tuples that disagree on that column.
    pub fn distinct_shape(&self) -> Option<DistinctShape> {
        let mut r_lits = Vec::new();
        let mut s_lits = Vec::new();
        let mut neq: Option<(NeqSide, usize, Value)> = None;
        for p in &self.predicates {
            match (&p.lhs, p.op, &p.rhs) {
                (CompiledOperand::R(pos), CmpOp::Eq, CompiledOperand::Const(v))
                | (CompiledOperand::Const(v), CmpOp::Eq, CompiledOperand::R(pos)) => {
                    r_lits.push((*pos, v.clone()));
                }
                (CompiledOperand::S(pos), CmpOp::Eq, CompiledOperand::Const(v))
                | (CompiledOperand::Const(v), CmpOp::Eq, CompiledOperand::S(pos)) => {
                    s_lits.push((*pos, v.clone()));
                }
                (CompiledOperand::R(pos), CmpOp::Ne, CompiledOperand::Const(v))
                | (CompiledOperand::Const(v), CmpOp::Ne, CompiledOperand::R(pos)) => {
                    if neq.is_some() {
                        return None;
                    }
                    neq = Some((NeqSide::R, *pos, v.clone()));
                }
                (CompiledOperand::S(pos), CmpOp::Ne, CompiledOperand::Const(v))
                | (CompiledOperand::Const(v), CmpOp::Ne, CompiledOperand::S(pos)) => {
                    if neq.is_some() {
                        return None;
                    }
                    neq = Some((NeqSide::S, *pos, v.clone()));
                }
                _ => return None,
            }
        }
        let neq = neq?;
        // The opposite relation needs at least one literal to probe.
        let opposite_lits = match neq.0 {
            NeqSide::R => &s_lits,
            NeqSide::S => &r_lits,
        };
        if opposite_lits.is_empty() {
            return None;
        }
        Some(DistinctShape {
            r_lits,
            s_lits,
            neq,
        })
    }
}

/// Which relation carries the `≠`-constant literal of a
/// [`DistinctShape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeqSide {
    /// The `≠` literal reads the `R`-side tuple.
    R,
    /// The `≠` literal reads the `S`-side tuple.
    S,
}

/// An indexable identity-rule shape: constant filters on each side
/// plus cross-relation join columns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdentityShape {
    /// `(column, value)` equality literals on `R`-side tuples.
    pub r_lits: Vec<(usize, Value)>,
    /// `(column, value)` equality literals on `S`-side tuples.
    pub s_lits: Vec<(usize, Value)>,
    /// `(r_column, s_column)` cross-relation equality pairs.
    pub join: Vec<(usize, usize)>,
}

/// An indexable distinctness-rule shape (the Proposition-1 ILFD dual).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistinctShape {
    /// `(column, value)` equality literals on `R`-side tuples.
    pub r_lits: Vec<(usize, Value)>,
    /// `(column, value)` equality literals on `S`-side tuples.
    pub s_lits: Vec<(usize, Value)>,
    /// The single `≠`-constant literal: which relation, column, value.
    pub neq: (NeqSide, usize, Value),
}

/// What one [`CompiledRuleBase::compile`] pass did — the compile-time
/// half of the engine's observability report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Source rules handed to the compiler (identity + distinctness).
    pub source_rules: usize,
    /// Compiled orientations that survived (length of the output
    /// rule lists).
    pub compiled: usize,
    /// Reversed orientations dropped because the rule is
    /// syntactically symmetric.
    pub symmetric_folded: usize,
    /// Orientations dropped as dead (a predicate references an
    /// attribute missing from its schema, or a constant fold failed).
    pub dead_orientations: usize,
}

/// A rule base compiled against one concrete schema pair.
#[derive(Debug, Clone, Default)]
pub struct CompiledRuleBase {
    /// Compiled identity rules (both orientations, deduplicated,
    /// dead rules dropped).
    pub identity: Vec<CompiledRule>,
    /// Compiled distinctness rules, likewise.
    pub distinctness: Vec<CompiledRule>,
    /// What compilation did (folds, drops) — for the match report.
    pub stats: CompileStats,
}

impl CompiledRuleBase {
    /// Compiles `rb` against the schema pair. For each source rule
    /// both orientations are compiled — `fires(s1,t1,s2,t2) ||
    /// fires(s2,t2,s1,t1)` becomes two positional rules — and the
    /// reversed one is dropped when it canonicalizes identically
    /// (symmetric rules like extended-key equivalence).
    pub fn compile(rb: &RuleBase, schema_r: &Schema, schema_s: &Schema) -> CompiledRuleBase {
        let mut out = CompiledRuleBase::default();
        for rule in rb.identity_rules() {
            compile_orientations(
                &rule.name,
                rule.predicates(),
                schema_r,
                schema_s,
                &mut out.identity,
                &mut out.stats,
            );
        }
        for rule in rb.distinctness_rules() {
            compile_orientations(
                &rule.name,
                rule.predicates(),
                schema_r,
                schema_s,
                &mut out.distinctness,
                &mut out.stats,
            );
        }
        out.stats.compiled = out.identity.len() + out.distinctness.len();
        out
    }
}

/// Compiles one predicate for one orientation; `None` when an operand
/// references an attribute absent from its schema (the predicate — and
/// with it the whole rule — can then never be definitely true).
fn compile_predicate(
    p: &Predicate,
    schema_r: &Schema,
    schema_s: &Schema,
    swapped: bool,
) -> Option<CompiledPredicate> {
    let compile_operand = |o: &Operand| -> Option<CompiledOperand> {
        match o {
            Operand::Const(v) => Some(CompiledOperand::Const(v.clone())),
            Operand::Attr { side, attr } => {
                let on_r = (*side == Side::E1) != swapped;
                if on_r {
                    schema_r.try_position(attr).map(CompiledOperand::R)
                } else {
                    schema_s.try_position(attr).map(CompiledOperand::S)
                }
            }
        }
    };
    Some(CompiledPredicate {
        lhs: compile_operand(&p.lhs)?,
        op: p.op,
        rhs: compile_operand(&p.rhs)?,
    })
}

/// Compiles one source rule for one orientation; `None` when the rule
/// is dead (a predicate is unknowable or a constant fold fails).
fn compile_rule(
    name: &str,
    predicates: &[Predicate],
    schema_r: &Schema,
    schema_s: &Schema,
    swapped: bool,
) -> Option<CompiledRule> {
    let mut compiled = Vec::with_capacity(predicates.len());
    for p in predicates {
        let cp = compile_predicate(p, schema_r, schema_s, swapped)?;
        if let (CompiledOperand::Const(l), CompiledOperand::Const(r)) = (&cp.lhs, &cp.rhs) {
            // Constant fold: definitely-true predicates vanish,
            // anything else kills the conjunction.
            match l.compare(r) {
                Some(ord) if cp.op.test(ord) => continue,
                _ => return None,
            }
        }
        compiled.push(cp);
    }
    Some(CompiledRule {
        name: name.to_string(),
        predicates: compiled,
    })
}

fn compile_orientations(
    name: &str,
    predicates: &[Predicate],
    schema_r: &Schema,
    schema_s: &Schema,
    out: &mut Vec<CompiledRule>,
    stats: &mut CompileStats,
) {
    stats.source_rules += 1;
    let forward = compile_rule(name, predicates, schema_r, schema_s, false);
    let reversed = compile_rule(name, predicates, schema_r, schema_s, true);
    match (forward, reversed) {
        (Some(f), Some(r)) => {
            let symmetric = f.canonical() == r.canonical();
            out.push(f);
            if symmetric {
                stats.symmetric_folded += 1;
            } else {
                out.push(r);
            }
        }
        (Some(f), None) => {
            stats.dead_orientations += 1;
            out.push(f);
        }
        (None, Some(r)) => {
            stats.dead_orientations += 1;
            out.push(r);
        }
        (None, None) => stats.dead_orientations += 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distinctness::DistinctnessRule;
    use crate::identity::IdentityRule;
    use eid_relational::Schema;

    fn schemas() -> (std::sync::Arc<Schema>, std::sync::Arc<Schema>) {
        (
            Schema::of_strs("R", &["name", "cuisine", "street"], &["name"]).unwrap(),
            Schema::of_strs("S", &["name", "cuisine", "city"], &["name"]).unwrap(),
        )
    }

    fn rb() -> RuleBase {
        let mut rb = RuleBase::new();
        rb.add_identity(
            IdentityRule::new(
                "key-eq",
                vec![Predicate::cross_eq("name"), Predicate::cross_eq("cuisine")],
            )
            .unwrap(),
        );
        rb.add_distinctness(
            DistinctnessRule::new(
                "r3",
                vec![
                    Predicate::attr_const(Side::E1, "cuisine", CmpOp::Eq, "indian"),
                    Predicate::attr_const(Side::E2, "cuisine", CmpOp::Ne, "indian"),
                ],
            )
            .unwrap(),
        );
        rb
    }

    #[test]
    fn compiled_agrees_with_interpreted() {
        let (s1, s2) = schemas();
        let c = CompiledRuleBase::compile(&rb(), &s1, &s2);
        let pairs = [
            (
                Tuple::of_strs(&["a", "indian", "x"]),
                Tuple::of_strs(&["a", "indian", "y"]),
            ),
            (
                Tuple::of_strs(&["a", "indian", "x"]),
                Tuple::of_strs(&["a", "greek", "y"]),
            ),
            (
                Tuple::of_strs(&["a", "greek", "x"]),
                Tuple::of_strs(&["b", "indian", "y"]),
            ),
        ];
        let rb = rb();
        for (tr, ts) in &pairs {
            assert_eq!(
                c.identity.iter().any(|r| r.fires(tr, ts)),
                rb.fires_identity(&s1, tr, &s2, ts),
                "identity mismatch on {tr:?} {ts:?}"
            );
            assert_eq!(
                c.distinctness.iter().any(|r| r.fires(tr, ts)),
                rb.fires_distinctness(&s1, tr, &s2, ts),
                "distinctness mismatch on {tr:?} {ts:?}"
            );
        }
    }

    #[test]
    fn symmetric_rule_compiles_once() {
        let (s1, s2) = schemas();
        let c = CompiledRuleBase::compile(&rb(), &s1, &s2);
        // Extended-key equivalence is symmetric: one orientation.
        assert_eq!(c.identity.len(), 1);
        // The r3 rule is directional: both orientations survive.
        assert_eq!(c.distinctness.len(), 2);
    }

    #[test]
    fn asymmetric_orientation_covers_swapped_pairs() {
        let (s1, s2) = schemas();
        let c = CompiledRuleBase::compile(&rb(), &s1, &s2);
        // e1=indian ∧ e2≠indian fires in the swapped orientation when
        // the *S* tuple is the Indian one.
        let tr = Tuple::of_strs(&["a", "greek", "x"]);
        let ts = Tuple::of_strs(&["b", "indian", "y"]);
        assert!(c.distinctness.iter().any(|r| r.fires(&tr, &ts)));
    }

    #[test]
    fn missing_attribute_kills_the_orientation() {
        let (s1, s2) = schemas();
        let mut base = RuleBase::new();
        // street exists only in R: E1-orientation compiles, the
        // swapped one (street on S) is dead.
        base.add_distinctness(
            DistinctnessRule::new(
                "street-rule",
                vec![
                    Predicate::attr_const(Side::E1, "street", CmpOp::Eq, "x"),
                    Predicate::attr_const(Side::E2, "cuisine", CmpOp::Ne, "greek"),
                ],
            )
            .unwrap(),
        );
        let c = CompiledRuleBase::compile(&base, &s1, &s2);
        assert_eq!(c.distinctness.len(), 1);
    }

    #[test]
    fn shapes_extracted() {
        let (s1, s2) = schemas();
        let c = CompiledRuleBase::compile(&rb(), &s1, &s2);
        let id = c.identity[0].identity_shape().unwrap();
        assert_eq!(id.join.len(), 2);
        assert!(id.r_lits.is_empty() && id.s_lits.is_empty());
        let d = c.distinctness[0].distinct_shape().unwrap();
        assert_eq!(d.neq.2, Value::str("indian"));
    }

    #[test]
    fn non_indexable_rule_has_no_shape() {
        let (s1, s2) = schemas();
        let mut base = RuleBase::new();
        base.add_distinctness(
            DistinctnessRule::new(
                "ordered",
                vec![Predicate::new(
                    Operand::attr(Side::E1, "name"),
                    CmpOp::Lt,
                    Operand::attr(Side::E2, "name"),
                )],
            )
            .unwrap(),
        );
        let c = CompiledRuleBase::compile(&base, &s1, &s2);
        assert!(c.distinctness[0].identity_shape().is_none());
        assert!(c.distinctness[0].distinct_shape().is_none());
    }

    #[test]
    fn compile_stats_account_for_folds_and_drops() {
        let (s1, s2) = schemas();
        // rb(): key-eq is symmetric (folded), r3 keeps both
        // orientations — 2 source rules, 3 compiled, 1 folded, 0 dead.
        let c = CompiledRuleBase::compile(&rb(), &s1, &s2);
        assert_eq!(c.stats.source_rules, 2);
        assert_eq!(c.stats.compiled, 3);
        assert_eq!(c.stats.symmetric_folded, 1);
        assert_eq!(c.stats.dead_orientations, 0);

        // A street rule (street only in R) loses its swapped
        // orientation as dead.
        let mut base = RuleBase::new();
        base.add_distinctness(
            DistinctnessRule::new(
                "street-rule",
                vec![
                    Predicate::attr_const(Side::E1, "street", CmpOp::Eq, "x"),
                    Predicate::attr_const(Side::E2, "cuisine", CmpOp::Ne, "greek"),
                ],
            )
            .unwrap(),
        );
        let c = CompiledRuleBase::compile(&base, &s1, &s2);
        assert_eq!(c.stats.source_rules, 1);
        assert_eq!(c.stats.compiled, 1);
        assert_eq!(c.stats.dead_orientations, 1);
        assert_eq!(c.stats.symmetric_folded, 0);
    }

    #[test]
    fn null_values_keep_three_valued_semantics() {
        let (s1, s2) = schemas();
        let c = CompiledRuleBase::compile(&rb(), &s1, &s2);
        let tr = Tuple::new(vec![Value::str("a"), Value::Null, Value::str("x")]);
        let ts = Tuple::of_strs(&["a", "indian", "y"]);
        assert!(!c.identity.iter().any(|r| r.fires(&tr, &ts)));
        assert!(!c.distinctness.iter().any(|r| r.fires(&tr, &ts)));
    }
}
