//! Rule bases: identity + distinctness rules with three-valued
//! pairwise decisions (§3.2–§3.3).
//!
//! The entity-identification process "can be expressed as a
//! three-valued function that takes a pair of tuples and returns
//! `true` only if they refer to the same real-world entity, `false`
//! only if they do not, and `unknown` otherwise." [`RuleBase::decide`]
//! is that function; it also detects the pathological case where an
//! identity rule and a distinctness rule both fire (the supplied
//! knowledge is inconsistent with itself).

use std::fmt;

use serde::{Deserialize, Serialize};

use eid_ilfd::IlfdSet;
use eid_relational::{Schema, Tuple};

use crate::distinctness::DistinctnessRule;
use crate::identity::IdentityRule;

/// The three-valued matching decision for a tuple pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchDecision {
    /// Some identity rule fired: the tuples model the same entity.
    Matching,
    /// Some distinctness rule fired: the tuples model distinct entities.
    NotMatching,
    /// Neither kind of rule fired.
    Undetermined,
}

impl fmt::Display for MatchDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MatchDecision::Matching => "matching",
            MatchDecision::NotMatching => "not matching",
            MatchDecision::Undetermined => "undetermined",
        })
    }
}

/// Both an identity rule and a distinctness rule fired on the same
/// pair — the rule base is inconsistent for this pair of tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InconsistentRules {
    /// The identity rule that fired.
    pub identity: String,
    /// The distinctness rule that fired.
    pub distinctness: String,
}

impl fmt::Display for InconsistentRules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "identity rule `{}` and distinctness rule `{}` both fired on the same pair",
            self.identity, self.distinctness
        )
    }
}

impl std::error::Error for InconsistentRules {}

/// A collection of identity and distinctness rules asserted by the
/// DBA (or derived — every ILFD contributes a distinctness rule via
/// Proposition 1).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RuleBase {
    identity: Vec<IdentityRule>,
    distinctness: Vec<DistinctnessRule>,
}

impl RuleBase {
    /// An empty rule base (every pair is undetermined).
    pub fn new() -> Self {
        RuleBase::default()
    }

    /// Adds an identity rule.
    pub fn add_identity(&mut self, rule: IdentityRule) -> &mut Self {
        self.identity.push(rule);
        self
    }

    /// Adds a distinctness rule.
    pub fn add_distinctness(&mut self, rule: DistinctnessRule) -> &mut Self {
        self.distinctness.push(rule);
        self
    }

    /// Adds the distinctness rules corresponding to every ILFD in
    /// `f` (Proposition 1).
    pub fn add_ilfd_distinctness(&mut self, f: &IlfdSet) -> &mut Self {
        for ilfd in f.iter() {
            for rule in DistinctnessRule::from_ilfd(ilfd) {
                self.distinctness.push(rule);
            }
        }
        self
    }

    /// The identity rules.
    pub fn identity_rules(&self) -> &[IdentityRule] {
        &self.identity
    }

    /// The distinctness rules.
    pub fn distinctness_rules(&self) -> &[DistinctnessRule] {
        &self.distinctness
    }

    /// The three-valued decision for one tuple pair, or an
    /// [`InconsistentRules`] error when both kinds of rule fire.
    ///
    /// Because `≡` and `≢` are symmetric relations, every rule is
    /// evaluated in **both orientations** — `(e₁, e₂)` and
    /// `(e₂, e₁)`. This matters for rules whose syntax is
    /// directional, e.g. the Proposition-1 distinctness rule
    /// `(e₁.speciality = mughalai) ∧ (e₂.cuisine ≠ indian)`, which
    /// must also refute pairs where the *second* tuple is the
    /// Mughalai restaurant.
    pub fn decide(
        &self,
        s1: &Schema,
        t1: &Tuple,
        s2: &Schema,
        t2: &Tuple,
    ) -> Result<MatchDecision, InconsistentRules> {
        let fired_identity = self
            .identity
            .iter()
            .find(|r| r.fires(s1, t1, s2, t2) || r.fires(s2, t2, s1, t1));
        let fired_distinct = self
            .distinctness
            .iter()
            .find(|r| r.fires(s1, t1, s2, t2) || r.fires(s2, t2, s1, t1));
        match (fired_identity, fired_distinct) {
            (Some(i), Some(d)) => Err(InconsistentRules {
                identity: i.name.clone(),
                distinctness: d.name.clone(),
            }),
            (Some(_), None) => Ok(MatchDecision::Matching),
            (None, Some(_)) => Ok(MatchDecision::NotMatching),
            (None, None) => Ok(MatchDecision::Undetermined),
        }
    }

    /// Whether any identity rule fires on the pair (in either
    /// orientation). Unlike [`RuleBase::decide`], does not consult
    /// distinctness rules — used by engines that phase the two kinds
    /// of rule separately and reconcile conflicts afterwards.
    pub fn fires_identity(&self, s1: &Schema, t1: &Tuple, s2: &Schema, t2: &Tuple) -> bool {
        self.identity
            .iter()
            .any(|r| r.fires(s1, t1, s2, t2) || r.fires(s2, t2, s1, t1))
    }

    /// Whether any distinctness rule fires on the pair (in either
    /// orientation). See [`RuleBase::fires_identity`].
    pub fn fires_distinctness(&self, s1: &Schema, t1: &Tuple, s2: &Schema, t2: &Tuple) -> bool {
        self.distinctness
            .iter()
            .any(|r| r.fires(s1, t1, s2, t2) || r.fires(s2, t2, s1, t1))
    }

    /// Total number of rules.
    pub fn len(&self) -> usize {
        self.identity.len() + self.distinctness.len()
    }

    /// Whether the rule base has no rules.
    pub fn is_empty(&self) -> bool {
        self.identity.is_empty() && self.distinctness.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::{CmpOp, Predicate, Side};
    use eid_ilfd::Ilfd;
    use eid_relational::Schema;

    fn schemas() -> (std::sync::Arc<Schema>, std::sync::Arc<Schema>) {
        (
            Schema::of_strs("R", &["name", "speciality"], &["name"]).unwrap(),
            Schema::of_strs("S", &["name", "cuisine"], &["name"]).unwrap(),
        )
    }

    fn base() -> RuleBase {
        let mut rb = RuleBase::new();
        rb.add_identity(IdentityRule::new("name-eq", vec![Predicate::cross_eq("name")]).unwrap());
        rb.add_distinctness(
            DistinctnessRule::new(
                "r3",
                vec![
                    Predicate::attr_const(Side::E1, "speciality", CmpOp::Eq, "mughalai"),
                    Predicate::attr_const(Side::E2, "cuisine", CmpOp::Ne, "indian"),
                ],
            )
            .unwrap(),
        );
        rb
    }

    #[test]
    fn decides_matching() {
        let (s1, s2) = schemas();
        let d = base()
            .decide(
                &s1,
                &Tuple::of_strs(&["tc", "hunan"]),
                &s2,
                &Tuple::of_strs(&["tc", "chinese"]),
            )
            .unwrap();
        assert_eq!(d, MatchDecision::Matching);
    }

    #[test]
    fn decides_not_matching() {
        let (s1, s2) = schemas();
        let d = base()
            .decide(
                &s1,
                &Tuple::of_strs(&["a", "mughalai"]),
                &s2,
                &Tuple::of_strs(&["b", "greek"]),
            )
            .unwrap();
        assert_eq!(d, MatchDecision::NotMatching);
    }

    #[test]
    fn decides_undetermined() {
        let (s1, s2) = schemas();
        let d = base()
            .decide(
                &s1,
                &Tuple::of_strs(&["a", "hunan"]),
                &s2,
                &Tuple::of_strs(&["b", "chinese"]),
            )
            .unwrap();
        assert_eq!(d, MatchDecision::Undetermined);
    }

    #[test]
    fn detects_inconsistent_rules() {
        let (s1, s2) = schemas();
        // Same name but e1 mughalai / e2 non-indian: both rules fire.
        let err = base()
            .decide(
                &s1,
                &Tuple::of_strs(&["x", "mughalai"]),
                &s2,
                &Tuple::of_strs(&["x", "greek"]),
            )
            .unwrap_err();
        assert_eq!(err.identity, "name-eq");
        assert_eq!(err.distinctness, "r3");
    }

    #[test]
    fn empty_rulebase_is_all_undetermined() {
        let (s1, s2) = schemas();
        let rb = RuleBase::new();
        assert!(rb.is_empty());
        let d = rb
            .decide(
                &s1,
                &Tuple::of_strs(&["a", "b"]),
                &s2,
                &Tuple::of_strs(&["a", "c"]),
            )
            .unwrap();
        assert_eq!(d, MatchDecision::Undetermined);
    }

    #[test]
    fn ilfd_distinctness_ingestion() {
        let (s1, s2) = schemas();
        let f: eid_ilfd::IlfdSet = vec![Ilfd::of_strs(
            &[("speciality", "mughalai")],
            &[("cuisine", "indian")],
        )]
        .into_iter()
        .collect();
        let mut rb = RuleBase::new();
        rb.add_ilfd_distinctness(&f);
        assert_eq!(rb.distinctness_rules().len(), 1);
        let d = rb
            .decide(
                &s1,
                &Tuple::of_strs(&["a", "mughalai"]),
                &s2,
                &Tuple::of_strs(&["b", "chinese"]),
            )
            .unwrap();
        assert_eq!(d, MatchDecision::NotMatching);
    }

    #[test]
    fn decision_display() {
        assert_eq!(MatchDecision::Matching.to_string(), "matching");
        assert_eq!(MatchDecision::NotMatching.to_string(), "not matching");
        assert_eq!(MatchDecision::Undetermined.to_string(), "undetermined");
    }
}
