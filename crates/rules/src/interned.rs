//! Interned rule evaluation: compiled rules lowered into symbol-id
//! space.
//!
//! A [`CompiledRule`] still compares [`eid_relational::Value`]s —
//! each `Eq` test on a string column chases an `Arc<str>` and compares
//! bytes. An [`InternedRule`] is the same positional conjunction with
//! every constant interned and every attribute read answered from a
//! columnar [`Columns`] view, so the hot predicates (`=`, `≠`) become
//! single `u32` compares. Ordering predicates (`<`, `≤`) resolve their
//! symbols back through the [`Interner`] — they are rare and
//! non-indexable, so they only run on the residual path.
//!
//! The three-valued semantics are preserved exactly: [`NULL_SYM`]
//! makes a predicate *unknown* (never true), and for non-NULL symbols
//! id equality coincides with [`eid_relational::Value::compare`]
//! returning `Equal` by
//! the interner's equality contract — so
//! [`InternedRule::fires`] agrees with
//! [`CompiledRule::fires`] on the encoded
//! relations, predicate for predicate.

use eid_relational::{Columns, Interner, Sym, NULL_SYM};

use crate::compiled::{CompiledOperand, CompiledRule, CompiledRuleBase, NeqSide};
use crate::pred::CmpOp;

/// A predicate operand in symbol space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InternedOperand {
    /// Column `pos` of the `R`-side row.
    R(usize),
    /// Column `pos` of the `S`-side row.
    S(usize),
    /// An interned constant.
    Const(Sym),
}

impl InternedOperand {
    /// The operand's symbol for row pair (`i`, `j`); `None` when it
    /// reads NULL (the comparison is unknown).
    #[inline]
    fn resolve(&self, r: &Columns, i: usize, s: &Columns, j: usize) -> Option<Sym> {
        let sym = match self {
            InternedOperand::R(p) => r.get(i, *p),
            InternedOperand::S(p) => s.get(j, *p),
            InternedOperand::Const(sym) => *sym,
        };
        (sym != NULL_SYM).then_some(sym)
    }
}

/// One compiled predicate lowered into symbol space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternedPredicate {
    /// Left operand.
    pub lhs: InternedOperand,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: InternedOperand,
}

impl InternedPredicate {
    /// Three-valued evaluation over columnar row pair (`i`, `j`).
    /// `=`/`≠` are answered by id (in)equality; ordering operators
    /// resolve the symbols back to values.
    #[inline]
    pub fn eval(
        &self,
        r: &Columns,
        i: usize,
        s: &Columns,
        j: usize,
        interner: &Interner,
    ) -> Option<bool> {
        let l = self.lhs.resolve(r, i, s, j)?;
        let rr = self.rhs.resolve(r, i, s, j)?;
        match self.op {
            CmpOp::Eq => Some(l == rr),
            CmpOp::Ne => Some(l != rr),
            _ => {
                let ord = interner.resolve(l).compare(interner.resolve(rr))?;
                Some(self.op.test(ord))
            }
        }
    }
}

/// A compiled rule in symbol space: a conjunction of interned
/// positional predicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternedRule {
    /// The source rule's name.
    pub name: String,
    predicates: Vec<InternedPredicate>,
}

impl InternedRule {
    /// Lowers one compiled rule, interning its constants.
    pub fn from_compiled(rule: &CompiledRule, interner: &mut Interner) -> InternedRule {
        let mut lower = |o: &CompiledOperand| match o {
            CompiledOperand::R(p) => InternedOperand::R(*p),
            CompiledOperand::S(p) => InternedOperand::S(*p),
            CompiledOperand::Const(v) => InternedOperand::Const(interner.intern(v)),
        };
        InternedRule {
            name: rule.name.clone(),
            predicates: rule
                .predicates()
                .iter()
                .map(|p| InternedPredicate {
                    lhs: lower(&p.lhs),
                    op: p.op,
                    rhs: lower(&p.rhs),
                })
                .collect(),
        }
    }

    /// The interned predicate conjunction.
    pub fn predicates(&self) -> &[InternedPredicate] {
        &self.predicates
    }

    /// Three-valued conjunction, mirroring
    /// [`CompiledRule::eval`](crate::CompiledRule::eval).
    pub fn eval(
        &self,
        r: &Columns,
        i: usize,
        s: &Columns,
        j: usize,
        interner: &Interner,
    ) -> Option<bool> {
        let mut all_true = true;
        for p in &self.predicates {
            match p.eval(r, i, s, j, interner) {
                Some(true) => {}
                Some(false) => return Some(false),
                None => all_true = false,
            }
        }
        all_true.then_some(true)
    }

    /// Whether the rule definitely fires on row pair (`i`, `j`).
    #[inline]
    pub fn fires(&self, r: &Columns, i: usize, s: &Columns, j: usize, interner: &Interner) -> bool {
        self.eval(r, i, s, j, interner) == Some(true)
    }

    /// The equi-join shape in symbol space; see
    /// [`CompiledRule::identity_shape`](crate::CompiledRule::identity_shape).
    pub fn identity_shape(&self) -> Option<InternedIdentityShape> {
        let mut shape = InternedIdentityShape::default();
        for p in &self.predicates {
            match (&p.lhs, p.op, &p.rhs) {
                (InternedOperand::R(pos), CmpOp::Eq, InternedOperand::Const(v))
                | (InternedOperand::Const(v), CmpOp::Eq, InternedOperand::R(pos)) => {
                    shape.r_lits.push((*pos, *v));
                }
                (InternedOperand::S(pos), CmpOp::Eq, InternedOperand::Const(v))
                | (InternedOperand::Const(v), CmpOp::Eq, InternedOperand::S(pos)) => {
                    shape.s_lits.push((*pos, *v));
                }
                (InternedOperand::R(rp), CmpOp::Eq, InternedOperand::S(sp))
                | (InternedOperand::S(sp), CmpOp::Eq, InternedOperand::R(rp)) => {
                    shape.join.push((*rp, *sp));
                }
                _ => return None,
            }
        }
        Some(shape)
    }

    /// The refutation shape in symbol space; see
    /// [`CompiledRule::distinct_shape`](crate::CompiledRule::distinct_shape).
    pub fn distinct_shape(&self) -> Option<InternedDistinctShape> {
        let mut r_lits = Vec::new();
        let mut s_lits = Vec::new();
        let mut neq: Option<(NeqSide, usize, Sym)> = None;
        for p in &self.predicates {
            match (&p.lhs, p.op, &p.rhs) {
                (InternedOperand::R(pos), CmpOp::Eq, InternedOperand::Const(v))
                | (InternedOperand::Const(v), CmpOp::Eq, InternedOperand::R(pos)) => {
                    r_lits.push((*pos, *v));
                }
                (InternedOperand::S(pos), CmpOp::Eq, InternedOperand::Const(v))
                | (InternedOperand::Const(v), CmpOp::Eq, InternedOperand::S(pos)) => {
                    s_lits.push((*pos, *v));
                }
                (InternedOperand::R(pos), CmpOp::Ne, InternedOperand::Const(v))
                | (InternedOperand::Const(v), CmpOp::Ne, InternedOperand::R(pos)) => {
                    if neq.is_some() {
                        return None;
                    }
                    neq = Some((NeqSide::R, *pos, *v));
                }
                (InternedOperand::S(pos), CmpOp::Ne, InternedOperand::Const(v))
                | (InternedOperand::Const(v), CmpOp::Ne, InternedOperand::S(pos)) => {
                    if neq.is_some() {
                        return None;
                    }
                    neq = Some((NeqSide::S, *pos, *v));
                }
                _ => return None,
            }
        }
        let neq = neq?;
        let opposite_lits = match neq.0 {
            NeqSide::R => &s_lits,
            NeqSide::S => &r_lits,
        };
        if opposite_lits.is_empty() {
            return None;
        }
        Some(InternedDistinctShape {
            r_lits,
            s_lits,
            neq,
        })
    }
}

/// Which specialized batch kernel can evaluate a rule, if any.
///
/// A kernel evaluates one rule against a contiguous run of `S`-side
/// rows for a fixed `R`-side driver row, comparing whole column
/// chunks at a time. Eligibility is decided from the interned shape:
///
/// * identity rules with a non-empty join lower to an equality kernel
///   ([`KernelShape::EqSingle`] when exactly one `S`-side term is
///   compared, [`KernelShape::EqMulti`] for a conjunction);
/// * distinctness rules in [`InternedDistinctShape`] form lower to
///   the disagreement kernel ([`KernelShape::Disagree`]).
///
/// Shapes with a NULL-interned constant are rejected (a constant
/// NULL predicate is three-valued *unknown* on every row, so the rule
/// can never fire — the scalar path proves this per pair; the kernels
/// refuse the shape instead). So are shapes with two literals on the
/// same column and different symbols (unsatisfiable, but the lit
/// index probes only the first literal per column, so a kernel that
/// trusted the probe would over-fire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelShape {
    /// Single-attribute equality: one `S`-side term per driver row.
    EqSingle,
    /// Conjunctive multi-attribute equality.
    EqMulti,
    /// Disagreement with a constant (`≠ c`), driven by the `≠` side.
    Disagree,
}

impl KernelShape {
    /// Stable lowercase label for plans and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            KernelShape::EqSingle => "eq-single",
            KernelShape::EqMulti => "eq-multi",
            KernelShape::Disagree => "disagree",
        }
    }
}

/// `(column, symbol)` literal lists are kernel-safe when no symbol is
/// NULL and no column is pinned to two different symbols.
fn lits_kernel_safe(lits: &[(usize, Sym)]) -> bool {
    lits.iter().all(|&(pos, sym)| {
        sym != NULL_SYM && lits.iter().all(|&(pos2, sym2)| pos != pos2 || sym == sym2)
    })
}

impl InternedRule {
    /// The batch kernel this rule's shape lowers to, if any. See
    /// [`KernelShape`] for the eligibility rules.
    pub fn kernel_shape(&self) -> Option<KernelShape> {
        if let Some(shape) = self.identity_shape() {
            if shape.join.is_empty()
                || !lits_kernel_safe(&shape.r_lits)
                || !lits_kernel_safe(&shape.s_lits)
            {
                return None;
            }
            // S-side terms the kernel conjoins per driver row: every
            // join column (symbol gathered from R) plus every S
            // literal column.
            return Some(if shape.join.len() + shape.s_lits.len() == 1 {
                KernelShape::EqSingle
            } else {
                KernelShape::EqMulti
            });
        }
        let shape = self.distinct_shape()?;
        let (_, _, neq_sym) = shape.neq;
        if neq_sym == NULL_SYM
            || !lits_kernel_safe(&shape.r_lits)
            || !lits_kernel_safe(&shape.s_lits)
        {
            return None;
        }
        Some(KernelShape::Disagree)
    }
}

/// [`IdentityShape`](crate::IdentityShape) with interned literals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InternedIdentityShape {
    /// `(column, symbol)` equality literals on `R`-side rows.
    pub r_lits: Vec<(usize, Sym)>,
    /// `(column, symbol)` equality literals on `S`-side rows.
    pub s_lits: Vec<(usize, Sym)>,
    /// `(r_column, s_column)` cross-relation equality pairs.
    pub join: Vec<(usize, usize)>,
}

impl InternedIdentityShape {
    /// The full set of `S`-side index positions this shape can be
    /// probed on: join columns plus `S` literal columns, sorted and
    /// deduplicated. The planner chooses a (non-empty) subset of
    /// these as the blocking key; any subset is sound because every
    /// candidate is re-verified with the full rule.
    pub fn probe_positions(&self) -> Vec<usize> {
        let mut positions: Vec<usize> = self.join.iter().map(|(_, sp)| *sp).collect();
        positions.extend(self.s_lits.iter().map(|(p, _)| *p));
        positions.sort_unstable();
        positions.dedup();
        positions
    }

    /// The `R`-side column feeding one probe position: the join
    /// partner when `sp` is a join column, `None` when it is pinned
    /// by an `S` literal.
    pub fn r_source_of(&self, sp: usize) -> Option<usize> {
        if self.s_lits.iter().any(|(p, _)| *p == sp) {
            return None;
        }
        self.join.iter().find(|(_, p)| *p == sp).map(|(rp, _)| *rp)
    }
}

/// [`DistinctShape`](crate::DistinctShape) with interned literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternedDistinctShape {
    /// `(column, symbol)` equality literals on `R`-side rows.
    pub r_lits: Vec<(usize, Sym)>,
    /// `(column, symbol)` equality literals on `S`-side rows.
    pub s_lits: Vec<(usize, Sym)>,
    /// The single `≠`-constant literal: which relation, column, symbol.
    pub neq: (NeqSide, usize, Sym),
}

/// A whole [`CompiledRuleBase`] lowered into symbol space.
#[derive(Debug, Clone, Default)]
pub struct InternedRuleBase {
    /// Interned identity rules, in compiled order.
    pub identity: Vec<InternedRule>,
    /// Interned distinctness rules, in compiled order.
    pub distinctness: Vec<InternedRule>,
}

impl InternedRuleBase {
    /// Lowers every compiled rule, interning all rule constants into
    /// `interner` (which must be the same interner the relations are
    /// encoded through, or symbol equality is meaningless).
    pub fn from_compiled(base: &CompiledRuleBase, interner: &mut Interner) -> InternedRuleBase {
        InternedRuleBase {
            identity: base
                .identity
                .iter()
                .map(|r| InternedRule::from_compiled(r, interner))
                .collect(),
            distinctness: base
                .distinctness
                .iter()
                .map(|r| InternedRule::from_compiled(r, interner))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distinctness::DistinctnessRule;
    use crate::identity::IdentityRule;
    use crate::pred::{Operand, Predicate, Side};
    use crate::rulebase::RuleBase;
    use eid_relational::{Relation, Schema, Tuple, Value};

    fn world() -> (Relation, Relation) {
        let rs = Schema::of_strs("R", &["name", "cuisine", "street"], &["name"]).unwrap();
        let ss = Schema::of_strs("S", &["name", "cuisine", "city"], &["name"]).unwrap();
        let mut r = Relation::new(rs);
        r.insert_strs(&["a", "indian", "x"]).unwrap();
        r.insert_strs(&["b", "greek", "y"]).unwrap();
        r.insert(Tuple::new(vec![
            Value::str("c"),
            Value::Null,
            Value::str("z"),
        ]))
        .unwrap();
        let mut s = Relation::new(ss);
        s.insert_strs(&["a", "indian", "p"]).unwrap();
        s.insert_strs(&["b", "indian", "q"]).unwrap();
        (r, s)
    }

    fn rb() -> RuleBase {
        let mut rb = RuleBase::new();
        rb.add_identity(
            IdentityRule::new(
                "key-eq",
                vec![Predicate::cross_eq("name"), Predicate::cross_eq("cuisine")],
            )
            .unwrap(),
        );
        rb.add_distinctness(
            DistinctnessRule::new(
                "r3",
                vec![
                    Predicate::attr_const(Side::E1, "cuisine", CmpOp::Eq, "indian"),
                    Predicate::attr_const(Side::E2, "cuisine", CmpOp::Ne, "indian"),
                ],
            )
            .unwrap(),
        );
        rb.add_distinctness(
            DistinctnessRule::new(
                "ordered",
                vec![Predicate::new(
                    Operand::attr(Side::E1, "name"),
                    CmpOp::Lt,
                    Operand::attr(Side::E2, "name"),
                )],
            )
            .unwrap(),
        );
        rb
    }

    /// The load-bearing equivalence: interned `fires` agrees with
    /// compiled `fires` on every row pair, for `=`, `≠`, `<`, and
    /// NULL operands alike.
    #[test]
    fn interned_fires_agrees_with_compiled() {
        let (r, s) = world();
        let compiled = CompiledRuleBase::compile(&rb(), r.schema(), s.schema());
        let mut interner = Interner::new();
        let interned = InternedRuleBase::from_compiled(&compiled, &mut interner);
        let cr = Columns::encode(&r, &mut interner);
        let cs = Columns::encode(&s, &mut interner);
        for (rules_c, rules_i) in [
            (&compiled.identity, &interned.identity),
            (&compiled.distinctness, &interned.distinctness),
        ] {
            for (rc, ri) in rules_c.iter().zip(rules_i.iter()) {
                for i in 0..r.len() {
                    for j in 0..s.len() {
                        assert_eq!(
                            rc.fires(&r.tuples()[i], &s.tuples()[j]),
                            ri.fires(&cr, i, &cs, j, &interner),
                            "rule {} on pair ({i},{j})",
                            rc.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn interned_shapes_mirror_compiled_shapes() {
        let (r, s) = world();
        let compiled = CompiledRuleBase::compile(&rb(), r.schema(), s.schema());
        let mut interner = Interner::new();
        let interned = InternedRuleBase::from_compiled(&compiled, &mut interner);
        for (rc, ri) in compiled.identity.iter().zip(interned.identity.iter()) {
            assert_eq!(rc.identity_shape().is_some(), ri.identity_shape().is_some());
        }
        for (rc, ri) in compiled
            .distinctness
            .iter()
            .zip(interned.distinctness.iter())
        {
            assert_eq!(rc.distinct_shape().is_some(), ri.distinct_shape().is_some());
            if let (Some(dc), Some(di)) = (rc.distinct_shape(), ri.distinct_shape()) {
                assert_eq!(&dc.neq.2, interner.resolve(di.neq.2));
            }
        }
        // The join-only identity rule keeps its join columns.
        let shape = interned.identity[0].identity_shape().unwrap();
        assert_eq!(shape.join.len(), 2);
        assert!(shape.r_lits.is_empty() && shape.s_lits.is_empty());
        // Probe positions are the S-side join columns, sorted; each
        // traces back to its R-side source.
        assert_eq!(shape.probe_positions(), vec![0, 1]);
        assert_eq!(shape.r_source_of(0), Some(0));
        assert_eq!(shape.r_source_of(1), Some(1));
    }
}
