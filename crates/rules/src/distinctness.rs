//! Distinctness rules (§3.2) and the ILFD duality (Proposition 1).
//!
//! A distinctness rule has the form
//!
//! ```text
//! ∀ e₁,e₂ ∈ E,  P(e₁.A₁, …, e₂.Bₙ) → (e₁ ≢ e₂)
//! ```
//!
//! where `P` "must involve some attribute from each of `e₁` and
//! `e₂`". Proposition 1 makes ILFDs and distinctness rules two views
//! of the same knowledge:
//!
//! > `(E.A₁=a₁) ∧ … ∧ (E.Aₙ=aₙ) → (E.B=b)` is an ILFD **iff**
//! > `∀e₁,e₂, (e₁.A₁=a₁) ∧ … ∧ (e₁.Aₙ=aₙ) ∧ (e₂.B≠b) → (e₁ ≢ e₂)`
//! > is a distinctness rule.
//!
//! [`DistinctnessRule::from_ilfd`] and [`DistinctnessRule::to_ilfd`]
//! implement the two directions.

use std::fmt;

use serde::{Deserialize, Serialize};

use eid_ilfd::{Ilfd, PropSymbol, SymbolSet};
use eid_relational::{Schema, Tuple};

use crate::pred::{CmpOp, Operand, Predicate, Side};

/// Error raised by [`DistinctnessRule::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistinctnessRuleError {
    /// `P` must involve at least one attribute of the named side.
    MissingSide {
        /// The side with no attribute references.
        side: Side,
    },
    /// The rule has no predicates.
    Empty,
}

impl fmt::Display for DistinctnessRuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistinctnessRuleError::MissingSide { side } => {
                write!(f, "distinctness rule involves no attribute of {side}")
            }
            DistinctnessRuleError::Empty => write!(f, "distinctness rule has no predicates"),
        }
    }
}

impl std::error::Error for DistinctnessRuleError {}

/// A distinctness rule: a conjunction of predicates whose
/// satisfaction proves `e₁ ≢ e₂`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistinctnessRule {
    /// Optional human-readable name (`r3`, …).
    pub name: String,
    predicates: Vec<Predicate>,
}

impl DistinctnessRule {
    /// Builds and validates a distinctness rule.
    pub fn new(
        name: impl Into<String>,
        predicates: Vec<Predicate>,
    ) -> Result<Self, DistinctnessRuleError> {
        let rule = DistinctnessRule {
            name: name.into(),
            predicates,
        };
        rule.validate()?;
        Ok(rule)
    }

    /// The predicate conjunction `P`.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Checks the §3.2 side condition: `P` involves some attribute
    /// of each entity.
    pub fn validate(&self) -> Result<(), DistinctnessRuleError> {
        if self.predicates.is_empty() {
            return Err(DistinctnessRuleError::Empty);
        }
        for side in [Side::E1, Side::E2] {
            let involved = self
                .predicates
                .iter()
                .flat_map(|p| p.mentioned())
                .any(|(s, _)| s == side);
            if !involved {
                return Err(DistinctnessRuleError::MissingSide { side });
            }
        }
        Ok(())
    }

    /// Three-valued evaluation, as for identity rules: `Some(true)`
    /// proves the pair distinct.
    pub fn eval(&self, s1: &Schema, t1: &Tuple, s2: &Schema, t2: &Tuple) -> Option<bool> {
        let mut all_true = true;
        for p in &self.predicates {
            match p.eval(s1, t1, s2, t2) {
                Some(true) => {}
                Some(false) => return Some(false),
                None => all_true = false,
            }
        }
        all_true.then_some(true)
    }

    /// Whether the rule fires (proves distinctness) for the pair.
    pub fn fires(&self, s1: &Schema, t1: &Tuple, s2: &Schema, t2: &Tuple) -> bool {
        self.eval(s1, t1, s2, t2) == Some(true)
    }

    /// Proposition 1, "only if" direction: converts an ILFD into its
    /// equivalent distinctness rule. Multi-symbol consequents produce
    /// one rule per consequent symbol (the conjunction of their
    /// negations distributes over distinct rules).
    pub fn from_ilfd(ilfd: &Ilfd) -> Vec<DistinctnessRule> {
        ilfd.decompose()
            .iter()
            .map(|part| {
                let mut predicates: Vec<Predicate> = part
                    .antecedent()
                    .iter()
                    .map(|s| {
                        Predicate::attr_const(Side::E1, s.attr.clone(), CmpOp::Eq, s.value.clone())
                    })
                    .collect();
                let cons = part
                    .consequent()
                    .iter()
                    .next()
                    .expect("decomposed ILFD has one consequent");
                predicates.push(Predicate::attr_const(
                    Side::E2,
                    cons.attr.clone(),
                    CmpOp::Ne,
                    cons.value.clone(),
                ));
                DistinctnessRule {
                    name: format!("¬[{ilfd}]"),
                    predicates,
                }
            })
            .collect()
    }

    /// Proposition 1, "if" direction: recognizes a distinctness rule
    /// of the shape produced by [`DistinctnessRule::from_ilfd`]
    /// (equality constants on `e₁`, one `≠`-constant on `e₂`) and
    /// recovers the ILFD; `None` for other shapes.
    pub fn to_ilfd(&self) -> Option<Ilfd> {
        let mut ante = SymbolSet::new();
        let mut cons: Option<PropSymbol> = None;
        for p in &self.predicates {
            match (&p.lhs, p.op, &p.rhs) {
                (
                    Operand::Attr {
                        side: Side::E1,
                        attr,
                    },
                    CmpOp::Eq,
                    Operand::Const(v),
                ) => {
                    ante.insert(PropSymbol::new(attr.clone(), v.clone()));
                }
                (
                    Operand::Attr {
                        side: Side::E2,
                        attr,
                    },
                    CmpOp::Ne,
                    Operand::Const(v),
                ) => {
                    if cons.is_some() {
                        return None; // more than one negated consequent
                    }
                    cons = Some(PropSymbol::new(attr.clone(), v.clone()));
                }
                _ => return None,
            }
        }
        let cons = cons?;
        if ante.is_empty() {
            return None;
        }
        Some(Ilfd::new(ante, SymbolSet::from_symbols([cons])))
    }
}

impl fmt::Display for DistinctnessRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.name)?;
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                f.write_str(" ∧ ")?;
            }
            write!(f, "{p}")?;
        }
        f.write_str(" → (e1 ≢ e2)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_relational::{Schema, Value};

    fn schemas() -> (std::sync::Arc<Schema>, std::sync::Arc<Schema>) {
        (
            Schema::of_strs("R", &["name", "speciality"], &["name"]).unwrap(),
            Schema::of_strs("S", &["name", "cuisine"], &["name"]).unwrap(),
        )
    }

    /// The paper's r3: e1.speciality = "Mughalai" ∧ e2.cuisine ≠ "Indian".
    fn r3() -> DistinctnessRule {
        DistinctnessRule::new(
            "r3",
            vec![
                Predicate::attr_const(Side::E1, "speciality", CmpOp::Eq, "mughalai"),
                Predicate::attr_const(Side::E2, "cuisine", CmpOp::Ne, "indian"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn r3_fires_on_mughalai_vs_non_indian() {
        let (s1, s2) = schemas();
        let t1 = Tuple::of_strs(&["anjuman", "mughalai"]);
        let t2 = Tuple::of_strs(&["x", "greek"]);
        assert!(r3().fires(&s1, &t1, &s2, &t2));
        let t3 = Tuple::of_strs(&["x", "indian"]);
        assert!(!r3().fires(&s1, &t1, &s2, &t3));
    }

    #[test]
    fn null_blocks_firing() {
        let (s1, s2) = schemas();
        let t1 = Tuple::of_strs(&["anjuman", "mughalai"]);
        let t2 = Tuple::new(vec![Value::str("x"), Value::Null]);
        assert_eq!(r3().eval(&s1, &t1, &s2, &t2), None);
    }

    #[test]
    fn one_sided_rule_rejected() {
        let err = DistinctnessRule::new(
            "bad",
            vec![Predicate::attr_const(
                Side::E1,
                "speciality",
                CmpOp::Eq,
                "mughalai",
            )],
        )
        .unwrap_err();
        assert_eq!(err, DistinctnessRuleError::MissingSide { side: Side::E2 });
    }

    #[test]
    fn empty_rule_rejected() {
        assert_eq!(
            DistinctnessRule::new("e", vec![]).unwrap_err(),
            DistinctnessRuleError::Empty
        );
    }

    #[test]
    fn proposition_1_forward() {
        // I4: speciality=mughalai → cuisine=indian.
        let i4 = Ilfd::of_strs(&[("speciality", "mughalai")], &[("cuisine", "indian")]);
        let rules = DistinctnessRule::from_ilfd(&i4);
        assert_eq!(rules.len(), 1);
        let (s1, s2) = schemas();
        // The generated rule behaves exactly like hand-written r3.
        let t1 = Tuple::of_strs(&["anjuman", "mughalai"]);
        let t2 = Tuple::of_strs(&["x", "greek"]);
        assert!(rules[0].fires(&s1, &t1, &s2, &t2));
        assert!(rules[0].validate().is_ok());
    }

    #[test]
    fn proposition_1_round_trip() {
        let i = Ilfd::of_strs(
            &[("name", "itsgreek"), ("county", "ramsey")],
            &[("speciality", "gyros")],
        );
        let rules = DistinctnessRule::from_ilfd(&i);
        let back = rules[0].to_ilfd().unwrap();
        assert_eq!(back, i);
    }

    #[test]
    fn multi_consequent_ilfd_yields_multiple_rules() {
        let i = Ilfd::of_strs(&[("a", "1")], &[("b", "2"), ("c", "3")]);
        let rules = DistinctnessRule::from_ilfd(&i);
        assert_eq!(rules.len(), 2);
    }

    #[test]
    fn to_ilfd_rejects_other_shapes() {
        assert!(r3().to_ilfd().is_some());
        let odd = DistinctnessRule::new(
            "odd",
            vec![Predicate::new(
                Operand::attr(Side::E1, "a"),
                CmpOp::Lt,
                Operand::attr(Side::E2, "a"),
            )],
        )
        .unwrap();
        assert!(odd.to_ilfd().is_none());
    }

    #[test]
    fn display_shows_negated_implication() {
        assert!(r3().to_string().ends_with("→ (e1 ≢ e2)"));
    }
}
