//! Extended keys and extended-key equivalence (§4.1).
//!
//! > **Definition (Extended key).** The extended key `K_Ext` is a
//! > minimal set of attributes, of the form `K₁ ∪ K₂ ∪ Ā`, needed to
//! > uniquely identify an instance of type `E` in the integrated real
//! > world, where `Ā` is a set of attributes of `E` in neither `K₁`
//! > nor `K₂`.
//!
//! Its identity rule, *extended key equivalence*, is the conjunction
//! of cross-equalities over the extended key's attributes, and is
//! special in that only the ordinary key constraints of the matched
//! relations are needed to guarantee matched tuples are unique.

use std::fmt;

use serde::{Deserialize, Serialize};

use eid_relational::{AttrName, Relation, Schema};

use crate::identity::{IdentityRule, IdentityRuleError};
use crate::pred::Predicate;

/// An extended key: an ordered set of attribute names that uniquely
/// identifies entities of the integrated world.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtendedKey {
    attrs: Vec<AttrName>,
}

impl ExtendedKey {
    /// Builds from attribute names (duplicates are dropped).
    pub fn new(attrs: impl IntoIterator<Item = AttrName>) -> Self {
        let mut out: Vec<AttrName> = Vec::new();
        for a in attrs {
            if !out.contains(&a) {
                out.push(a);
            }
        }
        ExtendedKey { attrs: out }
    }

    /// Builds from strings.
    pub fn of_strs(attrs: &[&str]) -> Self {
        ExtendedKey::new(attrs.iter().map(AttrName::new))
    }

    /// The key attributes.
    pub fn attrs(&self) -> &[AttrName] {
        &self.attrs
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the key is empty (never valid for matching).
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The §4.1 extended-key-equivalence identity rule:
    /// `∀e₁,e₂, (e₁.A₁=e₂.A₁) ∧ … ∧ (e₁.Aₖ=e₂.Aₖ) → (e₁ ≡ e₂)`.
    pub fn identity_rule(&self) -> Result<IdentityRule, IdentityRuleError> {
        IdentityRule::new(
            "extended-key-equivalence",
            self.attrs
                .iter()
                .map(|a| Predicate::cross_eq(a.clone()))
                .collect(),
        )
    }

    /// The attributes of `K_Ext` missing from `schema` — the
    /// `K_Ext−R` of §4.2, i.e. what relation `R` must be extended
    /// with (and have derived by ILFDs) before extended-key
    /// equivalence applies.
    pub fn missing_in(&self, schema: &Schema) -> Vec<AttrName> {
        self.attrs
            .iter()
            .filter(|a| !schema.has_attribute(a))
            .cloned()
            .collect()
    }

    /// Whether `schema` already has every extended-key attribute.
    pub fn covered_by(&self, schema: &Schema) -> bool {
        self.missing_in(schema).is_empty()
    }

    /// Verifies that the extended key is a key *of the given
    /// integrated-world relation*: no two distinct tuples agree
    /// (non-NULL) on all key attributes. This is the ground-truth
    /// check a DBA's asserted extended key must pass for soundness.
    pub fn unique_in(&self, world: &Relation) -> bool {
        let Ok(positions) = world.positions_of(&self.attrs) else {
            return false;
        };
        let mut seen = std::collections::HashSet::new();
        for t in world.iter() {
            if !t.non_null_at(&positions) {
                continue;
            }
            if !seen.insert(t.project(&positions)) {
                return false;
            }
        }
        true
    }

    /// Whether the key is **minimal** for `world`: it is unique and
    /// no proper subset is. (The paper's definition requires
    /// minimality; in practice a DBA may assert a non-minimal key,
    /// which is still sound, just redundant.)
    pub fn minimal_in(&self, world: &Relation) -> bool {
        if !self.unique_in(world) {
            return false;
        }
        for skip in 0..self.attrs.len() {
            let subset: Vec<AttrName> = self
                .attrs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, a)| a.clone())
                .collect();
            if subset.is_empty() {
                continue;
            }
            if (ExtendedKey { attrs: subset }).unique_in(world) {
                return false;
            }
        }
        true
    }

    /// Derives the candidate extended keys of the integrated scheme
    /// from FD knowledge about the integrated world: each returned
    /// key is a *minimal* attribute set that functionally determines
    /// every attribute in `attrs` — exactly the paper's definition of
    /// an extended key. The DBA picks one (typically the one best
    /// covered, directly or via ILFDs, by both relations).
    pub fn suggest_from_fds(
        attrs: impl IntoIterator<Item = AttrName>,
        fds: &[eid_ilfd::fd::Fd],
    ) -> Vec<ExtendedKey> {
        let set: std::collections::BTreeSet<AttrName> = attrs.into_iter().collect();
        eid_ilfd::fd::candidate_keys(&set, fds)
            .into_iter()
            .map(ExtendedKey::new)
            .collect()
    }

    /// Convenience: the union `K₁ ∪ K₂` of two relations' primary
    /// keys — the paper notes "quite often, we may have
    /// `K_Ext = K₁ ∪ K₂`".
    pub fn union_of_keys(r: &Relation, s: &Relation) -> ExtendedKey {
        ExtendedKey::new(
            r.schema()
                .primary_key()
                .into_iter()
                .chain(s.schema().primary_key()),
        )
    }
}

impl fmt::Display for ExtendedKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.attrs.iter().map(|a| a.as_str()).collect();
        write!(f, "K_Ext = {{{}}}", names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_relational::{Relation, Schema};

    fn world() -> Relation {
        // Integrated world of restaurants; (name, cuisine) is the key,
        // and it is minimal (name alone repeats, cuisine alone repeats).
        let schema = Schema::of_strs(
            "World",
            &["name", "cuisine", "street"],
            &["name", "cuisine"],
        )
        .unwrap();
        let mut w = Relation::new(schema);
        w.insert_strs(&["twincities", "chinese", "wash_ave"])
            .unwrap();
        w.insert_strs(&["twincities", "indian", "univ_ave"])
            .unwrap();
        w.insert_strs(&["anjuman", "indian", "lasalle_ave"])
            .unwrap();
        w
    }

    #[test]
    fn identity_rule_is_cross_equalities() {
        let k = ExtendedKey::of_strs(&["name", "cuisine"]);
        let rule = k.identity_rule().unwrap();
        assert_eq!(rule.predicates().len(), 2);
        assert!(rule.validate().is_ok());
    }

    #[test]
    fn missing_in_computes_k_ext_minus_r() {
        let k = ExtendedKey::of_strs(&["name", "cuisine", "speciality"]);
        let r = Schema::of_strs("R", &["name", "cuisine", "street"], &["name"]).unwrap();
        assert_eq!(k.missing_in(&r), vec![AttrName::new("speciality")]);
        let s = Schema::of_strs("S", &["name", "speciality", "county"], &["name"]).unwrap();
        assert_eq!(k.missing_in(&s), vec![AttrName::new("cuisine")]);
        assert!(!k.covered_by(&r));
    }

    #[test]
    fn unique_in_detects_key_violations() {
        let w = world();
        assert!(ExtendedKey::of_strs(&["name", "cuisine"]).unique_in(&w));
        assert!(!ExtendedKey::of_strs(&["name"]).unique_in(&w));
        assert!(!ExtendedKey::of_strs(&["cuisine"]).unique_in(&w));
        // Missing attribute → cannot be a key.
        assert!(!ExtendedKey::of_strs(&["nope"]).unique_in(&w));
    }

    #[test]
    fn minimality() {
        let w = world();
        assert!(ExtendedKey::of_strs(&["name", "cuisine"]).minimal_in(&w));
        // Adding street keeps uniqueness but loses minimality.
        assert!(!ExtendedKey::of_strs(&["name", "cuisine", "street"]).minimal_in(&w));
        // Non-unique keys are not minimal either.
        assert!(!ExtendedKey::of_strs(&["name"]).minimal_in(&w));
    }

    #[test]
    fn union_of_keys_dedups() {
        let r =
            Relation::new(Schema::of_strs("R", &["name", "street"], &["name", "street"]).unwrap());
        let s = Relation::new(Schema::of_strs("S", &["name", "city"], &["name", "city"]).unwrap());
        let k = ExtendedKey::union_of_keys(&r, &s);
        assert_eq!(
            k.attrs(),
            &[
                AttrName::new("name"),
                AttrName::new("street"),
                AttrName::new("city")
            ]
        );
    }

    #[test]
    fn suggest_from_fds_finds_paper_key() {
        // Integrated scheme {name, cuisine, speciality, street} with
        // speciality → cuisine and (name, street) → speciality:
        // minimal keys are {name, street} and {name, speciality}.
        use eid_ilfd::fd::Fd;
        let attrs = ["name", "cuisine", "speciality", "street"]
            .iter()
            .map(AttrName::new);
        let fds = vec![
            Fd::of_strs(&["speciality"], &["cuisine"]),
            Fd::of_strs(&["name", "street"], &["speciality"]),
        ];
        let keys = ExtendedKey::suggest_from_fds(attrs, &fds);
        // street is determined by nothing, so it is in every key;
        // (name, street) closes over everything — the unique minimal
        // extended key.
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].to_string(), "K_Ext = {name, street}");

        // Add street determination (speciality → street, a contrived
        // reverse lookup) and {name, speciality} becomes a key too.
        let mut fds2 = fds.clone();
        fds2.push(Fd::of_strs(&["speciality"], &["street"]));
        let keys = ExtendedKey::suggest_from_fds(
            ["name", "cuisine", "speciality", "street"]
                .iter()
                .map(AttrName::new),
            &fds2,
        );
        assert_eq!(keys.len(), 2);
        for k in &keys {
            assert_eq!(k.len(), 2);
        }
    }

    #[test]
    fn dedup_on_construction_and_display() {
        let k = ExtendedKey::of_strs(&["a", "b", "a"]);
        assert_eq!(k.len(), 2);
        assert_eq!(k.to_string(), "K_Ext = {a, b}");
    }
}
