//! # `eid-rules` — identity and distinctness rules, extended keys
//!
//! The rule language of §3.2–§4.1 of Lim et al. (ICDE 1993):
//!
//! * [`pred`] — pair predicates `eᵢ.A op eⱼ.B` / `eᵢ.A op const`
//!   with three-valued (NULL-aware) evaluation;
//! * [`identity`] — identity rules `P → (e₁ ≡ e₂)`, including the
//!   paper's well-formedness side condition, decided by an equality
//!   graph over `P`;
//! * [`distinctness`] — distinctness rules `P → (e₁ ≢ e₂)` and the
//!   Proposition 1 duality with ILFDs (both directions);
//! * [`extended_key`] — extended keys `K_Ext`, their identity rule
//!   (*extended key equivalence*), uniqueness and minimality checks;
//! * [`compiled`] — rule precompilation: attribute names resolved to
//!   column positions once per run, plus indexable *block plan*
//!   shapes consumed by the `eid-core` blocked matching engine;
//! * [`rulebase`] — a [`RuleBase`] with the three-valued
//!   [`RuleBase::decide`] function over tuple pairs, plus detection
//!   of mutually inconsistent rule firings.
//!
//! ## Example
//!
//! ```
//! use eid_rules::{ExtendedKey, MatchDecision, RuleBase};
//! use eid_relational::{Schema, Tuple};
//!
//! let k = ExtendedKey::of_strs(&["name", "cuisine"]);
//! let mut rb = RuleBase::new();
//! rb.add_identity(k.identity_rule().unwrap());
//!
//! let r = Schema::of_strs("R", &["name", "cuisine"], &["name"]).unwrap();
//! let s = Schema::of_strs("S", &["name", "cuisine"], &["name"]).unwrap();
//! let d = rb.decide(&r, &Tuple::of_strs(&["tc", "chinese"]),
//!                   &s, &Tuple::of_strs(&["tc", "chinese"])).unwrap();
//! assert_eq!(d, MatchDecision::Matching);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compiled;
pub mod distinctness;
pub mod extended_key;
pub mod identity;
pub mod interned;
pub mod parser;
pub mod pred;
pub mod rulebase;

pub use compiled::{
    CompileStats, CompiledOperand, CompiledPredicate, CompiledRule, CompiledRuleBase,
    DistinctShape, IdentityShape, NeqSide,
};
pub use distinctness::{DistinctnessRule, DistinctnessRuleError};
pub use extended_key::ExtendedKey;
pub use identity::{IdentityRule, IdentityRuleError};
pub use interned::{
    InternedDistinctShape, InternedIdentityShape, InternedOperand, InternedPredicate, InternedRule,
    InternedRuleBase, KernelShape,
};
pub use parser::{parse_rules, ParseError, RuleFile, Statement};
pub use pred::{CmpOp, Operand, Predicate, Side};
pub use rulebase::{InconsistentRules, MatchDecision, RuleBase};
