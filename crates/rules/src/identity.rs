//! Identity rules (§3.2).
//!
//! An identity rule has the form
//!
//! ```text
//! ∀ e₁,e₂ ∈ E,  P(e₁.A₁, …, e₁.Aₘ, e₂.B₁, …, e₂.Bₙ) → (e₁ ≡ e₂)
//! ```
//!
//! with a **well-formedness side condition**: "for each `e₁.Aᵢ` or
//! `e₂.Aᵢ` that appears in the predicates, `P` must imply
//! `e₁.Aᵢ = e₂.Aᵢ`". The paper's example: `r1 = (e₁.cuisine =
//! "Chinese") ∧ (e₂.cuisine = "Chinese") → (e₁ ≡ e₂)` is an identity
//! rule, but `r2 = (e₁.cuisine = "Chinese") → (e₁ ≡ e₂)` is not.
//!
//! [`IdentityRule::validate`] decides the side condition by building
//! the equality graph of `P`'s `=`-predicates (union–find over
//! attribute references and constants) and requiring `e₁.A` and
//! `e₂.A` to be connected for every mentioned attribute `A`.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use eid_relational::{AttrName, Schema, Tuple, Value};

use crate::pred::{CmpOp, Operand, Predicate, Side};

/// Error raised by [`IdentityRule::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdentityRuleError {
    /// The side condition fails for this attribute: `P` does not
    /// imply `e₁.attr = e₂.attr`.
    UnconstrainedAttribute {
        /// The offending attribute.
        attr: AttrName,
    },
    /// The rule has no predicates (it would match every pair).
    Empty,
}

impl fmt::Display for IdentityRuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdentityRuleError::UnconstrainedAttribute { attr } => write!(
                f,
                "identity rule mentions `{attr}` but its predicates do not imply e1.{attr} = e2.{attr}"
            ),
            IdentityRuleError::Empty => write!(f, "identity rule has no predicates"),
        }
    }
}

impl std::error::Error for IdentityRuleError {}

/// An identity rule: a conjunction of predicates whose satisfaction
/// proves `e₁ ≡ e₂`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdentityRule {
    /// Optional human-readable name (`r1`, `extended-key`, …).
    pub name: String,
    predicates: Vec<Predicate>,
}

impl IdentityRule {
    /// Builds and validates an identity rule.
    pub fn new(
        name: impl Into<String>,
        predicates: Vec<Predicate>,
    ) -> Result<Self, IdentityRuleError> {
        let rule = IdentityRule {
            name: name.into(),
            predicates,
        };
        rule.validate()?;
        Ok(rule)
    }

    /// Builds without validation — for constructing deliberately
    /// ill-formed rules in tests and for rules whose soundness is
    /// established externally.
    pub fn new_unchecked(name: impl Into<String>, predicates: Vec<Predicate>) -> Self {
        IdentityRule {
            name: name.into(),
            predicates,
        }
    }

    /// The predicate conjunction `P`.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Checks the §3.2 side condition; see the module docs.
    pub fn validate(&self) -> Result<(), IdentityRuleError> {
        if self.predicates.is_empty() {
            return Err(IdentityRuleError::Empty);
        }
        // Union–find over terms: attribute references and constants.
        let mut uf = UnionFind::default();
        for p in &self.predicates {
            if p.op == CmpOp::Eq {
                let a = uf.node(&p.lhs);
                let b = uf.node(&p.rhs);
                uf.union(a, b);
            } else {
                // Non-equality predicates still register their terms.
                uf.node(&p.lhs);
                uf.node(&p.rhs);
            }
        }
        // Every mentioned attribute must have e1.A ~ e2.A.
        for p in &self.predicates {
            for (_, attr) in p.mentioned() {
                let a = uf.node(&Operand::attr(Side::E1, attr.clone()));
                let b = uf.node(&Operand::attr(Side::E2, attr.clone()));
                if !uf.connected(a, b) {
                    return Err(IdentityRuleError::UnconstrainedAttribute { attr });
                }
            }
        }
        Ok(())
    }

    /// Three-valued evaluation: `Some(true)` — the pair provably
    /// matches; `Some(false)` — some predicate is definitely false;
    /// `None` — a predicate is unknown (NULL/missing), so the rule
    /// neither fires nor refutes.
    pub fn eval(&self, s1: &Schema, t1: &Tuple, s2: &Schema, t2: &Tuple) -> Option<bool> {
        let mut all_true = true;
        for p in &self.predicates {
            match p.eval(s1, t1, s2, t2) {
                Some(true) => {}
                Some(false) => return Some(false),
                None => all_true = false,
            }
        }
        all_true.then_some(true)
    }

    /// Whether the rule *fires* (proves a match) for the pair.
    pub fn fires(&self, s1: &Schema, t1: &Tuple, s2: &Schema, t2: &Tuple) -> bool {
        self.eval(s1, t1, s2, t2) == Some(true)
    }

    /// The attributes mentioned by the rule's predicates.
    pub fn attributes(&self) -> Vec<AttrName> {
        let mut out: Vec<AttrName> = Vec::new();
        for p in &self.predicates {
            for (_, a) in p.mentioned() {
                if !out.contains(&a) {
                    out.push(a);
                }
            }
        }
        out
    }

    /// Builds the *key equivalence* identity rule for a shared
    /// candidate key (§2.2 technique 1, formalized in §3.2):
    /// `∀e₁,e₂, (e₁.A_k = e₂.A_k for all k) → e₁ ≡ e₂`.
    pub fn key_equivalence(key: &[AttrName]) -> Result<Self, IdentityRuleError> {
        IdentityRule::new(
            "key-equivalence",
            key.iter().map(|a| Predicate::cross_eq(a.clone())).collect(),
        )
    }
}

impl fmt::Display for IdentityRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.name)?;
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                f.write_str(" ∧ ")?;
            }
            write!(f, "{p}")?;
        }
        f.write_str(" → (e1 ≡ e2)")
    }
}

/// Minimal union–find over operand terms, keyed by a canonical
/// rendering of each term. Values compare by [`Value`]'s equality, so
/// two `Const("Chinese")` operands are the same node.
#[derive(Default)]
struct UnionFind {
    ids: HashMap<Term, usize>,
    parent: Vec<usize>,
}

#[derive(PartialEq, Eq, Hash, Clone)]
enum Term {
    Attr(Side, AttrName),
    Const(Value),
}

impl UnionFind {
    fn node(&mut self, o: &Operand) -> usize {
        let term = match o {
            Operand::Attr { side, attr } => Term::Attr(*side, attr.clone()),
            Operand::Const(v) => Term::Const(v.clone()),
        };
        if let Some(&id) = self.ids.get(&term) {
            return id;
        }
        let id = self.parent.len();
        self.parent.push(id);
        self.ids.insert(term, id);
        id
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema(name: &str, attrs: &[&str]) -> std::sync::Arc<Schema> {
        Schema::of_strs(name, attrs, &attrs[..1]).unwrap()
    }

    /// Paper r1: (e1.cuisine="Chinese") ∧ (e2.cuisine="Chinese") is well-formed.
    #[test]
    fn paper_r1_is_valid() {
        let r1 = IdentityRule::new(
            "r1",
            vec![
                Predicate::attr_const(Side::E1, "cuisine", CmpOp::Eq, "chinese"),
                Predicate::attr_const(Side::E2, "cuisine", CmpOp::Eq, "chinese"),
            ],
        );
        assert!(r1.is_ok());
    }

    /// Paper r2: only (e1.cuisine="Chinese") — not an identity rule.
    #[test]
    fn paper_r2_is_invalid() {
        let r2 = IdentityRule::new(
            "r2",
            vec![Predicate::attr_const(
                Side::E1,
                "cuisine",
                CmpOp::Eq,
                "chinese",
            )],
        );
        assert_eq!(
            r2.unwrap_err(),
            IdentityRuleError::UnconstrainedAttribute {
                attr: AttrName::new("cuisine")
            }
        );
    }

    #[test]
    fn cross_equality_is_valid() {
        assert!(IdentityRule::new("k", vec![Predicate::cross_eq("name")]).is_ok());
    }

    #[test]
    fn different_constants_do_not_connect() {
        // e1.c = "x" ∧ e2.c = "y" leaves e1.c and e2.c unconnected.
        let r = IdentityRule::new(
            "bad",
            vec![
                Predicate::attr_const(Side::E1, "c", CmpOp::Eq, "x"),
                Predicate::attr_const(Side::E2, "c", CmpOp::Eq, "y"),
            ],
        );
        assert!(r.is_err());
    }

    #[test]
    fn inequality_predicates_do_not_connect() {
        let r = IdentityRule::new(
            "bad",
            vec![Predicate::new(
                Operand::attr(Side::E1, "n"),
                CmpOp::Lt,
                Operand::attr(Side::E2, "n"),
            )],
        );
        assert!(r.is_err());
    }

    #[test]
    fn empty_rule_rejected() {
        assert_eq!(
            IdentityRule::new("e", vec![]).unwrap_err(),
            IdentityRuleError::Empty
        );
    }

    #[test]
    fn transitive_connection_through_cross_attr() {
        // e1.a = e2.b ∧ e1.b = e2.a ∧ e1.a = e1.b connects everything.
        let r = IdentityRule::new(
            "t",
            vec![
                Predicate::new(
                    Operand::attr(Side::E1, "a"),
                    CmpOp::Eq,
                    Operand::attr(Side::E2, "b"),
                ),
                Predicate::new(
                    Operand::attr(Side::E1, "b"),
                    CmpOp::Eq,
                    Operand::attr(Side::E2, "a"),
                ),
                Predicate::new(
                    Operand::attr(Side::E1, "a"),
                    CmpOp::Eq,
                    Operand::attr(Side::E1, "b"),
                ),
            ],
        );
        assert!(r.is_ok());
    }

    #[test]
    fn eval_three_valued() {
        let s1 = schema("R", &["name", "cuisine"]);
        let s2 = schema("S", &["name", "cuisine"]);
        let rule = IdentityRule::new(
            "k",
            vec![Predicate::cross_eq("name"), Predicate::cross_eq("cuisine")],
        )
        .unwrap();
        let a = Tuple::of_strs(&["tc", "chinese"]);
        let b = Tuple::of_strs(&["tc", "chinese"]);
        assert_eq!(rule.eval(&s1, &a, &s2, &b), Some(true));
        let c = Tuple::of_strs(&["tc", "indian"]);
        assert_eq!(rule.eval(&s1, &a, &s2, &c), Some(false));
        let d = Tuple::new(vec![Value::str("tc"), Value::Null]);
        assert_eq!(rule.eval(&s1, &a, &s2, &d), None);
        // Definite falsity wins over unknown.
        let e = Tuple::new(vec![Value::str("zz"), Value::Null]);
        assert_eq!(rule.eval(&s1, &a, &s2, &e), Some(false));
    }

    #[test]
    fn key_equivalence_builder() {
        let rule =
            IdentityRule::key_equivalence(&[AttrName::new("name"), AttrName::new("city")]).unwrap();
        assert_eq!(rule.predicates().len(), 2);
        assert!(rule.validate().is_ok());
    }

    #[test]
    fn attributes_lists_unique_names() {
        let rule = IdentityRule::new(
            "k",
            vec![Predicate::cross_eq("name"), Predicate::cross_eq("name")],
        )
        .unwrap();
        assert_eq!(rule.attributes(), vec![AttrName::new("name")]);
    }

    #[test]
    fn display_shows_implication() {
        let rule = IdentityRule::new("k", vec![Predicate::cross_eq("name")]).unwrap();
        assert_eq!(rule.to_string(), "k: e1.name = e2.name → (e1 ≡ e2)");
    }
}
