//! A textual rule language for DBA-supplied knowledge.
//!
//! The paper's knowledge — ILFDs, identity rules, distinctness rules
//! — is "asserted by the database administrator … who has a better
//! understanding of the integrated domain" (§3.2). This module gives
//! that assertion a concrete, file-friendly syntax:
//!
//! ```text
//! # ILFDs: attribute conditions on one entity
//! speciality = "hunan" -> cuisine = "chinese"
//! name = "itsgreek" & county = "ramsey" -> speciality = "gyros"
//!
//! # Identity rules: predicates over a pair, concluding e1 == e2
//! e1.name = e2.name & e1.cuisine = e2.cuisine -> e1 == e2
//! e1.cuisine = "chinese" & e2.cuisine = "chinese" -> e1 == e2
//!
//! # Distinctness rules: concluding e1 != e2
//! e1.speciality = "mughalai" & e2.cuisine != "indian" -> e1 != e2
//! ```
//!
//! One statement per line; `#` starts a comment; bare words, quoted
//! strings, and integers are literals. The statement kind is decided
//! by its conclusion: `e1 == e2` (identity), `e1 != e2`
//! (distinctness), or attribute assignments (ILFD). Identity rules
//! are validated against the §3.2 well-formedness condition at parse
//! time.

// DBA-supplied input must never bring the process down: every parse
// failure is a typed `ParseError` with line/column context.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;

use eid_ilfd::{Ilfd, IlfdSet, PropSymbol, SymbolSet};
use eid_relational::Value;

use crate::distinctness::DistinctnessRule;
use crate::identity::IdentityRule;
use crate::pred::{CmpOp, Operand, Predicate, Side};
use crate::rulebase::RuleBase;

/// A parse error with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

/// One parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// An instance-level functional dependency.
    Ilfd(Ilfd),
    /// An identity rule (`… -> e1 == e2`).
    Identity(IdentityRule),
    /// A distinctness rule (`… -> e1 != e2`).
    Distinctness(DistinctnessRule),
}

/// The parsed contents of a rules file.
#[derive(Debug, Clone, Default)]
pub struct RuleFile {
    /// All parsed statements, in source order.
    pub statements: Vec<Statement>,
}

impl RuleFile {
    /// The ILFDs, in source order.
    pub fn ilfds(&self) -> IlfdSet {
        self.statements
            .iter()
            .filter_map(|s| match s {
                Statement::Ilfd(i) => Some(i.clone()),
                _ => None,
            })
            .collect()
    }

    /// The identity and distinctness rules as a [`RuleBase`].
    pub fn rule_base(&self) -> RuleBase {
        let mut rb = RuleBase::new();
        for s in &self.statements {
            match s {
                Statement::Identity(r) => {
                    rb.add_identity(r.clone());
                }
                Statement::Distinctness(r) => {
                    rb.add_distinctness(r.clone());
                }
                Statement::Ilfd(_) => {}
            }
        }
        rb
    }
}

/// Renders an ILFD in the parser's source syntax, so knowledge bases
/// can be written back out (`parse_rules ∘ to_source` is identity).
pub fn ilfd_to_source(ilfd: &Ilfd) -> String {
    let cond = |s: &PropSymbol| -> String {
        match &s.value {
            Value::Int(i) => format!("{} = {}", s.attr, i),
            v => format!("{} = \"{}\"", s.attr, v),
        }
    };
    let ante: Vec<String> = ilfd.antecedent().iter().map(cond).collect();
    let cons: Vec<String> = ilfd.consequent().iter().map(cond).collect();
    format!("{} -> {}", ante.join(" & "), cons.join(" & "))
}

/// Renders a whole ILFD set as a rules file.
pub fn ilfds_to_source(f: &IlfdSet) -> String {
    let mut out = String::new();
    for i in f.iter() {
        out.push_str(&ilfd_to_source(i));
        out.push('\n');
    }
    out
}

/// Parses a whole rules file.
pub fn parse_rules(text: &str) -> Result<RuleFile, ParseError> {
    let mut file = RuleFile::default();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        };
        if line.trim().is_empty() {
            continue;
        }
        file.statements.push(parse_statement(line, line_no)?);
    }
    Ok(file)
}

/// Parses a single statement (no comments, non-empty).
pub fn parse_statement(line: &str, line_no: usize) -> Result<Statement, ParseError> {
    let mut p = Parser::new(line, line_no);
    let stmt = p.statement()?;
    p.expect_end()?;
    Ok(stmt)
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Eq,    // =
    EqEq,  // ==
    Ne,    // !=
    Lt,    // <
    Le,    // <=
    Gt,    // >
    Ge,    // >=
    And,   // &
    Arrow, // ->
    Dot,   // .
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Eq => write!(f, "`=`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::Ne => write!(f, "`!=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::And => write!(f, "`&`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::Dot => write!(f, "`.`"),
        }
    }
}

struct Parser {
    tokens: Vec<(Tok, usize)>, // (token, 1-based column)
    pos: usize,
    line: usize,
    len: usize,
}

impl Parser {
    fn new(text: &str, line: usize) -> Parser {
        let mut tokens = Vec::new();
        let bytes: Vec<char> = text.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            let col = i + 1;
            match c {
                ' ' | '\t' => {
                    i += 1;
                }
                '&' => {
                    tokens.push((Tok::And, col));
                    i += 1;
                }
                '.' => {
                    tokens.push((Tok::Dot, col));
                    i += 1;
                }
                '-' if bytes.get(i + 1) == Some(&'>') => {
                    tokens.push((Tok::Arrow, col));
                    i += 2;
                }
                '=' if bytes.get(i + 1) == Some(&'=') => {
                    tokens.push((Tok::EqEq, col));
                    i += 2;
                }
                '=' => {
                    tokens.push((Tok::Eq, col));
                    i += 1;
                }
                '!' if bytes.get(i + 1) == Some(&'=') => {
                    tokens.push((Tok::Ne, col));
                    i += 2;
                }
                '<' if bytes.get(i + 1) == Some(&'=') => {
                    tokens.push((Tok::Le, col));
                    i += 2;
                }
                '<' => {
                    tokens.push((Tok::Lt, col));
                    i += 1;
                }
                '>' if bytes.get(i + 1) == Some(&'=') => {
                    tokens.push((Tok::Ge, col));
                    i += 2;
                }
                '>' => {
                    tokens.push((Tok::Gt, col));
                    i += 1;
                }
                '"' => {
                    let mut s = String::new();
                    i += 1;
                    let mut closed = false;
                    while i < bytes.len() {
                        if bytes[i] == '"' {
                            closed = true;
                            i += 1;
                            break;
                        }
                        s.push(bytes[i]);
                        i += 1;
                    }
                    if !closed {
                        tokens.push((Tok::Str(s), col)); // flagged at parse via expect_end? no:
                        tokens.push((Tok::Ident("\u{0}unterminated".into()), col));
                    } else {
                        tokens.push((Tok::Str(s), col));
                    }
                }
                c if c.is_ascii_digit()
                    || (c == '-' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
                {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text: String = bytes[start..i].iter().collect();
                    tokens.push((Tok::Int(text.parse().unwrap_or(0)), col));
                }
                c if c.is_alphanumeric() || c == '_' => {
                    let start = i;
                    while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                        i += 1;
                    }
                    let text: String = bytes[start..i].iter().collect();
                    tokens.push((Tok::Ident(text), col));
                }
                other => {
                    tokens.push((Tok::Ident(format!("\u{0}bad:{other}")), col));
                    i += 1;
                }
            }
        }
        let len = text.chars().count();
        Parser {
            tokens,
            pos: 0,
            line,
            len,
        }
    }

    fn err(&self, column: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            column,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&(Tok, usize)> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<(Tok, usize)> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        match self.peek() {
            None => Ok(()),
            Some((t, col)) => Err(self.err(*col, format!("unexpected {t} after statement"))),
        }
    }

    /// statement := term-list "->" conclusion
    fn statement(&mut self) -> Result<Statement, ParseError> {
        let terms = self.term_list()?;
        match self.next() {
            Some((Tok::Arrow, _)) => {}
            Some((t, col)) => return Err(self.err(col, format!("expected `->`, found {t}"))),
            None => return Err(self.err(self.len + 1, "expected `->`")),
        }
        // Conclusion decides the statement kind.
        let save = self.pos;
        if let Some(side) = self.try_entity_conclusion()? {
            let predicates = terms
                .into_iter()
                .map(|t| t.into_predicate(self.line))
                .collect::<Result<Vec<_>, _>>()?;
            return match side {
                EntityConclusion::Identity => {
                    let rule = IdentityRule::new(format!("line {}", self.line), predicates)
                        .map_err(|e| self.err(1, e.to_string()))?;
                    Ok(Statement::Identity(rule))
                }
                EntityConclusion::Distinctness => {
                    let rule = DistinctnessRule::new(format!("line {}", self.line), predicates)
                        .map_err(|e| self.err(1, e.to_string()))?;
                    Ok(Statement::Distinctness(rule))
                }
            };
        }
        self.pos = save;
        // ILFD conclusion: assignments.
        let conclusions = self.term_list()?;
        let ante = terms
            .into_iter()
            .map(|t| t.into_symbol(self.line))
            .collect::<Result<Vec<_>, _>>()?;
        let cons = conclusions
            .into_iter()
            .map(|t| t.into_symbol(self.line))
            .collect::<Result<Vec<_>, _>>()?;
        if cons.is_empty() {
            return Err(self.err(self.len + 1, "ILFD needs a consequent"));
        }
        Ok(Statement::Ilfd(Ilfd::new(
            SymbolSet::from_symbols(ante),
            SymbolSet::from_symbols(cons),
        )))
    }

    /// Tries `e1 == e2` / `e1 != e2` (in either order).
    fn try_entity_conclusion(&mut self) -> Result<Option<EntityConclusion>, ParseError> {
        let save = self.pos;
        let first = match self.next() {
            Some((Tok::Ident(s), _)) if s == "e1" || s == "e2" => s,
            _ => {
                self.pos = save;
                return Ok(None);
            }
        };
        let op = match self.next() {
            Some((Tok::EqEq, _)) => EntityConclusion::Identity,
            Some((Tok::Ne, _)) => EntityConclusion::Distinctness,
            _ => {
                self.pos = save;
                return Ok(None);
            }
        };
        match self.next() {
            Some((Tok::Ident(s), col)) if (s == "e1" || s == "e2") && s != first => {
                let _ = col;
                Ok(Some(op))
            }
            Some((_, col)) => Err(self.err(col, "conclusion must relate e1 and e2")),
            None => Err(self.err(self.len + 1, "conclusion must relate e1 and e2")),
        }
    }

    /// term-list := term ("&" term)*
    fn term_list(&mut self) -> Result<Vec<Term>, ParseError> {
        let mut out = vec![self.term()?];
        while matches!(self.peek(), Some((Tok::And, _))) {
            self.next();
            out.push(self.term()?);
        }
        Ok(out)
    }

    /// term := operand cmp-op operand
    fn term(&mut self) -> Result<Term, ParseError> {
        let lhs = self.operand()?;
        let (op, col) = match self.next() {
            Some((Tok::Eq, c)) => (CmpOp::Eq, c),
            Some((Tok::Ne, c)) => (CmpOp::Ne, c),
            Some((Tok::Lt, c)) => (CmpOp::Lt, c),
            Some((Tok::Le, c)) => (CmpOp::Le, c),
            Some((Tok::Gt, c)) => (CmpOp::Gt, c),
            Some((Tok::Ge, c)) => (CmpOp::Ge, c),
            Some((t, c)) => return Err(self.err(c, format!("expected comparison, found {t}"))),
            None => return Err(self.err(self.len + 1, "expected comparison")),
        };
        let _ = col;
        let rhs = self.operand()?;
        Ok(Term { lhs, op, rhs })
    }

    /// operand := ("e1"|"e2") "." ident | ident | string | int
    fn operand(&mut self) -> Result<RawOperand, ParseError> {
        match self.next() {
            Some((Tok::Ident(s), col)) if s.starts_with('\u{0}') => {
                Err(self.err(col, "unrecognized or unterminated token"))
            }
            Some((Tok::Ident(s), col)) if s == "e1" || s == "e2" => {
                match (self.next(), self.next()) {
                    (Some((Tok::Dot, _)), Some((Tok::Ident(attr), _))) => Ok(RawOperand::Attr {
                        side: if s == "e1" { Side::E1 } else { Side::E2 },
                        attr,
                    }),
                    _ => Err(self.err(col, "expected `.attribute` after entity reference")),
                }
            }
            Some((Tok::Ident(s), _)) => Ok(RawOperand::Bare(s)),
            Some((Tok::Str(s), _)) => Ok(RawOperand::Literal(Value::str(s))),
            Some((Tok::Int(i), _)) => Ok(RawOperand::Literal(Value::Int(i))),
            Some((t, col)) => Err(self.err(col, format!("expected operand, found {t}"))),
            None => Err(self.err(self.len + 1, "expected operand")),
        }
    }
}

enum EntityConclusion {
    Identity,
    Distinctness,
}

/// An operand before we know whether the statement is an ILFD
/// (bare identifiers are attribute names) or a pair rule (bare
/// identifiers on the right of a comparison are string literals).
#[derive(Debug, Clone)]
enum RawOperand {
    Attr { side: Side, attr: String },
    Bare(String),
    Literal(Value),
}

struct Term {
    lhs: RawOperand,
    op: CmpOp,
    rhs: RawOperand,
}

impl Term {
    /// Interprets the term as a pair predicate (identity/distinctness
    /// statement): `e_i.attr op (e_j.attr | literal)`.
    fn into_predicate(self, line: usize) -> Result<Predicate, ParseError> {
        let err = |m: &str| ParseError {
            line,
            column: 1,
            message: m.to_string(),
        };
        let lhs = match self.lhs {
            RawOperand::Attr { side, attr } => Operand::attr(side, attr.as_str()),
            RawOperand::Bare(_) | RawOperand::Literal(_) => {
                return Err(err(
                    "pair-rule predicates must start with e1.attr or e2.attr",
                ))
            }
        };
        let rhs = match self.rhs {
            RawOperand::Attr { side, attr } => Operand::attr(side, attr.as_str()),
            RawOperand::Bare(s) => Operand::constant(Value::str(s)),
            RawOperand::Literal(v) => Operand::Const(v),
        };
        Ok(Predicate::new(lhs, self.op, rhs))
    }

    /// Interprets the term as an ILFD condition: `attr = value`.
    fn into_symbol(self, line: usize) -> Result<PropSymbol, ParseError> {
        let err = |m: String| ParseError {
            line,
            column: 1,
            message: m,
        };
        if self.op != CmpOp::Eq {
            return Err(err("ILFD conditions must use `=`".into()));
        }
        let attr = match self.lhs {
            RawOperand::Bare(s) => s,
            RawOperand::Attr { .. } => {
                return Err(err(
                    "ILFD conditions are on one entity; drop the e1./e2. prefix".into(),
                ))
            }
            RawOperand::Literal(v) => {
                return Err(err(format!("expected attribute name, found literal {v}")))
            }
        };
        let value = match self.rhs {
            RawOperand::Literal(v) => v,
            RawOperand::Bare(s) => Value::str(s),
            RawOperand::Attr { .. } => return Err(err("ILFD values must be constants".into())),
        };
        Ok(PropSymbol::new(attr.as_str(), value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_ilfd() {
        let f = parse_rules(r#"speciality = "hunan" -> cuisine = "chinese""#).unwrap();
        assert_eq!(f.statements.len(), 1);
        assert_eq!(
            f.statements[0],
            Statement::Ilfd(Ilfd::of_strs(
                &[("speciality", "hunan")],
                &[("cuisine", "chinese")]
            ))
        );
    }

    #[test]
    fn parses_bare_words_as_strings() {
        let f = parse_rules("speciality = hunan -> cuisine = chinese").unwrap();
        assert_eq!(
            f.ilfds().as_slice()[0],
            Ilfd::of_strs(&[("speciality", "hunan")], &[("cuisine", "chinese")])
        );
    }

    #[test]
    fn parses_conjunctive_ilfd() {
        let f = parse_rules(r#"name = "itsgreek" & county = "ramsey" -> speciality = "gyros""#)
            .unwrap();
        let i = f.ilfds();
        assert_eq!(i.as_slice()[0].antecedent().len(), 2);
    }

    #[test]
    fn parses_multi_consequent_ilfd() {
        let f = parse_rules("a = 1 -> b = 2 & c = 3").unwrap();
        let i = f.ilfds();
        assert_eq!(i.as_slice()[0].consequent().len(), 2);
    }

    #[test]
    fn parses_integer_values() {
        let f = parse_rules("zip = 55455 -> city = minneapolis").unwrap();
        let ilfds = f.ilfds();
        let sym = ilfds.as_slice()[0]
            .antecedent()
            .iter()
            .next()
            .unwrap()
            .clone();
        assert_eq!(sym.value, Value::Int(55455));
    }

    #[test]
    fn parses_identity_rule() {
        let f = parse_rules("e1.name = e2.name & e1.cuisine = e2.cuisine -> e1 == e2").unwrap();
        match &f.statements[0] {
            Statement::Identity(rule) => {
                assert_eq!(rule.predicates().len(), 2);
                assert!(rule.validate().is_ok());
            }
            other => panic!("expected identity, got {other:?}"),
        }
    }

    #[test]
    fn parses_paper_r1_constant_identity() {
        let f =
            parse_rules(r#"e1.cuisine = "chinese" & e2.cuisine = "chinese" -> e1 == e2"#).unwrap();
        assert!(matches!(f.statements[0], Statement::Identity(_)));
    }

    #[test]
    fn rejects_ill_formed_identity_rule() {
        // Paper's r2: only e1 constrained.
        let err = parse_rules(r#"e1.cuisine = "chinese" -> e1 == e2"#).unwrap_err();
        assert!(err.message.contains("imply"), "{err}");
    }

    #[test]
    fn parses_distinctness_rule() {
        let f = parse_rules(r#"e1.speciality = "mughalai" & e2.cuisine != "indian" -> e1 != e2"#)
            .unwrap();
        match &f.statements[0] {
            Statement::Distinctness(rule) => {
                assert_eq!(rule.predicates().len(), 2);
                // It round-trips to the paper's I4.
                assert_eq!(
                    rule.to_ilfd(),
                    Some(Ilfd::of_strs(
                        &[("speciality", "mughalai")],
                        &[("cuisine", "indian")]
                    ))
                );
            }
            other => panic!("expected distinctness, got {other:?}"),
        }
    }

    #[test]
    fn parses_ordering_predicates() {
        let f = parse_rules("e1.n <= e2.n & e1.name = e2.name -> e1 != e2").unwrap();
        assert!(matches!(f.statements[0], Statement::Distinctness(_)));
    }

    #[test]
    fn comments_and_blank_lines() {
        let text = r#"
# the ILFD family
speciality = hunan -> cuisine = chinese   # inline comment

speciality = gyros -> cuisine = greek
"#;
        let f = parse_rules(text).unwrap();
        assert_eq!(f.statements.len(), 2);
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_rules("speciality hunan -> cuisine = chinese").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.column > 1);
        assert!(err.to_string().contains("1:"));
    }

    #[test]
    fn missing_arrow_is_an_error() {
        let err = parse_rules("speciality = hunan").unwrap_err();
        assert!(err.message.contains("->"), "{err}");
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let err = parse_rules("a = 1 -> b = 2 extra").unwrap_err();
        assert!(
            err.message.contains("expected comparison") || err.message.contains("unexpected"),
            "{err}"
        );
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(parse_rules(r#"a = "oops -> b = 2"#).is_err());
    }

    #[test]
    fn ilfd_rejects_inequality_conditions() {
        let err = parse_rules("a != 1 -> b = 2").unwrap_err();
        assert!(err.message.contains('='), "{err}");
    }

    #[test]
    fn rule_file_splits_into_ilfds_and_rule_base() {
        let text = r#"
speciality = hunan -> cuisine = chinese
e1.name = e2.name -> e1 == e2
e1.speciality = "mughalai" & e2.cuisine != "indian" -> e1 != e2
"#;
        let f = parse_rules(text).unwrap();
        assert_eq!(f.ilfds().len(), 1);
        let rb = f.rule_base();
        assert_eq!(rb.identity_rules().len(), 1);
        assert_eq!(rb.distinctness_rules().len(), 1);
    }

    /// The paper's complete Example-3 knowledge, as a rules file.
    #[test]
    fn example3_knowledge_file_parses() {
        let text = r#"
speciality = hunan    -> cuisine = chinese
speciality = sichuan  -> cuisine = chinese
speciality = gyros    -> cuisine = greek
speciality = mughalai -> cuisine = indian
name = twincities & street = co_b2        -> speciality = hunan
name = anjuman & street = le_salle_ave    -> speciality = mughalai
street = front_ave                        -> county = ramsey
name = itsgreek & county = ramsey         -> speciality = gyros
"#;
        let f = parse_rules(text).unwrap();
        assert_eq!(f.ilfds().len(), 8);
        // The parsed set is logically identical to the hand-built one:
        // it implies the derived I9.
        let i9 = Ilfd::of_strs(
            &[("name", "itsgreek"), ("street", "front_ave")],
            &[("speciality", "gyros")],
        );
        assert!(eid_ilfd::closure::implies(&f.ilfds(), &i9));
    }
}
