//! Pair predicates — the building blocks of identity and
//! distinctness rules (§3.2).
//!
//! A predicate compares either two attribute references or an
//! attribute reference with a constant, using one of
//! `{=, <, >, ≤, ≥, ≠}`. Attribute references name which of the two
//! entities (`e₁` from relation `R`, `e₂` from relation `S`) they
//! read. Evaluation is three-valued: a predicate touching a NULL (or
//! schema-missing) value is *unknown*.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use eid_relational::{AttrName, Schema, TriBool, Tuple, Value};

/// Comparison operators admitted by the rule language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CmpOp {
    /// Applies the operator to an ordering.
    pub(crate) fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "≠",
            CmpOp::Lt => "<",
            CmpOp::Le => "≤",
            CmpOp::Gt => ">",
            CmpOp::Ge => "≥",
        };
        f.write_str(s)
    }
}

/// Which of the two entities an attribute reference reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Side {
    /// `e₁` — the tuple from the first relation.
    E1,
    /// `e₂` — the tuple from the second relation.
    E2,
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Side::E1 => "e1",
            Side::E2 => "e2",
        })
    }
}

/// One side of a predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// An attribute of `e₁` or `e₂`.
    Attr {
        /// Which entity.
        side: Side,
        /// Which attribute.
        attr: AttrName,
    },
    /// A constant value (non-NULL).
    Const(Value),
}

impl Operand {
    /// `eᵢ.attr`.
    pub fn attr(side: Side, attr: impl Into<AttrName>) -> Self {
        Operand::Attr {
            side,
            attr: attr.into(),
        }
    }

    /// A constant.
    pub fn constant(v: impl Into<Value>) -> Self {
        Operand::Const(v.into())
    }

    /// Resolves this operand against a tuple pair; `None` when the
    /// value is NULL or the attribute is not in the schema.
    fn resolve<'a>(
        &'a self,
        s1: &Schema,
        t1: &'a Tuple,
        s2: &Schema,
        t2: &'a Tuple,
    ) -> Option<&'a Value> {
        match self {
            Operand::Const(v) => Some(v),
            Operand::Attr { side, attr } => {
                let v = match side {
                    Side::E1 => t1.value_of(s1, attr),
                    Side::E2 => t2.value_of(s2, attr),
                }?;
                (!v.is_null()).then_some(v)
            }
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Attr { side, attr } => write!(f, "{side}.{attr}"),
            Operand::Const(v) => write!(f, "\"{v}\""),
        }
    }
}

/// A single comparison predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Predicate {
    /// Left operand.
    pub lhs: Operand,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: Operand,
}

impl Predicate {
    /// Builds a predicate.
    pub fn new(lhs: Operand, op: CmpOp, rhs: Operand) -> Self {
        Predicate { lhs, op, rhs }
    }

    /// `e1.attr = e2.attr` — the cross-equality shape extended-key
    /// equivalence is made of.
    pub fn cross_eq(attr: impl Into<AttrName>) -> Self {
        let attr = attr.into();
        Predicate::new(
            Operand::attr(Side::E1, attr.clone()),
            CmpOp::Eq,
            Operand::attr(Side::E2, attr),
        )
    }

    /// `side.attr op constant`.
    pub fn attr_const(
        side: Side,
        attr: impl Into<AttrName>,
        op: CmpOp,
        value: impl Into<Value>,
    ) -> Self {
        Predicate::new(Operand::attr(side, attr), op, Operand::constant(value))
    }

    /// Three-valued evaluation over a tuple pair: `Some(bool)` when
    /// both operands are known, `None` otherwise. (Equivalent to
    /// [`Predicate::eval_tri`]; kept for the `Option<bool>`
    /// convention used across the engine.)
    pub fn eval(&self, s1: &Schema, t1: &Tuple, s2: &Schema, t2: &Tuple) -> Option<bool> {
        let l = self.lhs.resolve(s1, t1, s2, t2)?;
        let r = self.rhs.resolve(s1, t1, s2, t2)?;
        let ord = l.compare(r)?;
        Some(self.op.test(ord))
    }

    /// [`Predicate::eval`] in Kleene three-valued logic.
    pub fn eval_tri(&self, s1: &Schema, t1: &Tuple, s2: &Schema, t2: &Tuple) -> TriBool {
        TriBool::from_option(self.eval(s1, t1, s2, t2))
    }

    /// The attribute references `(side, attr)` this predicate mentions.
    pub fn mentioned(&self) -> Vec<(Side, AttrName)> {
        let mut out = Vec::new();
        for o in [&self.lhs, &self.rhs] {
            if let Operand::Attr { side, attr } = o {
                out.push((*side, attr.clone()));
            }
        }
        out
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_relational::Schema;

    fn schemas() -> (std::sync::Arc<Schema>, std::sync::Arc<Schema>) {
        (
            Schema::of_strs("R", &["name", "cuisine"], &["name"]).unwrap(),
            Schema::of_strs("S", &["name", "city"], &["name"]).unwrap(),
        )
    }

    #[test]
    fn cross_eq_matches_equal_values() {
        let (s1, s2) = schemas();
        let p = Predicate::cross_eq("name");
        let t1 = Tuple::of_strs(&["villagewok", "chinese"]);
        let t2 = Tuple::of_strs(&["villagewok", "mpls"]);
        assert_eq!(p.eval(&s1, &t1, &s2, &t2), Some(true));
        let t3 = Tuple::of_strs(&["other", "mpls"]);
        assert_eq!(p.eval(&s1, &t1, &s2, &t3), Some(false));
    }

    #[test]
    fn null_makes_predicate_unknown() {
        let (s1, s2) = schemas();
        let p = Predicate::cross_eq("name");
        let t1 = Tuple::new(vec![Value::Null, Value::str("chinese")]);
        let t2 = Tuple::of_strs(&["villagewok", "mpls"]);
        assert_eq!(p.eval(&s1, &t1, &s2, &t2), None);
    }

    #[test]
    fn missing_attribute_is_unknown() {
        let (s1, s2) = schemas();
        let p = Predicate::new(
            Operand::attr(Side::E1, "city"), // R has no city
            CmpOp::Eq,
            Operand::constant("mpls"),
        );
        let t1 = Tuple::of_strs(&["a", "b"]);
        let t2 = Tuple::of_strs(&["c", "d"]);
        assert_eq!(p.eval(&s1, &t1, &s2, &t2), None);
    }

    #[test]
    fn constant_comparisons() {
        let (s1, s2) = schemas();
        let t1 = Tuple::of_strs(&["a", "chinese"]);
        let t2 = Tuple::of_strs(&["b", "mpls"]);
        let p = Predicate::attr_const(Side::E1, "cuisine", CmpOp::Eq, "chinese");
        assert_eq!(p.eval(&s1, &t1, &s2, &t2), Some(true));
        let p = Predicate::attr_const(Side::E2, "city", CmpOp::Ne, "mpls");
        assert_eq!(p.eval(&s1, &t1, &s2, &t2), Some(false));
    }

    #[test]
    fn ordering_operators() {
        let s = Schema::new(
            "N",
            vec![eid_relational::Attribute::int("n")],
            vec![vec![AttrName::new("n")]],
        )
        .unwrap();
        let t1 = Tuple::new(vec![Value::int(3)]);
        let t2 = Tuple::new(vec![Value::int(5)]);
        let lt = Predicate::new(
            Operand::attr(Side::E1, "n"),
            CmpOp::Lt,
            Operand::attr(Side::E2, "n"),
        );
        assert_eq!(lt.eval(&s, &t1, &s, &t2), Some(true));
        let ge = Predicate::new(
            Operand::attr(Side::E1, "n"),
            CmpOp::Ge,
            Operand::attr(Side::E2, "n"),
        );
        assert_eq!(ge.eval(&s, &t1, &s, &t2), Some(false));
        let le = Predicate::new(
            Operand::attr(Side::E1, "n"),
            CmpOp::Le,
            Operand::constant(3i64),
        );
        assert_eq!(le.eval(&s, &t1, &s, &t2), Some(true));
    }

    #[test]
    fn mentioned_lists_attr_refs() {
        let p = Predicate::cross_eq("name");
        let m = p.mentioned();
        assert_eq!(m.len(), 2);
        assert!(m.contains(&(Side::E1, AttrName::new("name"))));
        assert!(m.contains(&(Side::E2, AttrName::new("name"))));
    }

    #[test]
    fn display_forms() {
        let p = Predicate::attr_const(Side::E1, "cuisine", CmpOp::Eq, "chinese");
        assert_eq!(p.to_string(), "e1.cuisine = \"chinese\"");
        assert_eq!(Predicate::cross_eq("x").to_string(), "e1.x = e2.x");
    }
}
