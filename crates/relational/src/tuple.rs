//! Tuples: fixed-arity value vectors tied to a schema by position.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::attr::AttrName;
use crate::schema::Schema;
use crate::value::Value;

/// A tuple of attribute values.
///
/// Tuples are immutable and cheaply cloneable (`Arc<[Value]>`), and
/// are interpreted against a [`Schema`] positionally — the tuple type
/// itself does not carry the schema, which keeps relations compact.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tuple {
    values: Arc<[Value]>,
}

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple {
            values: values.into(),
        }
    }

    /// Builds a tuple of string values — the shape of every tuple in
    /// the paper's examples.
    pub fn of_strs(values: &[&str]) -> Self {
        Tuple::new(values.iter().map(|v| Value::str(*v)).collect())
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value at `position`.
    pub fn get(&self, position: usize) -> &Value {
        &self.values[position]
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value of `attr` under `schema`, or `None` if the schema does
    /// not define it.
    pub fn value_of(&self, schema: &Schema, attr: &AttrName) -> Option<&Value> {
        schema.try_position(attr).map(|p| &self.values[p])
    }

    /// Projects the values at `positions` into a new tuple.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple::new(positions.iter().map(|&p| self.values[p].clone()).collect())
    }

    /// A new tuple with `extra` values appended.
    pub fn extend_with(&self, extra: &[Value]) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + extra.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(extra);
        Tuple::new(values)
    }

    /// A new tuple with the value at `position` replaced.
    pub fn with_value(&self, position: usize, value: Value) -> Tuple {
        let mut values = self.values.to_vec();
        values[position] = value;
        Tuple::new(values)
    }

    /// Concatenates two tuples (join output).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple::new(values)
    }

    /// Whether any value is NULL.
    pub fn has_null(&self) -> bool {
        self.values.iter().any(Value::is_null)
    }

    /// Whether the values at `positions` are all non-NULL.
    pub fn non_null_at(&self, positions: &[usize]) -> bool {
        positions.iter().all(|&p| !self.values[p].is_null())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    #[test]
    fn of_strs_and_get() {
        let t = Tuple::of_strs(&["villagewok", "wash_ave", "chinese"]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), &Value::str("villagewok"));
    }

    #[test]
    fn value_of_resolves_by_name() {
        let s = Schema::of_strs("R", &["name", "cuisine"], &["name"]).unwrap();
        let t = Tuple::of_strs(&["ching", "chinese"]);
        assert_eq!(
            t.value_of(&s, &AttrName::new("cuisine")),
            Some(&Value::str("chinese"))
        );
        assert_eq!(t.value_of(&s, &AttrName::new("missing")), None);
    }

    #[test]
    fn project_reorders() {
        let t = Tuple::of_strs(&["a", "b", "c"]);
        let p = t.project(&[2, 0]);
        assert_eq!(p, Tuple::of_strs(&["c", "a"]));
    }

    #[test]
    fn extend_and_concat() {
        let t = Tuple::of_strs(&["a"]);
        let e = t.extend_with(&[Value::Null]);
        assert_eq!(e.arity(), 2);
        assert!(e.get(1).is_null());
        let c = t.concat(&Tuple::of_strs(&["b"]));
        assert_eq!(c, Tuple::of_strs(&["a", "b"]));
    }

    #[test]
    fn with_value_replaces_one_slot() {
        let t = Tuple::of_strs(&["a", "b"]);
        let u = t.with_value(1, Value::str("z"));
        assert_eq!(u, Tuple::of_strs(&["a", "z"]));
        // Original is untouched.
        assert_eq!(t.get(1), &Value::str("b"));
    }

    #[test]
    fn null_probes() {
        let t = Tuple::new(vec![Value::str("a"), Value::Null]);
        assert!(t.has_null());
        assert!(t.non_null_at(&[0]));
        assert!(!t.non_null_at(&[0, 1]));
    }

    #[test]
    fn display_is_parenthesized() {
        let t = Tuple::new(vec![Value::str("a"), Value::Null]);
        assert_eq!(t.to_string(), "(a, null)");
    }

    #[test]
    fn from_iterator() {
        let t: Tuple = vec![Value::int(1), Value::int(2)].into_iter().collect();
        assert_eq!(t.arity(), 2);
    }
}
