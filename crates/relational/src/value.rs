//! Attribute values, including SQL-style `NULL`, and the comparison
//! semantics the paper's prototype relies on.
//!
//! The entity-identification engine follows the Prolog prototype of
//! Lim et al. (§6.2): missing information is represented by a `NULL`
//! value, and equality tests used for matching are **non-NULL
//! equality** — `NULL` never matches anything, not even another
//! `NULL`. Ordinary (`PartialEq`) equality on [`Value`] treats `Null`
//! as equal to `Null`, which is what relation storage and test
//! assertions want; use [`Value::non_null_eq`] for matching.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A single attribute value.
///
/// Values are cheap to clone: strings are reference-counted.
/// The variant set covers the domains that appear in database
/// integration workloads — symbolic constants (names, cuisines,
/// cities), integers (ids, counts), floats (currency after domain
/// resolution), and booleans.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Missing information. See the module docs for equality semantics.
    Null,
    /// A symbolic/string constant such as `"VillageWok"`.
    Str(Arc<str>),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float. `NaN` is not a legal attribute value; constructors
    /// normalize it to [`Value::Null`].
    Float(f64),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Builds an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Builds a float value, normalizing `NaN` to `Null`.
    pub fn float(f: f64) -> Self {
        if f.is_nan() {
            Value::Null
        } else {
            Value::Float(f)
        }
    }

    /// Builds a boolean value.
    pub fn bool(b: bool) -> Self {
        Value::Bool(b)
    }

    /// Returns `true` iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Non-NULL equality (the prototype's `non_null_eq` predicate):
    /// `true` iff both values are non-NULL and equal.
    ///
    /// This is the equality used throughout matching-table
    /// construction, so tuples with underivable extended-key
    /// attributes can never be matched on those attributes.
    pub fn non_null_eq(&self, other: &Value) -> bool {
        !self.is_null() && !other.is_null() && self == other
    }

    /// Three-valued comparison: `None` when either side is NULL (the
    /// comparison is *unknown*), otherwise the ordering of the two
    /// values. Values of different types are ordered by a fixed type
    /// rank (Str < Int < Float < Bool) so that sorting relations is
    /// total; cross-type comparisons never arise in well-typed
    /// relations.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }

    /// A total order over values used for sorting and indexing.
    /// `Null` sorts before everything.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Str(a), Str(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Bool(a), Bool(b)) => a.cmp(b),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Str(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Bool(_) => 4,
        }
    }

    /// The runtime type of this value, or `None` for NULL.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Str(_) => Some(ValueType::Str),
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Bool(_) => Some(ValueType::Bool),
        }
    }

    /// Borrows the string contents if this is a `Str` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer if this is an `Int` value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Renders the value the way the prototype prints it: `null` for
    /// NULL, bare text otherwise.
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Null => Cow::Borrowed("null"),
            Value::Str(s) => Cow::Borrowed(s),
            Value::Int(i) => Cow::Owned(i.to_string()),
            Value::Float(f) => Cow::Owned(format!("{f}")),
            Value::Bool(b) => Cow::Borrowed(if *b { "true" } else { "false" }),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Str(a), Str(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a.to_bits() == b.to_bits(),
            (Int(a), Float(b)) | (Float(b), Int(a)) => (*a as f64).to_bits() == b.to_bits(),
            (Bool(a), Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Str(s) => {
                1u8.hash(state);
                s.hash(state);
            }
            // Int and Float hash identically when numerically equal so
            // that `Int(2) == Float(2.0)` implies equal hashes.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

/// The type of a non-NULL [`Value`]. Schemas assign one to each
/// attribute; `Null` inhabits every type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    /// Symbolic/string constants.
    Str,
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats.
    Float,
    /// Booleans.
    Bool,
}

impl ValueType {
    /// Whether `value` is a legal instance of this type. NULL is legal
    /// for every type, and integers are accepted where floats are
    /// expected.
    pub fn admits(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (ValueType::Str, Value::Str(_))
                | (ValueType::Int, Value::Int(_))
                | (ValueType::Float, Value::Float(_) | Value::Int(_))
                | (ValueType::Bool, Value::Bool(_))
        )
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Str => "str",
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Bool => "bool",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_equals_null_under_partial_eq() {
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn non_null_eq_rejects_null_on_either_side() {
        assert!(!Value::Null.non_null_eq(&Value::Null));
        assert!(!Value::Null.non_null_eq(&Value::int(1)));
        assert!(!Value::int(1).non_null_eq(&Value::Null));
    }

    #[test]
    fn non_null_eq_accepts_equal_non_nulls() {
        assert!(Value::str("a").non_null_eq(&Value::str("a")));
        assert!(!Value::str("a").non_null_eq(&Value::str("b")));
        assert!(Value::int(7).non_null_eq(&Value::int(7)));
    }

    #[test]
    fn compare_is_unknown_with_null() {
        assert_eq!(Value::Null.compare(&Value::int(3)), None);
        assert_eq!(Value::int(3).compare(&Value::Null), None);
        assert_eq!(Value::int(3).compare(&Value::int(4)), Some(Ordering::Less));
    }

    #[test]
    fn int_float_numeric_equality_and_hash_agree() {
        let i = Value::int(2);
        let f = Value::float(2.0);
        assert_eq!(i, f);
        assert_eq!(hash_of(&i), hash_of(&f));
    }

    #[test]
    fn nan_normalizes_to_null() {
        assert!(Value::float(f64::NAN).is_null());
    }

    #[test]
    fn total_order_sorts_null_first() {
        let mut vs = [Value::str("b"), Value::Null, Value::str("a")];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::str("a"));
    }

    #[test]
    fn value_type_admits() {
        assert!(ValueType::Str.admits(&Value::str("x")));
        assert!(ValueType::Str.admits(&Value::Null));
        assert!(!ValueType::Str.admits(&Value::int(1)));
        assert!(ValueType::Float.admits(&Value::int(1)));
        assert!(!ValueType::Int.admits(&Value::float(1.5)));
    }

    #[test]
    fn render_matches_prototype_conventions() {
        assert_eq!(Value::Null.render(), "null");
        assert_eq!(Value::str("twincities").render(), "twincities");
        assert_eq!(Value::int(5).render(), "5");
        assert_eq!(Value::bool(true).render(), "true");
    }

    #[test]
    fn from_option_maps_none_to_null() {
        let v: Value = Option::<i64>::None.into();
        assert!(v.is_null());
        let v: Value = Some(3i64).into();
        assert_eq!(v, Value::int(3));
    }

    #[test]
    fn display_uses_render() {
        assert_eq!(format!("{}", Value::str("hi")), "hi");
        assert_eq!(format!("{}", Value::Null), "null");
    }

    #[test]
    fn value_type_display() {
        assert_eq!(ValueType::Str.to_string(), "str");
        assert_eq!(ValueType::Int.to_string(), "int");
        assert_eq!(ValueType::Float.to_string(), "float");
        assert_eq!(ValueType::Bool.to_string(), "bool");
    }
}
