//! Relational algebra over [`Relation`]s.
//!
//! These are the operators the paper's §4.2 construction needs:
//! selection, projection (set semantics), rename, extension, union,
//! equi-join (hash-based) and natural join, and left/right/full
//! **outer** joins (the integrated table is
//! `MT ⋈ R ⟗ S`, a full outer join). All operators return
//! key-unchecked derived relations.
//!
//! Join equality is **non-NULL equality** throughout (`NULL` never
//! joins with `NULL`), matching the prototype's `non_null_eq`
//! predicate; outer joins then re-admit the unjoined tuples padded
//! with NULLs.

use std::collections::HashMap;
use std::sync::Arc;

use crate::attr::AttrName;
use crate::error::{RelationalError, Result};
use crate::relation::Relation;
use crate::schema::{Attribute, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// σ — selection: keeps tuples satisfying `pred`.
pub fn select(rel: &Relation, pred: impl Fn(&Tuple) -> bool) -> Relation {
    let mut out = Relation::new_unchecked(Arc::clone(rel.schema()));
    for t in rel.iter() {
        if pred(t) {
            out.insert(t.clone()).expect("same schema");
        }
    }
    out
}

/// σ with an attribute = constant condition (non-NULL equality).
pub fn select_eq(rel: &Relation, attr: &AttrName, value: &Value) -> Result<Relation> {
    let p = rel.schema().position(attr)?;
    Ok(select(rel, |t| t.get(p).non_null_eq(value)))
}

/// Π — projection with set semantics (duplicates removed), as in the
/// paper's `Π_{K_R, y_i}` expressions.
pub fn project(rel: &Relation, attrs: &[AttrName]) -> Result<Relation> {
    let positions = rel.positions_of(attrs)?;
    let out_attrs: Vec<Attribute> = positions
        .iter()
        .map(|&p| rel.schema().attributes()[p].clone())
        .collect();
    let schema = Schema::new(format!("π({})", rel.name()), out_attrs, vec![])?;
    let mut out = Relation::new_unchecked(schema);
    let mut seen = std::collections::HashSet::new();
    for t in rel.iter() {
        let proj = t.project(&positions);
        if seen.insert(proj.clone()) {
            out.insert(proj).expect("projected arity");
        }
    }
    Ok(out)
}

/// ρ — renames the relation (schema name only).
pub fn rename(rel: &Relation, name: impl Into<String>) -> Relation {
    let mut out = Relation::new_unchecked(rel.schema().renamed(name));
    for t in rel.iter() {
        out.insert(t.clone()).expect("same schema");
    }
    out
}

/// Renames a single attribute, preserving everything else. Needed to
/// align semantically-equivalent attributes that were given different
/// names by the component databases (the schema-integration output
/// the paper assumes, e.g. `r_name`/`s_name` → `name`).
pub fn rename_attr(rel: &Relation, from: &AttrName, to: &AttrName) -> Result<Relation> {
    let p = rel.schema().position(from)?;
    let attrs: Vec<Attribute> = rel
        .schema()
        .attributes()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            if i == p {
                Attribute::new(to.clone(), a.ty)
            } else {
                a.clone()
            }
        })
        .collect();
    let keys: Vec<Vec<AttrName>> = rel
        .schema()
        .keys()
        .iter()
        .map(|k| {
            k.positions
                .iter()
                .map(|&q| {
                    if q == p {
                        to.clone()
                    } else {
                        rel.schema().attributes()[q].name.clone()
                    }
                })
                .collect()
        })
        .collect();
    let schema = Schema::new(rel.name(), attrs, keys)?;
    let mut out = Relation::new_unchecked(schema);
    for t in rel.iter() {
        out.insert(t.clone()).expect("same arity");
    }
    Ok(out)
}

/// Extends every tuple with new attributes whose values are computed
/// by `f` (may return NULL). This is the "extend relation R to R′ with
/// attributes `K_Ext − K_R`" step of §4.2.
pub fn extend(
    rel: &Relation,
    extra: &[Attribute],
    mut f: impl FnMut(&Tuple) -> Vec<Value>,
) -> Result<Relation> {
    let schema = rel.schema().extended(extra)?;
    let mut out = Relation::new_unchecked(schema);
    for t in rel.iter() {
        let vals = f(t);
        debug_assert_eq!(vals.len(), extra.len());
        out.insert(t.extend_with(&vals)).expect("extended arity");
    }
    Ok(out)
}

/// ∪ — set union of two union-compatible relations.
pub fn union(a: &Relation, b: &Relation) -> Result<Relation> {
    check_union_compatible(a, b)?;
    let mut out = Relation::new_unchecked(Arc::clone(a.schema()));
    let mut seen = std::collections::HashSet::new();
    for t in a.iter().chain(b.iter()) {
        if seen.insert(t.clone()) {
            out.insert(t.clone()).expect("same schema");
        }
    }
    Ok(out)
}

/// − — set difference `a − b` of union-compatible relations.
pub fn difference(a: &Relation, b: &Relation) -> Result<Relation> {
    check_union_compatible(a, b)?;
    let exclude: std::collections::HashSet<&Tuple> = b.iter().collect();
    let mut out = Relation::new_unchecked(Arc::clone(a.schema()));
    let mut seen = std::collections::HashSet::new();
    for t in a.iter() {
        if !exclude.contains(t) && seen.insert(t.clone()) {
            out.insert(t.clone()).expect("same schema");
        }
    }
    Ok(out)
}

fn check_union_compatible(a: &Relation, b: &Relation) -> Result<()> {
    if a.schema().arity() != b.schema().arity() {
        return Err(RelationalError::SchemaMismatch {
            detail: format!(
                "union of `{}` (arity {}) and `{}` (arity {})",
                a.name(),
                a.schema().arity(),
                b.name(),
                b.schema().arity()
            ),
        });
    }
    for (x, y) in a.schema().attributes().iter().zip(b.schema().attributes()) {
        if x.ty != y.ty {
            return Err(RelationalError::SchemaMismatch {
                detail: format!(
                    "attribute `{}`:{} is not union-compatible with `{}`:{}",
                    x.name, x.ty, y.name, y.ty
                ),
            });
        }
    }
    Ok(())
}

/// Builds the output schema of a join: all attributes of `a` then all
/// of `b`, prefixing colliding names with the relation name
/// (`R.name`, `S.name`).
fn join_schema(a: &Relation, b: &Relation, name: String) -> Result<Arc<Schema>> {
    let mut attrs: Vec<Attribute> = Vec::with_capacity(a.schema().arity() + b.schema().arity());
    for attr in a.schema().attributes() {
        let collides = b.schema().has_attribute(&attr.name);
        let out_name = if collides {
            AttrName::new(format!("{}.{}", a.name(), attr.name))
        } else {
            attr.name.clone()
        };
        attrs.push(Attribute::new(out_name, attr.ty));
    }
    for attr in b.schema().attributes() {
        let collides = a.schema().has_attribute(&attr.name);
        let out_name = if collides {
            AttrName::new(format!("{}.{}", b.name(), attr.name))
        } else {
            attr.name.clone()
        };
        attrs.push(Attribute::new(out_name, attr.ty));
    }
    Schema::new(name, attrs, vec![])
}

/// ⋈ — hash equi-join on pairs of attributes `(a_attr, b_attr)`,
/// using non-NULL equality.
pub fn equi_join(a: &Relation, b: &Relation, on: &[(AttrName, AttrName)]) -> Result<Relation> {
    let (matched, _, _) = equi_join_parts(a, b, on)?;
    Ok(matched)
}

/// The workhorse behind inner and outer joins: returns the joined
/// relation plus the per-side "dangling" tuples that joined nothing.
fn equi_join_parts(
    a: &Relation,
    b: &Relation,
    on: &[(AttrName, AttrName)],
) -> Result<(Relation, Vec<Tuple>, Vec<Tuple>)> {
    let a_pos: Vec<usize> = on
        .iter()
        .map(|(x, _)| a.schema().position(x))
        .collect::<Result<_>>()?;
    let b_pos: Vec<usize> = on
        .iter()
        .map(|(_, y)| b.schema().position(y))
        .collect::<Result<_>>()?;

    let schema = join_schema(a, b, format!("{}⋈{}", a.name(), b.name()))?;
    let mut out = Relation::new_unchecked(schema);

    // Build hash table over the smaller side; keys with NULLs are
    // excluded so NULL never joins.
    let mut table: HashMap<Tuple, Vec<usize>> = HashMap::new();
    for (i, t) in b.iter().enumerate() {
        if t.non_null_at(&b_pos) {
            table.entry(t.project(&b_pos)).or_default().push(i);
        }
    }

    let mut b_matched = vec![false; b.len()];
    let mut a_dangling = Vec::new();
    for t in a.iter() {
        let mut hit = false;
        if t.non_null_at(&a_pos) {
            if let Some(rows) = table.get(&t.project(&a_pos)) {
                for &j in rows {
                    out.insert(t.concat(&b.tuples()[j])).expect("join arity");
                    b_matched[j] = true;
                    hit = true;
                }
            }
        }
        if !hit {
            a_dangling.push(t.clone());
        }
    }
    let b_dangling: Vec<Tuple> = b
        .iter()
        .enumerate()
        .filter(|(j, _)| !b_matched[*j])
        .map(|(_, t)| t.clone())
        .collect();
    Ok((out, a_dangling, b_dangling))
}

/// Natural join: equi-join on every same-named attribute pair, then
/// common attributes are kept once (from the left side).
pub fn natural_join(a: &Relation, b: &Relation) -> Result<Relation> {
    let common: Vec<AttrName> = a
        .schema()
        .attribute_names()
        .filter(|n| b.schema().has_attribute(n))
        .cloned()
        .collect();
    let on: Vec<(AttrName, AttrName)> = common.iter().map(|n| (n.clone(), n.clone())).collect();
    let joined = equi_join(a, b, &on)?;
    // Drop the duplicated right-side copies of the common attributes.
    let keep: Vec<AttrName> = joined
        .schema()
        .attribute_names()
        .filter(|n| {
            !common
                .iter()
                .any(|c| n.as_str() == format!("{}.{}", b.name(), c))
        })
        .cloned()
        .collect();
    let projected = project(&joined, &keep)?;
    // Restore plain names for the left-side copies.
    let mut out = projected;
    for c in &common {
        let prefixed = AttrName::new(format!("{}.{}", a.name(), c));
        if out.schema().has_attribute(&prefixed) {
            out = rename_attr(&out, &prefixed, c)?;
        }
    }
    Ok(out)
}

/// How a join's unmatched tuples are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinSide {
    /// Keep unmatched left tuples (left outer join).
    Left,
    /// Keep unmatched right tuples (right outer join).
    Right,
    /// Keep both (full outer join, the paper's ⟗).
    Full,
}

/// Outer equi-join: like [`equi_join`] but dangling tuples of the
/// selected side(s) are padded with NULLs. The integrated table
/// `T_RS` uses the `Full` variant.
pub fn outer_join(
    a: &Relation,
    b: &Relation,
    on: &[(AttrName, AttrName)],
    side: JoinSide,
) -> Result<Relation> {
    let (mut out, a_dangling, b_dangling) = equi_join_parts(a, b, on)?;
    let a_arity = a.schema().arity();
    let b_arity = b.schema().arity();
    if matches!(side, JoinSide::Left | JoinSide::Full) {
        let nulls = vec![Value::Null; b_arity];
        for t in a_dangling {
            out.insert(t.extend_with(&nulls)).expect("join arity");
        }
    }
    if matches!(side, JoinSide::Right | JoinSide::Full) {
        let nulls = Tuple::new(vec![Value::Null; a_arity]);
        for t in b_dangling {
            out.insert(nulls.concat(&t)).expect("join arity");
        }
    }
    Ok(out)
}

/// Semi-join `a ⋉ b`: the tuples of `a` that join with at least one
/// tuple of `b` (non-NULL equality). The matched half of a relation —
/// `R ⋉_{K_Ext} S` is exactly the `R` side of the matching table.
pub fn semi_join(a: &Relation, b: &Relation, on: &[(AttrName, AttrName)]) -> Result<Relation> {
    let a_pos: Vec<usize> = on
        .iter()
        .map(|(x, _)| a.schema().position(x))
        .collect::<Result<_>>()?;
    let b_pos: Vec<usize> = on
        .iter()
        .map(|(_, y)| b.schema().position(y))
        .collect::<Result<_>>()?;
    let keys: std::collections::HashSet<Tuple> = b
        .iter()
        .filter(|t| t.non_null_at(&b_pos))
        .map(|t| t.project(&b_pos))
        .collect();
    let mut out = Relation::new_unchecked(Arc::clone(a.schema()));
    for t in a.iter() {
        if t.non_null_at(&a_pos) && keys.contains(&t.project(&a_pos)) {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

/// Anti-join `a ▷ b`: the tuples of `a` that join with *no* tuple of
/// `b` — the dangling tuples the integrated table NULL-pads.
pub fn anti_join(a: &Relation, b: &Relation, on: &[(AttrName, AttrName)]) -> Result<Relation> {
    let matched = semi_join(a, b, on)?;
    difference(a, &matched)
}

/// Cartesian product (θ-joins are `product` + `select`). Quadratic;
/// used by the nested-loop matcher baseline and tests.
pub fn product(a: &Relation, b: &Relation) -> Result<Relation> {
    let schema = join_schema(a, b, format!("{}×{}", a.name(), b.name()))?;
    let mut out = Relation::new_unchecked(schema);
    for ta in a.iter() {
        for tb in b.iter() {
            out.insert(ta.concat(tb)).expect("product arity");
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(name: &str, attrs: &[&str], rows: &[&[&str]]) -> Relation {
        let schema = Schema::of_strs(name, attrs, &attrs[..1]).unwrap();
        let mut r = Relation::new_unchecked(schema);
        for row in rows {
            r.insert(Tuple::of_strs(row)).unwrap();
        }
        r
    }

    #[test]
    fn select_filters() {
        let r = rel(
            "R",
            &["name", "cuisine"],
            &[&["a", "chinese"], &["b", "greek"]],
        );
        let s = select_eq(&r, &AttrName::new("cuisine"), &Value::str("chinese")).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.tuples()[0].get(0), &Value::str("a"));
    }

    #[test]
    fn project_dedups() {
        let r = rel(
            "R",
            &["name", "cuisine"],
            &[&["a", "chinese"], &["b", "chinese"]],
        );
        let p = project(&r, &[AttrName::new("cuisine")]).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn union_dedups_and_checks_compat() {
        let a = rel("A", &["x"], &[&["1"], &["2"]]);
        let b = rel("B", &["x"], &[&["2"], &["3"]]);
        let u = union(&a, &b).unwrap();
        assert_eq!(u.len(), 3);

        let c = rel("C", &["x", "y"], &[&["1", "2"]]);
        assert!(union(&a, &c).is_err());
    }

    #[test]
    fn difference_removes() {
        let a = rel("A", &["x"], &[&["1"], &["2"]]);
        let b = rel("B", &["x"], &[&["2"]]);
        let d = difference(&a, &b).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.tuples()[0], Tuple::of_strs(&["1"]));
    }

    #[test]
    fn equi_join_matches_on_non_null() {
        let a = rel("A", &["k", "v"], &[&["1", "x"], &["2", "y"]]);
        let b = rel("B", &["k2", "w"], &[&["1", "p"], &["3", "q"]]);
        let j = equi_join(&a, &b, &[(AttrName::new("k"), AttrName::new("k2"))]).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.tuples()[0], Tuple::of_strs(&["1", "x", "1", "p"]));
    }

    #[test]
    fn null_never_joins() {
        let schema_a = Schema::of_strs("A", &["k"], &["k"]).unwrap();
        let mut a = Relation::new_unchecked(schema_a);
        a.insert(Tuple::new(vec![Value::Null])).unwrap();
        let schema_b = Schema::of_strs("B", &["k2"], &["k2"]).unwrap();
        let mut b = Relation::new_unchecked(schema_b);
        b.insert(Tuple::new(vec![Value::Null])).unwrap();
        let j = equi_join(&a, &b, &[(AttrName::new("k"), AttrName::new("k2"))]).unwrap();
        assert!(j.is_empty());
    }

    #[test]
    fn full_outer_join_pads_both_sides() {
        let a = rel("A", &["k", "v"], &[&["1", "x"], &["2", "y"]]);
        let b = rel("B", &["k2", "w"], &[&["1", "p"], &["3", "q"]]);
        let j = outer_join(
            &a,
            &b,
            &[(AttrName::new("k"), AttrName::new("k2"))],
            JoinSide::Full,
        )
        .unwrap();
        assert_eq!(j.len(), 3);
        let rows = j.sorted_tuples();
        // Padded rows carry NULLs.
        assert!(rows.iter().any(|t| t.get(0).is_null()));
        assert!(rows.iter().any(|t| t.get(2).is_null()));
    }

    #[test]
    fn left_and_right_outer_joins() {
        let a = rel("A", &["k"], &[&["1"], &["2"]]);
        let b = rel("B", &["k2"], &[&["1"], &["3"]]);
        let on = [(AttrName::new("k"), AttrName::new("k2"))];
        let l = outer_join(&a, &b, &on, JoinSide::Left).unwrap();
        assert_eq!(l.len(), 2); // (1,1) and (2,null)
        let r = outer_join(&a, &b, &on, JoinSide::Right).unwrap();
        assert_eq!(r.len(), 2); // (1,1) and (null,3)
    }

    #[test]
    fn natural_join_merges_common_attrs() {
        let a = rel("A", &["name", "cuisine"], &[&["tc", "chinese"]]);
        let b = rel("B", &["name", "city"], &[&["tc", "mpls"], &["x", "y"]]);
        let j = natural_join(&a, &b).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.schema().arity(), 3);
        assert!(j.schema().has_attribute(&AttrName::new("name")));
        assert!(j.schema().has_attribute(&AttrName::new("city")));
    }

    #[test]
    fn join_schema_prefixes_collisions() {
        let a = rel("A", &["name", "v"], &[&["x", "1"]]);
        let b = rel("B", &["name", "w"], &[&["x", "2"]]);
        let j = equi_join(&a, &b, &[(AttrName::new("name"), AttrName::new("name"))]).unwrap();
        assert!(j.schema().has_attribute(&AttrName::new("A.name")));
        assert!(j.schema().has_attribute(&AttrName::new("B.name")));
    }

    #[test]
    fn semi_join_keeps_matching_left_tuples() {
        let a = rel("A", &["k", "v"], &[&["1", "x"], &["2", "y"], &["3", "z"]]);
        let b = rel("B", &["k2"], &[&["1"], &["3"]]);
        let on = [(AttrName::new("k"), AttrName::new("k2"))];
        let s = semi_join(&a, &b, &on).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.schema().arity(), 2); // original schema, not widened
        let anti = anti_join(&a, &b, &on).unwrap();
        assert_eq!(anti.len(), 1);
        assert_eq!(anti.tuples()[0].get(0), &Value::str("2"));
    }

    #[test]
    fn semi_join_excludes_null_keys() {
        let schema = Schema::of_strs("A", &["k"], &["k"]).unwrap();
        let mut a = Relation::new_unchecked(schema);
        a.insert(Tuple::new(vec![Value::Null])).unwrap();
        let b = rel("B", &["k2"], &[&["1"]]);
        let on = [(AttrName::new("k"), AttrName::new("k2"))];
        assert!(semi_join(&a, &b, &on).unwrap().is_empty());
        assert_eq!(anti_join(&a, &b, &on).unwrap().len(), 1);
    }

    #[test]
    fn semi_plus_anti_partition_the_left_relation() {
        let a = rel("A", &["k"], &[&["1"], &["2"], &["3"], &["4"]]);
        let b = rel("B", &["k2"], &[&["2"], &["4"], &["9"]]);
        let on = [(AttrName::new("k"), AttrName::new("k2"))];
        let s = semi_join(&a, &b, &on).unwrap();
        let t = anti_join(&a, &b, &on).unwrap();
        assert_eq!(s.len() + t.len(), a.len());
        let u = union(&s, &t).unwrap();
        assert!(u.same_tuples(&a));
    }

    #[test]
    fn product_is_cartesian() {
        let a = rel("A", &["x"], &[&["1"], &["2"]]);
        let b = rel("B", &["y"], &[&["p"], &["q"], &["r"]]);
        assert_eq!(product(&a, &b).unwrap().len(), 6);
    }

    #[test]
    fn rename_attr_updates_schema_and_keys() {
        let a = rel("A", &["k", "v"], &[&["1", "x"]]);
        let r = rename_attr(&a, &AttrName::new("k"), &AttrName::new("key")).unwrap();
        assert!(r.schema().has_attribute(&AttrName::new("key")));
        assert!(!r.schema().has_attribute(&AttrName::new("k")));
        assert_eq!(r.schema().primary_key(), vec![AttrName::new("key")]);
    }

    #[test]
    fn extend_adds_computed_column() {
        let a = rel("A", &["k"], &[&["1"]]);
        let e = extend(&a, &[Attribute::str("extra")], |_| vec![Value::Null]).unwrap();
        assert_eq!(e.schema().arity(), 2);
        assert!(e.tuples()[0].get(1).is_null());
    }
}
