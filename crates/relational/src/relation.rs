//! Relations: schema + tuple store with candidate-key enforcement.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::attr::AttrName;
use crate::error::{RelationalError, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// An in-memory relation.
///
/// Tuples are stored in insertion order (the paper's printed tables
/// are insertion-ordered or sorted; the pretty printer can do
/// either). Every declared candidate key is enforced on insertion:
/// duplicate key values are a [`RelationalError::KeyViolation`] and
/// NULL key attributes are a [`RelationalError::NullInKey`], matching
/// the paper's assumption that candidate keys uniquely identify
/// tuples (§3.1).
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Arc<Schema>,
    tuples: Vec<Tuple>,
    /// One uniqueness index per candidate key: key projection → tuple index.
    key_indexes: Vec<HashMap<Tuple, usize>>,
    /// Whether inserts enforce key uniqueness. Derived relations
    /// (join/projection results) switch this off since their rows are
    /// not base entities.
    enforce_keys: bool,
}

impl Relation {
    /// Creates an empty relation with key enforcement on.
    pub fn new(schema: Arc<Schema>) -> Self {
        let key_indexes = schema.keys().iter().map(|_| HashMap::new()).collect();
        Relation {
            schema,
            tuples: Vec::new(),
            key_indexes,
            enforce_keys: true,
        }
    }

    /// Creates an empty relation that does not enforce keys — used
    /// for derived results (projections, joins, matching tables).
    pub fn new_unchecked(schema: Arc<Schema>) -> Self {
        let mut r = Relation::new(schema);
        r.enforce_keys = false;
        r
    }

    /// Builds a relation from rows of string values (the shape of the
    /// paper's example tables), enforcing keys.
    pub fn from_strs(schema: Arc<Schema>, rows: &[&[&str]]) -> Result<Self> {
        let mut rel = Relation::new(schema);
        for row in rows {
            rel.insert(Tuple::of_strs(row))?;
        }
        Ok(rel)
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The relation name (from the schema).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// All tuples in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Iterates over tuples.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// Inserts a tuple, validating arity, types, and (if enforcement
    /// is on) NULL-freedom and uniqueness of every candidate key.
    pub fn insert(&mut self, tuple: Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(RelationalError::ArityMismatch {
                expected: self.schema.arity(),
                got: tuple.arity(),
                relation: self.schema.name().to_string(),
            });
        }
        for (attr, value) in self.schema.attributes().iter().zip(tuple.values()) {
            if !attr.ty.admits(value) {
                return Err(RelationalError::TypeMismatch {
                    attr: attr.name.clone(),
                    relation: self.schema.name().to_string(),
                });
            }
        }
        if self.enforce_keys {
            for (key, index) in self.schema.keys().iter().zip(&self.key_indexes) {
                for &p in &key.positions {
                    if tuple.get(p).is_null() {
                        return Err(RelationalError::NullInKey {
                            attr: self.schema.attributes()[p].name.clone(),
                            relation: self.schema.name().to_string(),
                        });
                    }
                }
                let proj = tuple.project(&key.positions);
                if index.contains_key(&proj) {
                    return Err(RelationalError::KeyViolation {
                        key: self.schema.render_key(key),
                        relation: self.schema.name().to_string(),
                    });
                }
            }
            let idx = self.tuples.len();
            for (key, index) in self.schema.keys().iter().zip(self.key_indexes.iter_mut()) {
                index.insert(tuple.project(&key.positions), idx);
            }
        }
        self.tuples.push(tuple);
        Ok(())
    }

    /// Inserts a row of string values.
    pub fn insert_strs(&mut self, row: &[&str]) -> Result<()> {
        self.insert(Tuple::of_strs(row))
    }

    /// Removes and returns the most recently inserted tuple,
    /// unwinding its key-index entries. This is the rollback
    /// primitive for staged multi-tuple operations (an aborted
    /// incremental event undoes its own inserts with it); it is *not*
    /// general deletion — the paper's model has no deletes, and §3.3
    /// monotonicity assumes tables only grow between published
    /// states.
    pub fn remove_last(&mut self) -> Option<Tuple> {
        let tuple = self.tuples.pop()?;
        if self.enforce_keys {
            for (key, index) in self.schema.keys().iter().zip(self.key_indexes.iter_mut()) {
                index.remove(&tuple.project(&key.positions));
            }
        }
        Some(tuple)
    }

    /// Looks up a tuple by its primary (first candidate) key value.
    /// Only meaningful for key-enforcing relations.
    pub fn find_by_primary_key(&self, key_value: &Tuple) -> Option<&Tuple> {
        self.key_indexes
            .first()
            .and_then(|ix| ix.get(key_value))
            .map(|&i| &self.tuples[i])
    }

    /// Projects the primary-key value of `tuple` (which must belong
    /// to this relation's schema).
    pub fn primary_key_of(&self, tuple: &Tuple) -> Tuple {
        tuple.project(&self.schema.keys()[0].positions)
    }

    /// Positions of the primary-key attributes.
    pub fn primary_key_positions(&self) -> &[usize] {
        &self.schema.keys()[0].positions
    }

    /// Resolves attribute names to positions against this schema.
    pub fn positions_of(&self, attrs: &[AttrName]) -> Result<Vec<usize>> {
        attrs.iter().map(|a| self.schema.position(a)).collect()
    }

    /// The value of `attr` in `tuple`.
    pub fn value(&self, tuple: &Tuple, attr: &AttrName) -> Result<Value> {
        let p = self.schema.position(attr)?;
        Ok(tuple.get(p).clone())
    }

    /// Returns tuples sorted by their full value vector — handy for
    /// stable test assertions and for the prototype-style printouts,
    /// which list rows in sorted order.
    pub fn sorted_tuples(&self) -> Vec<Tuple> {
        let mut ts = self.tuples.clone();
        ts.sort_by(|a, b| {
            a.values()
                .iter()
                .zip(b.values())
                .map(|(x, y)| x.total_cmp(y))
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        ts
    }

    /// Whether `other` contains exactly the same set of tuples
    /// (ignoring order and schema names, but requiring equal arity).
    pub fn same_tuples(&self, other: &Relation) -> bool {
        if self.schema.arity() != other.schema.arity() || self.len() != other.len() {
            return false;
        }
        self.sorted_tuples() == other.sorted_tuples()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in &self.tuples {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r_schema() -> Arc<Schema> {
        Schema::of_strs("R", &["name", "street", "cuisine"], &["name", "street"]).unwrap()
    }

    #[test]
    fn insert_and_len() {
        let mut r = Relation::new(r_schema());
        r.insert_strs(&["villagewok", "wash_ave", "chinese"])
            .unwrap();
        r.insert_strs(&["ching", "co_b_rd", "chinese"]).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn key_violation_on_duplicate_key() {
        let mut r = Relation::new(r_schema());
        r.insert_strs(&["villagewok", "wash_ave", "chinese"])
            .unwrap();
        let err = r
            .insert_strs(&["villagewok", "wash_ave", "american"])
            .unwrap_err();
        assert!(matches!(err, RelationalError::KeyViolation { .. }));
    }

    #[test]
    fn same_key_attr_different_value_ok() {
        // Example 1: a second VillageWok on a different street is legal.
        let mut r = Relation::new(r_schema());
        r.insert_strs(&["villagewok", "wash_ave", "chinese"])
            .unwrap();
        r.insert_strs(&["villagewok", "penn_ave", "chinese"])
            .unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn null_in_key_rejected() {
        let mut r = Relation::new(r_schema());
        let err = r
            .insert(Tuple::new(vec![
                Value::Null,
                Value::str("x"),
                Value::str("y"),
            ]))
            .unwrap_err();
        assert!(matches!(err, RelationalError::NullInKey { .. }));
    }

    #[test]
    fn null_in_non_key_accepted() {
        let mut r = Relation::new(r_schema());
        r.insert(Tuple::new(vec![
            Value::str("a"),
            Value::str("b"),
            Value::Null,
        ]))
        .unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut r = Relation::new(r_schema());
        let err = r.insert_strs(&["too", "few"]).unwrap_err();
        assert!(matches!(err, RelationalError::ArityMismatch { .. }));
    }

    #[test]
    fn type_mismatch_rejected() {
        let s = Schema::new(
            "T",
            vec![
                crate::schema::Attribute::str("a"),
                crate::schema::Attribute::int("n"),
            ],
            vec![vec![AttrName::new("a")]],
        )
        .unwrap();
        let mut r = Relation::new(s);
        let err = r
            .insert(Tuple::new(vec![Value::str("x"), Value::str("not_int")]))
            .unwrap_err();
        assert!(matches!(err, RelationalError::TypeMismatch { .. }));
    }

    #[test]
    fn unchecked_relation_allows_duplicates_and_null_keys() {
        let mut r = Relation::new_unchecked(r_schema());
        r.insert(Tuple::new(vec![Value::Null, Value::Null, Value::Null]))
            .unwrap();
        r.insert(Tuple::new(vec![Value::Null, Value::Null, Value::Null]))
            .unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn find_by_primary_key() {
        let mut r = Relation::new(r_schema());
        r.insert_strs(&["villagewok", "wash_ave", "chinese"])
            .unwrap();
        let key = Tuple::of_strs(&["villagewok", "wash_ave"]);
        let found = r.find_by_primary_key(&key).unwrap();
        assert_eq!(found.get(2), &Value::str("chinese"));
        assert!(r
            .find_by_primary_key(&Tuple::of_strs(&["nope", "nope"]))
            .is_none());
    }

    #[test]
    fn primary_key_of_projects_key_attrs() {
        let r = Relation::new(r_schema());
        let t = Tuple::of_strs(&["a", "b", "c"]);
        assert_eq!(r.primary_key_of(&t), Tuple::of_strs(&["a", "b"]));
    }

    #[test]
    fn same_tuples_ignores_order() {
        let mut a = Relation::new(r_schema());
        a.insert_strs(&["x", "1", "c"]).unwrap();
        a.insert_strs(&["y", "2", "c"]).unwrap();
        let mut b = Relation::new(r_schema());
        b.insert_strs(&["y", "2", "c"]).unwrap();
        b.insert_strs(&["x", "1", "c"]).unwrap();
        assert!(a.same_tuples(&b));
    }

    #[test]
    fn remove_last_unwinds_key_indexes() {
        let mut r = Relation::new(r_schema());
        r.insert_strs(&["x", "1", "c"]).unwrap();
        r.insert_strs(&["y", "2", "c"]).unwrap();
        let popped = r.remove_last().unwrap();
        assert_eq!(popped, Tuple::of_strs(&["y", "2", "c"]));
        assert_eq!(r.len(), 1);
        // The key slot is free again.
        r.insert_strs(&["y", "2", "d"]).unwrap();
        assert!(r.remove_last().is_some());
        assert!(r.remove_last().is_some());
        assert!(r.remove_last().is_none());
    }

    #[test]
    fn from_strs_builds_table_1() {
        let r = Relation::from_strs(
            r_schema(),
            &[
                &["villagewok", "wash_ave", "chinese"],
                &["ching", "co_b_rd", "chinese"],
                &["oldcountry", "co_b2_rd", "american"],
            ],
        )
        .unwrap();
        assert_eq!(r.len(), 3);
    }
}
