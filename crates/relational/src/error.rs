//! Error types for the relational substrate.

use std::fmt;

use crate::attr::AttrName;

/// Any error raised by the relational engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationalError {
    /// An attribute was referenced that the schema does not define.
    UnknownAttribute {
        /// The missing attribute.
        attr: AttrName,
        /// The relation whose schema was consulted.
        relation: String,
    },
    /// A declared key references an attribute outside the schema.
    KeyAttributeMissing {
        /// The offending attribute.
        attr: AttrName,
        /// The relation being defined.
        relation: String,
    },
    /// An inserted tuple has the wrong number of values.
    ArityMismatch {
        /// Attributes in the schema.
        expected: usize,
        /// Values supplied.
        got: usize,
        /// The relation being inserted into.
        relation: String,
    },
    /// An inserted value does not inhabit the attribute's declared type.
    TypeMismatch {
        /// The attribute whose type was violated.
        attr: AttrName,
        /// The relation being inserted into.
        relation: String,
    },
    /// Inserting the tuple would duplicate an existing candidate-key value.
    ///
    /// The paper assumes each relation has candidate keys that uniquely
    /// identify its tuples (§3.1); relations enforce this on insert.
    KeyViolation {
        /// The candidate key that was violated, rendered `(a, b, …)`.
        key: String,
        /// The relation being inserted into.
        relation: String,
    },
    /// A key contains a NULL — candidate keys must be fully defined.
    NullInKey {
        /// The NULL key attribute.
        attr: AttrName,
        /// The relation being inserted into.
        relation: String,
    },
    /// Two schemas were expected to be union-compatible but are not.
    SchemaMismatch {
        /// Human-readable explanation.
        detail: String,
    },
    /// A schema defines the same attribute twice.
    DuplicateAttribute {
        /// The repeated attribute.
        attr: AttrName,
        /// The relation being defined.
        relation: String,
    },
    /// A schema has no attributes.
    EmptySchema {
        /// The relation being defined.
        relation: String,
    },
    /// Malformed CSV input.
    Csv {
        /// 1-based line number of the problem.
        line: usize,
        /// 1-based character column of the problem; 0 when the error
        /// concerns the whole line (e.g. arity mismatch).
        col: usize,
        /// Human-readable explanation.
        detail: String,
    },
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::UnknownAttribute { attr, relation } => {
                write!(f, "unknown attribute `{attr}` in relation `{relation}`")
            }
            RelationalError::KeyAttributeMissing { attr, relation } => {
                write!(
                    f,
                    "key attribute `{attr}` is not in the schema of `{relation}`"
                )
            }
            RelationalError::ArityMismatch {
                expected,
                got,
                relation,
            } => write!(
                f,
                "relation `{relation}` expects {expected} values, got {got}"
            ),
            RelationalError::TypeMismatch { attr, relation } => {
                write!(
                    f,
                    "value for attribute `{attr}` of `{relation}` has the wrong type"
                )
            }
            RelationalError::KeyViolation { key, relation } => {
                write!(
                    f,
                    "candidate key {key} of relation `{relation}` would be duplicated"
                )
            }
            RelationalError::NullInKey { attr, relation } => {
                write!(
                    f,
                    "key attribute `{attr}` of relation `{relation}` cannot be NULL"
                )
            }
            RelationalError::SchemaMismatch { detail } => {
                write!(f, "schema mismatch: {detail}")
            }
            RelationalError::DuplicateAttribute { attr, relation } => {
                write!(
                    f,
                    "attribute `{attr}` appears twice in the schema of `{relation}`"
                )
            }
            RelationalError::EmptySchema { relation } => {
                write!(f, "relation `{relation}` must have at least one attribute")
            }
            RelationalError::Csv { line, col, detail } => {
                if *col > 0 {
                    write!(f, "CSV error on line {line}, column {col}: {detail}")
                } else {
                    write!(f, "CSV error on line {line}: {detail}")
                }
            }
        }
    }
}

impl std::error::Error for RelationalError {}

/// Convenient result alias for the relational substrate.
pub type Result<T> = std::result::Result<T, RelationalError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelationalError::UnknownAttribute {
            attr: AttrName::new("cuisine"),
            relation: "S".into(),
        };
        assert!(e.to_string().contains("cuisine"));
        assert!(e.to_string().contains('S'));

        let e = RelationalError::KeyViolation {
            key: "(name, street)".into(),
            relation: "R".into(),
        };
        assert!(e.to_string().contains("(name, street)"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = RelationalError::EmptySchema {
            relation: "R".into(),
        };
        let b = RelationalError::EmptySchema {
            relation: "R".into(),
        };
        assert_eq!(a, b);
    }
}
