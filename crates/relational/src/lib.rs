//! # `eid-relational` — relational substrate for entity identification
//!
//! A minimal, dependency-light, in-memory relational engine that the
//! entity-identification stack of Lim et al. (ICDE 1993) is built on:
//!
//! * [`Value`] — typed attribute values with SQL-style `NULL` and the
//!   prototype's **non-NULL equality** ([`Value::non_null_eq`]);
//! * [`AttrName`] — interned attribute names;
//! * [`Schema`] / [`Relation`] — candidate-key-enforcing tuple stores
//!   (§3.1 of the paper assumes every relation has candidate keys);
//! * [`algebra`] — σ, Π, ρ, ∪, −, equi/natural joins and
//!   left/right/full **outer** joins with non-NULL join semantics;
//! * [`display`] — the Prolog prototype's table printer;
//! * [`csv`] — a tiny CSV round-trip for workload files.
//!
//! ## Example
//!
//! ```
//! use eid_relational::{Schema, Relation, AttrName, Value, algebra};
//!
//! let schema = Schema::of_strs("R", &["name", "street", "cuisine"],
//!                              &["name", "street"]).unwrap();
//! let mut r = Relation::new(schema);
//! r.insert_strs(&["villagewok", "wash_ave", "chinese"]).unwrap();
//! r.insert_strs(&["oldcountry", "co_b2_rd", "american"]).unwrap();
//!
//! let chinese = algebra::select_eq(&r, &AttrName::new("cuisine"),
//!                                  &Value::str("chinese")).unwrap();
//! assert_eq!(chinese.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algebra;
pub mod attr;
pub mod csv;
pub mod display;
pub mod error;
pub mod hash;
pub mod index;
pub mod interner;
pub mod relation;
pub mod schema;
pub mod store;
pub mod tri;
pub mod tuple;
pub mod value;

pub use attr::AttrName;
pub use csv::CsvReject;
pub use error::{RelationalError, Result};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use index::HashIndex;
pub use interner::{ColumnStat, Columns, Interner, Sym, NULL_SYM};
pub use relation::Relation;
pub use schema::{Attribute, Key, Schema};
pub use tri::TriBool;
pub use tuple::Tuple;
pub use value::{Value, ValueType};
