//! Interned attribute names.
//!
//! Attribute names are compared and hashed constantly (joins, ILFD
//! lookups, rule evaluation), so they are interned: every distinct
//! name is stored once in a process-wide table and [`AttrName`] is a
//! cheap pointer-sized handle whose equality is a pointer comparison.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Process-wide intern table for attribute names.
static INTERNER: Mutex<Option<HashSet<Arc<str>>>> = Mutex::new(None);

/// An interned, case-preserving attribute name.
///
/// Construct with [`AttrName::new`] or via `From<&str>`. Equality
/// first compares pointers (the common case for interned names) and
/// falls back to string comparison, so names deserialized from
/// outside the interner still compare correctly.
#[derive(Debug, Clone)]
pub struct AttrName(Arc<str>);

impl AttrName {
    /// Interns `name` and returns a handle to the canonical copy.
    pub fn new(name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        let mut guard = INTERNER.lock();
        let table = guard.get_or_insert_with(HashSet::new);
        if let Some(existing) = table.get(name) {
            return AttrName(Arc::clone(existing));
        }
        let arc: Arc<str> = Arc::from(name);
        table.insert(Arc::clone(&arc));
        AttrName(arc)
    }

    /// The textual name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl PartialEq for AttrName {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for AttrName {}

impl std::hash::Hash for AttrName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state)
    }
}

impl PartialOrd for AttrName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for AttrName {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for AttrName {
    fn from(s: &str) -> Self {
        AttrName::new(s)
    }
}

impl From<String> for AttrName {
    fn from(s: String) -> Self {
        AttrName::new(s)
    }
}

impl AsRef<str> for AttrName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Serialize for AttrName {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.0)
    }
}

impl<'de> Deserialize<'de> for AttrName {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(AttrName::new(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_returns_pointer_equal_handles() {
        let a = AttrName::new("cuisine");
        let b = AttrName::new("cuisine");
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_names_differ() {
        assert_ne!(AttrName::new("name"), AttrName::new("street"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(AttrName::new("a") < AttrName::new("b"));
    }

    #[test]
    fn display_and_as_str() {
        let a = AttrName::new("speciality");
        assert_eq!(a.to_string(), "speciality");
        assert_eq!(a.as_str(), "speciality");
    }

    #[test]
    fn hash_equals_for_equal_names() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(AttrName::new("x"));
        assert!(set.contains(&AttrName::new("x")));
    }
}
