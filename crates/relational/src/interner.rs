//! Value interning and columnar relation views — the id-space
//! substrate of the blocked matching engine.
//!
//! The matching hot path (candidate generation, rule verification,
//! pair dedup) is pure set bookkeeping over tuple identities; nothing
//! in it needs the actual strings. An [`Interner`] maps each distinct
//! [`Value`] to a dense `u32` symbol id ([`Sym`]) once per run, and
//! [`Columns`] stores a relation as one contiguous `Vec<Sym>` per
//! attribute. Everything downstream — inverted indexes, compiled
//! predicates, pair lists — then works on integers that fit in cache,
//! and decodes back to `Value`-land only at the API boundary.
//!
//! ## Equality contract
//!
//! For symbols produced by [`Interner::intern`]:
//!
//! * `NULL` always interns to [`NULL_SYM`] (id 0);
//! * for non-NULL values, **id equality coincides exactly with
//!   [`Value::compare`] returning `Equal`**. This requires one
//!   canonicalization beyond `Value`'s own `Eq`/`Hash` (which already
//!   merge `Int(2)` and `Float(2.0)`): `-0.0` is folded into `0.0`,
//!   the single case where `compare` says `Equal` but the bitwise
//!   `PartialEq` disagrees.
//!
//! [`Interner::intern_exact`] skips the canonicalization and follows
//! `Value`'s own `Eq`/`Hash` verbatim — the right key for memo tables
//! built on top of [`Value::non_null_eq`] (bitwise on floats), such
//! as the ILFD derivation memo.

use crate::hash::{FxHashMap, FxHashSet};
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;

/// A dense symbol id for an interned [`Value`].
pub type Sym = u32;

/// The symbol id reserved for [`Value::Null`]. Predicates over
/// symbols must treat it as *unknown*, never as a value equal to
/// itself — mirroring [`Value::non_null_eq`].
pub const NULL_SYM: Sym = 0;

/// A value ↔ symbol-id table. Build once per matching run, share
/// immutably (`&Interner`) across worker threads.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    map: FxHashMap<Value, Sym>,
    values: Vec<Value>,
}

impl Interner {
    /// An interner holding only the NULL symbol.
    pub fn new() -> Self {
        Interner {
            map: FxHashMap::default(),
            values: vec![Value::Null],
        }
    }

    /// Interns `value` under the matching-engine equality contract
    /// (see the module docs): NULL ↦ [`NULL_SYM`], `-0.0` ↦ `0.0`,
    /// ids stable for the lifetime of the interner.
    pub fn intern(&mut self, value: &Value) -> Sym {
        match value {
            Value::Float(f) if *f == 0.0 => self.intern_exact(&Value::Float(0.0)),
            v => self.intern_exact(v),
        }
    }

    /// Interns `value` following `Value`'s own `Eq`/`Hash` verbatim
    /// (no `-0.0` canonicalization). Symbols from `intern` and
    /// `intern_exact` share one id space.
    pub fn intern_exact(&mut self, value: &Value) -> Sym {
        if value.is_null() {
            return NULL_SYM;
        }
        if let Some(&sym) = self.map.get(value) {
            return sym;
        }
        let sym = Sym::try_from(self.values.len()).expect("more than u32::MAX distinct values");
        self.values.push(value.clone());
        self.map.insert(value.clone(), sym);
        sym
    }

    /// The value a symbol stands for. `NULL_SYM` resolves to
    /// [`Value::Null`].
    #[inline]
    pub fn resolve(&self, sym: Sym) -> &Value {
        &self.values[sym as usize]
    }

    /// Number of symbols issued, including the NULL symbol.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether only the NULL symbol exists.
    pub fn is_empty(&self) -> bool {
        self.values.len() == 1
    }
}

/// A columnar, interned view of a relation: one contiguous `Vec<Sym>`
/// per attribute. Encoded once per run; read-only and thread-shareable
/// afterwards.
#[derive(Debug, Clone, Default)]
pub struct Columns {
    cols: Vec<Vec<Sym>>,
    rows: usize,
}

impl Columns {
    /// Encodes `rel` through `interner` ([`Interner::intern`]
    /// semantics, so symbol equality is [`Value::compare`] equality).
    pub fn encode(rel: &Relation, interner: &mut Interner) -> Columns {
        let arity = rel.schema().arity();
        let mut cols = vec![Vec::with_capacity(rel.len()); arity];
        for t in rel.iter() {
            for (p, col) in cols.iter_mut().enumerate() {
                col.push(interner.intern(t.get(p)));
            }
        }
        Columns {
            cols,
            rows: rel.len(),
        }
    }

    /// Rebuilds a view from raw parts — the store's open path. The
    /// caller (the section reader) has already validated that every
    /// column holds exactly `rows` symbols.
    pub(crate) fn from_parts(cols: Vec<Vec<Sym>>, rows: usize) -> Columns {
        debug_assert!(cols.iter().all(|c| c.len() == rows));
        Columns { cols, rows }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the relation's arity).
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The symbol at (`row`, `col`).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Sym {
        self.cols[col][row]
    }

    /// One attribute's column, contiguous over all rows.
    #[inline]
    pub fn col(&self, col: usize) -> &[Sym] {
        &self.cols[col]
    }

    /// Appends one tuple, interning its values (the incremental
    /// matcher keeps a live columnar view in sync with its extended
    /// relations). The tuple's arity must match; extra positions are
    /// ignored and missing ones read as NULL.
    pub fn push_row(&mut self, tuple: &Tuple, interner: &mut Interner) {
        for (p, col) in self.cols.iter_mut().enumerate() {
            match tuple.values().get(p) {
                Some(v) => col.push(interner.intern(v)),
                None => col.push(NULL_SYM),
            }
        }
        self.rows += 1;
    }

    /// Truncates to the first `rows` rows — the rollback twin of
    /// [`Columns::push_row`].
    pub fn truncate(&mut self, rows: usize) {
        for col in &mut self.cols {
            col.truncate(rows);
        }
        self.rows = self.rows.min(rows);
    }

    /// Per-column statistics over the encoded rows — the cheap
    /// inputs the match planner costs blocking keys with.
    pub fn column_stats(&self) -> Vec<ColumnStat> {
        self.cols
            .iter()
            .map(|col| {
                let mut distinct: FxHashSet<Sym> = FxHashSet::default();
                let mut nulls = 0usize;
                for &sym in col {
                    if sym == NULL_SYM {
                        nulls += 1;
                    } else {
                        distinct.insert(sym);
                    }
                }
                ColumnStat {
                    distinct: distinct.len(),
                    nulls,
                    rows: self.rows,
                }
            })
            .collect()
    }
}

/// Cheap per-attribute statistics of one interned column: what the
/// cost-based match planner reads to choose blocking keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnStat {
    /// Distinct non-NULL symbols in the column.
    pub distinct: usize,
    /// NULL entries in the column.
    pub nulls: usize,
    /// Total rows the column covers.
    pub rows: usize,
}

impl ColumnStat {
    /// Fraction of rows that are NULL (0.0 for an empty column).
    pub fn null_fraction(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nulls as f64 / self.rows as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple::Tuple;

    #[test]
    fn null_interns_to_null_sym() {
        let mut it = Interner::new();
        assert_eq!(it.intern(&Value::Null), NULL_SYM);
        assert!(it.resolve(NULL_SYM).is_null());
        assert!(it.is_empty());
    }

    #[test]
    fn ids_are_stable_and_roundtrip() {
        let mut it = Interner::new();
        let a = it.intern(&Value::str("a"));
        let b = it.intern(&Value::str("b"));
        assert_ne!(a, b);
        assert_eq!(it.intern(&Value::str("a")), a);
        assert_eq!(it.resolve(a), &Value::str("a"));
        assert_eq!(it.len(), 3); // null + a + b
    }

    #[test]
    fn sym_equality_is_compare_equality() {
        let mut it = Interner::new();
        // Int(2) and Float(2.0) compare Equal: one symbol.
        assert_eq!(it.intern(&Value::int(2)), it.intern(&Value::float(2.0)));
        // -0.0 and 0.0 compare Equal but differ bitwise: one symbol
        // under `intern`…
        assert_eq!(
            it.intern(&Value::float(0.0)),
            it.intern(&Value::float(-0.0))
        );
        // …two under `intern_exact` (Value's own Eq is bitwise).
        assert_ne!(
            it.intern_exact(&Value::float(0.0)),
            it.intern_exact(&Value::float(-0.0))
        );
    }

    #[test]
    fn columns_encode_roundtrips() {
        let schema = Schema::of_strs("R", &["name", "cuisine"], &["name"]).unwrap();
        let mut rel = Relation::new(schema);
        rel.insert_strs(&["a", "chinese"]).unwrap();
        rel.insert(Tuple::new(vec![Value::str("b"), Value::Null]))
            .unwrap();
        let mut it = Interner::new();
        let cols = Columns::encode(&rel, &mut it);
        assert_eq!(cols.rows(), 2);
        assert_eq!(cols.arity(), 2);
        assert_eq!(it.resolve(cols.get(0, 1)), &Value::str("chinese"));
        assert_eq!(cols.get(1, 1), NULL_SYM);
        assert_eq!(cols.col(0).len(), 2);
    }

    #[test]
    fn column_stats_count_distinct_and_nulls() {
        let schema = Schema::of_strs("R", &["name", "cuisine"], &["name"]).unwrap();
        let mut rel = Relation::new(schema);
        rel.insert_strs(&["a", "chinese"]).unwrap();
        rel.insert_strs(&["b", "chinese"]).unwrap();
        rel.insert(Tuple::new(vec![Value::str("c"), Value::Null]))
            .unwrap();
        let mut it = Interner::new();
        let cols = Columns::encode(&rel, &mut it);
        let stats = cols.column_stats();
        assert_eq!(stats[0].distinct, 3);
        assert_eq!(stats[0].nulls, 0);
        assert_eq!(stats[1].distinct, 1);
        assert_eq!(stats[1].nulls, 1);
        assert!((stats[1].null_fraction() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn push_row_and_truncate_mirror_encode() {
        let schema = Schema::of_strs("R", &["name", "cuisine"], &["name"]).unwrap();
        let mut rel = Relation::new(schema.clone());
        rel.insert_strs(&["a", "chinese"]).unwrap();
        let mut it = Interner::new();
        let mut cols = Columns::encode(&rel, &mut it);
        cols.push_row(&Tuple::new(vec![Value::str("b"), Value::Null]), &mut it);
        assert_eq!(cols.rows(), 2);
        assert_eq!(it.resolve(cols.get(1, 0)), &Value::str("b"));
        assert_eq!(cols.get(1, 1), NULL_SYM);
        // Pushing then truncating restores the original shape.
        cols.truncate(1);
        assert_eq!(cols.rows(), 1);
        assert_eq!(cols.col(0).len(), 1);
    }
}
