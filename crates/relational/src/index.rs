//! Secondary hash indexes over relations.
//!
//! The matcher probes relations by extended-key projection, the
//! incremental engine by arbitrary attribute subsets; this module
//! factors that pattern into a reusable, maintainable index:
//! projection of the indexed attributes → positions of the tuples
//! holding it. Tuples whose indexed projection contains a NULL are
//! **not** indexed — NULL never participates in equality (the
//! engine's non-NULL semantics), so an index probe can never return
//! them.

use crate::attr::AttrName;
use crate::error::Result;
use crate::hash::FxHashMap;
use crate::relation::Relation;
use crate::tuple::Tuple;

/// A hash index on an attribute subset of one relation.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    positions: Vec<usize>,
    map: FxHashMap<Tuple, Vec<usize>>,
    indexed_len: usize,
}

impl HashIndex {
    /// Builds an index on `attrs` over the current contents of `rel`.
    pub fn build(rel: &Relation, attrs: &[AttrName]) -> Result<HashIndex> {
        let positions = rel.positions_of(attrs)?;
        let mut index = HashIndex {
            positions,
            map: FxHashMap::default(),
            indexed_len: 0,
        };
        index.refresh(rel);
        Ok(index)
    }

    /// Builds an index on the given column positions (already
    /// resolved against `rel`'s schema). Positions must be in range
    /// for the schema's arity.
    ///
    /// This is the positional twin of [`HashIndex::build`], used by
    /// precompiled rule plans that have left attribute names behind.
    pub fn build_at(rel: &Relation, positions: Vec<usize>) -> HashIndex {
        let mut index = HashIndex {
            positions,
            map: FxHashMap::default(),
            indexed_len: 0,
        };
        index.refresh(rel);
        index
    }

    /// The indexed column positions.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Re-scans `rel` from where the index left off — call after
    /// appending tuples. (Relations are append-only, so an index is
    /// never stale in any other way.)
    pub fn refresh(&mut self, rel: &Relation) {
        for (i, t) in rel.iter().enumerate().skip(self.indexed_len) {
            if t.non_null_at(&self.positions) {
                self.map
                    .entry(t.project(&self.positions))
                    .or_default()
                    .push(i);
            }
        }
        self.indexed_len = rel.len();
    }

    /// The tuple positions holding `key` (the projection over the
    /// indexed attributes).
    pub fn probe(&self, key: &Tuple) -> &[usize] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Probes with the projection of `tuple` (a tuple of the *other*
    /// relation whose values at `positions_in_other` align with the
    /// indexed attributes); `None` when the probe key has NULLs.
    pub fn probe_tuple(&self, tuple: &Tuple, positions_in_other: &[usize]) -> Option<&[usize]> {
        tuple
            .non_null_at(positions_in_other)
            .then(|| self.probe(&tuple.project(positions_in_other)))
    }

    /// Number of distinct indexed keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Number of indexed tuples (excludes NULL-keyed ones).
    pub fn len(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Whether no tuple is indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether every indexed key maps to exactly one tuple — i.e.
    /// the indexed attributes behave as a key of the relation.
    pub fn is_unique(&self) -> bool {
        self.map.values().all(|v| v.len() == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Value;

    fn rel() -> Relation {
        let schema =
            Schema::of_strs("R", &["name", "cuisine", "street"], &["name", "street"]).unwrap();
        let mut r = Relation::new(schema);
        r.insert_strs(&["tc", "chinese", "a"]).unwrap();
        r.insert_strs(&["tc", "indian", "b"]).unwrap();
        r.insert_strs(&["vw", "chinese", "c"]).unwrap();
        r
    }

    #[test]
    fn build_and_probe() {
        let r = rel();
        let ix = HashIndex::build(&r, &[AttrName::new("cuisine")]).unwrap();
        assert_eq!(ix.probe(&Tuple::of_strs(&["chinese"])), &[0, 2]);
        assert_eq!(ix.probe(&Tuple::of_strs(&["indian"])), &[1]);
        assert!(ix.probe(&Tuple::of_strs(&["greek"])).is_empty());
        assert_eq!(ix.len(), 3);
        assert_eq!(ix.distinct_keys(), 2);
        assert!(!ix.is_unique());
    }

    #[test]
    fn composite_key_index_is_unique() {
        let r = rel();
        let ix = HashIndex::build(&r, &[AttrName::new("name"), AttrName::new("cuisine")]).unwrap();
        assert!(ix.is_unique());
        assert_eq!(ix.probe(&Tuple::of_strs(&["tc", "indian"])), &[1]);
    }

    #[test]
    fn refresh_picks_up_appends() {
        let mut r = rel();
        let mut ix = HashIndex::build(&r, &[AttrName::new("cuisine")]).unwrap();
        r.insert_strs(&["og", "greek", "d"]).unwrap();
        assert!(ix.probe(&Tuple::of_strs(&["greek"])).is_empty());
        ix.refresh(&r);
        assert_eq!(ix.probe(&Tuple::of_strs(&["greek"])), &[3]);
        // Refresh is idempotent.
        ix.refresh(&r);
        assert_eq!(ix.len(), 4);
    }

    #[test]
    fn null_keys_are_not_indexed() {
        let schema = Schema::of_strs("R", &["a", "b"], &["a"]).unwrap();
        let mut r = Relation::new_unchecked(schema);
        r.insert(Tuple::new(vec![Value::str("x"), Value::Null]))
            .unwrap();
        r.insert(Tuple::of_strs(&["y", "v"])).unwrap();
        let ix = HashIndex::build(&r, &[AttrName::new("b")]).unwrap();
        assert_eq!(ix.len(), 1);
        assert!(ix.is_unique());
    }

    #[test]
    fn probe_tuple_respects_nulls() {
        let r = rel();
        let ix = HashIndex::build(&r, &[AttrName::new("cuisine")]).unwrap();
        let probe = Tuple::new(vec![Value::str("zz"), Value::str("chinese")]);
        assert_eq!(ix.probe_tuple(&probe, &[1]), Some(&[0usize, 2][..]));
        let null_probe = Tuple::new(vec![Value::str("zz"), Value::Null]);
        assert_eq!(ix.probe_tuple(&null_probe, &[1]), None);
    }

    #[test]
    fn unknown_attribute_errors() {
        let r = rel();
        assert!(HashIndex::build(&r, &[AttrName::new("nope")]).is_err());
    }
}
