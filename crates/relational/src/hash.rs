//! A fast, non-cryptographic hasher for internal hash tables.
//!
//! The matcher's hot paths hash short tuple keys millions of times;
//! SipHash's per-call finalization cost dominates there. This is the
//! well-known Fx multiply-rotate hash (as used by rustc's internal
//! tables), written out locally so the crate stays dependency-free.
//! It is **not** DoS-resistant — use it only for tables whose keys
//! come from trusted data, which is every table in this workspace.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Fx hash: a 64-bit cousin of the golden ratio.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx word-at-a-time hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            // Mix in the length so "b" and "a\0" (same padded word
            // modulo byte values) cannot collide structurally.
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
        assert_eq!(hash_of(&(1u64, 2u64)), hash_of(&(1u64, 2u64)));
    }

    #[test]
    fn distinct_short_strings_disperse() {
        let hashes: FxHashSet<u64> = ["a", "b", "ab", "ba", "a\0", ""]
            .iter()
            .map(hash_of)
            .collect();
        assert_eq!(hashes.len(), 6);
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<&str, usize> = FxHashMap::default();
        m.insert("x", 1);
        assert_eq!(m.get("x"), Some(&1));
        let mut s: FxHashSet<usize> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn value_hashing_is_consistent_with_eq() {
        use crate::value::Value;
        // Int/Float numeric equality must still imply equal hashes
        // under the Fx hasher (Value's Hash impl guarantees it for
        // any Hasher).
        assert_eq!(hash_of(&Value::int(2)), hash_of(&Value::float(2.0)));
    }
}
