//! A deliberately tiny CSV reader/writer for workload files.
//!
//! Supports comma separation, double-quote quoting with `""` escapes,
//! and the literal cell `null` (unquoted) for NULL. This is enough to
//! round-trip generated workloads; it is not a general CSV library.

use std::sync::Arc;

use crate::error::{RelationalError, Result};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// Serializes `rel` to CSV with a header row of attribute names.
pub fn to_csv(rel: &Relation) -> String {
    let mut out = String::new();
    let header: Vec<String> = rel
        .schema()
        .attributes()
        .iter()
        .map(|a| quote(a.name.as_str()))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for t in rel.iter() {
        let row: Vec<String> = t
            .values()
            .iter()
            .map(|v| match v {
                Value::Null => "null".to_string(),
                other => quote(&other.render()),
            })
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

fn quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s == "null" {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Parses CSV produced by [`to_csv`] into a relation under `schema`
/// (header row must match the schema's attribute names). All values
/// are read as strings except the literal `null`.
pub fn from_csv(schema: Arc<Schema>, text: &str) -> Result<Relation> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(RelationalError::Csv {
        line: 1,
        detail: "missing header row".into(),
    })?;
    let header_cells = parse_line(header, 1)?;
    let expected: Vec<&str> = schema
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    if header_cells
        .iter()
        .map(|c| c.as_str())
        .ne(expected.iter().copied())
    {
        return Err(RelationalError::Csv {
            line: 1,
            detail: format!(
                "header {:?} does not match schema attributes {:?}",
                header_cells, expected
            ),
        });
    }
    let mut rel = Relation::new_unchecked(schema);
    for (i, line) in lines {
        if line.is_empty() {
            continue;
        }
        let cells = parse_line(line, i + 1)?;
        if cells.len() != rel.schema().arity() {
            return Err(RelationalError::Csv {
                line: i + 1,
                detail: format!(
                    "expected {} cells, got {}",
                    rel.schema().arity(),
                    cells.len()
                ),
            });
        }
        let values: Vec<Value> = cells
            .into_iter()
            .map(|c| {
                if c.raw && c.text == "null" {
                    Value::Null
                } else {
                    Value::str(c.text)
                }
            })
            .collect();
        rel.insert(Tuple::new(values))?;
    }
    Ok(rel)
}

/// Parses CSV whose schema is *inferred from the header row*: every
/// column is string-typed, and `key` names the candidate key. This is
/// the entry point for user-supplied workload files (the `eid` CLI).
pub fn from_csv_inferred(name: &str, text: &str, key: &[&str]) -> Result<Relation> {
    let header = text.lines().next().ok_or(RelationalError::Csv {
        line: 1,
        detail: "missing header row".into(),
    })?;
    let cells = parse_line(header, 1)?;
    let attrs: Vec<&str> = cells.iter().map(|c| c.as_str()).collect();
    let schema = Schema::of_strs(name, &attrs, key)?;
    let rel = from_csv(schema.clone(), text)?;
    // Re-validate through a key-enforcing relation.
    let mut checked = Relation::new(schema);
    for t in rel.iter() {
        checked.insert(t.clone())?;
    }
    Ok(checked)
}

/// A parsed cell: `raw` is false when the cell was quoted (so a
/// quoted `"null"` stays the string `null`).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Cell {
    text: String,
    raw: bool,
}

impl Cell {
    fn as_str(&self) -> &str {
        &self.text
    }
}

fn parse_line(line: &str, line_no: usize) -> Result<Vec<Cell>> {
    let mut cells = Vec::new();
    let mut chars = line.chars().peekable();
    loop {
        let mut text = String::new();
        let mut raw = true;
        if chars.peek() == Some(&'"') {
            raw = false;
            chars.next();
            loop {
                match chars.next() {
                    Some('"') => {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            text.push('"');
                        } else {
                            break;
                        }
                    }
                    Some(c) => text.push(c),
                    None => {
                        return Err(RelationalError::Csv {
                            line: line_no,
                            detail: "unterminated quoted cell".into(),
                        })
                    }
                }
            }
        } else {
            while let Some(&c) = chars.peek() {
                if c == ',' {
                    break;
                }
                if c == '"' {
                    return Err(RelationalError::Csv {
                        line: line_no,
                        detail: "quote inside unquoted cell".into(),
                    });
                }
                text.push(c);
                chars.next();
            }
        }
        cells.push(Cell { text, raw });
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(c) => {
                return Err(RelationalError::Csv {
                    line: line_no,
                    detail: format!("unexpected character `{c}` after cell"),
                })
            }
        }
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Schema::of_strs("R", &["name", "cuisine"], &["name"]).unwrap()
    }

    #[test]
    fn round_trip_with_nulls() {
        let mut rel = Relation::new_unchecked(schema());
        rel.insert(Tuple::of_strs(&["villagewok", "chinese"]))
            .unwrap();
        rel.insert(Tuple::new(vec![Value::str("x"), Value::Null]))
            .unwrap();
        let csv = to_csv(&rel);
        let back = from_csv(schema(), &csv).unwrap();
        assert!(rel.same_tuples(&back));
    }

    #[test]
    fn quoting_round_trips_commas_quotes_and_literal_null_string() {
        let mut rel = Relation::new_unchecked(schema());
        rel.insert(Tuple::of_strs(&["a,b", "he said \"hi\""]))
            .unwrap();
        rel.insert(Tuple::of_strs(&["null", "ok"])).unwrap(); // string "null", not NULL
        let csv = to_csv(&rel);
        let back = from_csv(schema(), &csv).unwrap();
        assert!(rel.same_tuples(&back));
        assert_eq!(back.tuples()[1].get(0), &Value::str("null"));
    }

    #[test]
    fn header_mismatch_is_error() {
        let csv = "wrong,header\na,b\n";
        let err = from_csv(schema(), csv).unwrap_err();
        assert!(matches!(err, RelationalError::Csv { line: 1, .. }));
    }

    #[test]
    fn bad_arity_is_error_with_line_number() {
        let csv = "name,cuisine\na\n";
        let err = from_csv(schema(), csv).unwrap_err();
        assert!(matches!(err, RelationalError::Csv { line: 2, .. }));
    }

    #[test]
    fn unterminated_quote_is_error() {
        let csv = "name,cuisine\n\"abc,def\n";
        assert!(from_csv(schema(), csv).is_err());
    }
}

#[cfg(test)]
mod inferred_tests {
    use super::*;

    #[test]
    fn infers_schema_from_header() {
        let csv = "name,cuisine\nvillagewok,chinese\nching,chinese\n";
        let rel = from_csv_inferred("R", csv, &["name"]).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.schema().primary_key().len(), 1);
    }

    #[test]
    fn enforces_declared_key() {
        let csv = "name,cuisine\na,chinese\na,greek\n";
        assert!(from_csv_inferred("R", csv, &["name"]).is_err());
        assert!(from_csv_inferred("R", csv, &["name", "cuisine"]).is_ok());
    }

    #[test]
    fn unknown_key_attribute_is_error() {
        let csv = "name\na\n";
        assert!(from_csv_inferred("R", csv, &["nope"]).is_err());
    }
}
