//! A deliberately tiny CSV reader/writer for workload files.
//!
//! Supports comma separation, double-quote quoting with `""` escapes,
//! and the literal cell `null` (unquoted) for NULL. This is enough to
//! round-trip generated workloads; it is not a general CSV library.
//!
//! Ingestion is hardened for autonomous sources: every malformed row
//! surfaces as [`RelationalError::Csv`] with line *and column*
//! context, and the `*_lenient` variants skip bad rows instead of
//! failing, returning them as [`CsvReject`]s so callers can count
//! rejected rows into their reports.

use std::sync::Arc;

use crate::error::{RelationalError, Result};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// Serializes `rel` to CSV with a header row of attribute names.
pub fn to_csv(rel: &Relation) -> String {
    let mut out = String::new();
    let header: Vec<String> = rel
        .schema()
        .attributes()
        .iter()
        .map(|a| quote(a.name.as_str()))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for t in rel.iter() {
        let row: Vec<String> = t
            .values()
            .iter()
            .map(|v| match v {
                Value::Null => "null".to_string(),
                other => quote(&other.render()),
            })
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

fn quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s == "null" {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// One skipped row from a lenient parse: which line, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvReject {
    /// 1-based line number of the rejected row.
    pub line: usize,
    /// What was wrong with it.
    pub error: RelationalError,
}

/// Parses CSV produced by [`to_csv`] into a relation under `schema`
/// (header row must match the schema's attribute names). All values
/// are read as strings except the literal `null`. Any malformed row
/// fails the whole parse with line/column context.
pub fn from_csv(schema: Arc<Schema>, text: &str) -> Result<Relation> {
    let mut rel = Relation::new_unchecked(schema);
    let rejects = read_rows(&mut rel, text, false)?;
    debug_assert!(rejects.is_empty(), "strict mode rejects nothing");
    Ok(rel)
}

/// Like [`from_csv`] but *lenient*: a malformed data row is skipped
/// and reported in the returned [`CsvReject`] list instead of failing
/// the parse. A missing or mismatched header still fails — there is
/// no sensible way to continue without one.
pub fn from_csv_lenient(schema: Arc<Schema>, text: &str) -> Result<(Relation, Vec<CsvReject>)> {
    let mut rel = Relation::new_unchecked(schema);
    let rejects = read_rows(&mut rel, text, true)?;
    Ok((rel, rejects))
}

/// Parses CSV whose schema is *inferred from the header row*: every
/// column is string-typed, and `key` names the candidate key. This is
/// the entry point for user-supplied workload files (the `eid` CLI).
/// Key violations are detected on insert and fail the parse.
pub fn from_csv_inferred(name: &str, text: &str, key: &[&str]) -> Result<Relation> {
    let mut rel = Relation::new(inferred_schema(name, text, key)?);
    let rejects = read_rows(&mut rel, text, false)?;
    debug_assert!(rejects.is_empty(), "strict mode rejects nothing");
    Ok(rel)
}

/// Lenient [`from_csv_inferred`]: malformed rows *and* key-violating
/// rows are skipped and reported instead of failing the parse.
pub fn from_csv_inferred_lenient(
    name: &str,
    text: &str,
    key: &[&str],
) -> Result<(Relation, Vec<CsvReject>)> {
    let mut rel = Relation::new(inferred_schema(name, text, key)?);
    let rejects = read_rows(&mut rel, text, true)?;
    Ok((rel, rejects))
}

fn inferred_schema(name: &str, text: &str, key: &[&str]) -> Result<Arc<Schema>> {
    let header = text.lines().next().ok_or(RelationalError::Csv {
        line: 1,
        col: 0,
        detail: "missing header row".into(),
    })?;
    let cells = parse_line(header, 1)?;
    let attrs: Vec<&str> = cells.iter().map(|c| c.as_str()).collect();
    Schema::of_strs(name, &attrs, key)
}

/// The shared row loop: validates the header against `rel`'s schema,
/// then parses and inserts every data row. In lenient mode a bad row
/// (parse error, arity mismatch, or insert rejection such as a key
/// violation) is returned as a [`CsvReject`]; in strict mode it fails
/// the parse.
fn read_rows(rel: &mut Relation, text: &str, lenient: bool) -> Result<Vec<CsvReject>> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(RelationalError::Csv {
        line: 1,
        col: 0,
        detail: "missing header row".into(),
    })?;
    let header_cells = parse_line(header, 1)?;
    let expected: Vec<&str> = rel
        .schema()
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    if header_cells
        .iter()
        .map(|c| c.as_str())
        .ne(expected.iter().copied())
    {
        return Err(RelationalError::Csv {
            line: 1,
            col: 0,
            detail: format!(
                "header {:?} does not match schema attributes {:?}",
                header_cells.iter().map(|c| c.as_str()).collect::<Vec<_>>(),
                expected
            ),
        });
    }
    let mut rejects = Vec::new();
    for (i, line) in lines {
        if line.is_empty() {
            continue;
        }
        let line_no = i + 1;
        match read_row(rel, line, line_no) {
            Ok(()) => {}
            Err(error) if lenient => rejects.push(CsvReject {
                line: line_no,
                error,
            }),
            Err(error) => return Err(error),
        }
    }
    Ok(rejects)
}

/// Parses one data row and inserts it into `rel`.
fn read_row(rel: &mut Relation, line: &str, line_no: usize) -> Result<()> {
    if eid_fault::hit("csv/read") {
        return Err(RelationalError::Csv {
            line: line_no,
            col: 0,
            detail: "injected read error (eid-fault csv/read)".into(),
        });
    }
    let cells = parse_line(line, line_no)?;
    if cells.len() != rel.schema().arity() {
        return Err(RelationalError::Csv {
            line: line_no,
            col: 0,
            detail: format!(
                "expected {} cells, got {}",
                rel.schema().arity(),
                cells.len()
            ),
        });
    }
    let values: Vec<Value> = cells
        .into_iter()
        .map(|c| {
            if c.raw && c.text == "null" {
                Value::Null
            } else {
                Value::str(c.text)
            }
        })
        .collect();
    rel.insert(Tuple::new(values))
}

/// A parsed cell: `raw` is false when the cell was quoted (so a
/// quoted `"null"` stays the string `null`); `col` is the 1-based
/// character column the cell started at.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Cell {
    text: String,
    raw: bool,
    col: usize,
}

impl Cell {
    fn as_str(&self) -> &str {
        &self.text
    }
}

fn parse_line(line: &str, line_no: usize) -> Result<Vec<Cell>> {
    let mut cells = Vec::new();
    // 1-based character column of the *next* character to read.
    let mut col = 1usize;
    let mut chars = line.chars().peekable();
    loop {
        let mut text = String::new();
        let mut raw = true;
        let cell_col = col;
        if chars.peek() == Some(&'"') {
            raw = false;
            chars.next();
            col += 1;
            loop {
                match chars.next() {
                    Some('"') => {
                        col += 1;
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            col += 1;
                            text.push('"');
                        } else {
                            break;
                        }
                    }
                    Some(c) => {
                        col += 1;
                        text.push(c);
                    }
                    None => {
                        return Err(RelationalError::Csv {
                            line: line_no,
                            col: cell_col,
                            detail: "unterminated quoted cell".into(),
                        })
                    }
                }
            }
        } else {
            while let Some(&c) = chars.peek() {
                if c == ',' {
                    break;
                }
                if c == '"' {
                    return Err(RelationalError::Csv {
                        line: line_no,
                        col,
                        detail: "quote inside unquoted cell".into(),
                    });
                }
                text.push(c);
                chars.next();
                col += 1;
            }
        }
        cells.push(Cell {
            text,
            raw,
            col: cell_col,
        });
        match chars.next() {
            Some(',') => {
                col += 1;
                continue;
            }
            None => break,
            Some(c) => {
                return Err(RelationalError::Csv {
                    line: line_no,
                    col,
                    detail: format!("unexpected character `{c}` after cell"),
                })
            }
        }
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Schema::of_strs("R", &["name", "cuisine"], &["name"]).unwrap()
    }

    #[test]
    fn round_trip_with_nulls() {
        let mut rel = Relation::new_unchecked(schema());
        rel.insert(Tuple::of_strs(&["villagewok", "chinese"]))
            .unwrap();
        rel.insert(Tuple::new(vec![Value::str("x"), Value::Null]))
            .unwrap();
        let csv = to_csv(&rel);
        let back = from_csv(schema(), &csv).unwrap();
        assert!(rel.same_tuples(&back));
    }

    #[test]
    fn quoting_round_trips_commas_quotes_and_literal_null_string() {
        let mut rel = Relation::new_unchecked(schema());
        rel.insert(Tuple::of_strs(&["a,b", "he said \"hi\""]))
            .unwrap();
        rel.insert(Tuple::of_strs(&["null", "ok"])).unwrap(); // string "null", not NULL
        let csv = to_csv(&rel);
        let back = from_csv(schema(), &csv).unwrap();
        assert!(rel.same_tuples(&back));
        assert_eq!(back.tuples()[1].get(0), &Value::str("null"));
    }

    #[test]
    fn header_mismatch_is_error() {
        let csv = "wrong,header\na,b\n";
        let err = from_csv(schema(), csv).unwrap_err();
        assert!(matches!(err, RelationalError::Csv { line: 1, .. }));
    }

    #[test]
    fn bad_arity_is_error_with_line_number() {
        let csv = "name,cuisine\na\n";
        let err = from_csv(schema(), csv).unwrap_err();
        assert!(matches!(
            err,
            RelationalError::Csv {
                line: 2,
                col: 0,
                ..
            }
        ));
    }

    #[test]
    fn unterminated_quote_is_error_with_column() {
        let csv = "name,cuisine\nabc,\"def\n";
        let err = from_csv(schema(), csv).unwrap_err();
        assert!(
            matches!(
                err,
                RelationalError::Csv {
                    line: 2,
                    col: 5,
                    ..
                }
            ),
            "{err:?}"
        );
        assert!(err.to_string().contains("column 5"), "{err}");
    }

    #[test]
    fn stray_quote_reports_its_column() {
        let csv = "name,cuisine\nab\"c,def\n";
        let err = from_csv(schema(), csv).unwrap_err();
        assert!(
            matches!(
                err,
                RelationalError::Csv {
                    line: 2,
                    col: 3,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn trailing_garbage_after_quoted_cell_reports_column() {
        let csv = "name,cuisine\n\"ab\"x,def\n";
        let err = from_csv(schema(), csv).unwrap_err();
        assert!(
            matches!(
                err,
                RelationalError::Csv {
                    line: 2,
                    col: 5,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn lenient_skips_bad_rows_and_reports_them() {
        let csv = "name,cuisine\ngood1,chinese\nonly-one-cell\ngood2,greek\n\"broken\n";
        let (rel, rejects) = from_csv_lenient(schema(), csv).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rejects.len(), 2);
        assert_eq!(rejects[0].line, 3);
        assert_eq!(rejects[1].line, 5);
        assert!(rejects[0].error.to_string().contains("expected 2 cells"));
    }

    #[test]
    fn lenient_still_fails_on_bad_header() {
        let csv = "wrong,header\na,b\n";
        assert!(from_csv_lenient(schema(), csv).is_err());
        assert!(from_csv_lenient(schema(), "").is_err());
    }
}

#[cfg(test)]
mod inferred_tests {
    use super::*;

    #[test]
    fn infers_schema_from_header() {
        let csv = "name,cuisine\nvillagewok,chinese\nching,chinese\n";
        let rel = from_csv_inferred("R", csv, &["name"]).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.schema().primary_key().len(), 1);
    }

    #[test]
    fn enforces_declared_key() {
        let csv = "name,cuisine\na,chinese\na,greek\n";
        assert!(from_csv_inferred("R", csv, &["name"]).is_err());
        assert!(from_csv_inferred("R", csv, &["name", "cuisine"]).is_ok());
    }

    #[test]
    fn unknown_key_attribute_is_error() {
        let csv = "name\na\n";
        assert!(from_csv_inferred("R", csv, &["nope"]).is_err());
    }

    #[test]
    fn lenient_inferred_skips_key_violations() {
        let csv = "name,cuisine\na,chinese\na,greek\nb,thai\n";
        let (rel, rejects) = from_csv_inferred_lenient("R", csv, &["name"]).unwrap();
        assert_eq!(rel.len(), 2); // first `a` wins, duplicate skipped
        assert_eq!(rejects.len(), 1);
        assert_eq!(rejects[0].line, 3);
        assert!(matches!(
            rejects[0].error,
            RelationalError::KeyViolation { .. }
        ));
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;

    #[test]
    fn injected_read_error_surfaces_and_lenient_survives_it() {
        // Process-global fault state: this is the only fault-armed
        // test in this crate's test binary.
        eid_fault::install("csv/read@2", 0).unwrap();
        let csv = "name,cuisine\na,chinese\nb,greek\nc,thai\n";
        let (rel, rejects) = from_csv_lenient(
            Schema::of_strs("R", &["name", "cuisine"], &["name"]).unwrap(),
            csv,
        )
        .unwrap();
        eid_fault::clear();
        assert_eq!(rel.len(), 2);
        assert_eq!(rejects.len(), 1);
        assert_eq!(rejects[0].line, 3);
        assert!(rejects[0].error.to_string().contains("injected"));
    }
}
