//! Binary section files for the persistent dataset store — the
//! on-disk twins of [`Interner`], [`Columns`], [`Schema`] and
//! [`ColumnStat`].
//!
//! A *section file* is one length-delimited, checksummed record:
//!
//! ```text
//! ┌──────────┬─────────┬─────────┬──────┬─────────────┬─────────┬──────────┐
//! │ magic    │ version │ endian  │ kind │ payload_len │ payload │ checksum │
//! │ "EIDS"   │ u32 LE  │ u32 LE  │ u32  │ u64 LE      │ bytes   │ u64 LE   │
//! │ 4 bytes  │ = 1     │ 0x01020304      │             │         │ 4-lane   │
//! └──────────┴─────────┴─────────┴──────┴─────────────┴─────────┴──────────┘
//! ```
//!
//! The reader is **single-pass and bounded-copy**: every length it
//! trusts is first validated against the real file size (header
//! `payload_len` must account for the file exactly) or the remaining
//! payload (string/array lengths), so a corrupt length can never
//! trigger an oversized allocation or an out-of-bounds read. The
//! payload is laid out with naturally-aligned little-endian fixed-width
//! fields precisely so a future mmap fast path can point into the file
//! instead of copying — without a format version bump.
//!
//! Corruption of any kind — truncation, bit flips, wrong magic,
//! unknown version, foreign endianness, a mismatched section kind —
//! surfaces as a typed [`StoreError`] naming the file and the reason.
//! Nothing in this module panics on untrusted bytes.

use std::fmt;
use std::fs;
use std::io::Read;
use std::path::Path;
use std::sync::Arc;

use crate::attr::AttrName;
use crate::interner::{ColumnStat, Columns, Interner, Sym, NULL_SYM};
use crate::relation::Relation;
use crate::schema::{Attribute, Schema};
use crate::tuple::Tuple;
use crate::value::{Value, ValueType};

/// The four magic bytes every section file starts with.
pub const MAGIC: [u8; 4] = *b"EIDS";
/// The format version this reader/writer speaks.
pub const VERSION: u32 = 1;
/// Endianness marker: written as a native little-endian `u32`; a
/// reader on a foreign byte order sees `0x04030201` and rejects.
pub const ENDIAN_TAG: u32 = 0x0102_0304;

const HEADER_LEN: usize = 4 + 4 + 4 + 4 + 8;
const CHECKSUM_LEN: usize = 8;

/// Section kinds — one per file of a dataset directory.
pub mod section {
    /// Dataset manifest: names, key, rules text, row counts.
    pub const MANIFEST: u32 = 1;
    /// The serialized value interner.
    pub const INTERNER: u32 = 2;
    /// One relation: schema + per-attribute symbol columns.
    pub const COLUMNS: u32 = 3;
    /// Per-column distinct/null statistics.
    pub const STATS: u32 = 4;
    /// Optional serialized blocking index (postings lists).
    pub const INDEX: u32 = 5;

    /// Human name of a section kind (unknown kinds included).
    pub fn name(kind: u32) -> &'static str {
        match kind {
            MANIFEST => "manifest",
            INTERNER => "interner",
            COLUMNS => "columns",
            STATS => "stats",
            INDEX => "index",
            _ => "unknown",
        }
    }
}

/// A typed store-corruption error: which file, and what was wrong.
/// This is the *only* failure mode of the store reader — corrupt
/// bytes never panic and never produce silent garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// The offending file (or directory) path.
    pub path: String,
    /// What failed: truncation, checksum, version, a bad length…
    pub reason: String,
}

impl StoreError {
    /// Builds an error for `path` with `reason`.
    pub fn new(path: impl Into<String>, reason: impl Into<String>) -> Self {
        StoreError {
            path: path.into(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "store file {}: {}", self.path, self.reason)
    }
}

impl std::error::Error for StoreError {}

/// Result alias for store operations.
pub type StoreResult<T> = std::result::Result<T, StoreError>;

/// 64-bit section checksum: a four-lane FNV-1a variant over `u64`
/// words. Plain byte-serial FNV-1a is one dependent multiply per byte
/// — latency-bound at ~3 cycles/byte, which alone would cost
/// milliseconds on a multi-megabyte store and defeat the
/// open-in-milliseconds goal. Four independent lanes over 32-byte
/// chunks keep the multiplier pipeline full (~8× faster) while still
/// mixing every byte (and the total length) into the digest, so
/// truncation and bit rot are caught exactly as before. Not
/// cryptographic — that is not the threat model for a local columnar
/// store.
pub fn checksum64(bytes: &[u8]) -> u64 {
    const SEED: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut lanes = [
        SEED,
        SEED.wrapping_mul(PRIME),
        SEED.rotate_left(17),
        SEED.rotate_left(31),
    ];
    let mut chunks = bytes.chunks_exact(32);
    for chunk in &mut chunks {
        for (i, lane) in lanes.iter_mut().enumerate() {
            let w = u64::from_le_bytes(chunk[i * 8..i * 8 + 8].try_into().unwrap());
            *lane = (*lane ^ w).wrapping_mul(PRIME);
        }
    }
    // Tail bytes fold into lane 0 byte-serially (at most 31 of them).
    for &b in chunks.remainder() {
        lanes[0] = (lanes[0] ^ u64::from(b)).wrapping_mul(PRIME);
    }
    let mut hash = bytes.len() as u64;
    for lane in lanes {
        hash = (hash ^ lane).wrapping_mul(PRIME);
    }
    hash
}

/// Builds a section payload: fixed-width little-endian fields,
/// length-prefixed strings, tagged values.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// An empty payload.
    pub fn new() -> Self {
        PayloadWriter::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian two's complement.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `u64` length prefix followed by the UTF-8 bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends one tagged [`Value`].
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(0),
            Value::Str(s) => {
                self.put_u8(1);
                self.put_str(s);
            }
            Value::Int(i) => {
                self.put_u8(2);
                self.put_i64(*i);
            }
            Value::Float(f) => {
                self.put_u8(3);
                self.put_f64(*f);
            }
            Value::Bool(b) => {
                self.put_u8(4);
                self.put_u8(u8::from(*b));
            }
        }
    }

    /// The finished payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Single-pass bounded reader over one section's validated payload.
/// Every getter bounds-checks against the remaining bytes and returns
/// a [`StoreError`] naming the file and offset on under-run.
#[derive(Debug)]
pub struct PayloadReader {
    data: Vec<u8>,
    pos: usize,
    path: String,
}

impl PayloadReader {
    /// Wraps an already-validated payload (see [`read_section`]).
    pub fn new(data: Vec<u8>, path: impl Into<String>) -> Self {
        PayloadReader {
            data,
            pos: 0,
            path: path.into(),
        }
    }

    /// The file this payload came from (for error context).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Builds a [`StoreError`] against this reader's file.
    pub fn corrupt(&self, reason: impl Into<String>) -> StoreError {
        StoreError::new(&self.path, reason)
    }

    fn need(&self, n: usize) -> StoreResult<()> {
        if self.remaining() < n {
            return Err(self.corrupt(format!(
                "payload under-run at offset {}: need {} more bytes, {} left",
                self.pos,
                n,
                self.remaining()
            )));
        }
        Ok(())
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> StoreResult<u8> {
        self.need(1)?;
        let v = self.data[self.pos];
        self.pos += 1;
        Ok(v)
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> StoreResult<u32> {
        self.need(4)?;
        let v = u32::from_le_bytes(self.data[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        Ok(v)
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> StoreResult<u64> {
        self.need(8)?;
        let v = u64::from_le_bytes(self.data[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        Ok(v)
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> StoreResult<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads an IEEE-754 `f64`.
    pub fn get_f64(&mut self) -> StoreResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u64` that will be used as an element count, validating
    /// it against the bytes actually left (`min_elem_bytes` per
    /// element) so a corrupt count can't drive an oversized allocation.
    pub fn get_count(&mut self, min_elem_bytes: usize, what: &str) -> StoreResult<usize> {
        let n = self.get_u64()?;
        let cap = (self.remaining() / min_elem_bytes.max(1)) as u64;
        if n > cap {
            return Err(self.corrupt(format!(
                "{what} count {n} exceeds what the remaining {} bytes can hold",
                self.remaining()
            )));
        }
        Ok(n as usize)
    }

    /// Reads a contiguous run of `n` little-endian `u32`s in one
    /// bounds check — the bulk path symbol columns decode through
    /// (per-element getters cost a call and a check per value, which
    /// dominates open time on hundred-thousand-cell columns).
    pub fn get_u32_run(&mut self, n: usize) -> StoreResult<Vec<u32>> {
        let bytes = n
            .checked_mul(4)
            .ok_or_else(|| self.corrupt(format!("u32 run of {n} elements overflows")))?;
        self.need(bytes)?;
        let out = self.data[self.pos..self.pos + bytes]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        self.pos += bytes;
        Ok(out)
    }

    /// Dismantles the reader into its payload bytes, current offset,
    /// and file path — the deferred-decode handoff: a lazy section
    /// keeps the (already checksum-validated) payload and resumes
    /// decoding on first access.
    pub fn into_parts(self) -> (Vec<u8>, usize, String) {
        (self.data, self.pos, self.path)
    }

    /// Rebuilds a reader from [`PayloadReader::into_parts`] output.
    pub fn resume(data: Vec<u8>, pos: usize, path: String) -> Self {
        PayloadReader { data, pos, path }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> StoreResult<String> {
        let len = self.get_count(1, "string byte")?;
        let bytes = &self.data[self.pos..self.pos + len];
        let s = std::str::from_utf8(bytes)
            .map_err(|e| self.corrupt(format!("invalid UTF-8 in string: {e}")))?
            .to_string();
        self.pos += len;
        Ok(s)
    }

    /// Reads one tagged [`Value`].
    pub fn get_value(&mut self) -> StoreResult<Value> {
        match self.get_u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::str(self.get_str()?)),
            2 => Ok(Value::int(self.get_i64()?)),
            3 => Ok(Value::Float(self.get_f64()?)),
            4 => Ok(Value::bool(self.get_u8()? != 0)),
            t => Err(self.corrupt(format!("unknown value tag {t}"))),
        }
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self) -> StoreResult<()> {
        if self.remaining() != 0 {
            return Err(self.corrupt(format!(
                "{} trailing bytes after the last field",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Writes one section file: header, payload, [`checksum64`].
pub fn write_section(path: &Path, kind: u32, payload: &[u8]) -> StoreResult<()> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&ENDIAN_TAG.to_le_bytes());
    buf.extend_from_slice(&kind.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&checksum64(payload).to_le_bytes());
    fs::write(path, &buf).map_err(|e| StoreError::new(path.display().to_string(), e.to_string()))
}

/// Opens and fully validates one section file of the expected `kind`:
/// magic, version, endianness, kind, exact length accounting, and the
/// payload checksum — in one bounded pass. Returns the payload ready
/// for field-level decoding.
pub fn read_section(path: &Path, kind: u32) -> StoreResult<PayloadReader> {
    let p = path.display().to_string();
    let err = |reason: String| StoreError::new(p.clone(), reason);
    let meta = fs::metadata(path).map_err(|e| err(e.to_string()))?;
    let file_len = meta.len();
    let overhead = (HEADER_LEN + CHECKSUM_LEN) as u64;
    if file_len < overhead {
        return Err(err(format!(
            "truncated: {file_len} bytes, a section needs at least {overhead}"
        )));
    }
    let mut f = fs::File::open(path).map_err(|e| err(e.to_string()))?;
    let mut header = [0u8; HEADER_LEN];
    f.read_exact(&mut header).map_err(|e| err(e.to_string()))?;
    if header[..4] != MAGIC {
        return Err(err(format!(
            "bad magic {:02x?} (expected \"EIDS\")",
            &header[..4]
        )));
    }
    let field = |off: usize| u32::from_le_bytes(header[off..off + 4].try_into().unwrap());
    let version = field(4);
    if version != VERSION {
        return Err(err(format!(
            "unsupported format version {version} (this reader speaks {VERSION})"
        )));
    }
    let endian = field(8);
    if endian != ENDIAN_TAG {
        return Err(err(format!(
            "endianness marker {endian:#010x} does not match {ENDIAN_TAG:#010x} \
             (file written on a foreign byte order?)"
        )));
    }
    let got_kind = field(12);
    if got_kind != kind {
        return Err(err(format!(
            "section kind {} ({}) where {} ({}) was expected",
            got_kind,
            section::name(got_kind),
            kind,
            section::name(kind)
        )));
    }
    let payload_len = u64::from_le_bytes(header[16..24].try_into().unwrap());
    // The declared length must account for the file *exactly* — this
    // both catches truncation/append corruption and bounds the copy
    // below by the real on-disk size.
    if payload_len != file_len - overhead {
        return Err(err(format!(
            "length mismatch: header declares a {payload_len}-byte payload \
             but the {file_len}-byte file holds {}",
            file_len - overhead
        )));
    }
    let mut payload = vec![0u8; payload_len as usize];
    f.read_exact(&mut payload).map_err(|e| err(e.to_string()))?;
    let mut stored = [0u8; CHECKSUM_LEN];
    f.read_exact(&mut stored).map_err(|e| err(e.to_string()))?;
    let stored = u64::from_le_bytes(stored);
    let computed = checksum64(&payload);
    if stored != computed {
        return Err(err(format!(
            "checksum mismatch: stored {stored:016x}, computed {computed:016x}"
        )));
    }
    Ok(PayloadReader::new(payload, p))
}

/// Serializes an interner: symbol count, then values `1..` in id
/// order (the NULL symbol is implicit at id 0).
pub fn interner_payload(interner: &Interner) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.put_u64(interner.len() as u64);
    for sym in 1..interner.len() {
        w.put_value(interner.resolve(sym as Sym));
    }
    w.into_bytes()
}

/// Rebuilds an interner, re-issuing ids in stored order and
/// verifying each lands on its original id (a duplicate or NULL entry
/// is corruption, not a tolerable variation — symbol columns index by
/// these exact ids).
pub fn open_interner(r: &mut PayloadReader) -> StoreResult<Interner> {
    let n = r.get_u64()? as usize;
    if n == 0 {
        return Err(r.corrupt("interner symbol count 0 (the NULL symbol always exists)"));
    }
    if (n - 1) as u64 > r.remaining() as u64 {
        return Err(r.corrupt(format!(
            "interner declares {n} symbols but only {} payload bytes remain",
            r.remaining()
        )));
    }
    let mut it = Interner::new();
    for i in 1..n {
        let v = r.get_value()?;
        if v.is_null() {
            return Err(r.corrupt(format!("NULL value stored at symbol {i}")));
        }
        let sym = it.intern_exact(&v);
        if sym as usize != i {
            return Err(r.corrupt(format!(
                "duplicate interned value at symbol {i} (collides with {sym})"
            )));
        }
    }
    Ok(it)
}

/// Serializes a columnar relation view: row count, arity, then each
/// column as a contiguous run of `u32` symbols (the mmap-friendly
/// layout — one pointer-cast per column in a future zero-copy path).
pub fn columns_payload(cols: &Columns) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.put_u64(cols.rows() as u64);
    w.put_u64(cols.arity() as u64);
    for c in 0..cols.arity() {
        for &sym in cols.col(c) {
            w.put_u32(sym);
        }
    }
    w.into_bytes()
}

/// Rebuilds a [`Columns`], validating the declared geometry against
/// the payload size and every symbol against the interner population.
pub fn open_columns(r: &mut PayloadReader, interner_len: usize) -> StoreResult<Columns> {
    let rows = r.get_u64()?;
    let arity = r.get_u64()?;
    let cells = rows.checked_mul(arity).and_then(|c| c.checked_mul(4));
    match cells {
        Some(bytes) if bytes <= r.remaining() as u64 => {}
        _ => {
            return Err(r.corrupt(format!(
                "columns declare {rows} rows × {arity} attributes but only {} payload bytes remain",
                r.remaining()
            )))
        }
    }
    let (rows, arity) = (rows as usize, arity as usize);
    let mut cols = Vec::with_capacity(arity);
    for c in 0..arity {
        let col = r.get_u32_run(rows)?;
        // Bounds-check as a separate max scan (vectorizes; the bad
        // row is only located on the error path).
        if col
            .iter()
            .copied()
            .max()
            .is_some_and(|m| m as usize >= interner_len)
        {
            let row = col
                .iter()
                .position(|&s| s as usize >= interner_len)
                .unwrap();
            return Err(r.corrupt(format!(
                "column {c} row {row}: symbol {} out of range ({interner_len} interned)",
                col[row]
            )));
        }
        cols.push(col);
    }
    Ok(Columns::from_parts(cols, rows))
}

fn type_tag(ty: ValueType) -> u8 {
    match ty {
        ValueType::Str => 0,
        ValueType::Int => 1,
        ValueType::Float => 2,
        ValueType::Bool => 3,
    }
}

/// Serializes a schema: name, attributes (name + type), candidate
/// keys (attribute positions).
pub fn schema_payload(schema: &Schema) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.put_str(schema.name());
    w.put_u64(schema.arity() as u64);
    for a in schema.attributes() {
        w.put_str(a.name.as_str());
        w.put_u8(type_tag(a.ty));
    }
    w.put_u64(schema.keys().len() as u64);
    for key in schema.keys() {
        w.put_u64(key.positions.len() as u64);
        for &p in &key.positions {
            w.put_u64(p as u64);
        }
    }
    w.into_bytes()
}

/// Rebuilds a schema through [`Schema::new`] (which re-validates
/// attribute uniqueness and key coverage).
pub fn open_schema(r: &mut PayloadReader) -> StoreResult<Arc<Schema>> {
    let name = r.get_str()?;
    let arity = r.get_count(2, "attribute")?;
    let mut attrs = Vec::with_capacity(arity);
    for _ in 0..arity {
        let attr_name = r.get_str()?;
        let ty = match r.get_u8()? {
            0 => ValueType::Str,
            1 => ValueType::Int,
            2 => ValueType::Float,
            3 => ValueType::Bool,
            t => return Err(r.corrupt(format!("unknown attribute type tag {t}"))),
        };
        attrs.push(Attribute::new(attr_name, ty));
    }
    let n_keys = r.get_count(8, "candidate key")?;
    let mut keys = Vec::with_capacity(n_keys);
    for _ in 0..n_keys {
        let n_pos = r.get_count(8, "key attribute")?;
        let mut key = Vec::with_capacity(n_pos);
        for _ in 0..n_pos {
            let p = r.get_u64()? as usize;
            match attrs.get(p) {
                Some(a) => key.push(a.name.clone()),
                None => {
                    return Err(r.corrupt(format!(
                        "key attribute position {p} out of range (arity {arity})"
                    )))
                }
            }
        }
        keys.push(key);
    }
    Schema::new(name, attrs, keys).map_err(|e| r.corrupt(format!("invalid schema: {e}")))
}

/// Serializes per-column statistics.
pub fn stats_payload(stats: &[ColumnStat]) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.put_u64(stats.len() as u64);
    for s in stats {
        w.put_u64(s.distinct as u64);
        w.put_u64(s.nulls as u64);
        w.put_u64(s.rows as u64);
    }
    w.into_bytes()
}

/// Reads per-column statistics back.
pub fn open_stats(r: &mut PayloadReader) -> StoreResult<Vec<ColumnStat>> {
    let n = r.get_count(24, "column stat")?;
    let mut stats = Vec::with_capacity(n);
    for _ in 0..n {
        let distinct = r.get_u64()? as usize;
        let nulls = r.get_u64()? as usize;
        let rows = r.get_u64()? as usize;
        if distinct > rows || nulls > rows {
            return Err(r.corrupt(format!(
                "column stat out of range: distinct {distinct}, nulls {nulls}, rows {rows}"
            )));
        }
        stats.push(ColumnStat {
            distinct,
            nulls,
            rows,
        });
    }
    Ok(stats)
}

/// Serializes one column's inverted postings (symbol → ascending row
/// ids, NULL rows excluded, symbols ascending) — the blocking-index
/// section an executor fast path can adopt without re-bucketing.
pub fn postings_payload(col: &[Sym]) -> Vec<u8> {
    let mut by_sym: std::collections::BTreeMap<Sym, Vec<u32>> = std::collections::BTreeMap::new();
    for (row, &sym) in col.iter().enumerate() {
        if sym != NULL_SYM {
            by_sym.entry(sym).or_default().push(row as u32);
        }
    }
    let mut w = PayloadWriter::new();
    w.put_u64(by_sym.len() as u64);
    for (sym, rows) in &by_sym {
        w.put_u32(*sym);
        w.put_u64(rows.len() as u64);
        for &row in rows {
            w.put_u32(row);
        }
    }
    w.into_bytes()
}

/// Reads one column's postings back, validating ordering invariants
/// and row bounds.
pub fn open_postings(r: &mut PayloadReader, rows: usize) -> StoreResult<Vec<(Sym, Vec<u32>)>> {
    let n = r.get_count(16, "postings entry")?;
    let mut out: Vec<(Sym, Vec<u32>)> = Vec::with_capacity(n);
    for _ in 0..n {
        let sym = r.get_u32()?;
        if sym == NULL_SYM {
            return Err(r.corrupt("postings list keyed by the NULL symbol"));
        }
        if let Some((prev, _)) = out.last() {
            if *prev >= sym {
                return Err(r.corrupt(format!("postings symbols out of order at {sym}")));
            }
        }
        let n_rows = r.get_count(4, "postings row")?;
        let mut list = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let row = r.get_u32()?;
            if row as usize >= rows {
                return Err(r.corrupt(format!("postings row {row} out of range ({rows} rows)")));
            }
            if let Some(&prev) = list.last() {
                if prev >= row {
                    return Err(r.corrupt(format!("postings rows out of order at {row}")));
                }
            }
            list.push(row);
        }
        out.push((sym, list));
    }
    Ok(out)
}

/// Decodes a relation from its stored schema + symbol columns,
/// resolving every symbol through the interner. `enforce_keys` builds
/// a key-enforcing relation (original source relations — a duplicate
/// key is corruption); derived relations use `false`.
pub fn decode_relation(
    schema: Arc<Schema>,
    cols: &Columns,
    interner: &Interner,
    enforce_keys: bool,
    path: &str,
) -> StoreResult<Relation> {
    if cols.arity() != schema.arity() {
        return Err(StoreError::new(
            path,
            format!(
                "columns arity {} does not match schema \"{}\" arity {}",
                cols.arity(),
                schema.name(),
                schema.arity()
            ),
        ));
    }
    let mut rel = if enforce_keys {
        Relation::new(schema)
    } else {
        Relation::new_unchecked(schema)
    };
    for row in 0..cols.rows() {
        let values: Vec<Value> = (0..cols.arity())
            .map(|c| interner.resolve(cols.get(row, c)).clone())
            .collect();
        rel.insert(Tuple::new(values))
            .map_err(|e| StoreError::new(path, format!("row {row}: {e}")))?;
    }
    Ok(rel)
}

/// Convenience: the extended-key attribute names of a stored
/// manifest, parsed back into [`AttrName`]s.
pub fn attr_names(names: &[String]) -> Vec<AttrName> {
    names.iter().map(AttrName::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("eid-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_interner() -> Interner {
        let mut it = Interner::new();
        it.intern(&Value::str("villagewok"));
        it.intern(&Value::int(42));
        it.intern(&Value::float(2.5));
        it.intern(&Value::bool(true));
        it
    }

    #[test]
    fn section_roundtrip_and_kind_check() {
        let dir = tmpdir("section");
        let path = dir.join("x.eid");
        write_section(&path, section::STATS, &stats_payload(&[])).unwrap();
        assert!(read_section(&path, section::STATS).is_ok());
        let err = read_section(&path, section::INTERNER).unwrap_err();
        assert!(err.reason.contains("section kind"), "{}", err.reason);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_typed_never_panicking() {
        let dir = tmpdir("corrupt");
        let path = dir.join("x.eid");
        let payload = interner_payload(&sample_interner());
        write_section(&path, section::INTERNER, &payload).unwrap();
        let clean = fs::read(&path).unwrap();

        // Truncation at every prefix length: typed error, never Ok.
        for cut in 0..clean.len() {
            fs::write(&path, &clean[..cut]).unwrap();
            let err = read_section(&path, section::INTERNER)
                .and_then(|mut r| open_interner(&mut r))
                .expect_err("truncated file accepted");
            assert!(!err.reason.is_empty());
        }
        // A flipped byte anywhere: header checks or checksum catch it
        // (flips inside the payload must be a checksum mismatch).
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0xff;
            fs::write(&path, &bad).unwrap();
            let err = read_section(&path, section::INTERNER)
                .and_then(|mut r| open_interner(&mut r))
                .expect_err("corrupt byte accepted");
            if (HEADER_LEN..clean.len() - CHECKSUM_LEN).contains(&i) {
                assert!(err.reason.contains("checksum"), "byte {i}: {}", err.reason);
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_and_endianness_are_rejected() {
        let dir = tmpdir("version");
        let path = dir.join("x.eid");
        write_section(&path, section::STATS, &stats_payload(&[])).unwrap();
        let clean = fs::read(&path).unwrap();

        let mut v2 = clean.clone();
        v2[4..8].copy_from_slice(&2u32.to_le_bytes());
        fs::write(&path, &v2).unwrap();
        let err = read_section(&path, section::STATS).unwrap_err();
        assert!(err.reason.contains("version 2"), "{}", err.reason);

        let mut be = clean.clone();
        be[8..12].copy_from_slice(&ENDIAN_TAG.to_be_bytes());
        fs::write(&path, &be).unwrap();
        let err = read_section(&path, section::STATS).unwrap_err();
        assert!(err.reason.contains("endianness"), "{}", err.reason);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interner_roundtrips_preserving_ids() {
        let it = sample_interner();
        let mut r = PayloadReader::new(interner_payload(&it), "mem");
        let back = open_interner(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.len(), it.len());
        for sym in 0..it.len() as Sym {
            assert_eq!(back.resolve(sym), it.resolve(sym));
        }
    }

    #[test]
    fn columns_schema_stats_roundtrip() {
        let schema = Schema::of_strs("R", &["name", "cuisine"], &["name"]).unwrap();
        let mut rel = Relation::new(schema.clone());
        rel.insert_strs(&["a", "chinese"]).unwrap();
        rel.insert(Tuple::new(vec![Value::str("b"), Value::Null]))
            .unwrap();
        let mut it = Interner::new();
        let cols = Columns::encode(&rel, &mut it);
        let stats = cols.column_stats();

        let mut r = PayloadReader::new(columns_payload(&cols), "mem");
        let cols2 = open_columns(&mut r, it.len()).unwrap();
        r.finish().unwrap();
        assert_eq!(cols2.rows(), cols.rows());
        for c in 0..cols.arity() {
            assert_eq!(cols2.col(c), cols.col(c));
        }

        let mut r = PayloadReader::new(schema_payload(&schema), "mem");
        let schema2 = open_schema(&mut r).unwrap();
        assert_eq!(&schema2, &schema);

        let mut r = PayloadReader::new(stats_payload(&stats), "mem");
        assert_eq!(open_stats(&mut r).unwrap(), stats);

        let rel2 = decode_relation(schema, &cols, &it, true, "mem").unwrap();
        assert_eq!(rel2.len(), rel.len());
        for (a, b) in rel.iter().zip(rel2.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn postings_roundtrip_and_validation() {
        let col = vec![3u32, NULL_SYM, 3, 5, NULL_SYM, 2];
        let mut r = PayloadReader::new(postings_payload(&col), "mem");
        let p = open_postings(&mut r, col.len()).unwrap();
        r.finish().unwrap();
        assert_eq!(p, vec![(2, vec![5]), (3, vec![0, 2]), (5, vec![3])]);
        // Out-of-range row rejected.
        let mut r = PayloadReader::new(postings_payload(&col), "mem");
        let err = open_postings(&mut r, 2).unwrap_err();
        assert!(err.reason.contains("out of range"), "{}", err.reason);
    }

    #[test]
    fn out_of_range_symbol_rejected() {
        let schema = Schema::of_strs("R", &["name"], &["name"]).unwrap();
        let mut rel = Relation::new(schema);
        rel.insert_strs(&["a"]).unwrap();
        let mut it = Interner::new();
        let cols = Columns::encode(&rel, &mut it);
        let mut r = PayloadReader::new(columns_payload(&cols), "mem");
        let err = open_columns(&mut r, 1).unwrap_err();
        assert!(err.reason.contains("out of range"), "{}", err.reason);
    }
}
