//! Pretty printing in the style of the Prolog prototype (§6.3).
//!
//! The prototype prints a centered-ish title, a dashed rule, a header
//! row of attribute names in fixed-width left-aligned columns
//! (`print_al(15, …)`), a row of dashes under each header, and then
//! the tuples in sorted order (`setof` sorts its results). NULLs
//! print as `null`.

use std::fmt::Write as _;

use crate::relation::Relation;

/// Column layout options for [`render_table`].
#[derive(Debug, Clone, Copy)]
pub struct TableStyle {
    /// Minimum column width (the prototype uses 15).
    pub min_width: usize,
    /// Whether to sort rows (the prototype's `setof` does).
    pub sorted: bool,
}

impl Default for TableStyle {
    fn default() -> Self {
        TableStyle {
            min_width: 15,
            sorted: true,
        }
    }
}

/// Renders `rel` as the prototype would print it, under `title`.
pub fn render_table(title: &str, rel: &Relation, style: TableStyle) -> String {
    let headers: Vec<&str> = rel
        .schema()
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    let rows: Vec<Vec<String>> = {
        let ts = if style.sorted {
            rel.sorted_tuples()
        } else {
            rel.tuples().to_vec()
        };
        ts.iter()
            .map(|t| t.values().iter().map(|v| v.render().into_owned()).collect())
            .collect()
    };

    // Column width: at least `min_width`, and wide enough for the
    // longest cell plus one space of separation.
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len() + 1).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len() + 1);
        }
    }
    for w in &mut widths {
        *w = (*w).max(style.min_width);
    }

    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let total: usize = widths.iter().sum();
    let _ = writeln!(out, "{}", "-".repeat(total.min(100)));
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(out, "{h:<w$}");
    }
    out.push('\n');
    for w in &widths {
        let _ = write!(out, "{:<w$}", "-".repeat(10));
    }
    out.push('\n');
    for row in &rows {
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(out, "{cell:<w$}");
        }
        // Trim trailing padding for cleanliness.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

/// Renders with the default prototype style.
pub fn render_default(title: &str, rel: &Relation) -> String {
    render_table(title, rel, TableStyle::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple::Tuple;
    use crate::value::Value;

    #[test]
    fn renders_headers_rows_and_nulls() {
        let schema = Schema::of_strs("M", &["r_name", "s_name"], &["r_name"]).unwrap();
        let mut rel = crate::relation::Relation::new_unchecked(schema);
        rel.insert(Tuple::of_strs(&["twincities", "twincities"]))
            .unwrap();
        rel.insert(Tuple::new(vec![Value::str("anjuman"), Value::Null]))
            .unwrap();
        let s = render_default("matching table", &rel);
        assert!(s.starts_with("matching table\n"));
        assert!(s.contains("r_name"));
        assert!(s.contains("null"));
        // Sorted: anjuman before twincities.
        let a = s.find("anjuman").unwrap();
        let t = s.find("twincities").unwrap();
        assert!(a < t);
    }

    #[test]
    fn unsorted_preserves_insertion_order() {
        let schema = Schema::of_strs("M", &["x"], &["x"]).unwrap();
        let mut rel = crate::relation::Relation::new_unchecked(schema);
        rel.insert(Tuple::of_strs(&["zz"])).unwrap();
        rel.insert(Tuple::of_strs(&["aa"])).unwrap();
        let s = render_table(
            "t",
            &rel,
            TableStyle {
                min_width: 15,
                sorted: false,
            },
        );
        assert!(s.find("zz").unwrap() < s.find("aa").unwrap());
    }

    #[test]
    fn empty_relation_prints_header_only() {
        let schema = Schema::of_strs("M", &["a", "b"], &["a"]).unwrap();
        let rel = crate::relation::Relation::new_unchecked(schema);
        let s = render_default("empty", &rel);
        assert!(s.contains('a'));
        assert!(s.contains("----------"));
        // Exactly 4 lines: title, rule, header, dashes.
        assert_eq!(s.trim_end().lines().count(), 4);
    }

    #[test]
    fn columns_align_across_rows() {
        let schema = Schema::of_strs("M", &["x", "y"], &["x"]).unwrap();
        let mut rel = crate::relation::Relation::new_unchecked(schema);
        rel.insert(Tuple::of_strs(&["a", "b"])).unwrap();
        rel.insert(Tuple::of_strs(&["longervalue", "c"])).unwrap();
        let s = render_default("t", &rel);
        // The second column starts at the same offset in each data row.
        let rows: Vec<&str> = s.lines().skip(4).filter(|l| !l.is_empty()).collect();
        let off_b = rows
            .iter()
            .find(|r| r.contains(" b"))
            .unwrap()
            .find('b')
            .unwrap();
        let off_c = rows
            .iter()
            .find(|r| r.contains(" c"))
            .unwrap()
            .find('c')
            .unwrap();
        assert_eq!(off_b, off_c);
    }

    #[test]
    fn wide_cells_widen_columns() {
        let schema = Schema::of_strs("M", &["x"], &["x"]).unwrap();
        let mut rel = crate::relation::Relation::new_unchecked(schema);
        let long = "a".repeat(30);
        rel.insert(Tuple::new(vec![Value::str(&long)])).unwrap();
        let s = render_default("t", &rel);
        assert!(s.contains(&long));
    }
}
