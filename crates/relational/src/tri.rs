//! Three-valued (Kleene) logic for NULL-aware evaluation.
//!
//! The engine's predicate evaluation is three-valued: a comparison
//! that touches a NULL is *unknown*, and rules fire only on
//! definitely-true conjunctions (§3.2's three-valued entity
//! identification function). The ad-hoc `Option<bool>` used at the
//! evaluation sites follows Kleene's strong three-valued logic; this
//! module makes that algebra explicit, with the standard truth
//! tables, so invariants can be stated and tested once.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A Kleene truth value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TriBool {
    /// Definitely false.
    False,
    /// Unknown (some input was NULL).
    Unknown,
    /// Definitely true.
    True,
}

impl TriBool {
    /// Lifts a two-valued bool.
    pub fn known(b: bool) -> TriBool {
        if b {
            TriBool::True
        } else {
            TriBool::False
        }
    }

    /// From the engine's `Option<bool>` convention
    /// (`None` = unknown).
    pub fn from_option(o: Option<bool>) -> TriBool {
        match o {
            Some(true) => TriBool::True,
            Some(false) => TriBool::False,
            None => TriBool::Unknown,
        }
    }

    /// Back to the `Option<bool>` convention.
    pub fn to_option(self) -> Option<bool> {
        match self {
            TriBool::True => Some(true),
            TriBool::False => Some(false),
            TriBool::Unknown => None,
        }
    }

    /// Whether this is definitely true (the only state that fires a
    /// rule).
    pub fn is_true(self) -> bool {
        self == TriBool::True
    }

    /// Whether this is definitely false.
    pub fn is_false(self) -> bool {
        self == TriBool::False
    }

    /// Kleene conjunction: false dominates, then unknown.
    pub fn and(self, other: TriBool) -> TriBool {
        use TriBool::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (Unknown, _) | (_, Unknown) => Unknown,
            (True, True) => True,
        }
    }

    /// Kleene disjunction: true dominates, then unknown.
    pub fn or(self, other: TriBool) -> TriBool {
        use TriBool::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (Unknown, _) | (_, Unknown) => Unknown,
            (False, False) => False,
        }
    }

    /// Kleene negation: unknown stays unknown. (Named `not` to match
    /// the logic literature; `TriBool` deliberately does not implement
    /// `std::ops::Not`, whose `!` reads poorly on truth values.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> TriBool {
        match self {
            TriBool::True => TriBool::False,
            TriBool::False => TriBool::True,
            TriBool::Unknown => TriBool::Unknown,
        }
    }

    /// Conjunction over an iterator (`True` for the empty
    /// conjunction), short-circuiting on `False`.
    pub fn all(values: impl IntoIterator<Item = TriBool>) -> TriBool {
        let mut acc = TriBool::True;
        for v in values {
            acc = acc.and(v);
            if acc == TriBool::False {
                return TriBool::False;
            }
        }
        acc
    }

    /// Disjunction over an iterator (`False` for the empty
    /// disjunction), short-circuiting on `True`.
    pub fn any(values: impl IntoIterator<Item = TriBool>) -> TriBool {
        let mut acc = TriBool::False;
        for v in values {
            acc = acc.or(v);
            if acc == TriBool::True {
                return TriBool::True;
            }
        }
        acc
    }
}

impl fmt::Display for TriBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TriBool::True => "true",
            TriBool::False => "false",
            TriBool::Unknown => "unknown",
        })
    }
}

impl From<bool> for TriBool {
    fn from(b: bool) -> TriBool {
        TriBool::known(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TriBool::*;

    const ALL: [TriBool; 3] = [False, Unknown, True];

    #[test]
    fn and_truth_table() {
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(True.and(False), False);
        assert_eq!(Unknown.and(Unknown), Unknown);
        assert_eq!(Unknown.and(False), False);
        assert_eq!(False.and(False), False);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(True.or(True), True);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(True.or(False), True);
        assert_eq!(Unknown.or(Unknown), Unknown);
        assert_eq!(Unknown.or(False), Unknown);
        assert_eq!(False.or(False), False);
    }

    #[test]
    fn not_involution_except_unknown() {
        assert_eq!(True.not(), False);
        assert_eq!(False.not(), True);
        assert_eq!(Unknown.not(), Unknown);
        for v in ALL {
            assert_eq!(v.not().not(), v);
        }
    }

    #[test]
    fn de_morgan_holds() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b).not(), a.not().or(b.not()));
                assert_eq!(a.or(b).not(), a.not().and(b.not()));
            }
        }
    }

    #[test]
    fn commutativity_and_associativity() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                for c in ALL {
                    assert_eq!(a.and(b).and(c), a.and(b.and(c)));
                    assert_eq!(a.or(b).or(c), a.or(b.or(c)));
                }
            }
        }
    }

    #[test]
    fn option_round_trip() {
        for v in ALL {
            assert_eq!(TriBool::from_option(v.to_option()), v);
        }
    }

    #[test]
    fn all_and_any() {
        assert_eq!(TriBool::all([]), True);
        assert_eq!(TriBool::any([]), False);
        assert_eq!(TriBool::all([True, Unknown]), Unknown);
        assert_eq!(TriBool::all([True, Unknown, False]), False);
        assert_eq!(TriBool::any([False, Unknown]), Unknown);
        assert_eq!(TriBool::any([False, Unknown, True]), True);
    }

    #[test]
    fn display_and_from_bool() {
        assert_eq!(True.to_string(), "true");
        assert_eq!(Unknown.to_string(), "unknown");
        assert_eq!(TriBool::from(true), True);
    }
}
