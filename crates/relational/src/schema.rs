//! Relation schemas: attribute lists, types, and candidate keys.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::attr::AttrName;
use crate::error::{RelationalError, Result};
use crate::value::ValueType;

/// One attribute in a schema: a name plus its declared type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Interned attribute name.
    pub name: AttrName,
    /// Declared type; NULL inhabits every type.
    pub ty: ValueType,
}

impl Attribute {
    /// Builds an attribute.
    pub fn new(name: impl Into<AttrName>, ty: ValueType) -> Self {
        Attribute {
            name: name.into(),
            ty,
        }
    }

    /// A string-typed attribute (the common case in the paper).
    pub fn str(name: impl Into<AttrName>) -> Self {
        Attribute::new(name, ValueType::Str)
    }

    /// An int-typed attribute.
    pub fn int(name: impl Into<AttrName>) -> Self {
        Attribute::new(name, ValueType::Int)
    }
}

/// A candidate key: an ordered set of attribute positions.
///
/// The paper underlines candidate keys in its example relations; a
/// relation may declare several, and tuple insertion enforces the
/// uniqueness of each (§3.1: "Each relation is expected to have one
/// or more candidate keys to uniquely identify its tuples").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Key {
    /// Positions (into the schema's attribute list) of the key attributes.
    pub positions: Vec<usize>,
}

/// An immutable relation schema.
///
/// Schemas are shared by `Arc`; deriving a new schema (projection,
/// extension, join) builds a fresh one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    name: String,
    attributes: Vec<Attribute>,
    keys: Vec<Key>,
}

impl Schema {
    /// Builds a schema, validating that attributes are non-empty and
    /// unique and that every key attribute exists.
    ///
    /// `keys` lists candidate keys by attribute name. If no key is
    /// given, the entire attribute set is treated as the key, per the
    /// paper's footnote 1.
    pub fn new(
        name: impl Into<String>,
        attributes: Vec<Attribute>,
        keys: Vec<Vec<AttrName>>,
    ) -> Result<Arc<Schema>> {
        let name = name.into();
        if attributes.is_empty() {
            return Err(RelationalError::EmptySchema { relation: name });
        }
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|b| b.name == a.name) {
                return Err(RelationalError::DuplicateAttribute {
                    attr: a.name.clone(),
                    relation: name,
                });
            }
        }
        let mut resolved_keys = Vec::with_capacity(keys.len().max(1));
        for key in &keys {
            let mut positions = Vec::with_capacity(key.len());
            for attr in key {
                match attributes.iter().position(|a| &a.name == attr) {
                    Some(p) => positions.push(p),
                    None => {
                        return Err(RelationalError::KeyAttributeMissing {
                            attr: attr.clone(),
                            relation: name,
                        })
                    }
                }
            }
            resolved_keys.push(Key { positions });
        }
        if resolved_keys.is_empty() {
            // Footnote 1: if no key is defined, the entire attribute
            // set of the relation is treated as the key.
            resolved_keys.push(Key {
                positions: (0..attributes.len()).collect(),
            });
        }
        Ok(Arc::new(Schema {
            name,
            attributes,
            keys: resolved_keys,
        }))
    }

    /// Convenience constructor: all attributes are strings, one
    /// candidate key given by name. This matches every relation in
    /// the paper's examples.
    pub fn of_strs(name: impl Into<String>, attrs: &[&str], key: &[&str]) -> Result<Arc<Schema>> {
        Schema::new(
            name,
            attrs.iter().map(|a| Attribute::str(*a)).collect(),
            vec![key.iter().map(AttrName::new).collect()],
        )
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All attributes, in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Position of `attr`, or an error naming this relation.
    pub fn position(&self, attr: &AttrName) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| &a.name == attr)
            .ok_or_else(|| RelationalError::UnknownAttribute {
                attr: attr.clone(),
                relation: self.name.clone(),
            })
    }

    /// Position of `attr`, or `None`.
    pub fn try_position(&self, attr: &AttrName) -> Option<usize> {
        self.attributes.iter().position(|a| &a.name == attr)
    }

    /// Whether the schema defines `attr`.
    pub fn has_attribute(&self, attr: &AttrName) -> bool {
        self.try_position(attr).is_some()
    }

    /// Attribute names in declaration order.
    pub fn attribute_names(&self) -> impl Iterator<Item = &AttrName> {
        self.attributes.iter().map(|a| &a.name)
    }

    /// Declared candidate keys.
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }

    /// The primary (first-declared) candidate key's attribute names.
    pub fn primary_key(&self) -> Vec<AttrName> {
        self.keys[0]
            .positions
            .iter()
            .map(|&p| self.attributes[p].name.clone())
            .collect()
    }

    /// Renders a key as `(a, b)` for error messages.
    pub fn render_key(&self, key: &Key) -> String {
        let names: Vec<&str> = key
            .positions
            .iter()
            .map(|&p| self.attributes[p].name.as_str())
            .collect();
        format!("({})", names.join(", "))
    }

    /// A copy of this schema under a different relation name.
    pub fn renamed(&self, name: impl Into<String>) -> Arc<Schema> {
        Arc::new(Schema {
            name: name.into(),
            attributes: self.attributes.clone(),
            keys: self.keys.clone(),
        })
    }

    /// Derives a schema that appends `extra` attributes (used when a
    /// relation is extended with missing extended-key attributes,
    /// §4.2). Candidate keys carry over unchanged.
    pub fn extended(&self, extra: &[Attribute]) -> Result<Arc<Schema>> {
        let mut attributes = self.attributes.clone();
        for a in extra {
            if attributes.iter().any(|b| b.name == a.name) {
                return Err(RelationalError::DuplicateAttribute {
                    attr: a.name.clone(),
                    relation: self.name.clone(),
                });
            }
            attributes.push(a.clone());
        }
        Ok(Arc::new(Schema {
            name: self.name.clone(),
            attributes,
            keys: self.keys.clone(),
        }))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_strs_builds_paper_schema() {
        let r = Schema::of_strs("R", &["name", "street", "cuisine"], &["name", "street"])
            .expect("valid schema");
        assert_eq!(r.name(), "R");
        assert_eq!(r.arity(), 3);
        assert_eq!(
            r.primary_key(),
            vec![AttrName::new("name"), AttrName::new("street")]
        );
    }

    #[test]
    fn missing_key_attribute_is_rejected() {
        let err = Schema::of_strs("R", &["name"], &["street"]).unwrap_err();
        assert!(matches!(err, RelationalError::KeyAttributeMissing { .. }));
    }

    #[test]
    fn duplicate_attribute_is_rejected() {
        let err = Schema::of_strs("R", &["a", "a"], &["a"]).unwrap_err();
        assert!(matches!(err, RelationalError::DuplicateAttribute { .. }));
    }

    #[test]
    fn empty_schema_is_rejected() {
        let err = Schema::of_strs("R", &[], &[]).unwrap_err();
        assert!(matches!(err, RelationalError::EmptySchema { .. }));
    }

    #[test]
    fn no_key_defaults_to_all_attributes() {
        let s = Schema::new("R", vec![Attribute::str("a"), Attribute::str("b")], vec![]).unwrap();
        assert_eq!(s.keys().len(), 1);
        assert_eq!(s.keys()[0].positions, vec![0, 1]);
    }

    #[test]
    fn extended_appends_attributes() {
        let s = Schema::of_strs("R", &["a"], &["a"]).unwrap();
        let e = s.extended(&[Attribute::str("b")]).unwrap();
        assert_eq!(e.arity(), 2);
        assert!(e.has_attribute(&AttrName::new("b")));
        // Keys carry over.
        assert_eq!(e.primary_key(), vec![AttrName::new("a")]);
    }

    #[test]
    fn extended_rejects_duplicates() {
        let s = Schema::of_strs("R", &["a"], &["a"]).unwrap();
        assert!(s.extended(&[Attribute::str("a")]).is_err());
    }

    #[test]
    fn display_format() {
        let s = Schema::of_strs("R", &["a", "b"], &["a"]).unwrap();
        assert_eq!(s.to_string(), "R(a: str, b: str)");
    }

    #[test]
    fn renamed_keeps_structure() {
        let s = Schema::of_strs("R", &["a"], &["a"]).unwrap();
        let t = s.renamed("T");
        assert_eq!(t.name(), "T");
        assert_eq!(t.arity(), 1);
    }
}
