//! The integrated table `T_RS = MT_RS ⋈ R ⟗ S` (§4.1, §6.3).
//!
//! "We keep those `R` (`S`) tuples not matched with any `S` (`R`)
//! tuple as separate tuples in the integrated table, while merging
//! the matching pairs into one. … Because `R` and `S` may not have
//! all extended key attributes, NULL values may exist in the extended
//! key attributes of `T_RS`." A `T_RS` tuple can possibly match
//! another `T_RS` tuple provided they have no conflicting non-NULL
//! values in their extended key — [`IntegratedTable::possibly_same`]
//! implements that interpretation.
//!
//! Column layout matches the prototype's `print_integ_table`: the
//! extended-key attributes of `R′` (prefixed `r_`), then of `S′`
//! (prefixed `s_`), then the leftover attributes of each side.

use std::collections::HashMap;
use std::sync::Arc;

use eid_relational::{AttrName, Relation, Schema, Tuple, Value};
use eid_rules::ExtendedKey;

use crate::error::Result;
use crate::matcher::MatchOutcome;

/// The integrated table over two matched relations.
#[derive(Debug, Clone)]
pub struct IntegratedTable {
    relation: Relation,
    /// Positions of the `r_`-side extended-key attributes.
    r_key_pos: Vec<usize>,
    /// Positions of the `s_`-side extended-key attributes.
    s_key_pos: Vec<usize>,
}

impl IntegratedTable {
    /// Builds `T_RS` from a match outcome. `r` and `s` must be the
    /// matcher's source relations (their primary keys identify the
    /// matched tuples).
    pub fn build(
        r: &Relation,
        s: &Relation,
        outcome: &MatchOutcome,
        key: &ExtendedKey,
    ) -> Result<IntegratedTable> {
        let ext_r = &outcome.extended_r.relation;
        let ext_s = &outcome.extended_s.relation;

        // Column plan: K_Ext of R′, K_Ext of S′, rest of R′, rest of S′.
        let mut r_cols: Vec<AttrName> = Vec::new();
        let mut s_cols: Vec<AttrName> = Vec::new();
        for a in key.attrs() {
            if ext_r.schema().has_attribute(a) {
                r_cols.push(a.clone());
            }
            if ext_s.schema().has_attribute(a) {
                s_cols.push(a.clone());
            }
        }
        let r_rest: Vec<AttrName> = ext_r
            .schema()
            .attribute_names()
            .filter(|a| !r_cols.contains(a))
            .cloned()
            .collect();
        let s_rest: Vec<AttrName> = ext_s
            .schema()
            .attribute_names()
            .filter(|a| !s_cols.contains(a))
            .cloned()
            .collect();

        let mut names: Vec<String> = Vec::new();
        names.extend(r_cols.iter().map(|a| format!("r_{a}")));
        names.extend(s_cols.iter().map(|a| format!("s_{a}")));
        names.extend(r_rest.iter().map(|a| format!("r_{a}")));
        names.extend(s_rest.iter().map(|a| format!("s_{a}")));
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let schema: Arc<Schema> = Schema::of_strs("T_RS", &name_refs, &name_refs)?;

        let r_positions: Vec<usize> = r_cols
            .iter()
            .chain(&r_rest)
            .map(|a| ext_r.schema().position(a))
            .collect::<eid_relational::Result<_>>()?;
        let s_positions: Vec<usize> = s_cols
            .iter()
            .chain(&s_rest)
            .map(|a| ext_s.schema().position(a))
            .collect::<eid_relational::Result<_>>()?;

        // Index source tuples by primary key for MT lookups.
        let mut r_by_key: HashMap<Tuple, usize> = HashMap::new();
        for (i, t) in r.iter().enumerate() {
            r_by_key.insert(r.primary_key_of(t), i);
        }
        let mut s_by_key: HashMap<Tuple, usize> = HashMap::new();
        for (j, t) in s.iter().enumerate() {
            s_by_key.insert(s.primary_key_of(t), j);
        }

        let n_r_cols = r_cols.len() + r_rest.len();
        let n_s_cols = s_cols.len() + s_rest.len();
        let mut rel = Relation::new_unchecked(schema);
        let mut r_matched = vec![false; r.len()];
        let mut s_matched = vec![false; s.len()];

        // Merged rows for matched pairs. The r-columns come before the
        // s-key columns, but within the row we emit r_key, s_key,
        // r_rest, s_rest per the column plan.
        for e in outcome.matching.entries() {
            let (Some(&i), Some(&j)) = (r_by_key.get(&e.r_key), s_by_key.get(&e.s_key)) else {
                continue;
            };
            r_matched[i] = true;
            s_matched[j] = true;
            let tr = &ext_r.tuples()[i];
            let ts = &ext_s.tuples()[j];
            let mut values: Vec<Value> = Vec::with_capacity(n_r_cols + n_s_cols);
            for &p in &r_positions[..r_cols.len()] {
                values.push(tr.get(p).clone());
            }
            for &p in &s_positions[..s_cols.len()] {
                values.push(ts.get(p).clone());
            }
            for &p in &r_positions[r_cols.len()..] {
                values.push(tr.get(p).clone());
            }
            for &p in &s_positions[s_cols.len()..] {
                values.push(ts.get(p).clone());
            }
            rel.insert(Tuple::new(values))?;
        }
        // Dangling R tuples.
        for (i, matched) in r_matched.iter().enumerate() {
            if *matched {
                continue;
            }
            let tr = &ext_r.tuples()[i];
            let mut values: Vec<Value> = Vec::with_capacity(n_r_cols + n_s_cols);
            for &p in &r_positions[..r_cols.len()] {
                values.push(tr.get(p).clone());
            }
            values.extend(std::iter::repeat_n(Value::Null, s_cols.len()));
            for &p in &r_positions[r_cols.len()..] {
                values.push(tr.get(p).clone());
            }
            values.extend(std::iter::repeat_n(Value::Null, s_rest.len()));
            rel.insert(Tuple::new(values))?;
        }
        // Dangling S tuples.
        for (j, matched) in s_matched.iter().enumerate() {
            if *matched {
                continue;
            }
            let ts = &ext_s.tuples()[j];
            let mut values: Vec<Value> = Vec::with_capacity(n_r_cols + n_s_cols);
            values.extend(std::iter::repeat_n(Value::Null, r_cols.len()));
            for &p in &s_positions[..s_cols.len()] {
                values.push(ts.get(p).clone());
            }
            values.extend(std::iter::repeat_n(Value::Null, r_rest.len()));
            for &p in &s_positions[s_cols.len()..] {
                values.push(ts.get(p).clone());
            }
            rel.insert(Tuple::new(values))?;
        }

        let r_key_pos: Vec<usize> = (0..r_cols.len()).collect();
        let s_key_pos: Vec<usize> = (r_cols.len()..r_cols.len() + s_cols.len()).collect();
        Ok(IntegratedTable {
            relation: rel,
            r_key_pos,
            s_key_pos,
        })
    }

    /// The underlying relation (for printing / further queries).
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Number of extended-key columns per side (the `r_`/`s_` key
    /// column blocks have equal width).
    pub fn key_width(&self) -> usize {
        self.r_key_pos.len()
    }

    /// Re-wraps a relation that already has the integrated layout
    /// (`key_width` `r_`-key columns, then `key_width` `s_`-key
    /// columns, then the rests) — used when deriving a filtered
    /// slice of an existing integrated table.
    pub fn from_relation(relation: Relation, key_width: usize) -> IntegratedTable {
        IntegratedTable {
            relation,
            r_key_pos: (0..key_width).collect(),
            s_key_pos: (key_width..2 * key_width).collect(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.relation.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.relation.is_empty()
    }

    /// The paper's interpretation of `T_RS`: two rows *possibly*
    /// model the same entity if their extended-key values have no
    /// conflicting non-NULL components (each row carries an `r_`-side
    /// and an `s_`-side copy of the extended key; a component
    /// conflicts when both rows have it non-NULL and unequal on every
    /// same-side comparison that is defined).
    pub fn possibly_same(&self, row_a: usize, row_b: usize) -> bool {
        let a = &self.relation.tuples()[row_a];
        let b = &self.relation.tuples()[row_b];
        // Take each row's best-known extended-key value: prefer the
        // r_-side, fall back to the s_-side.
        let key_of = |t: &Tuple| -> Vec<Value> {
            self.r_key_pos
                .iter()
                .zip(&self.s_key_pos)
                .map(|(&rp, &sp)| {
                    let rv = t.get(rp);
                    if rv.is_null() {
                        t.get(sp).clone()
                    } else {
                        rv.clone()
                    }
                })
                .collect()
        };
        // Rows built from unmatched S tuples have fewer r-side key
        // columns populated; key_of handles that via fallback.
        let ka = key_of(a);
        let kb = key_of(b);
        ka.iter()
            .zip(&kb)
            .all(|(x, y)| x.is_null() || y.is_null() || x == y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::{EntityMatcher, MatchConfig};
    use eid_ilfd::{Ilfd, IlfdSet};
    use eid_relational::Schema;

    /// The full Example 3 workload (paper Table 5).
    fn example3() -> (Relation, Relation, MatchConfig) {
        let r_schema =
            Schema::of_strs("R", &["name", "cuisine", "street"], &["name", "cuisine"]).unwrap();
        let mut r = Relation::new(r_schema);
        r.insert_strs(&["twincities", "chinese", "co_b2"]).unwrap();
        r.insert_strs(&["twincities", "indian", "co_b3"]).unwrap();
        r.insert_strs(&["itsgreek", "greek", "front_ave"]).unwrap();
        r.insert_strs(&["anjuman", "indian", "le_salle_ave"])
            .unwrap();
        r.insert_strs(&["villagewok", "chinese", "wash_ave"])
            .unwrap();

        let s_schema = Schema::of_strs(
            "S",
            &["name", "speciality", "county"],
            &["name", "speciality"],
        )
        .unwrap();
        let mut s = Relation::new(s_schema);
        s.insert_strs(&["twincities", "hunan", "roseville"])
            .unwrap();
        s.insert_strs(&["twincities", "sichuan", "hennepin"])
            .unwrap();
        s.insert_strs(&["itsgreek", "gyros", "ramsey"]).unwrap();
        s.insert_strs(&["anjuman", "mughalai", "minneapolis"])
            .unwrap();

        let ilfds: IlfdSet = vec![
            Ilfd::of_strs(&[("speciality", "hunan")], &[("cuisine", "chinese")]),
            Ilfd::of_strs(&[("speciality", "sichuan")], &[("cuisine", "chinese")]),
            Ilfd::of_strs(&[("speciality", "gyros")], &[("cuisine", "greek")]),
            Ilfd::of_strs(&[("speciality", "mughalai")], &[("cuisine", "indian")]),
            Ilfd::of_strs(
                &[("name", "twincities"), ("street", "co_b2")],
                &[("speciality", "hunan")],
            ),
            Ilfd::of_strs(
                &[("name", "anjuman"), ("street", "le_salle_ave")],
                &[("speciality", "mughalai")],
            ),
            Ilfd::of_strs(&[("street", "front_ave")], &[("county", "ramsey")]),
            Ilfd::of_strs(
                &[("name", "itsgreek"), ("county", "ramsey")],
                &[("speciality", "gyros")],
            ),
        ]
        .into_iter()
        .collect();
        let config = MatchConfig::new(
            ExtendedKey::of_strs(&["name", "cuisine", "speciality"]),
            ilfds,
        );
        (r, s, config)
    }

    #[test]
    fn integrated_table_has_six_rows_like_the_prototype() {
        let (r, s, config) = example3();
        let key = config.extended_key.clone();
        let outcome = EntityMatcher::new(r.clone(), s.clone(), config)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.matching.len(), 3); // Table 7
        let t = IntegratedTable::build(&r, &s, &outcome, &key).unwrap();
        // 3 merged + 2 unmatched R + 1 unmatched S = 6 rows (§6.3).
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn merged_rows_carry_both_sides() {
        let (r, s, config) = example3();
        let key = config.extended_key.clone();
        let outcome = EntityMatcher::new(r.clone(), s.clone(), config)
            .unwrap()
            .run()
            .unwrap();
        let t = IntegratedTable::build(&r, &s, &outcome, &key).unwrap();
        let rel = t.relation();
        // Find the anjuman merged row: r_name=anjuman and s_name=anjuman.
        let rn = rel.schema().position(&AttrName::new("r_name")).unwrap();
        let sn = rel.schema().position(&AttrName::new("s_name")).unwrap();
        let row = rel
            .iter()
            .find(|t| t.get(rn) == &Value::str("anjuman"))
            .expect("anjuman row");
        assert_eq!(row.get(sn), &Value::str("anjuman"));
        // Its r_speciality was ILFD-derived.
        let rs = rel
            .schema()
            .position(&AttrName::new("r_speciality"))
            .unwrap();
        assert_eq!(row.get(rs), &Value::str("mughalai"));
    }

    #[test]
    fn dangling_rows_are_null_padded() {
        let (r, s, config) = example3();
        let key = config.extended_key.clone();
        let outcome = EntityMatcher::new(r.clone(), s.clone(), config)
            .unwrap()
            .run()
            .unwrap();
        let t = IntegratedTable::build(&r, &s, &outcome, &key).unwrap();
        let rel = t.relation();
        let rn = rel.schema().position(&AttrName::new("r_name")).unwrap();
        let sn = rel.schema().position(&AttrName::new("s_name")).unwrap();
        // villagewok is R-only: s_name NULL.
        let vw = rel
            .iter()
            .find(|t| t.get(rn) == &Value::str("villagewok"))
            .unwrap();
        assert!(vw.get(sn).is_null());
        // twincities/sichuan is S-only: r_name NULL.
        let sonly = rel.iter().find(|t| t.get(rn).is_null()).unwrap();
        assert_eq!(sonly.get(sn), &Value::str("twincities"));
    }

    #[test]
    fn possibly_same_respects_non_null_conflicts() {
        let (r, s, config) = example3();
        let key = config.extended_key.clone();
        let outcome = EntityMatcher::new(r.clone(), s.clone(), config)
            .unwrap()
            .run()
            .unwrap();
        let t = IntegratedTable::build(&r, &s, &outcome, &key).unwrap();
        let rel = t.relation();
        let rn = rel.schema().position(&AttrName::new("r_name")).unwrap();
        let sn = rel.schema().position(&AttrName::new("s_name")).unwrap();
        // Row indices: find villagewok (R-only, speciality NULL) and
        // the S-only sichuan row: names differ (villagewok vs
        // twincities) → cannot be the same entity.
        let vw = rel
            .iter()
            .position(|t| t.get(rn) == &Value::str("villagewok"))
            .unwrap();
        let so = rel.iter().position(|t| t.get(rn).is_null()).unwrap();
        assert!(!t.possibly_same(vw, so));
        // twincities/indian (R-only, spec NULL) vs S-only
        // twincities/chinese/sichuan: indian ≠ chinese → conflict.
        let ti = rel
            .iter()
            .position(|t| t.get(rn) == &Value::str("twincities") && t.get(sn).is_null())
            .unwrap();
        assert!(!t.possibly_same(ti, so));
        // A row is always possibly the same as itself.
        assert!(t.possibly_same(vw, vw));
    }
}
