//! The engine's observability vocabulary — every span path and
//! counter name the matcher, blocked engine, and incremental matcher
//! record, as constants.
//!
//! Both the invariant tests and downstream consumers (the `eid` CLI,
//! the benchmark harness) key off these names; keeping them here
//! makes a typo a compile error instead of a silently absent counter.
//! The prose glossary lives in DESIGN.md §"Observability".

/// Span paths (`/`-separated; reports indent by hierarchy).
pub mod span {
    /// Whole [`EntityMatcher::run`](crate::EntityMatcher::run) call.
    pub const MATCH: &str = "match";
    /// Extension + ILFD derivation of both sides.
    pub const DERIVE: &str = "match/derive";
    /// Extension + ILFD derivation of `R`.
    pub const DERIVE_R: &str = "match/derive/r";
    /// Extension + ILFD derivation of `S`.
    pub const DERIVE_S: &str = "match/derive/s";
    /// Blocked-engine wall time (compile + index + task queue).
    pub const ENGINE: &str = "match/engine";
    /// Rule-base precompilation inside the engine.
    pub const ENGINE_COMPILE: &str = "match/engine/compile";
    /// Value interning + columnar encoding of both relations inside
    /// the engine.
    pub const ENGINE_ENCODE: &str = "match/engine/encode";
    /// Eager index construction + plan preparation inside the engine.
    pub const ENGINE_INDEX: &str = "match/engine/index";
    /// Identity block-plan tasks — *busy* time summed across
    /// workers, so it can exceed the parent's wall time.
    pub const ENGINE_IDENTITY: &str = "match/engine/identity";
    /// Distinctness block-plan tasks (busy time).
    pub const ENGINE_REFUTE: &str = "match/engine/refute";
    /// Residual pairwise-scan chunks (busy time).
    pub const ENGINE_RESIDUAL: &str = "match/engine/residual";
    /// Row-index pairs → keyed pair tables (dedup + projection).
    pub const CONVERT: &str = "match/convert";
    /// Post-scope merge of the streamed per-worker sink shards into
    /// one deduped pair set (streamed emission only).
    pub const ENGINE_SINK_MERGE: &str = "match/engine/sink_merge";
    /// Spill flushes: resident shards written to the per-worker spill
    /// file at a task boundary (spilled emission only).
    pub const ENGINE_SINK_SPILL: &str = "match/engine/sink_spill";
}

/// Counter names (`group/name`; per-rule counters are built with
/// [`rule_counter`]).
pub mod counter {
    /// Rules in the source [`RuleBase`](eid_rules::RuleBase).
    pub const COMPILE_SOURCE_RULES: &str = "compile/source_rules";
    /// Compiled orientations kept.
    pub const COMPILE_COMPILED: &str = "compile/compiled";
    /// Symmetric orientation pairs folded into one.
    pub const COMPILE_SYMMETRIC_FOLDED: &str = "compile/symmetric_folded";
    /// Orientations dropped as unsatisfiable against the schemas.
    pub const COMPILE_DEAD_ORIENTATIONS: &str = "compile/dead_orientations";

    /// Worker threads the engine actually ran with.
    pub const ENGINE_WORKERS: &str = "engine/workers";
    /// Tasks (block plans + residual chunks) executed.
    pub const ENGINE_TASKS: &str = "engine/tasks";
    /// 1 when the auto-parallel engine chose the serial path for a
    /// small input, 0 (absent) otherwise.
    pub const ENGINE_SERIAL_FALLBACK: &str = "engine/serial_fallback";
    /// Tasks lost to a worker panic before the degradation ladder
    /// recovered the run (0 on a clean run).
    pub const ENGINE_ABORTED_TASKS: &str = "engine/aborted_tasks";

    /// Runtime: 1 when the parallel arm degraded to the serial
    /// blocked rerun after a task poisoned.
    pub const RUNTIME_DEGRADED_TO_BLOCKED: &str = "runtime/degraded_to_blocked";
    /// Runtime: 1 when the serial blocked rerun also poisoned and the
    /// run fell back to the exhaustive nested-loop arm.
    pub const RUNTIME_DEGRADED_TO_NESTED_LOOP: &str = "runtime/degraded_to_nested_loop";
    /// Runtime: 1 when the memory budget ruled out building blocked
    /// indexes and the engine planned everything as residual scans.
    pub const RUNTIME_DEGRADED_INDEX_MEM: &str = "runtime/degraded_index_mem";
    /// Runtime: columnar encode attempts retried after interner
    /// poisoning.
    pub const RUNTIME_ENCODE_RETRIES: &str = "runtime/encode_retries";
    /// Runtime: 1 when the parallel convert worker was bypassed and
    /// dedup ran serially on the main thread.
    pub const RUNTIME_CONVERT_SERIAL_FALLBACK: &str = "runtime/convert_serial_fallback";

    /// Ingestion: CSV rows rejected and skipped in `--lenient` mode.
    pub const INGEST_ROWS_REJECTED: &str = "ingest/rows_rejected";

    /// Candidate pairs emitted by all block plans (pre-verification).
    pub const BLOCK_CANDIDATES: &str = "block/candidates";
    /// Candidates confirmed by the full compiled rule.
    pub const BLOCK_ACCEPTED: &str = "block/accepted";
    /// Candidates the verification check rejected
    /// (`candidates − accepted`; blocking imprecision).
    pub const BLOCK_REJECTED: &str = "block/rejected";

    /// Kernel invocations (one vectorized scan over a row range or
    /// gather batch).
    pub const KERNEL_BATCHES: &str = "kernel/batches";
    /// Rows the kernels evaluated in full lane-wide chunks.
    pub const KERNEL_LANES_USED: &str = "kernel/lanes_used";
    /// Rows the kernels fell back to scalar tails for (range length
    /// not a multiple of the lane width, or short gather batches).
    pub const KERNEL_SCALAR_FALLBACK: &str = "kernel/scalar_fallback";

    /// Residual-scan pairs visited (quadratic fallback volume).
    pub const RESIDUAL_PAIRS: &str = "residual/pairs";
    /// Residual pairs on which an identity rule fired.
    pub const RESIDUAL_MATCHED: &str = "residual/matched";
    /// Residual pairs on which a distinctness rule fired.
    pub const RESIDUAL_REFUTED: &str = "residual/refuted";

    /// `|MT_RS|` — matching-table size after dedup.
    pub const CLASSIFY_MT: &str = "classify/mt";
    /// `|NMT_RS|` — negative-table size after dedup.
    pub const CLASSIFY_NMT: &str = "classify/nmt";
    /// Pairs recorded in both tables (inconsistent knowledge).
    pub const CLASSIFY_OVERLAP: &str = "classify/overlap";
    /// Undetermined pairs (Figure 3's middle region).
    pub const CLASSIFY_UNDETERMINED: &str = "classify/undetermined";
    /// `|R|·|S|` — the full pair space.
    pub const CLASSIFY_PAIRS_TOTAL: &str = "classify/pairs_total";

    /// Tuples pushed through ILFD derivation (both sides).
    pub const DERIVE_TUPLES: &str = "derive/tuples";
    /// Tuples answered from the derivation memo.
    pub const DERIVE_MEMO_HITS: &str = "derive/memo_hits";
    /// Distinct projections actually derived.
    pub const DERIVE_MEMO_MISSES: &str = "derive/memo_misses";
    /// Attribute values filled in by ILFDs.
    pub const DERIVE_ASSIGNED: &str = "derive/assigned";

    /// Distinct values interned for the run (interner population,
    /// including rule constants and the NULL symbol).
    pub const ALLOC_VALUES_INTERNED: &str = "alloc/values_interned";
    /// Key tuples materialized while building pair tables — the
    /// allocation volume of the convert step. The blocked arm pays
    /// one per *row* (shared pools); the hash/nested-loop arms pay
    /// per *inserted pair entry* (two per insertion attempt).
    pub const ALLOC_TUPLES_MATERIALIZED: &str = "alloc/tuples_materialized";

    /// Plan cache: runs answered from the matcher's cached plan.
    pub const PLAN_CACHE_HITS: &str = "plan/cache_hits";
    /// Plan cache: runs that had to invoke the planner.
    pub const PLAN_CACHE_MISSES: &str = "plan/cache_misses";
    /// Probe/refute/vector nodes whose actual candidate volume
    /// drifted ≥ [`crate::explain::DRIFT_FACTOR`]× from the planner's
    /// estimate (either direction). 0 means the cost model held.
    pub const PLAN_DRIFT_NODES: &str = "plan/drift_nodes";

    /// Measured bytes allocated during the run (present only when the
    /// `count-alloc` feature's counting allocator is installed).
    pub const ALLOC_MEASURED_BYTES: &str = "alloc/measured_bytes";
    /// Measured bytes freed during the run (counting allocator only).
    pub const ALLOC_MEASURED_FREED: &str = "alloc/measured_freed";
    /// Process-wide peak live bytes (counting allocator only).
    pub const ALLOC_PEAK_BYTES: &str = "alloc/peak_bytes";
    /// Measured bytes attributed to the derive stage.
    pub const ALLOC_STAGE_DERIVE: &str = "alloc/stage/derive";
    /// Measured bytes attributed to the engine stage.
    pub const ALLOC_STAGE_ENGINE: &str = "alloc/stage/engine";
    /// Measured bytes attributed to the convert stage.
    pub const ALLOC_STAGE_CONVERT: &str = "alloc/stage/convert";

    /// Streamed emission: bitset shards allocated across all workers
    /// (absent on buffered runs).
    pub const SINK_SHARDS: &str = "sink/shards";
    /// Streamed emission: shard ranges more than one worker touched,
    /// merged by OR post-scope. 0 means perfect row-range locality.
    pub const SINK_SPILLED_MERGES: &str = "sink/spilled_merges";
    /// Streamed emission: total shard bytes the workers allocated —
    /// the streamed twin of the buffered path's 8·pairs volume.
    pub const SINK_BYTES: &str = "sink/bytes";
    /// Spilled emission: bytes written to spill files (segment
    /// headers included; absent when nothing spilled).
    pub const SINK_SPILL_BYTES: &str = "sink/spill_bytes";
    /// Spilled emission: shard segments written to spill files.
    pub const SINK_SPILL_SHARDS: &str = "sink/spill_shards";
    /// Spill I/O attempts that failed and were retried with backoff
    /// (write, read, or open) before succeeding or giving up.
    pub const RUNTIME_IO_RETRIES: &str = "runtime/io_retries";
    /// Runtime: 1 when the executor degraded the plan to spilled
    /// emission up front because the estimated pair bytes exceeded
    /// the memory budget.
    pub const RUNTIME_DEGRADED_TO_SPILL: &str = "runtime/degraded_to_spill";
    /// Runtime: 1 when spilled emission failed (spill I/O exhausted
    /// its retries) and the run fell back to the streamed rung.
    pub const RUNTIME_SPILL_FALLBACK: &str = "runtime/spill_fallback";
    /// Planner: an explicit `--emit` hint was structurally impossible
    /// (forced arm, no refutation phase, or no dense-bitset geometry)
    /// and was overridden — warn-once, so A/B runs can tell they did
    /// not compare what they claimed to.
    pub const PLAN_EMIT_HINT_OVERRIDDEN: &str = "plan/emit_hint_overridden";

    /// Trace: slice groups dropped because a per-worker sink filled
    /// (0 on any reasonable run; boundedness made observable).
    pub const TRACE_DROPPED: &str = "trace/dropped";

    /// Incremental: tuple insertions processed.
    pub const INCR_INSERTS: &str = "incremental/inserts";
    /// Incremental: distinct ILFDs added.
    pub const INCR_ILFDS_ADDED: &str = "incremental/ilfds_added";
    /// Incremental: pairs newly proven matching across all events.
    pub const INCR_PROMOTED: &str = "incremental/promoted";
    /// Incremental: pairs newly proven distinct across all events.
    pub const INCR_REFUTED: &str = "incremental/refuted";
    /// Incremental: events after which a pair table *shrank*. §3.3
    /// monotonicity says this must stay 0; the counter exists so the
    /// invariant is observable, not assumed.
    pub const INCR_MONOTONICITY_VIOLATIONS: &str = "incremental/monotonicity_violations";
}

/// Label names (string-valued report annotations).
pub mod label {
    /// Which engine arm produced the published tables after any
    /// degradation: `"blocked_parallel"`, `"blocked"`, or
    /// `"nested_loop"`.
    pub const ENGINE_ARM: &str = "engine";
    /// The abort reason when a run tripped its guard (absent on
    /// successful runs).
    pub const ABORT: &str = "abort";
    /// The planner's execution-mode decision and its one-line
    /// rationale, e.g. `"parallel(8): est. 10240000 candidate pairs"`.
    pub const PLAN_MODE: &str = "plan/mode";
    /// The planner's emission decision (`"buffered"` /
    /// `"streamed(<shards>)"` / `"spilled(<shards>)"`) and its
    /// rationale.
    pub const PLAN_EMIT: &str = "plan/emit";
    /// Where the planner's column statistics came from:
    /// `"computed"` (freshly encoded this run) or `"persisted"`
    /// (read back from a dataset store).
    pub const PLAN_STATS: &str = "plan/stats";
}

/// Histogram names.
pub mod histogram {
    /// Per-task wall time inside the blocked engine's queue.
    pub const ENGINE_TASK_NANOS: &str = "engine/task_nanos";
}

/// The name of a per-rule blocking counter:
/// `rule/{identity|distinct}/<rule>/{candidates|accepted}`.
pub fn rule_counter(family: &str, rule: &str, what: &str) -> String {
    format!("rule/{family}/{rule}/{what}")
}

/// Stage slots for the counting allocator's thread-scoped
/// attribution ([`eid_obs::alloc::StageScope`]). Slot 0 is the
/// untagged default.
pub mod alloc_slot {
    /// Untagged allocations (setup, reporting, caller code).
    pub const OTHER: usize = 0;
    /// ILFD extension + derivation.
    pub const DERIVE: usize = 1;
    /// The plan executor (indexes, tasks, pair lists).
    pub const ENGINE: usize = 2;
    /// Pair-list dedup + table conversion.
    pub const CONVERT: usize = 3;
}

/// The name of a per-plan-node counter:
/// `plan/node/<id>/{candidates|accepted|pairs|matched|refuted|nanos|tasks|batches}`
/// — joinable back to the plan JSON by node id. `nanos` is busy time
/// summed across workers; `tasks` counts the engine tasks lowered
/// from the node; `batches` counts its kernel invocations.
pub fn node_counter(node: usize, what: &str) -> String {
    format!("plan/node/{node}/{what}")
}

/// The label under which the planner records its chosen blocking key
/// for one identity rule: `plan/key/<rule>`.
pub fn plan_key_label(rule: &str) -> String {
    format!("plan/key/{rule}")
}
