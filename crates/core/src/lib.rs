//! # `eid-core` — the entity-identification engine
//!
//! The primary contribution of Lim, Srivastava, Prabhakar &
//! Richardson, *Entity Identification in Database Integration* (ICDE
//! 1993), as a native Rust engine:
//!
//! * [`extend`] — widen relations with missing extended-key
//!   attributes and derive their values from ILFDs (§4.2 steps 1–2);
//! * [`matcher`] — the [`matcher::EntityMatcher`]: extended-key
//!   equivalence via hash join or nested loop, distinctness via
//!   Proposition-1 rules, producing matching and negative matching
//!   tables (§4.2 step 3);
//! * [`plan`] — the typed match-plan IR: a DAG of stage nodes with
//!   per-node labels, rationales, and span names, serializable to
//!   JSON and rewritable (serial twin, index-free twin);
//! * [`planner`] — the cost-based planner: chooses blocking keys,
//!   probe strategies, and serial-vs-parallel execution from cheap
//!   column statistics;
//! * [`engine`] — the [`engine::Executor`], the one place match
//!   plans run: precompiled rules, per-rule inverted-index blocking,
//!   chunked data parallelism, and the degradation ladder as plan
//!   rewrites;
//! * [`kernels`] — vectorized predicate kernels over interned symbol
//!   columns: portable autovectorizing chunked-scalar paths with an
//!   AVX2 twin behind runtime feature detection, plus the L2 tile
//!   sizing the residual scan uses;
//! * [`match_table`] — pair tables with the §3.2 uniqueness and
//!   consistency constraints;
//! * [`algebra_pipeline`] — an independent implementation of the same
//!   construction as the §4.2 relational expressions over ILFD
//!   tables (cross-validated against the matcher);
//! * [`integrate`] — the integrated table `T_RS = MT ⋈ R ⟗ S` with
//!   NULL semantics (§4.1, §6.3);
//! * [`partition`] — the Figure-3 three-way partition;
//! * [`monotonic`] — the §3.3 monotonicity harness (knowledge sweeps);
//! * [`sink`] — streaming pair sinks: the [`sink::PairSink`] trait,
//!   the row-range-sharded bitset sink workers emit into, and the
//!   post-scope shard merge (dedup folded into emission);
//! * [`stats`] — the observability vocabulary: every span path and
//!   counter name the engine records into its
//!   [`MatchReport`](eid_obs::MatchReport);
//! * [`metrics`] — soundness/completeness measurement against ground
//!   truth;
//! * [`session`] — a facade reproducing the Prolog prototype's
//!   `setup_extkey` / `print_matchtable` / `print_integ_table`
//!   workflow, including its verification messages;
//! * [`validate`] — the §3.2 *necessary* pre-match checks on
//!   DBA-supplied knowledge;
//! * [`conflict`] — attribute-value conflict detection/resolution
//!   after identification (§2) and the unified relation;
//! * [`incremental`] — matching tables maintained under federated
//!   tuple inserts and growing ILFD knowledge (§2, §3.3);
//! * [`runtime`] — the hardened run layer: [`RunGuard`] cooperative
//!   cancellation, deadlines, and resource budgets, with the
//!   degradation ladder documented in DESIGN.md §9;
//! * [`virtual_view`] — query-time virtual integration with
//!   selection pushdown (§1);
//! * [`explain`] — per-match provenance: the ILFD chains behind each
//!   derived extended-key value;
//! * [`job`] — one-call orchestration of the whole pipeline.
//!
//! ## Quickstart
//!
//! ```
//! use eid_core::prelude::*;
//! use eid_relational::{Relation, Schema};
//! use eid_ilfd::{Ilfd, IlfdSet};
//!
//! // R(name, cuisine) and S(name, speciality) share no candidate key.
//! let r_schema = Schema::of_strs("R", &["name", "cuisine"], &["name", "cuisine"]).unwrap();
//! let mut r = Relation::new(r_schema);
//! r.insert_strs(&["twincities", "indian"]).unwrap();
//!
//! let s_schema = Schema::of_strs("S", &["name", "speciality"], &["name", "speciality"]).unwrap();
//! let mut s = Relation::new(s_schema);
//! s.insert_strs(&["twincities", "mughalai"]).unwrap();
//!
//! // One ILFD bridges them: Mughalai speciality ⇒ Indian cuisine.
//! let ilfds: IlfdSet = vec![
//!     Ilfd::of_strs(&[("speciality", "mughalai")], &[("cuisine", "indian")]),
//! ].into_iter().collect();
//!
//! let config = MatchConfig::new(ExtendedKey::of_strs(&["name", "cuisine"]), ilfds);
//! let outcome = EntityMatcher::new(r, s, config).unwrap().run().unwrap();
//! assert_eq!(outcome.matching.len(), 1);
//! outcome.verify().unwrap(); // sound: uniqueness + consistency hold
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algebra_pipeline;
pub mod conflict;
pub mod engine;
pub mod error;
pub mod explain;
pub mod extend;
pub mod incremental;
pub mod integrate;
pub mod job;
pub mod kernels;
pub mod match_table;
pub mod matcher;
pub mod metrics;
pub mod monotonic;
pub mod partition;
pub mod plan;
pub mod planner;
pub mod runtime;
pub mod session;
pub mod sink;
pub mod stats;
pub mod store;
pub mod validate;
pub mod virtual_view;

pub use conflict::{AttributeConflict, ConflictPolicy, Unified};
pub use engine::{BlockedEngine, EnginePairs, Executor, RelSide};
pub use error::{CoreError, Result};
pub use explain::{explain_match, render_plan, MatchExplanation, Support};
pub use incremental::{Delta, IncrementalMatcher, SideSel};
pub use integrate::IntegratedTable;
pub use job::{IntegrationJob, IntegrationReport};
pub use match_table::{PairEntry, PairTable};
pub use matcher::{EntityMatcher, JoinAlgorithm, MatchConfig, MatchOutcome};
pub use metrics::{Evaluation, GroundTruth};
pub use monotonic::KnowledgeSweep;
pub use partition::Partition;
pub use plan::{
    ArmHint, Emit, EmitHint, EmitMode, ExecMode, MatchPlan, PlanNode, PlanNodeKind, ProbeStrategy,
    RuleFamily, RuleRef,
};
pub use planner::Planner;
pub use runtime::{AbortReason, PartialStats, RunBudget, RunGuard};
pub use session::Session;
pub use sink::{PairSet, PairSink, SpillDirGuard};
pub use store::Dataset;
pub use validate::{validate_knowledge, KnowledgeReport};
pub use virtual_view::{Selection, ViewAnswer, VirtualView};

/// Commonly used types, one `use` away.
pub mod prelude {
    pub use crate::conflict::{AttributeConflict, ConflictPolicy, Unified};
    pub use crate::engine::{BlockedEngine, EnginePairs, Executor};
    pub use crate::incremental::{Delta, IncrementalMatcher, SideSel};
    pub use crate::integrate::IntegratedTable;
    pub use crate::job::{IntegrationJob, IntegrationReport};
    pub use crate::match_table::PairTable;
    pub use crate::matcher::{EntityMatcher, JoinAlgorithm, MatchConfig, MatchOutcome};
    pub use crate::metrics::{Evaluation, GroundTruth};
    pub use crate::monotonic::KnowledgeSweep;
    pub use crate::partition::Partition;
    pub use crate::plan::{ArmHint, EmitHint, MatchPlan};
    pub use crate::runtime::{AbortReason, PartialStats, RunBudget, RunGuard};
    pub use crate::session::Session;
    pub use crate::virtual_view::{Selection, VirtualView};
    pub use eid_ilfd::Strategy as DerivationStrategy;
    pub use eid_rules::{ExtendedKey, MatchDecision, RuleBase};
}
