//! Virtual database integration — query-time entity identification.
//!
//! §1 distinguishes *actual* integration (materialize the integrated
//! database, discard the originals) from *virtual* integration ("a
//! virtually integrated database is created on top of the component
//! databases … while the components retain their identities and
//! usage"), and §2 notes that for virtual integration "the actual
//! processing only takes place during the query time". The paper's
//! conclusion: "In processing a federated database query, entity
//! identification has to be performed whenever the information about
//! real-world entities exists in different databases."
//!
//! [`VirtualView`] is that design: it holds references to the
//! component relations plus the integration knowledge, and answers
//! selection queries over the integrated table by
//!
//! 1. **pushing the selection down** to each component relation where
//!    the selected attribute is a *base* attribute of that side
//!    (derived attributes cannot be filtered before derivation — the
//!    ILfDs must run first);
//! 2. running entity identification only on the qualifying tuples;
//! 3. building the (small) integrated result.
//!
//! The result is always identical to filtering the fully materialized
//! `T_RS` — verified by the test suite — but touches only the
//! relevant tuples.

use eid_relational::{algebra, AttrName, Relation, Value};

use crate::error::Result;
use crate::integrate::IntegratedTable;
use crate::matcher::{EntityMatcher, MatchConfig};

/// A selection condition over the integrated table's columns:
/// `attr = value` on the unified (unprefixed) attribute name.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// The unified attribute name (`name`, `cuisine`, …).
    pub attr: AttrName,
    /// The required value (non-NULL equality).
    pub value: Value,
}

impl Selection {
    /// Builds `attr = value`.
    pub fn eq(attr: impl Into<AttrName>, value: impl Into<Value>) -> Self {
        Selection {
            attr: attr.into(),
            value: value.into(),
        }
    }
}

/// A virtually integrated view over two component relations.
#[derive(Debug, Clone)]
pub struct VirtualView {
    r: Relation,
    s: Relation,
    config: MatchConfig,
}

/// The answer to a virtual-view query.
#[derive(Debug, Clone)]
pub struct ViewAnswer {
    /// The qualifying slice of the integrated table.
    pub table: IntegratedTable,
    /// How many component tuples were actually matched (the work
    /// done), vs. the component totals — the pushdown win.
    pub scanned_r: usize,
    /// Tuples of `S` that survived pushdown.
    pub scanned_s: usize,
}

impl VirtualView {
    /// Creates the view. Nothing is computed yet.
    pub fn new(r: Relation, s: Relation, config: MatchConfig) -> Self {
        VirtualView { r, s, config }
    }

    /// The component relations.
    pub fn components(&self) -> (&Relation, &Relation) {
        (&self.r, &self.s)
    }

    /// Whether filtering `rel` on `attr` before matching is safe,
    /// i.e. cannot drop a tuple whose merged row would still qualify
    /// through the counterpart `other`:
    ///
    /// * extended-key attributes are safe — matched pairs agree on
    ///   them (non-NULL extended-key equality), so a witnessed
    ///   disagreement on this side implies the counterpart disagrees
    ///   too;
    /// * otherwise the attribute must be absent from `other` and not
    ///   derivable there (no ILFD consequent mentions it) — then this
    ///   side is the merged row's only source for the value.
    ///
    /// Shared non-key attributes (where attribute-value *conflicts*
    /// can make the counterpart qualify a row this side disagrees
    /// with) are never pushed down.
    fn pushdown_safe(&self, attr: &AttrName, other: &Relation) -> bool {
        if self.config.extended_key.attrs().contains(attr) {
            return true;
        }
        let derivable_in_other = self
            .config
            .ilfds
            .iter()
            .any(|i| i.consequent().attributes().contains(attr));
        !other.schema().has_attribute(attr) && !derivable_in_other
    }

    fn pushdown(&self, rel: &Relation, other: &Relation, sel: &[Selection]) -> Result<Relation> {
        let mut out = rel.clone();
        for s in sel {
            if !self.pushdown_safe(&s.attr, other) {
                continue;
            }
            if let Some(pos) = out.schema().try_position(&s.attr) {
                // Keep NULLs: a tuple with an unknown value may still
                // qualify through its matched counterpart's value (or
                // through derivation); only a *witnessed* disagreement
                // disqualifies it before matching.
                let value = s.value.clone();
                out = algebra::select(&out, |t| {
                    let v = t.get(pos);
                    v.is_null() || v.non_null_eq(&value)
                });
            }
            // Attributes the side lacks entirely: cannot filter before
            // derivation; the post-match filter finishes the job.
        }
        Ok(out)
    }

    /// Answers `σ_{sel}(T_RS)` by pushdown + local matching +
    /// post-filtering. Conjunctive equality selections only (the
    /// shape federated queries route to component databases).
    pub fn select(&self, sel: &[Selection]) -> Result<ViewAnswer> {
        let r_slice = self.pushdown(&self.r, &self.s, sel)?;
        let s_slice = self.pushdown(&self.s, &self.r, sel)?;
        let scanned_r = r_slice.len();
        let scanned_s = s_slice.len();

        // Rebuild key-enforcing relations over the slices so the
        // matcher's key bookkeeping holds.
        let mut r_sub = Relation::new(self.r.schema().clone());
        for t in r_slice.iter() {
            r_sub.insert(t.clone())?;
        }
        let mut s_sub = Relation::new(self.s.schema().clone());
        for t in s_slice.iter() {
            s_sub.insert(t.clone())?;
        }

        let outcome =
            EntityMatcher::new(r_sub.clone(), s_sub.clone(), self.config.clone())?.run()?;
        let table = IntegratedTable::build(&r_sub, &s_sub, &outcome, &self.config.extended_key)?;

        // Post-filter: the pushdown kept superset rows when the
        // selected attribute was derived (or lives on one side only);
        // enforce the selection on the integrated columns now.
        let filtered = filter_integrated(&table, sel)?;
        Ok(ViewAnswer {
            table: filtered,
            scanned_r,
            scanned_s,
        })
    }

    /// Materializes the full integrated table (the "actual
    /// integration" path) — the oracle the tests compare against.
    pub fn materialize(&self) -> Result<IntegratedTable> {
        let outcome =
            EntityMatcher::new(self.r.clone(), self.s.clone(), self.config.clone())?.run()?;
        IntegratedTable::build(&self.r, &self.s, &outcome, &self.config.extended_key)
    }
}

/// Keeps integrated rows where, for every selection, the `r_`-side or
/// `s_`-side copy of the attribute equals the value (a row qualifies
/// through whichever side knows the attribute).
pub fn filter_integrated(table: &IntegratedTable, sel: &[Selection]) -> Result<IntegratedTable> {
    let rel = table.relation();
    let mut keep = Relation::new_unchecked(rel.schema().clone());
    'rows: for t in rel.iter() {
        for s in sel {
            let r_attr = AttrName::new(format!("r_{}", s.attr));
            let s_attr = AttrName::new(format!("s_{}", s.attr));
            let r_ok = t
                .value_of(rel.schema(), &r_attr)
                .map(|v| v.non_null_eq(&s.value))
                .unwrap_or(false);
            let s_ok = t
                .value_of(rel.schema(), &s_attr)
                .map(|v| v.non_null_eq(&s.value))
                .unwrap_or(false);
            if !r_ok && !s_ok {
                continue 'rows;
            }
        }
        keep.insert(t.clone())?;
    }
    Ok(IntegratedTable::from_relation(keep, table.key_width()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_ilfd::{Ilfd, IlfdSet};
    use eid_relational::Schema;
    use eid_rules::ExtendedKey;

    fn view() -> VirtualView {
        let r_schema =
            Schema::of_strs("R", &["name", "cuisine", "street"], &["name", "cuisine"]).unwrap();
        let mut r = Relation::new(r_schema);
        r.insert_strs(&["twincities", "chinese", "co_b2"]).unwrap();
        r.insert_strs(&["twincities", "indian", "co_b3"]).unwrap();
        r.insert_strs(&["itsgreek", "greek", "front_ave"]).unwrap();
        r.insert_strs(&["anjuman", "indian", "le_salle_ave"])
            .unwrap();
        r.insert_strs(&["villagewok", "chinese", "wash_ave"])
            .unwrap();

        let s_schema = Schema::of_strs(
            "S",
            &["name", "speciality", "county"],
            &["name", "speciality"],
        )
        .unwrap();
        let mut s = Relation::new(s_schema);
        s.insert_strs(&["twincities", "hunan", "roseville"])
            .unwrap();
        s.insert_strs(&["twincities", "sichuan", "hennepin"])
            .unwrap();
        s.insert_strs(&["itsgreek", "gyros", "ramsey"]).unwrap();
        s.insert_strs(&["anjuman", "mughalai", "minneapolis"])
            .unwrap();

        let ilfds: IlfdSet = vec![
            Ilfd::of_strs(&[("speciality", "hunan")], &[("cuisine", "chinese")]),
            Ilfd::of_strs(&[("speciality", "sichuan")], &[("cuisine", "chinese")]),
            Ilfd::of_strs(&[("speciality", "gyros")], &[("cuisine", "greek")]),
            Ilfd::of_strs(&[("speciality", "mughalai")], &[("cuisine", "indian")]),
        ]
        .into_iter()
        .collect();
        VirtualView::new(
            r,
            s,
            MatchConfig::new(ExtendedKey::of_strs(&["name", "cuisine"]), ilfds),
        )
    }

    #[test]
    fn base_attribute_selection_pushes_down() {
        let v = view();
        let ans = v.select(&[Selection::eq("name", "twincities")]).unwrap();
        // Pushdown kept only twincities tuples on both sides.
        assert_eq!(ans.scanned_r, 2);
        assert_eq!(ans.scanned_s, 2);
        // Result: the matched chinese pair merged, plus the unmatched
        // twincities rows.
        assert!(ans.table.len() >= 2);
    }

    #[test]
    fn derived_attribute_selection_cannot_prefilter_s() {
        let v = view();
        // cuisine is derived on S: S cannot be pre-filtered (4 scanned),
        // R can (2 chinese tuples).
        let ans = v.select(&[Selection::eq("cuisine", "chinese")]).unwrap();
        assert_eq!(ans.scanned_r, 2);
        assert_eq!(ans.scanned_s, 4);
    }

    #[test]
    fn select_equals_materialize_then_filter() {
        let v = view();
        for sel in [
            vec![Selection::eq("name", "twincities")],
            vec![Selection::eq("cuisine", "chinese")],
            vec![
                Selection::eq("name", "anjuman"),
                Selection::eq("cuisine", "indian"),
            ],
            vec![Selection::eq("name", "nonexistent")],
        ] {
            let fast = v.select(&sel).unwrap();
            let oracle = filter_integrated(&v.materialize().unwrap(), &sel).unwrap();
            assert!(
                fast.table.relation().same_tuples(oracle.relation()),
                "divergence for {sel:?}: fast={} oracle={}",
                fast.table.len(),
                oracle.len()
            );
        }
    }

    #[test]
    fn empty_selection_is_the_whole_table() {
        let v = view();
        let all = v.select(&[]).unwrap();
        let materialized = v.materialize().unwrap();
        assert!(all.table.relation().same_tuples(materialized.relation()));
    }

    /// Regression: a selection on a *shared non-key* attribute must
    /// not be pushed down — under an attribute-value conflict the
    /// counterpart can still qualify the merged row.
    #[test]
    fn conflicting_shared_attribute_is_not_pushed_down() {
        let r_schema =
            Schema::of_strs("R", &["name", "cuisine", "city"], &["name", "cuisine"]).unwrap();
        let mut r = Relation::new(r_schema);
        r.insert_strs(&["tc", "chinese", "st_paul"]).unwrap(); // conflicts with S
        let s_schema = Schema::of_strs(
            "S",
            &["name", "speciality", "city"],
            &["name", "speciality"],
        )
        .unwrap();
        let mut s = Relation::new(s_schema);
        s.insert_strs(&["tc", "hunan", "mpls"]).unwrap();
        let ilfds: IlfdSet = vec![Ilfd::of_strs(
            &[("speciality", "hunan")],
            &[("cuisine", "chinese")],
        )]
        .into_iter()
        .collect();
        let v = VirtualView::new(
            r,
            s,
            MatchConfig::new(ExtendedKey::of_strs(&["name", "cuisine"]), ilfds),
        );
        let sel = [Selection::eq("city", "mpls")];
        let fast = v.select(&sel).unwrap();
        let oracle = filter_integrated(&v.materialize().unwrap(), &sel).unwrap();
        // The merged row qualifies through s_city even though R says
        // st_paul; pushdown must not have lost it.
        assert_eq!(oracle.len(), 1);
        assert!(fast.table.relation().same_tuples(oracle.relation()));
        // And indeed R was not pre-filtered (city is shared, non-key).
        assert_eq!(fast.scanned_r, 1);
    }

    /// Regression: a NULL base value must not be pruned by pushdown —
    /// the merged row can qualify through the counterpart's value.
    #[test]
    fn null_base_values_survive_pushdown() {
        use eid_relational::Value;
        let r_schema =
            Schema::of_strs("R", &["name", "cuisine", "city"], &["name", "cuisine"]).unwrap();
        let mut r = Relation::new(r_schema);
        r.insert(eid_relational::Tuple::new(vec![
            Value::str("tc"),
            Value::str("chinese"),
            Value::Null, // city unknown in R
        ]))
        .unwrap();
        let s_schema = Schema::of_strs(
            "S",
            &["name", "speciality", "city"],
            &["name", "speciality"],
        )
        .unwrap();
        let mut s = Relation::new(s_schema);
        s.insert_strs(&["tc", "hunan", "mpls"]).unwrap();
        let ilfds: IlfdSet = vec![Ilfd::of_strs(
            &[("speciality", "hunan")],
            &[("cuisine", "chinese")],
        )]
        .into_iter()
        .collect();
        let v = VirtualView::new(
            r,
            s,
            MatchConfig::new(ExtendedKey::of_strs(&["name", "cuisine"]), ilfds),
        );
        let sel = [Selection::eq("city", "mpls")];
        let fast = v.select(&sel).unwrap();
        let oracle = filter_integrated(&v.materialize().unwrap(), &sel).unwrap();
        assert_eq!(fast.table.len(), 1, "merged row qualifies via s_city");
        assert!(fast.table.relation().same_tuples(oracle.relation()));
    }

    #[test]
    fn selection_through_either_side_qualifies() {
        let v = view();
        // speciality lives on S (and derived on R' only via ILFDs we
        // did not supply) — rows qualify through the s_ column.
        let ans = v.select(&[Selection::eq("speciality", "gyros")]).unwrap();
        assert_eq!(ans.table.len(), 1);
    }
}
