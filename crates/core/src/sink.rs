//! Streaming pair sinks — emission, dedup, and conversion folded
//! into one pass.
//!
//! The buffered pipeline materializes every raw negative pair into
//! per-task `Vec`s (~41 MB at n=3200), merges them in task order,
//! and only then dedups into a [`PairSet`]. The paper's refutation
//! semantics (Lim et al., ICDE 1993 §3) are order-insensitive, so
//! nothing forces that intermediate to exist: a worker can set the
//! pair's bit the moment a rule fires, and dedup is free at emission
//! time.
//!
//! Two [`PairSink`] implementations realize that choice:
//!
//! * `Vec<(u32, u32)>` — the buffered twin. Emission order is the
//!   task/driver order the engine has always produced, byte-identical
//!   to every pre-sink release; the degradation ladder and the
//!   incremental matcher's staged-commit rollback run on this path.
//! * [`ShardedSink`] — the streaming sink. The `|R|·|S|` bit grid is
//!   cut into *row-range shards* ([`SinkGeometry`]); each worker
//!   lazily allocates only the shards its tasks touch, so workers
//!   never share a cache line, and [`merge_shards`] ORs the per-worker
//!   shards into one dense [`PairSet`] after the task scope ends.
//!   Shard boundaries are row-aligned **and** word-aligned
//!   (`rows_per_shard · s_len ≡ 0 mod 64`), which keeps every row's
//!   bit span inside a single shard — the bulk emission paths below
//!   never split a row across shards.
//!
//! Bulk emission: [`PairSink::push_rows`] carries the vectorized
//! disagreement kernels' cross-product emission (`drivers ×
//! literal-block`). The sharded override builds the literal block's
//! bitmask template once and ORs it word-shifted into each driver
//! row's range — the per-pair loop disappears entirely.
//!
//! Out-of-core emission: [`SpillSink`] wraps a [`ShardedSink`] with a
//! resident-byte cap. When the cap is breached (checked cooperatively
//! at task boundaries), every resident shard is appended to a
//! per-worker temp file as a `[shard index][word count][words…]`
//! segment and freed; [`merge_spilled`] then streams the segments
//! back *in shard (row-range) order*, so peak memory is one full grid
//! plus one read buffer instead of `workers × grid`. Transient spill
//! I/O is retried with capped exponential backoff behind the
//! `sink/spill_open`, `sink/spill_write`, and `sink/spill_read` fault
//! sites before the degradation ladder drops a rung.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use eid_relational::FxHashSet;

/// Pair-space ceiling (in bits) for the dense bitset pair structures;
/// a `|R|·|S|` grid up to this size costs at most 64 MiB per set.
/// Larger inputs fall back to a hash set of packed pairs (and the
/// planner keeps emission buffered).
pub const MAX_BITSET_BITS: u128 = 1 << 29;

/// Target shard size in grid bits (128 KiB of words): small enough
/// that a worker's active shard stays cache-resident, large enough
/// that shard bookkeeping is noise.
pub const SHARD_TARGET_BITS: usize = 1 << 20;

/// A set of row-index pairs: a dense bitset when the pair space is
/// small enough, a hash set of packed `u64`s otherwise. Either way
/// membership never touches a key tuple.
#[derive(Clone)]
pub enum PairSet {
    /// Dense bit grid, bit `i·s_len + j` ⇔ pair `(i, j)`.
    Bits {
        /// The grid words, row-major.
        words: Vec<u64>,
        /// Row width of the grid (`|S|`).
        s_len: usize,
    },
    /// Hash set of `(i << 32) | j` packed pairs.
    Hash(FxHashSet<u64>),
}

impl PairSet {
    /// An empty set over an `r_len × s_len` grid; `expected` sizes
    /// the hash fallback.
    pub fn new(r_len: usize, s_len: usize, expected: usize) -> PairSet {
        let bits = (r_len as u128) * (s_len as u128);
        if bits > 0 && bits <= MAX_BITSET_BITS {
            PairSet::Bits {
                words: vec![0u64; (bits as usize).div_ceil(64)],
                s_len,
            }
        } else {
            PairSet::Hash(FxHashSet::with_capacity_and_hasher(
                expected,
                Default::default(),
            ))
        }
    }

    /// Wraps merged sink words as a dense set (the shard-merge
    /// output; the words already cover the full grid).
    pub fn from_words(words: Vec<u64>, s_len: usize) -> PairSet {
        PairSet::Bits { words, s_len }
    }

    /// Inserts a pair; `true` if it was new.
    pub fn insert(&mut self, i: u32, j: u32) -> bool {
        match self {
            PairSet::Bits { words, s_len } => {
                let bit = i as usize * *s_len + j as usize;
                let (word, mask) = (bit / 64, 1u64 << (bit % 64));
                if words[word] & mask != 0 {
                    false
                } else {
                    words[word] |= mask;
                    true
                }
            }
            PairSet::Hash(set) => set.insert(((i as u64) << 32) | j as u64),
        }
    }

    /// Membership test.
    pub fn contains(&self, i: u32, j: u32) -> bool {
        match self {
            PairSet::Bits { words, s_len } => {
                let bit = i as usize * *s_len + j as usize;
                words[bit / 64] & (1u64 << (bit % 64)) != 0
            }
            PairSet::Hash(set) => set.contains(&(((i as u64) << 32) | j as u64)),
        }
    }

    /// Number of pairs in the set (a popcount sweep for bitsets).
    pub fn count(&self) -> usize {
        match self {
            PairSet::Bits { words, .. } => words.iter().map(|w| w.count_ones() as usize).sum(),
            PairSet::Hash(set) => set.len(),
        }
    }

    /// Resident bytes of the structure itself — what [`RunGuard`]
    /// charges when the counting allocator is not installed, so the
    /// `--max-mem-mb` budget trips consistently in both builds.
    ///
    /// [`RunGuard`]: crate::runtime::RunGuard
    pub fn capacity_bytes(&self) -> u64 {
        match self {
            PairSet::Bits { words, .. } => (words.len() * 8) as u64,
            // hashbrown: 8-byte key + 1 control byte per slot.
            PairSet::Hash(set) => set.capacity() as u64 * 9,
        }
    }

    /// `|self ∩ other|` over the same `|R|·|S|` grid: an AND-popcount
    /// sweep when both sides are bitsets, a probe of the explicit
    /// pair list otherwise.
    pub fn intersection_count(&self, other_pairs: &[(u32, u32)], other_set: &PairSet) -> usize {
        match (self, other_set) {
            (
                PairSet::Bits {
                    words: a,
                    s_len: la,
                },
                PairSet::Bits {
                    words: b,
                    s_len: lb,
                },
            ) if la == lb => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x & y).count_ones() as usize)
                .sum(),
            _ => other_pairs
                .iter()
                .filter(|&&(i, j)| self.contains(i, j))
                .count(),
        }
    }

    /// Decodes the set into an ascending `(i, j)` pair list — the
    /// streamed path's convert step. The bitset walk keeps a running
    /// row cursor instead of dividing per bit and writes through
    /// spare capacity (the exact length is known up front from
    /// `count`). Words that sit entirely inside one row — all but
    /// ~one word per row — unpack branchlessly: 64 unconditional
    /// sequential stores with the cursor advanced per set bit, so at
    /// refutation densities (~90% of the grid) there is no
    /// data-dependent `trailing_zeros` chain on the hot path.
    pub fn to_pairs(&self) -> Vec<(u32, u32)> {
        match self {
            PairSet::Bits { words, s_len } => {
                let total = self.count();
                // 64 slots of slack absorb the unconditional trailing
                // writes of the branchless unpack below.
                let mut out: Vec<(u32, u32)> = Vec::with_capacity(total + 64);
                let s_len = *s_len;
                if s_len == 0 {
                    return out;
                }
                let (mut row, mut row_start, mut row_end) = (0u32, 0usize, s_len);
                let p = out.as_mut_ptr();
                let mut written = 0usize;
                for (wi, &word) in words.iter().enumerate() {
                    if word == 0 {
                        continue;
                    }
                    let word_base = wi << 6;
                    while word_base >= row_end {
                        row += 1;
                        row_start = row_end;
                        row_end += s_len;
                    }
                    if word_base + 64 <= row_end {
                        // Whole word inside the current row: write every
                        // candidate slot, advance only on set bits.
                        let col = (word_base - row_start) as u32;
                        debug_assert!(written + 64 <= total + 64);
                        let mut w = word;
                        for k in 0..64u32 {
                            // SAFETY: `written` never exceeds `total` (one
                            // advance per set bit) and the vec reserves
                            // `total + 64`, covering the trailing
                            // unconditional stores.
                            unsafe { p.add(written).write((row, col + k)) };
                            written += (w & 1) as usize;
                            w >>= 1;
                        }
                        continue;
                    }
                    // Row boundary crosses this word: fall back to the
                    // per-bit scan that tracks the cursor exactly.
                    let mut w = word;
                    while w != 0 {
                        let bit = word_base + w.trailing_zeros() as usize;
                        while bit >= row_end {
                            row += 1;
                            row_start = row_end;
                            row_end += s_len;
                        }
                        debug_assert!(written < total);
                        // SAFETY: one slot per set bit, within capacity.
                        unsafe { p.add(written).write((row, (bit - row_start) as u32)) };
                        written += 1;
                        w &= w - 1;
                    }
                }
                debug_assert_eq!(written, total);
                // SAFETY: slots `0..written` were all initialised above
                // (one per set bit, verified in debug builds).
                unsafe { out.set_len(written) };
                out
            }
            PairSet::Hash(set) => {
                let mut out: Vec<(u32, u32)> =
                    set.iter().map(|&p| ((p >> 32) as u32, p as u32)).collect();
                out.sort_unstable();
                out
            }
        }
    }
}

impl fmt::Debug for PairSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PairSet::Bits { s_len, .. } => f
                .debug_struct("PairSet::Bits")
                .field("s_len", s_len)
                .field("count", &self.count())
                .finish(),
            PairSet::Hash(set) => f
                .debug_struct("PairSet::Hash")
                .field("count", &set.len())
                .finish(),
        }
    }
}

/// Where a probe/refute plan sends the pairs it proves. The engine's
/// emission loops are generic over this trait; the buffered `Vec`
/// impl preserves the historical emission order byte-for-byte, the
/// [`ShardedSink`] impl dedups at emission time.
pub trait PairSink {
    /// Emits one pair.
    fn push(&mut self, i: u32, j: u32);

    /// Capacity hint for `additional` upcoming pairs (no-op for
    /// sinks with fixed-size storage).
    fn reserve(&mut self, additional: usize) {
        let _ = additional;
    }

    /// Emits `(i, j)` for every `j` in `js` (ascending within the
    /// row — the residual scan's per-driver row buffer).
    fn push_row(&mut self, i: u32, js: &[u32]) {
        for &j in js {
            self.push(i, j);
        }
    }

    /// Emits the full cross product `is × js`, `i`-major — the bulk
    /// disagreement emission (every pair definitely fires). The
    /// default preserves the scalar loop's order exactly.
    fn push_rows(&mut self, is: &[u32], js: &[u32]) {
        for &i in is {
            self.push_row(i, js);
        }
    }
}

impl PairSink for Vec<(u32, u32)> {
    fn push(&mut self, i: u32, j: u32) {
        Vec::push(self, (i, j));
    }

    fn reserve(&mut self, additional: usize) {
        Vec::reserve(self, additional);
    }

    fn push_row(&mut self, i: u32, js: &[u32]) {
        self.extend(js.iter().map(|&j| (i, j)));
    }
}

/// The shard layout of one `r_len × s_len` bit grid. Shards are
/// contiguous word ranges covering whole row groups; `rows_per_shard`
/// is the smallest multiple of the 64-bit alignment period at least
/// [`SHARD_TARGET_BITS`] wide, so every shard starts on a fresh word
/// *and* a fresh row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkGeometry {
    /// Row width of the grid (`|S|`).
    pub s_len: usize,
    /// Rows covered by each shard (last shard may cover fewer).
    pub rows_per_shard: usize,
    /// Words per full shard (`rows_per_shard · s_len / 64`, exact).
    pub shard_words: usize,
    /// Words of the whole grid.
    pub grid_words: usize,
    /// Number of shards.
    pub shard_count: usize,
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

impl SinkGeometry {
    /// The shard layout for an `r_len × s_len` grid; `None` when the
    /// grid is empty or exceeds [`MAX_BITSET_BITS`] (emission must
    /// stay buffered there).
    pub fn new(r_len: usize, s_len: usize) -> Option<SinkGeometry> {
        let bits = (r_len as u128) * (s_len as u128);
        if bits == 0 || bits > MAX_BITSET_BITS {
            return None;
        }
        // rows_per_shard · s_len must be a word multiple so shard
        // boundaries never split a word (or a row) between workers.
        let step = 64 / gcd(s_len, 64);
        let base = (SHARD_TARGET_BITS / s_len).max(1);
        let rows_per_shard = base.div_ceil(step) * step;
        Some(SinkGeometry {
            s_len,
            rows_per_shard,
            shard_words: rows_per_shard * s_len / 64,
            grid_words: (bits as usize).div_ceil(64),
            shard_count: r_len.div_ceil(rows_per_shard),
        })
    }

    /// Word length of shard `k` (the last shard covers the grid
    /// remainder).
    pub fn shard_len(&self, k: usize) -> usize {
        (self.grid_words - k * self.shard_words).min(self.shard_words)
    }

    /// Bytes of the merged full-grid word vector.
    pub fn grid_bytes(&self) -> u64 {
        self.grid_words as u64 * 8
    }
}

/// One worker's streaming sink: lazily allocated row-range bitset
/// shards. No shared state — each worker owns its sink for the whole
/// task scope, and [`merge_shards`] combines them afterwards.
pub struct ShardedSink {
    geom: SinkGeometry,
    shards: Vec<Option<Box<[u64]>>>,
    pushes: u64,
    new_bytes: u64,
}

impl ShardedSink {
    /// An empty sink over `geom` (no shards allocated yet).
    pub fn new(geom: SinkGeometry) -> ShardedSink {
        ShardedSink {
            geom,
            shards: vec![None; geom.shard_count],
            pushes: 0,
            new_bytes: 0,
        }
    }

    /// Total pairs pushed into this sink (pre-dedup — the streamed
    /// twin of the buffered path's raw list length, used for abort
    /// accounting).
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Bytes of shards allocated since the last call — what the task
    /// drain charges against the memory budget in place of the
    /// 8·pairs output model.
    pub fn take_new_bytes(&mut self) -> u64 {
        std::mem::take(&mut self.new_bytes)
    }

    fn shard_mut(&mut self, k: usize) -> &mut [u64] {
        if self.shards[k].is_none() {
            let len = self.geom.shard_len(k);
            self.new_bytes += (len * 8) as u64;
            self.shards[k] = Some(vec![0u64; len].into_boxed_slice());
        }
        match &mut self.shards[k] {
            Some(shard) => shard,
            None => &mut [],
        }
    }
}

impl PairSink for ShardedSink {
    fn push(&mut self, i: u32, j: u32) {
        self.pushes += 1;
        let bit = i as usize * self.geom.s_len + j as usize;
        let word = bit >> 6;
        let k = word / self.geom.shard_words;
        let off = word - k * self.geom.shard_words;
        self.shard_mut(k)[off] |= 1u64 << (bit & 63);
    }

    fn push_row(&mut self, i: u32, js: &[u32]) {
        if js.is_empty() {
            return;
        }
        self.pushes += js.len() as u64;
        let base = i as usize * self.geom.s_len;
        let k = i as usize / self.geom.rows_per_shard;
        let off0 = k * self.geom.shard_words;
        let shard = self.shard_mut(k);
        for &j in js {
            let bit = base + j as usize;
            shard[(bit >> 6) - off0] |= 1u64 << (bit & 63);
        }
    }

    /// Template-OR bulk emission: the `js` block becomes a row-width
    /// bitmask built once, then OR-shifted into each driver row's
    /// word range. Shard boundaries are row-aligned, so a row's whole
    /// span lives in one shard and the inner loop is pure word ORs.
    fn push_rows(&mut self, is: &[u32], js: &[u32]) {
        if is.is_empty() || js.is_empty() {
            return;
        }
        let s_len = self.geom.s_len;
        let t_words = s_len.div_ceil(64);
        let mut template = vec![0u64; t_words];
        for &j in js {
            template[(j as usize) >> 6] |= 1u64 << (j & 63);
        }
        self.pushes += is.len() as u64 * js.len() as u64;
        for &i in is {
            let base = i as usize * s_len;
            let (word0, shift) = (base >> 6, (base & 63) as u32);
            let k = i as usize / self.geom.rows_per_shard;
            let off = word0 - k * self.geom.shard_words;
            let shard = self.shard_mut(k);
            if shift == 0 {
                for (w, &t) in shard[off..off + t_words].iter_mut().zip(&template) {
                    *w |= t;
                }
            } else {
                // The template's bits above s_len are zero, so the
                // shifted row never writes past its own span: the
                // last in-range word is off + t_words - 1, and the
                // spill word is only touched when real row bits
                // carried into it.
                let mut carry = 0u64;
                for (idx, &t) in template.iter().enumerate() {
                    shard[off + idx] |= (t << shift) | carry;
                    carry = t >> (64 - shift);
                }
                if carry != 0 {
                    shard[off + t_words] |= carry;
                }
            }
        }
    }
}

/// Counters of one shard merge, reported as `sink/*`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkMergeStats {
    /// Shards allocated across all workers (`sink/shards`).
    pub shards: u64,
    /// Shard ranges more than one worker touched, merged by OR
    /// (`sink/spilled_merges`); 0 means perfect row-range locality.
    pub spilled_merges: u64,
    /// Total shard bytes the workers allocated (`sink/bytes`).
    pub bytes: u64,
    /// Distinct pairs in the merged set.
    pub distinct: u64,
}

/// ORs every worker's shards into one dense full-grid [`PairSet`],
/// by shard index (single-owner shards are straight copies). Runs
/// post-scope on the coordinating thread.
pub fn merge_shards(geom: &SinkGeometry, sinks: &[ShardedSink]) -> (PairSet, SinkMergeStats) {
    let mut words = vec![0u64; geom.grid_words];
    let mut stats = SinkMergeStats::default();
    for sink in sinks {
        stats.bytes += sink
            .shards
            .iter()
            .flatten()
            .map(|s| (s.len() * 8) as u64)
            .sum::<u64>();
    }
    for k in 0..geom.shard_count {
        let off = k * geom.shard_words;
        let mut owners = 0u64;
        for sink in sinks {
            let Some(shard) = sink.shards.get(k).and_then(|s| s.as_ref()) else {
                continue;
            };
            owners += 1;
            let dst = &mut words[off..off + shard.len()];
            if owners == 1 {
                dst.copy_from_slice(shard);
            } else {
                for (d, &s) in dst.iter_mut().zip(shard.iter()) {
                    *d |= s;
                }
            }
        }
        stats.shards += owners;
        if owners > 1 {
            stats.spilled_merges += owners - 1;
        }
    }
    let set = PairSet::from_words(words, geom.s_len);
    stats.distinct = set.count() as u64;
    (set, stats)
}

/// Attempts before giving up on one spill I/O operation (the first
/// try plus [`IO_RETRIES`] retries).
pub const IO_RETRIES: u32 = 3;

/// First retry backoff; doubles per retry, capped at [`IO_BACKOFF_CAP`].
const IO_BACKOFF_BASE: Duration = Duration::from_millis(1);

/// Ceiling of the exponential backoff between retries.
const IO_BACKOFF_CAP: Duration = Duration::from_millis(8);

/// Runs one spill I/O operation with capped exponential backoff
/// (1 → 2 → 4 ms, [`IO_RETRIES`] retries). The `site` fault hook can
/// inject a synthetic transient error *instead of* the real
/// operation — one armed clause fails exactly one attempt, so the
/// retry exercises recovery; arming more clauses than retries at the
/// same site forces exhaustion and a real error return. `retries`
/// accumulates into `runtime/io_retries`.
fn with_retries<T>(
    site: &'static str,
    retries: &mut u64,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let mut backoff = IO_BACKOFF_BASE;
    let mut attempt = 0u32;
    loop {
        let result = if eid_fault::hit(site) {
            Err(io::Error::other(format!(
                "injected transient fault at {site}"
            )))
        } else {
            op()
        };
        match result {
            Ok(v) => return Ok(v),
            Err(_) if attempt < IO_RETRIES => {
                attempt += 1;
                *retries += 1;
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(IO_BACKOFF_CAP);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Spill-side counters of one [`SpillSink`] (or summed over a run's
/// sinks), reported as `sink/spill_*` and `runtime/io_retries`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Bytes written to spill files (`sink/spill_bytes`).
    pub spilled_bytes: u64,
    /// Shard segments written to spill files (`sink/spill_shards`).
    pub spilled_segments: u64,
    /// Spill-flush events (each flushes every resident shard).
    pub flushes: u64,
    /// I/O attempts that failed and were retried
    /// (`runtime/io_retries`).
    pub retries: u64,
}

impl SpillStats {
    /// Component-wise sum (for run-level reporting).
    pub fn absorb(&mut self, other: &SpillStats) {
        self.spilled_bytes += other.spilled_bytes;
        self.spilled_segments += other.spilled_segments;
        self.flushes += other.flushes;
        self.retries += other.retries;
    }
}

/// One spilled shard segment: where in the worker's spill file shard
/// `k`'s words were appended. The file itself is self-describing
/// (`[k: u64 LE][words: u64 LE][words × u64 LE]` per segment), but
/// reads go through this in-memory index — the file is never scanned.
#[derive(Debug, Clone, Copy)]
struct SpillSegment {
    k: usize,
    offset: u64,
    words: usize,
}

/// One worker's out-of-core streaming sink: a [`ShardedSink`] whose
/// resident shards spill to a per-worker temp file whenever they
/// outgrow `cap_bytes`. Spilling is cooperative — the engine calls
/// [`SpillSink::maybe_spill`] at task boundaries, never mid-scan —
/// and a shard may be spilled multiple times (segments are OR-merged
/// on read-back, so re-dirtied shards stay correct).
///
/// A spill *write* failure (after retries) is contained, not fatal:
/// the sink marks itself [`SpillSink::write_failed`] and keeps shards
/// resident from then on — degraded to the streamed path's memory
/// profile but still exact. A *read* failure at merge time is
/// surfaced to the caller, which drops the degradation ladder a rung.
pub struct SpillSink {
    mem: ShardedSink,
    /// `<dir>/worker-<w>.spill`, created lazily on first flush.
    path: PathBuf,
    file: Option<File>,
    cap_bytes: u64,
    segments: Vec<SpillSegment>,
    stats: SpillStats,
    write_failed: bool,
}

impl SpillSink {
    /// An empty spill sink for `worker`, spilling into
    /// `dir/worker-<worker>.spill` once resident shard bytes exceed
    /// `cap_bytes`.
    pub fn new(geom: SinkGeometry, worker: usize, dir: &Path, cap_bytes: u64) -> SpillSink {
        SpillSink {
            mem: ShardedSink::new(geom),
            path: dir.join(format!("worker-{worker}.spill")),
            file: None,
            cap_bytes,
            segments: Vec::new(),
            stats: SpillStats::default(),
            write_failed: false,
        }
    }

    /// Total pairs pushed (pre-dedup), mirroring
    /// [`ShardedSink::pushes`].
    pub fn pushes(&self) -> u64 {
        self.mem.pushes()
    }

    /// Bytes of shards allocated since the last call (see
    /// [`ShardedSink::take_new_bytes`]).
    pub fn take_new_bytes(&mut self) -> u64 {
        self.mem.take_new_bytes()
    }

    /// This sink's spill counters so far.
    pub fn stats(&self) -> SpillStats {
        self.stats
    }

    /// Whether a spill write failed after retries — the sink has
    /// degraded to keeping shards resident (the streamed profile).
    pub fn write_failed(&self) -> bool {
        self.write_failed
    }

    /// Bytes of currently resident (unspilled) shards.
    pub fn resident_bytes(&self) -> u64 {
        self.mem
            .shards
            .iter()
            .flatten()
            .map(|s| (s.len() * 8) as u64)
            .sum()
    }

    fn open_file(&mut self) -> io::Result<&mut File> {
        if self.file.is_none() {
            let path = self.path.clone();
            let file = with_retries("sink/spill_open", &mut self.stats.retries, || {
                OpenOptions::new()
                    .read(true)
                    .append(true)
                    .create(true)
                    .open(&path)
            })?;
            self.file = Some(file);
        }
        match &mut self.file {
            Some(f) => Ok(f),
            None => Err(io::Error::other("spill file vanished after open")),
        }
    }

    /// Spills every resident shard to the temp file and frees it, if
    /// resident bytes exceed the cap. Returns the bytes freed (0 when
    /// under the cap, already failed, or nothing resident). A write
    /// failure after retries returns the error once, marks the sink
    /// write-failed, and keeps every shard resident — the caller
    /// records the rung drop and the run continues exact.
    pub fn maybe_spill(&mut self) -> io::Result<u64> {
        if self.write_failed || self.resident_bytes() <= self.cap_bytes {
            return Ok(0);
        }
        match self.flush_all() {
            Ok(freed) => Ok(freed),
            Err(e) => {
                self.write_failed = true;
                Err(e)
            }
        }
    }

    /// Appends every resident shard as a segment and frees it.
    fn flush_all(&mut self) -> io::Result<u64> {
        self.open_file()?;
        let mut freed = 0u64;
        let shard_count = self.mem.shards.len();
        for k in 0..shard_count {
            let Some(shard) = self.mem.shards[k].take() else {
                continue;
            };
            match self.append_segment(k, &shard) {
                Ok(bytes) => freed += bytes,
                Err(e) => {
                    // Failed mid-flush: put the shard back so no bits
                    // are lost; earlier shards in this flush are
                    // already safely in the file and indexed.
                    self.mem.shards[k] = Some(shard);
                    return Err(e);
                }
            }
        }
        if freed > 0 {
            self.stats.flushes += 1;
        }
        Ok(freed)
    }

    /// Writes one `[k][words][words…]` segment, records its index
    /// entry, and returns the resident bytes it freed.
    fn append_segment(&mut self, k: usize, shard: &[u64]) -> io::Result<u64> {
        let offset = {
            let file = match &mut self.file {
                Some(f) => f,
                None => return Err(io::Error::other("spill file not open")),
            };
            // Append mode: the write position is always the end.
            file.seek(SeekFrom::End(0))?
        };
        let mut buf: Vec<u8> = Vec::with_capacity(16 + shard.len() * 8);
        buf.extend_from_slice(&(k as u64).to_le_bytes());
        buf.extend_from_slice(&(shard.len() as u64).to_le_bytes());
        for &w in shard {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        let retries = &mut self.stats.retries;
        let file = match &mut self.file {
            Some(f) => f,
            None => return Err(io::Error::other("spill file not open")),
        };
        with_retries("sink/spill_write", retries, || {
            // Rewind to the segment start: a partially written
            // previous attempt is simply overwritten.
            file.seek(SeekFrom::Start(offset))?;
            file.set_len(offset)?;
            file.write_all(&buf)
        })?;
        self.segments.push(SpillSegment {
            k,
            offset: offset + 16,
            words: shard.len(),
        });
        self.stats.spilled_bytes += buf.len() as u64;
        self.stats.spilled_segments += 1;
        Ok((shard.len() * 8) as u64)
    }

    /// Reads segment `seg` back and ORs it into `dst` (which must be
    /// at least `seg.words` long), reusing `buf` as the read buffer.
    fn read_segment_into(
        &mut self,
        seg: SpillSegment,
        dst: &mut [u64],
        buf: &mut Vec<u8>,
    ) -> io::Result<()> {
        let retries = &mut self.stats.retries;
        let file = match &mut self.file {
            Some(f) => f,
            None => return Err(io::Error::other("spill file not open for read-back")),
        };
        buf.clear();
        buf.resize(seg.words * 8, 0);
        with_retries("sink/spill_read", retries, || {
            file.seek(SeekFrom::Start(seg.offset))?;
            file.read_exact(buf)
        })?;
        for (w, chunk) in dst[..seg.words].iter_mut().zip(buf.chunks_exact(8)) {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(chunk);
            *w |= u64::from_le_bytes(bytes);
        }
        Ok(())
    }
}

impl PairSink for SpillSink {
    fn push(&mut self, i: u32, j: u32) {
        self.mem.push(i, j);
    }

    fn push_row(&mut self, i: u32, js: &[u32]) {
        self.mem.push_row(i, js);
    }

    fn push_rows(&mut self, is: &[u32], js: &[u32]) {
        self.mem.push_rows(is, js);
    }
}

/// Streams every worker's resident *and* spilled shards into one
/// dense full-grid [`PairSet`], walking shards in index order — which
/// is row-range order, so the merge is one ascending pass over the
/// output grid. Bounded memory: the final grid (≤ 32 MiB whenever a
/// [`SinkGeometry`] exists) plus one reusable read buffer, instead of
/// the all-resident merge's `workers × grid` worst case. Spilled
/// segments are OR-merged exactly like resident shards, so a shard
/// spilled twice (or spilled and then re-dirtied) still lands every
/// bit. A read failure after retries aborts the merge with the error;
/// the caller drops the ladder a rung (spilled → streamed).
pub fn merge_spilled(
    geom: &SinkGeometry,
    sinks: &mut [SpillSink],
) -> io::Result<(PairSet, SinkMergeStats)> {
    let mut words = vec![0u64; geom.grid_words];
    let mut stats = SinkMergeStats::default();
    for sink in sinks.iter() {
        stats.bytes += sink.resident_bytes() + sink.stats.spilled_bytes;
    }
    let mut buf: Vec<u8> = Vec::new();
    for k in 0..geom.shard_count {
        let off = k * geom.shard_words;
        let len = geom.shard_len(k);
        let mut owners = 0u64;
        for sink in sinks.iter_mut() {
            let mut touched = false;
            if let Some(shard) = sink.mem.shards.get(k).and_then(|s| s.as_ref()) {
                for (d, &s) in words[off..off + shard.len()].iter_mut().zip(shard.iter()) {
                    *d |= s;
                }
                touched = true;
            }
            let segs: Vec<SpillSegment> =
                sink.segments.iter().filter(|s| s.k == k).copied().collect();
            for seg in segs {
                sink.read_segment_into(seg, &mut words[off..off + len], &mut buf)?;
                touched = true;
            }
            if touched {
                owners += 1;
            }
        }
        stats.shards += owners;
        if owners > 1 {
            stats.spilled_merges += owners - 1;
        }
    }
    let set = PairSet::from_words(words, geom.s_len);
    stats.distinct = set.count() as u64;
    Ok((set, stats))
}

/// RAII cleanup for a run's spill directory (or any scratch dir, e.g.
/// a bench export tree): removes the directory and everything in it
/// on drop unless kept. Guards the whole emission + merge window, so
/// aborts, poisons, and panics all clean up — "never a leaked temp
/// file".
#[derive(Debug)]
pub struct SpillDirGuard {
    path: PathBuf,
    keep: bool,
}

impl SpillDirGuard {
    /// Creates `<parent>/eid-spill-<pid>-<seq>` and guards it.
    /// `keep = true` (the CLI's `--keep-spill`) leaves the directory
    /// behind on drop for post-mortem inspection.
    pub fn create(parent: &Path, keep: bool) -> io::Result<SpillDirGuard> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let path = parent.join(format!("eid-spill-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(SpillDirGuard { path, keep })
    }

    /// Guards an already-created directory.
    pub fn adopt(path: PathBuf, keep: bool) -> SpillDirGuard {
        SpillDirGuard { path, keep }
    }

    /// The guarded directory.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether the directory will survive drop.
    pub fn keeps(&self) -> bool {
        self.keep
    }

    /// Flips survival: an adopted scratch/export directory starts
    /// disposable (removed on abort or panic) and is kept only once
    /// the producing run completes.
    pub fn set_keep(&mut self, keep: bool) {
        self.keep = keep;
    }
}

impl Drop for SpillDirGuard {
    fn drop(&mut self) {
        if !self.keep {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_row_and_word_aligned() {
        for (r, s) in [(1, 1), (7, 3), (800, 800), (3200, 3200), (1 << 14, 5)] {
            let g = SinkGeometry::new(r, s).unwrap_or_else(|| panic!("no geometry for {r}x{s}"));
            assert_eq!(g.rows_per_shard * g.s_len % 64, 0, "{r}x{s}");
            assert_eq!(g.shard_words, g.rows_per_shard * s / 64, "{r}x{s}");
            assert_eq!(g.shard_count, r.div_ceil(g.rows_per_shard), "{r}x{s}");
            let total: usize = (0..g.shard_count).map(|k| g.shard_len(k)).sum();
            assert_eq!(total, g.grid_words, "{r}x{s}");
        }
        assert!(SinkGeometry::new(0, 10).is_none());
        assert!(SinkGeometry::new(1 << 20, 1 << 20).is_none());
    }

    #[test]
    fn sharded_sink_matches_buffered_dedup() {
        // Odd row width so rows straddle words and shifts exercise
        // the carry path.
        let (r_len, s_len) = (301, 67);
        let geom = SinkGeometry::new(r_len, s_len).unwrap();
        let mut sink = ShardedSink::new(geom);
        let mut buffered: Vec<(u32, u32)> = Vec::new();
        let mut x = 0x243F_6A88_85A3_08D3u64; // deterministic LCG
        let mut pairs = Vec::new();
        for _ in 0..5_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = ((x >> 33) % r_len as u64) as u32;
            let j = ((x >> 11) % s_len as u64) as u32;
            pairs.push((i, j));
        }
        for &(i, j) in &pairs {
            PairSink::push(&mut sink, i, j);
            PairSink::push(&mut buffered, i, j);
        }
        // Bulk paths on top of the scalar ones.
        let is: Vec<u32> = (0..r_len as u32).step_by(7).collect();
        let js: Vec<u32> = (0..s_len as u32).step_by(5).collect();
        sink.push_rows(&is, &js);
        buffered.push_rows(&is, &js);
        sink.push_row(300, &js);
        buffered.push_row(300, &js);
        assert_eq!(sink.pushes(), buffered.len() as u64);

        let (set, stats) = merge_shards(&geom, &[sink]);
        let mut expect = buffered;
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(set.to_pairs(), expect);
        assert_eq!(stats.distinct as usize, expect.len());
        assert_eq!(stats.spilled_merges, 0);
    }

    #[test]
    fn merge_ors_across_workers_and_counts_spills() {
        let geom = SinkGeometry::new(64, 64).unwrap();
        let mut a = ShardedSink::new(geom);
        let mut b = ShardedSink::new(geom);
        PairSink::push(&mut a, 0, 0);
        PairSink::push(&mut b, 0, 0); // duplicate across workers
        PairSink::push(&mut b, 63, 63);
        let (set, stats) = merge_shards(&geom, &[a, b]);
        assert!(set.contains(0, 0) && set.contains(63, 63));
        assert_eq!(set.count(), 2);
        // 64×64 fits one shard: both workers own it → one spill.
        assert_eq!(stats.spilled_merges, 1);
        assert_eq!(stats.shards, 2);
    }

    #[test]
    fn spill_sink_round_trips_through_disk_and_matches_in_memory_merge() {
        let (r_len, s_len) = (301, 67);
        let geom = SinkGeometry::new(r_len, s_len).unwrap();
        let dir = SpillDirGuard::create(&std::env::temp_dir(), false).unwrap();
        // Zero cap: every maybe_spill flushes everything resident.
        let mut spill = SpillSink::new(geom, 0, dir.path(), 0);
        let mut mem = ShardedSink::new(geom);
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for round in 0..4 {
            for _ in 0..2_000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let i = ((x >> 33) % r_len as u64) as u32;
                let j = ((x >> 11) % s_len as u64) as u32;
                PairSink::push(&mut spill, i, j);
                PairSink::push(&mut mem, i, j);
            }
            let freed = spill.maybe_spill().unwrap();
            assert!(freed > 0, "round {round} spilled nothing");
        }
        // Leave some resident too: re-dirty shards after the last
        // flush so the merge must OR disk segments with memory.
        let is: Vec<u32> = (0..r_len as u32).step_by(11).collect();
        let js: Vec<u32> = (0..s_len as u32).step_by(3).collect();
        spill.push_rows(&is, &js);
        mem.push_rows(&is, &js);
        assert_eq!(spill.pushes(), mem.pushes());
        let stats = spill.stats();
        assert!(stats.spilled_segments >= 4, "{stats:?}");
        assert!(stats.spilled_bytes > 0);
        assert!(!spill.write_failed());

        let (oracle, _) = merge_shards(&geom, &[mem]);
        let mut sinks = [spill];
        let (set, merge_stats) = merge_spilled(&geom, &mut sinks).unwrap();
        assert_eq!(set.to_pairs(), oracle.to_pairs());
        assert_eq!(merge_stats.distinct, oracle_count(&oracle));
        let spill_path = sinks[0].path.clone();
        assert!(spill_path.exists(), "spill file should exist before drop");
        drop(sinks);
        drop(dir);
        assert!(!spill_path.exists(), "guard should remove the spill dir");
    }

    fn oracle_count(set: &PairSet) -> u64 {
        set.count() as u64
    }

    #[test]
    fn spill_dir_guard_keep_leaves_the_directory() {
        let guard = SpillDirGuard::create(&std::env::temp_dir(), true).unwrap();
        let path = guard.path().to_path_buf();
        drop(guard);
        assert!(path.exists(), "--keep-spill dir must survive drop");
        std::fs::remove_dir_all(&path).unwrap();
    }

    #[test]
    fn pair_set_decodes_ascending_for_both_representations() {
        let pairs = [(3u32, 1u32), (0, 5), (3, 0), (0, 5), (2, 7)];
        let mut dense = PairSet::new(10, 10, 8);
        let mut hash = PairSet::Hash(FxHashSet::default());
        for &(i, j) in &pairs {
            dense.insert(i, j);
            hash.insert(i, j);
        }
        let expect = vec![(0, 5), (2, 7), (3, 0), (3, 1)];
        assert_eq!(dense.to_pairs(), expect);
        assert_eq!(hash.to_pairs(), expect);
        assert_eq!(dense.count(), 4);
        assert!(dense.capacity_bytes() > 0);
    }
}
