//! Incremental entity identification under federated updates.
//!
//! §2 of the paper: "In the case of federated databases,
//! participating database systems can continue to operate
//! autonomously. Instance integration may have to be performed
//! whenever updating is done on the participating databases." And
//! §3.2: "to cope with incompleteness, an entity identification
//! technique should allow the DBA to supply more information as more
//! knowledge about the real world is gained."
//!
//! [`IncrementalMatcher`] maintains the matching and negative
//! matching tables under two kinds of events without recomputing from
//! scratch:
//!
//! * **tuple insertion** into either relation — the new tuple is
//!   extended and derived, probed against a hash index on the
//!   extended key (`O(1)` expected for the match phase), and scanned
//!   against the other side's tuples for distinctness firings;
//! * **ILFD addition** — only the tuples that still carry NULLs are
//!   re-derived (fully-known tuples cannot change), then the indexes
//!   are refreshed and newly complete keys (re-)probed.
//!
//! Bulk refutation passes (the initial build and each ILFD addition)
//! run through the [`Executor`] on a planned [`MatchPlan`], so they
//! visit only candidate pairs instead of scanning all `|R|·|S|`
//! combinations. The executor and its plan are **cached** between
//! events: a tuple insert pushes the new row into the cached columnar
//! view ([`Executor::push_row`]) and re-checks only the delta's pairs
//! in symbol space ([`Executor::fires_distinct`]) — no re-encoding,
//! no re-planning. Only an ILFD addition (new knowledge, hence new
//! rules and possibly re-derived values) replans, and the staged
//! executor is installed with the rest of the commit.
//!
//! Monotonicity (§3.3) is preserved by construction: existing
//! entries are never removed. The test suite cross-validates every
//! state against a from-scratch batch run.
//!
//! ## Hardening: staged commits under cancellation and budgets
//!
//! Every event ([`IncrementalMatcher::insert`],
//! [`IncrementalMatcher::add_ilfd`]) runs under the matcher's
//! [`RunGuard`] and is **staged**: new decisions are computed into
//! locals first, and the matcher's tables, indexes, and knowledge are
//! only mutated once the whole event has succeeded. A guard trip
//! mid-event returns [`CoreError::Aborted`] with the base state
//! exactly as it was before the event — a cancelled run never
//! retracts a decision and never flushes half an event, so
//! cancel-then-resume preserves §3.3 monotonicity by construction.

use std::collections::HashMap;
use std::sync::Arc;

use eid_ilfd::derive::derive_tuple;
use eid_ilfd::{Ilfd, IlfdSet};
use eid_obs::{MatchReport, Recorder};
use eid_relational::{Relation, Tuple, Value};
use eid_rules::RuleBase;

use crate::engine::{Executor, RelSide};
use crate::error::{CoreError, Result};
use crate::extend::extend_relation;
use crate::match_table::{PairEntry, PairTable};
use crate::matcher::MatchConfig;
use crate::plan::{ArmHint, MatchPlan};
use crate::runtime::{AbortReason, RunBudget, RunGuard};
use crate::stats::counter;

/// Which relation an event touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SideSel {
    /// Relation `R`.
    R,
    /// Relation `S`.
    S,
}

/// New decisions produced by one event.
#[derive(Debug, Clone, Default)]
pub struct Delta {
    /// Pairs newly proven matching.
    pub new_matches: Vec<PairEntry>,
    /// Pairs newly proven distinct.
    pub new_non_matches: Vec<PairEntry>,
}

/// An incrementally maintained matcher.
#[derive(Debug, Clone)]
pub struct IncrementalMatcher {
    config: MatchConfig,
    r: Relation,
    s: Relation,
    ext_r: Relation,
    ext_s: Relation,
    /// Extended-key projection → tuple indices (non-NULL keys only).
    r_index: HashMap<Tuple, Vec<usize>>,
    s_index: HashMap<Tuple, Vec<usize>>,
    matching: PairTable,
    negative: PairTable,
    rule_base: RuleBase,
    /// The cached executor (compiled rules + interned columns, kept
    /// in sync with the extended relations via
    /// [`Executor::push_row`]) and its refutation [`MatchPlan`].
    /// `None` until the first refutation pass plans one.
    exec: Option<(Executor, Arc<MatchPlan>)>,
    /// Lifetime-scoped recorder; clones of the matcher share it.
    recorder: Recorder,
    /// Guard every event runs under; see [`IncrementalMatcher::set_budget`].
    guard: RunGuard,
}

impl IncrementalMatcher {
    /// Starts from (possibly empty) relations, running one batch pass.
    pub fn new(r: Relation, s: Relation, config: MatchConfig) -> Result<Self> {
        if config.extended_key.is_empty() {
            return Err(CoreError::EmptyExtendedKey);
        }
        let ext_r = extend_relation(&r, &config.extended_key, &config.ilfds, config.strategy)?;
        let ext_s = extend_relation(&s, &config.extended_key, &config.ilfds, config.strategy)?;
        let matching = PairTable::new(r.schema().primary_key(), s.schema().primary_key());
        let negative = PairTable::new(r.schema().primary_key(), s.schema().primary_key());

        let mut rule_base = config.extra_rules.clone();
        rule_base.add_identity(config.extended_key.identity_rule()?);
        if config.use_ilfd_distinctness {
            rule_base.add_ilfd_distinctness(&config.ilfds);
        }

        let recorder = Recorder::new();
        for (name, n) in [
            (
                counter::DERIVE_TUPLES,
                ext_r.stats.tuples + ext_s.stats.tuples,
            ),
            (
                counter::DERIVE_MEMO_HITS,
                ext_r.stats.memo_hits + ext_s.stats.memo_hits,
            ),
            (
                counter::DERIVE_MEMO_MISSES,
                ext_r.stats.memo_misses + ext_s.stats.memo_misses,
            ),
            (
                counter::DERIVE_ASSIGNED,
                ext_r.stats.assigned + ext_s.stats.assigned,
            ),
        ] {
            recorder.add(name, n as u64);
        }
        let guard = RunGuard::new(&config.budget);
        let mut m = IncrementalMatcher {
            config,
            r,
            s,
            ext_r: ext_r.relation,
            ext_s: ext_s.relation,
            r_index: HashMap::new(),
            s_index: HashMap::new(),
            matching,
            negative,
            rule_base,
            exec: None,
            recorder,
            guard,
        };
        m.rebuild_indexes()?;
        m.initial_pass()?;
        Ok(m)
    }

    /// Re-arms the event guard with a fresh budget. The deadline (if
    /// any) starts counting from this call, so call it immediately
    /// before the event it should bound. Construction arms the guard
    /// from [`MatchConfig::budget`].
    pub fn set_budget(&mut self, budget: &RunBudget) {
        self.guard = RunGuard::new(budget);
    }

    /// A clone of the currently armed guard — hand it to another
    /// thread and call [`RunGuard::cancel`] to stop the in-flight
    /// event at its next checkpoint.
    pub fn guard(&self) -> RunGuard {
        self.guard.clone()
    }

    fn abort(&self, reason: AbortReason) -> CoreError {
        CoreError::Aborted {
            reason,
            partial: self.guard.partial_stats(),
        }
    }

    fn key_projection(&self, side: SideSel, tuple: &Tuple) -> Result<Option<Tuple>> {
        let ext = match side {
            SideSel::R => &self.ext_r,
            SideSel::S => &self.ext_s,
        };
        let pos = ext.positions_of(self.config.extended_key.attrs())?;
        Ok(tuple.non_null_at(&pos).then(|| tuple.project(&pos)))
    }

    /// Builds the extended-key projection index for one (possibly
    /// staged) extended relation.
    fn build_index(&self, ext: &Relation) -> Result<HashMap<Tuple, Vec<usize>>> {
        let pos = ext.positions_of(self.config.extended_key.attrs())?;
        let mut index: HashMap<Tuple, Vec<usize>> = HashMap::new();
        for (i, t) in ext.iter().enumerate() {
            if t.non_null_at(&pos) {
                index.entry(t.project(&pos)).or_default().push(i);
            }
        }
        Ok(index)
    }

    fn rebuild_indexes(&mut self) -> Result<()> {
        self.r_index = self.build_index(&self.ext_r)?;
        self.s_index = self.build_index(&self.ext_s)?;
        Ok(())
    }

    fn initial_pass(&mut self) -> Result<()> {
        // Match phase via the index.
        let pairs: Vec<(usize, usize)> = self
            .r_index
            .iter()
            .filter_map(|(k, is)| self.s_index.get(k).map(|js| (is.clone(), js.clone())))
            .flat_map(|(is, js)| {
                is.into_iter()
                    .flat_map(move |i| js.clone().into_iter().map(move |j| (i, j)))
            })
            .collect();
        for (i, j) in pairs {
            self.record_match(i, j);
        }
        // Refutation phase: the planned executor visits only
        // candidate pairs instead of scanning all |R|·|S|
        // combinations. The executor + plan are kept for later
        // events (inserts reuse them verbatim).
        if self.config.collect_negative {
            let exec = self.build_exec(&self.ext_r, &self.ext_s, &self.rule_base);
            let fired = refute_with(&exec, &self.guard)?;
            self.exec = Some(exec);
            self.commit_refutations(fired);
        }
        Ok(())
    }

    /// Compiles, encodes, and plans a refutation pass over the given
    /// (possibly staged) extended relations. Pure — callers decide
    /// when (and whether) to install the pair as the cached executor.
    fn build_exec(
        &self,
        ext_r: &Relation,
        ext_s: &Relation,
        rule_base: &RuleBase,
    ) -> (Executor, Arc<MatchPlan>) {
        let mut executor = Executor::with_recorder(
            ext_r,
            ext_s,
            rule_base,
            self.config.threads,
            self.recorder.clone(),
        );
        executor.set_kernels(self.config.kernels);
        // Incremental refutation consumes the raw pair list (and may
        // roll the relations back mid-plan), so pin the buffered
        // emission twin regardless of pair volume.
        let plan = Arc::new(executor.plan(false, true, ArmHint::Auto).rewrite_buffered());
        (executor, plan)
    }

    /// Commit step: folds raw refuted pairs into the negative table,
    /// returning the entries that are actually new.
    fn commit_refutations(&mut self, pairs: Vec<(usize, usize)>) -> Vec<PairEntry> {
        let mut new = Vec::new();
        for (i, j) in pairs {
            let rk = self.r.primary_key_of(&self.r.tuples()[i]);
            let sk = self.s.primary_key_of(&self.s.tuples()[j]);
            if self.negative.insert(rk.clone(), sk.clone()) {
                new.push(PairEntry {
                    r_key: rk,
                    s_key: sk,
                });
            }
        }
        new
    }

    fn record_match(&mut self, i: usize, j: usize) -> Option<PairEntry> {
        let rk = self.r.primary_key_of(&self.r.tuples()[i]);
        let sk = self.s.primary_key_of(&self.s.tuples()[j]);
        self.matching
            .insert(rk.clone(), sk.clone())
            .then_some(PairEntry {
                r_key: rk,
                s_key: sk,
            })
    }

    /// Compute-only distinctness check on one extended pair. Runs in
    /// symbol space on the cached executor's interned columns when
    /// one exists (the common case — no per-pair name resolution or
    /// `Value` traffic); falls back to interpreting the rule base
    /// otherwise.
    fn fires_refute(&self, i: usize, j: usize) -> bool {
        if let Some((executor, _)) = &self.exec {
            return executor.fires_distinct(i, j);
        }
        let tr = &self.ext_r.tuples()[i];
        let ts = &self.ext_s.tuples()[j];
        self.rule_base
            .fires_distinctness(self.ext_r.schema(), tr, self.ext_s.schema(), ts)
    }

    /// Records one event's outcome: delta sizes, plus the §3.3
    /// monotonicity check — a pair table that *shrank* across the
    /// event increments `incremental/monotonicity_violations`
    /// (observable via [`IncrementalMatcher::report`]; must stay 0).
    fn record_event(&self, before_matching: usize, before_negative: usize, delta: &Delta) {
        self.recorder
            .add(counter::INCR_PROMOTED, delta.new_matches.len() as u64);
        self.recorder
            .add(counter::INCR_REFUTED, delta.new_non_matches.len() as u64);
        if self.matching.len() < before_matching || self.negative.len() < before_negative {
            self.recorder.add(counter::INCR_MONOTONICITY_VIOLATIONS, 1);
        }
    }

    /// Inserts a tuple into `R` or `S`, returning the new decisions.
    ///
    /// Staged: on a guard trip the base and extended insertions are
    /// rolled back and no decision or counter is recorded — the
    /// matcher is left exactly as it was before the call.
    pub fn insert(&mut self, side: SideSel, tuple: Tuple) -> Result<Delta> {
        self.guard.checkpoint().map_err(|r| self.abort(r))?;
        let (before_matching, before_negative) = (self.matching.len(), self.negative.len());
        // Insert into the base relation (key constraints enforced).
        match side {
            SideSel::R => self.r.insert(tuple.clone())?,
            SideSel::S => self.s.insert(tuple.clone())?,
        }
        // Extend + derive just this tuple.
        let (schema, base_arity) = match side {
            SideSel::R => (self.ext_r.schema().clone(), self.r.schema().arity()),
            SideSel::S => (self.ext_s.schema().clone(), self.s.schema().arity()),
        };
        let widened = tuple.extend_with(&vec![Value::Null; schema.arity() - base_arity]);
        let (derived, _report) =
            derive_tuple(&schema, &widened, &self.config.ilfds, self.config.strategy);
        if let Err(e) = match side {
            SideSel::R => self.ext_r.insert(derived.clone()),
            SideSel::S => self.ext_s.insert(derived.clone()),
        } {
            // Unwind the base insertion so the relations stay in step.
            match side {
                SideSel::R => self.r.remove_last(),
                SideSel::S => self.s.remove_last(),
            };
            return Err(e.into());
        }

        let idx = match side {
            SideSel::R => self.ext_r.len() - 1,
            SideSel::S => self.ext_s.len() - 1,
        };
        // Keep the cached executor's columnar view in step: intern
        // just the delta row — the staged refutation below then runs
        // entirely in symbol space against the cached artifacts.
        let rel_side = match side {
            SideSel::R => RelSide::R,
            SideSel::S => RelSide::S,
        };
        if let Some((executor, _)) = self.exec.as_mut() {
            executor.push_row(rel_side, &derived);
        }
        // Stage: compute every new decision without touching the
        // tables, so an abort can unwind cleanly.
        let (key, match_hits, refute_hits) = match self.stage_insert_decisions(side, &derived, idx)
        {
            Ok(staged) => staged,
            Err(e) => {
                if let Some((executor, _)) = self.exec.as_mut() {
                    executor.truncate(rel_side, idx);
                }
                match side {
                    SideSel::R => {
                        self.ext_r.remove_last();
                        self.r.remove_last();
                    }
                    SideSel::S => {
                        self.ext_s.remove_last();
                        self.s.remove_last();
                    }
                };
                return Err(e);
            }
        };

        // Commit: index, tables, counters.
        let mut delta = Delta::default();
        for other in match_hits {
            let entry = match side {
                SideSel::R => self.record_match(idx, other),
                SideSel::S => self.record_match(other, idx),
            };
            delta.new_matches.extend(entry);
        }
        if let Some(key) = key {
            match side {
                SideSel::R => self.r_index.entry(key).or_default().push(idx),
                SideSel::S => self.s_index.entry(key).or_default().push(idx),
            };
        }
        delta.new_non_matches = self.commit_refutations(refute_hits);
        self.recorder.add(counter::INCR_INSERTS, 1);
        self.record_event(before_matching, before_negative, &delta);
        Ok(delta)
    }

    /// Compute-only phase of [`IncrementalMatcher::insert`]: probes
    /// the opposite index and scans the opposite side for
    /// distinctness firings, charging the guard per candidate pair.
    #[allow(clippy::type_complexity)]
    fn stage_insert_decisions(
        &self,
        side: SideSel,
        derived: &Tuple,
        idx: usize,
    ) -> Result<(Option<Tuple>, Vec<usize>, Vec<(usize, usize)>)> {
        let key = self.key_projection(side, derived)?;
        let mut match_hits: Vec<usize> = Vec::new();
        if let Some(key) = &key {
            let hits = match side {
                SideSel::R => self.s_index.get(key),
                SideSel::S => self.r_index.get(key),
            };
            if let Some(hits) = hits {
                self.guard.charge_pairs(hits.len() as u64);
                self.guard.checkpoint().map_err(|r| self.abort(r))?;
                match_hits = hits.clone();
            }
        }
        let mut refute_hits: Vec<(usize, usize)> = Vec::new();
        if self.config.collect_negative {
            match side {
                SideSel::R => {
                    self.guard.charge_pairs(self.ext_s.len() as u64);
                    for j in 0..self.ext_s.len() {
                        self.guard.checkpoint().map_err(|r| self.abort(r))?;
                        if self.fires_refute(idx, j) {
                            refute_hits.push((idx, j));
                        }
                    }
                }
                SideSel::S => {
                    self.guard.charge_pairs(self.ext_r.len() as u64);
                    for i in 0..self.ext_r.len() {
                        self.guard.checkpoint().map_err(|r| self.abort(r))?;
                        if self.fires_refute(i, idx) {
                            refute_hits.push((i, idx));
                        }
                    }
                }
            }
        }
        Ok((key, match_hits, refute_hits))
    }

    /// Supplies one more ILFD (§3.3's growing knowledge). Tuples with
    /// incomplete extended keys are re-derived and re-probed; the new
    /// distinctness rule is evaluated against all pairs when the
    /// refutation phase is on.
    pub fn add_ilfd(&mut self, ilfd: Ilfd) -> Result<Delta> {
        // Stage the knowledge on clones: duplicates are detected
        // here, and nothing reaches the matcher if the event aborts.
        let mut ilfds = self.config.ilfds.clone();
        if !ilfds.insert(ilfd.clone()) {
            return Ok(Delta::default()); // already known
        }
        self.guard.checkpoint().map_err(|r| self.abort(r))?;
        let (before_matching, before_negative) = (self.matching.len(), self.negative.len());
        let mut rule_base = self.rule_base.clone();
        if self.config.use_ilfd_distinctness {
            let single: IlfdSet = [ilfd].into_iter().collect();
            rule_base.add_ilfd_distinctness(&single);
        }

        // Re-derive every tuple that still has NULLs on either side —
        // not just incomplete extended keys: a new ILFD can also fill
        // a non-key NULL that a distinctness rule's `e₂.B ≠ b`
        // condition needs to witness. The rebuilt relations stay in
        // locals until the whole event has succeeded.
        let mut staged_r: Option<Relation> = None;
        let mut staged_s: Option<Relation> = None;
        for side in [SideSel::R, SideSel::S] {
            let ext = match side {
                SideSel::R => &self.ext_r,
                SideSel::S => &self.ext_s,
            };
            let schema = ext.schema().clone();
            let mut updates: Vec<(usize, Tuple)> = Vec::new();
            for (i, t) in ext.iter().enumerate() {
                self.guard.checkpoint().map_err(|r| self.abort(r))?;
                if !t.has_null() {
                    continue;
                }
                let (nt, _) = derive_tuple(&schema, t, &ilfds, self.config.strategy);
                if &nt != t {
                    updates.push((i, nt));
                }
            }
            if updates.is_empty() {
                continue;
            }
            // Apply updates and re-probe completed tuples.
            let mut rebuilt = Relation::new_unchecked(schema);
            let current: Vec<Tuple> = ext.tuples().to_vec();
            let mut by_index: HashMap<usize, Tuple> = updates.into_iter().collect();
            for (i, t) in current.into_iter().enumerate() {
                rebuilt.insert(by_index.remove(&i).unwrap_or(t))?;
            }
            match side {
                SideSel::R => staged_r = Some(rebuilt),
                SideSel::S => staged_s = Some(rebuilt),
            }
        }
        let new_ext_r = staged_r.as_ref().unwrap_or(&self.ext_r);
        let new_ext_s = staged_s.as_ref().unwrap_or(&self.ext_s);
        let r_index = self.build_index(new_ext_r)?;
        let s_index = self.build_index(new_ext_s)?;

        // Probe everything that is now complete (cheap: index walk).
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for (k, is) in &r_index {
            if let Some(js) = s_index.get(k) {
                self.guard.charge_pairs((is.len() * js.len()) as u64);
                self.guard.checkpoint().map_err(|r| self.abort(r))?;
                for &i in is {
                    for &j in js {
                        pairs.push((i, j));
                    }
                }
            }
        }
        // New knowledge means new rules (and possibly re-derived
        // values), so the cached executor is stale: build — and run —
        // a staged replacement over the staged relations. It is
        // installed only if the whole event commits.
        let (staged_exec, refuted) = if self.config.collect_negative {
            let exec = self.build_exec(new_ext_r, new_ext_s, &rule_base);
            let refuted = refute_with(&exec, &self.guard)?;
            (Some(exec), refuted)
        } else {
            (None, Vec::new())
        };

        // Commit: nothing above mutated the matcher; from here the
        // event applies in full.
        if let Some(r) = staged_r {
            self.ext_r = r;
        }
        if let Some(s) = staged_s {
            self.ext_s = s;
        }
        if let Some(exec) = staged_exec {
            self.exec = Some(exec);
        }
        self.r_index = r_index;
        self.s_index = s_index;
        self.rule_base = rule_base;
        self.config.ilfds = ilfds;
        self.recorder.add(counter::INCR_ILFDS_ADDED, 1);
        let mut delta = Delta::default();
        for (i, j) in pairs {
            delta.new_matches.extend(self.record_match(i, j));
        }
        delta.new_non_matches = self.commit_refutations(refuted);
        self.record_event(before_matching, before_negative, &delta);
        Ok(delta)
    }

    /// The current matching table.
    pub fn matching(&self) -> &PairTable {
        &self.matching
    }

    /// The current negative matching table.
    pub fn negative(&self) -> &PairTable {
        &self.negative
    }

    /// The current source relations.
    pub fn relations(&self) -> (&Relation, &Relation) {
        (&self.r, &self.s)
    }

    /// Current count of undetermined pairs.
    pub fn undetermined(&self) -> usize {
        let total = self.r.len() * self.s.len();
        let overlap = self
            .matching
            .entries()
            .iter()
            .filter(|e| self.negative.contains(&e.r_key, &e.s_key))
            .count();
        (total + overlap)
            .saturating_sub(self.matching.len())
            .saturating_sub(self.negative.len())
    }

    /// Runs the §3.2 verifications on the current state.
    pub fn verify(&self) -> Result<()> {
        self.matching.verify_uniqueness()?;
        self.matching.verify_consistency(&self.negative)
    }

    /// Snapshots the lifetime observability report: event counters
    /// (`incremental/*`), cumulative engine counters from each bulk
    /// refutation pass, and derivation totals. The
    /// `incremental/monotonicity_violations` counter is the §3.3
    /// invariant made observable — it must read 0.
    pub fn report(&self) -> MatchReport {
        self.recorder.report()
    }
}

/// Executes a staged `(executor, plan)` pair's refutation pass under
/// the event guard, returning the raw fired pairs. Nothing is
/// committed here — callers fold the pairs into the negative table
/// only once the whole event has succeeded.
fn refute_with(exec: &(Executor, Arc<MatchPlan>), guard: &RunGuard) -> Result<Vec<(usize, usize)>> {
    let (executor, plan) = exec;
    let pairs = executor.execute(plan, guard)?;
    Ok(pairs
        .negative
        .into_iter()
        .map(|(i, j)| (i as usize, j as usize))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::EntityMatcher;
    use eid_relational::Schema;
    use eid_rules::ExtendedKey;

    fn setup() -> (Relation, Relation, MatchConfig) {
        let r_schema =
            Schema::of_strs("R", &["name", "cuisine", "street"], &["name", "cuisine"]).unwrap();
        let s_schema = Schema::of_strs(
            "S",
            &["name", "speciality", "county"],
            &["name", "speciality"],
        )
        .unwrap();
        let ilfds: IlfdSet = vec![
            Ilfd::of_strs(&[("speciality", "hunan")], &[("cuisine", "chinese")]),
            Ilfd::of_strs(&[("speciality", "gyros")], &[("cuisine", "greek")]),
        ]
        .into_iter()
        .collect();
        let config = MatchConfig::new(ExtendedKey::of_strs(&["name", "cuisine"]), ilfds);
        (Relation::new(r_schema), Relation::new(s_schema), config)
    }

    /// Batch-equivalence oracle.
    fn batch(r: &Relation, s: &Relation, config: &MatchConfig) -> (PairTable, PairTable) {
        let o = EntityMatcher::new(r.clone(), s.clone(), config.clone())
            .unwrap()
            .run()
            .unwrap();
        (o.matching, o.negative)
    }

    #[test]
    fn inserts_produce_matches_as_they_arrive() {
        let (r, s, config) = setup();
        let mut m = IncrementalMatcher::new(r, s, config).unwrap();
        assert_eq!(m.matching().len(), 0);

        // S tuple arrives first: no match yet.
        let d = m
            .insert(SideSel::S, Tuple::of_strs(&["tc", "hunan", "roseville"]))
            .unwrap();
        assert!(d.new_matches.is_empty());

        // Matching R tuple arrives: immediate match.
        let d = m
            .insert(SideSel::R, Tuple::of_strs(&["tc", "chinese", "co_b2"]))
            .unwrap();
        assert_eq!(d.new_matches.len(), 1);
        assert_eq!(m.matching().len(), 1);
        m.verify().unwrap();
    }

    #[test]
    fn incremental_state_equals_batch_after_every_insert() {
        let (r, s, config) = setup();
        let mut m = IncrementalMatcher::new(r, s, config.clone()).unwrap();
        let script: Vec<(SideSel, Tuple)> = vec![
            (SideSel::R, Tuple::of_strs(&["tc", "chinese", "co_b2"])),
            (SideSel::S, Tuple::of_strs(&["tc", "hunan", "roseville"])),
            (SideSel::R, Tuple::of_strs(&["ig", "greek", "front"])),
            (SideSel::S, Tuple::of_strs(&["ig", "gyros", "ramsey"])),
            (SideSel::R, Tuple::of_strs(&["vw", "chinese", "wash"])),
            (SideSel::S, Tuple::of_strs(&["zz", "hunan", "hennepin"])),
        ];
        for (side, tuple) in script {
            m.insert(side, tuple).unwrap();
            let (br, bs) = m.relations();
            let (bm, bn) = batch(br, bs, &config);
            assert!(m.matching().includes(&bm) && bm.includes(m.matching()));
            assert!(m.negative().includes(&bn) && bn.includes(m.negative()));
        }
    }

    #[test]
    fn add_ilfd_unlocks_matches_monotonically() {
        let (mut r, mut s, mut config) = setup();
        config.ilfds = IlfdSet::new(); // start with no knowledge
        r.insert_strs(&["tc", "chinese", "co_b2"]).unwrap();
        s.insert_strs(&["tc", "hunan", "roseville"]).unwrap();
        let mut m = IncrementalMatcher::new(r, s, config).unwrap();
        assert_eq!(m.matching().len(), 0);
        assert_eq!(m.undetermined(), 1);

        let before = m.matching().clone();
        let d = m
            .add_ilfd(Ilfd::of_strs(
                &[("speciality", "hunan")],
                &[("cuisine", "chinese")],
            ))
            .unwrap();
        assert_eq!(d.new_matches.len(), 1);
        assert_eq!(m.matching().len(), 1);
        assert!(m.matching().includes(&before), "monotone");
        assert_eq!(m.undetermined(), 0);
    }

    #[test]
    fn add_ilfd_matches_batch() {
        let (mut r, mut s, mut config) = setup();
        let all_ilfds = config.ilfds.clone();
        config.ilfds = IlfdSet::new();
        r.insert_strs(&["tc", "chinese", "co_b2"]).unwrap();
        r.insert_strs(&["ig", "greek", "front"]).unwrap();
        s.insert_strs(&["tc", "hunan", "roseville"]).unwrap();
        s.insert_strs(&["ig", "gyros", "ramsey"]).unwrap();
        let mut m = IncrementalMatcher::new(r, s, config.clone()).unwrap();
        for ilfd in all_ilfds.iter() {
            m.add_ilfd(ilfd.clone()).unwrap();
            let (br, bs) = m.relations();
            let mut c = config.clone();
            c.ilfds = m.config.ilfds.clone();
            let (bm, bn) = batch(br, bs, &c);
            assert!(m.matching().includes(&bm) && bm.includes(m.matching()));
            assert!(m.negative().includes(&bn) && bn.includes(m.negative()));
        }
        assert_eq!(m.matching().len(), 2);
    }

    #[test]
    fn duplicate_ilfd_is_a_noop() {
        let (r, s, config) = setup();
        let ilfd = config.ilfds.as_slice()[0].clone();
        let mut m = IncrementalMatcher::new(r, s, config).unwrap();
        let d = m.add_ilfd(ilfd).unwrap();
        assert!(d.new_matches.is_empty());
        assert!(d.new_non_matches.is_empty());
    }

    #[test]
    fn key_violations_are_rejected() {
        let (r, s, config) = setup();
        let mut m = IncrementalMatcher::new(r, s, config).unwrap();
        m.insert(SideSel::R, Tuple::of_strs(&["tc", "chinese", "a"]))
            .unwrap();
        let err = m
            .insert(SideSel::R, Tuple::of_strs(&["tc", "chinese", "b"]))
            .unwrap_err();
        assert!(matches!(err, CoreError::Relational(_)));
    }

    /// Regression: a new ILFD that fills a *non-key* NULL must still
    /// be applied — distinctness rules need the value. (Previously
    /// only tuples with incomplete extended keys were re-derived.)
    #[test]
    fn add_ilfd_fills_non_key_nulls_for_refutation() {
        let r_schema = Schema::of_strs("R", &["name", "speciality"], &["name"]).unwrap();
        let s_schema = Schema::of_strs("S", &["name", "speciality", "cuisine"], &["name"]).unwrap();
        let mut r = Relation::new(r_schema);
        r.insert_strs(&["a", "gyros"]).unwrap();
        let mut s = Relation::new(s_schema);
        s.insert(Tuple::new(vec![
            Value::str("b"),
            Value::str("mughalai"),
            Value::Null, // cuisine unknown, derivable
        ]))
        .unwrap();
        let config = MatchConfig::new(ExtendedKey::of_strs(&["name"]), IlfdSet::new());
        let mut m = IncrementalMatcher::new(r, s, config.clone()).unwrap();
        assert_eq!(m.negative().len(), 0);

        m.add_ilfd(Ilfd::of_strs(
            &[("speciality", "mughalai")],
            &[("cuisine", "indian")],
        ))
        .unwrap();
        let d = m
            .add_ilfd(Ilfd::of_strs(
                &[("speciality", "gyros")],
                &[("cuisine", "greek")],
            ))
            .unwrap();
        // The gyros rule's distinctness (e1.spec = gyros ∧ e2.cuisine
        // ≠ greek) fires only because S's cuisine was re-derived to
        // indian despite its extended key {name} being complete.
        assert_eq!(d.new_non_matches.len(), 1, "{d:?}");
        // And the state equals a batch run with the same knowledge.
        let (br, bs) = m.relations();
        let mut c = config;
        c.ilfds = m.config.ilfds.clone();
        let batch = EntityMatcher::new(br.clone(), bs.clone(), c)
            .unwrap()
            .run()
            .unwrap();
        assert!(m.negative().includes(&batch.negative));
        assert!(batch.negative.includes(m.negative()));
    }

    #[test]
    fn refutations_arrive_incrementally() {
        let (r, s, config) = setup();
        let mut m = IncrementalMatcher::new(r, s, config).unwrap();
        m.insert(SideSel::S, Tuple::of_strs(&["x", "hunan", "c1"]))
            .unwrap();
        // An Indian restaurant can't be the hunan-speciality entity.
        let d = m
            .insert(SideSel::R, Tuple::of_strs(&["x", "indian", "st"]))
            .unwrap();
        assert_eq!(d.new_non_matches.len(), 1);
        assert_eq!(m.negative().len(), 1);
    }
}
